//! The tidy ratchet: a committed baseline of known findings, keyed by
//! `(file, lint code) -> count`, that may only shrink.
//!
//! Counts (rather than line numbers) make the baseline robust to
//! unrelated edits shifting code around: adding a *new* `unwrap` to a
//! file fails CI even if an old one moved, while pure movement changes
//! nothing. The flip side — two offsetting edits in one file cancelling
//! out — is acceptable for debt tracking and is called out in DESIGN.md.
//!
//! The JSON codec is hand-rolled (std-only, sorted keys) so the output
//! is byte-identical across runs and platforms.

use crate::lints::Finding;
use std::collections::BTreeMap;

/// Format version of the baseline file.
pub const BASELINE_VERSION: u64 = 1;

/// Per-file, per-code finding counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `file -> code -> count`, both levels sorted.
    pub counts: BTreeMap<String, BTreeMap<String, u64>>,
}

/// One way the current findings disagree with the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RatchetIssue {
    /// More findings than the baseline allows: the ratchet moved backward.
    Regression {
        /// Repo-relative file.
        file: String,
        /// Lint code.
        code: String,
        /// Count recorded in the baseline.
        baseline: u64,
        /// Count found now.
        current: u64,
    },
    /// Fewer findings than the baseline records: the baseline must shrink
    /// (rerun with `--write-baseline` and commit).
    Stale {
        /// Repo-relative file.
        file: String,
        /// Lint code.
        code: String,
        /// Count recorded in the baseline.
        baseline: u64,
        /// Count found now.
        current: u64,
    },
}

impl RatchetIssue {
    /// Canonical single-line rendering.
    pub fn render(&self) -> String {
        match self {
            Self::Regression {
                file,
                code,
                baseline,
                current,
            } => format!(
                "ratchet regression: {file}: {code} went {baseline} -> {current}; fix the new finding or add a justified tidy:allow"
            ),
            Self::Stale {
                file,
                code,
                baseline,
                current,
            } => format!(
                "stale baseline: {file}: {code} went {baseline} -> {current}; shrink the baseline with `tidy --write-baseline` and commit it"
            ),
        }
    }
}

impl Baseline {
    /// Aggregates findings into per-file, per-code counts.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut counts: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for f in findings {
            *counts
                .entry(f.file.clone())
                .or_default()
                .entry(f.code.to_string())
                .or_insert(0) += 1;
        }
        Self { counts }
    }

    /// Total finding count in the baseline.
    pub fn total(&self) -> u64 {
        self.counts.values().flat_map(|m| m.values()).sum()
    }

    /// Compares `current` against this baseline. Empty result means the
    /// ratchet holds exactly.
    pub fn ratchet(&self, current: &Baseline) -> Vec<RatchetIssue> {
        let mut issues = Vec::new();
        let empty = BTreeMap::new();
        let files: std::collections::BTreeSet<&String> =
            self.counts.keys().chain(current.counts.keys()).collect();
        for file in files {
            let base = self.counts.get(file).unwrap_or(&empty);
            let cur = current.counts.get(file).unwrap_or(&empty);
            let codes: std::collections::BTreeSet<&String> =
                base.keys().chain(cur.keys()).collect();
            for code in codes {
                let b = base.get(code).copied().unwrap_or(0);
                let c = cur.get(code).copied().unwrap_or(0);
                if c > b {
                    issues.push(RatchetIssue::Regression {
                        file: file.clone(),
                        code: code.clone(),
                        baseline: b,
                        current: c,
                    });
                } else if c < b {
                    issues.push(RatchetIssue::Stale {
                        file: file.clone(),
                        code: code.clone(),
                        baseline: b,
                        current: c,
                    });
                }
            }
        }
        issues
    }

    /// Serializes to the committed JSON format: sorted keys, two-space
    /// indent, trailing newline — byte-identical across runs.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {BASELINE_VERSION},\n"));
        out.push_str("  \"counts\": {");
        let mut first_file = true;
        for (file, codes) in &self.counts {
            if !first_file {
                out.push(',');
            }
            first_file = false;
            out.push_str(&format!("\n    {}: {{", json_string(file)));
            let mut first_code = true;
            for (code, count) in codes {
                if !first_code {
                    out.push(',');
                }
                first_code = false;
                out.push_str(&format!("\n      {}: {count}", json_string(code)));
            }
            out.push_str("\n    }");
        }
        if !self.counts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses the committed JSON format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem, or a version
    /// mismatch.
    pub fn parse(src: &str) -> Result<Self, String> {
        let value = json::parse(src)?;
        let obj = value
            .as_object()
            .ok_or("baseline: top level must be an object")?;
        let version = obj
            .get("version")
            .and_then(|v| v.as_u64())
            .ok_or("baseline: missing integer `version`")?;
        if version != BASELINE_VERSION {
            return Err(format!(
                "baseline: version {version} unsupported (expected {BASELINE_VERSION})"
            ));
        }
        let mut counts: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        let files = obj
            .get("counts")
            .and_then(|v| v.as_object())
            .ok_or("baseline: missing object `counts`")?;
        for (file, codes_val) in files {
            let codes = codes_val
                .as_object()
                .ok_or_else(|| format!("baseline: `{file}` must map codes to counts"))?;
            let mut per_code = BTreeMap::new();
            for (code, n) in codes {
                let n = n
                    .as_u64()
                    .ok_or_else(|| format!("baseline: `{file}`/`{code}` must be a count"))?;
                per_code.insert(code.clone(), n);
            }
            counts.insert(file.clone(), per_code);
        }
        Ok(Self { counts })
    }
}

/// Escapes a string for JSON output.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal recursive-descent JSON parser — just enough for the
/// baseline schema (objects, strings, non-negative integers), std-only
/// by design.
mod json {
    use std::collections::BTreeMap;

    #[derive(Debug, Clone)]
    pub enum Value {
        Object(BTreeMap<String, Value>),
        // Parsed for completeness; the baseline schema never reads one.
        #[allow(dead_code)]
        String(String),
        Number(u64),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }
    }

    /// Parses one complete JSON value.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem.
    pub fn parse(src: &str) -> Result<Value, String> {
        let chars: Vec<char> = src.chars().collect();
        let mut pos = 0usize;
        let value = parse_value(&chars, &mut pos)?;
        skip_ws(&chars, &mut pos);
        if pos != chars.len() {
            return Err(format!("baseline json: trailing content at offset {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(chars: &[char], pos: &mut usize) {
        while chars.get(*pos).is_some_and(|c| c.is_ascii_whitespace()) {
            *pos += 1;
        }
    }

    fn parse_value(chars: &[char], pos: &mut usize) -> Result<Value, String> {
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some('{') => parse_object(chars, pos),
            Some('"') => Ok(Value::String(parse_string(chars, pos)?)),
            Some(c) if c.is_ascii_digit() => parse_number(chars, pos),
            Some(c) => Err(format!("baseline json: unexpected `{c}` at offset {pos}")),
            None => Err("baseline json: unexpected end of input".to_string()),
        }
    }

    fn parse_object(chars: &[char], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // '{'
        let mut map = BTreeMap::new();
        skip_ws(chars, pos);
        if chars.get(*pos) == Some(&'}') {
            *pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            skip_ws(chars, pos);
            let key = parse_string(chars, pos)?;
            skip_ws(chars, pos);
            if chars.get(*pos) != Some(&':') {
                return Err(format!("baseline json: expected `:` at offset {pos}"));
            }
            *pos += 1;
            let value = parse_value(chars, pos)?;
            map.insert(key, value);
            skip_ws(chars, pos);
            match chars.get(*pos) {
                Some(',') => *pos += 1,
                Some('}') => {
                    *pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(format!(
                        "baseline json: expected `,` or `}}` at offset {pos}"
                    ))
                }
            }
        }
    }

    fn parse_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
        if chars.get(*pos) != Some(&'"') {
            return Err(format!("baseline json: expected string at offset {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match chars.get(*pos) {
                Some('"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    *pos += 1;
                    match chars.get(*pos) {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('/') => out.push('/'),
                        Some('n') => out.push('\n'),
                        Some('r') => out.push('\r'),
                        Some('t') => out.push('\t'),
                        Some('u') => {
                            let mut cp = 0u32;
                            for _ in 0..4 {
                                *pos += 1;
                                let d = chars
                                    .get(*pos)
                                    .and_then(|c| c.to_digit(16))
                                    .ok_or("baseline json: bad \\u escape")?;
                                cp = cp * 16 + d;
                            }
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err("baseline json: bad escape".to_string()),
                    }
                    *pos += 1;
                }
                Some(c) => {
                    out.push(*c);
                    *pos += 1;
                }
                None => return Err("baseline json: unterminated string".to_string()),
            }
        }
    }

    fn parse_number(chars: &[char], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while chars.get(*pos).is_some_and(char::is_ascii_digit) {
            *pos += 1;
        }
        let text: String = chars[start..*pos].iter().collect();
        text.parse::<u64>()
            .map(Value::Number)
            .map_err(|e| format!("baseline json: bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, code: &'static str) -> Finding {
        Finding {
            file: file.to_string(),
            line: 1,
            col: 1,
            code,
            message: String::new(),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let b = Baseline::from_findings(&[
            finding("crates/a/src/x.rs", "PP003"),
            finding("crates/a/src/x.rs", "PP003"),
            finding("crates/b/src/y.rs", "PP006"),
        ]);
        let text = b.to_json();
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.to_json(), text, "serialization must be canonical");
        assert_eq!(b.total(), 3);
    }

    #[test]
    fn empty_baseline_round_trips() {
        let b = Baseline::default();
        assert_eq!(Baseline::parse(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn ratchet_classifies_regressions_and_stales() {
        let base = Baseline::from_findings(&[
            finding("a.rs", "PP003"),
            finding("a.rs", "PP003"),
            finding("b.rs", "PP004"),
        ]);
        let cur = Baseline::from_findings(&[finding("a.rs", "PP003"), finding("c.rs", "PP001")]);
        let issues = base.ratchet(&cur);
        assert_eq!(issues.len(), 3);
        assert!(matches!(
            &issues[0],
            RatchetIssue::Stale { file, baseline: 2, current: 1, .. } if file == "a.rs"
        ));
        assert!(matches!(
            &issues[1],
            RatchetIssue::Stale { file, baseline: 1, current: 0, .. } if file == "b.rs"
        ));
        assert!(matches!(
            &issues[2],
            RatchetIssue::Regression { file, baseline: 0, current: 1, .. } if file == "c.rs"
        ));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let err = Baseline::parse("{\n  \"version\": 2,\n  \"counts\": {}\n}\n").unwrap_err();
        assert!(err.contains("version"), "{err}");
    }
}
