//! `modelcheck` — exhaustive exploration of the SOR ghost-exchange
//! protocol (see `prodpred_analysis::model`).
//!
//! ```text
//! modelcheck                         full suite at 2 ranks x 2 half-iterations
//! modelcheck --ranks 3 --halves 4    bigger configuration
//! modelcheck --kill R:H              one seeded kill variant only
//! modelcheck --timeouts              healthy run with timeout transitions only
//! modelcheck --ckpt                  checkpoint/resume recovery suite only
//! ```
//!
//! The default suite runs, for the chosen configuration:
//!
//! 1. the healthy patient protocol (proves deadlock freedom + delivery),
//! 2. the healthy protocol with `ExchangePolicy` timeout transitions,
//! 3. every kill schedule `rank x half` (proves the typed `WorkerDied`
//!    path is reached in **every** interleaving of every schedule),
//! 4. every kill schedule with timeouts enabled as well,
//! 5. the checkpoint/resume recovery suite (`prodpred_analysis::ckpt`):
//!    every single-kill position against the segment grid, a
//!    consumed-kill-behind-the-checkpoint schedule, disabled
//!    checkpointing, and budget exhaustion — proving rollback
//!    convergence and that a consumed death never re-fires.
//!
//! Exit code 0 means every property held over the full state space; the
//! explored-state counts are printed per configuration.

use prodpred_analysis::ckpt::{check_ckpt, CkptConfig, CkptReport, MAX_KILLS};
use prodpred_analysis::model::{check, ModelConfig, Report};
use prodpred_simgrid::faults::WorkerDeath;
use std::process::ExitCode;

struct Options {
    ranks: usize,
    halves: usize,
    kill: Option<WorkerDeath>,
    timeouts_only: bool,
    ckpt_only: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        ranks: 2,
        halves: 2,
        kill: None,
        timeouts_only: false,
        ckpt_only: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ranks" => {
                opts.ranks = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--ranks needs an integer")?;
            }
            "--halves" => {
                opts.halves = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--halves needs an integer")?;
            }
            "--kill" => {
                let spec = args.next().ok_or("--kill needs RANK:HALF")?;
                let (r, h) = spec.split_once(':').ok_or("--kill needs RANK:HALF")?;
                opts.kill = Some(WorkerDeath {
                    rank: r.parse().map_err(|_| "bad kill rank")?,
                    at_half_iteration: h.parse().map_err(|_| "bad kill half")?,
                });
            }
            "--timeouts" => opts.timeouts_only = true,
            "--ckpt" => opts.ckpt_only = true,
            "--help" | "-h" => {
                return Err(
                    "usage: modelcheck [--ranks N] [--halves M] [--kill R:H] [--timeouts] [--ckpt]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn describe(report: &Report) -> String {
    let c = report.config;
    let fault = match c.kill {
        Some(d) => format!("kill {}:{}", d.rank, d.at_half_iteration),
        None => "healthy".to_string(),
    };
    let mode = if c.timeouts { "timeouts" } else { "patient" };
    format!(
        "{} ranks x {} half-iterations, {fault}, {mode}: {} states, {} transitions, {} terminals ({} all-done, {} observed-death), depth {}",
        c.ranks,
        c.halves,
        report.states,
        report.transitions,
        report.terminals,
        report.all_done_terminals,
        report.lost_observed_terminals,
        report.max_depth
    )
}

fn run_one(config: ModelConfig, failures: &mut u32) -> Report {
    let report = check(config);
    if report.holds() {
        println!("ok    {}", describe(&report));
    } else {
        *failures += 1;
        println!("FAIL  {}", describe(&report));
        if let Some(v) = &report.violation {
            println!("      violation: {}", v.kind);
            for (i, step) in v.trace.iter().enumerate() {
                println!("      {i:>3}. {step}");
            }
        }
    }
    report
}

fn describe_ckpt(report: &CkptReport) -> String {
    let c = report.config;
    let kills: Vec<String> = c
        .kills
        .iter()
        .flatten()
        .map(|d| format!("{}:{}", d.rank, d.at_half_iteration))
        .collect();
    let kills = if kills.is_empty() {
        "healthy".to_string()
    } else {
        format!("kills [{}]", kills.join(", "))
    };
    format!(
        "ckpt {} ranks x {} iterations every {}, {kills}, retries {}: {} states, {} transitions, {} terminals ({} completed, {} abandoned, expect {:?}/{} fired), depth {}",
        c.ranks,
        c.iterations,
        c.every,
        c.max_retries,
        report.states,
        report.transitions,
        report.terminals,
        report.completed_terminals,
        report.abandoned_terminals,
        report.expected,
        report.expected_fired,
        report.max_depth
    )
}

fn run_one_ckpt(config: CkptConfig, failures: &mut u32) -> CkptReport {
    let report = check_ckpt(config);
    if report.holds() {
        println!("ok    {}", describe_ckpt(&report));
    } else {
        *failures += 1;
        println!("FAIL  {}", describe_ckpt(&report));
        if let Some(v) = &report.violation {
            println!("      violation: {}", v.kind);
            for (i, step) in v.trace.iter().enumerate() {
                println!("      {i:>3}. {step}");
            }
        }
    }
    report
}

/// The checkpoint/resume recovery suite: every single-kill position on
/// a segmented run, the consumed-kill translation, disabled
/// checkpointing, and budget exhaustion. `ranks` and `iterations` are
/// clamped to the ckpt model's fixed-size bounds.
fn ckpt_suite(ranks: usize, iterations: usize, failures: &mut u32) -> u64 {
    use prodpred_analysis::ckpt::{MAX_ITERATIONS, MAX_RANKS};
    let ranks = ranks.clamp(2, MAX_RANKS);
    let iterations = iterations.clamp(2, MAX_ITERATIONS);
    let every = (iterations / 2).max(1);
    let base = CkptConfig {
        ranks,
        iterations,
        every,
        kills: [None; MAX_KILLS],
        max_retries: 3,
    };
    let mut total_states = 0u64;
    // Healthy segmented run.
    total_states += run_one_ckpt(base, failures).states;
    // Every single-kill position: each must recover and converge.
    for rank in 0..ranks {
        for half in 0..2 * iterations {
            let mut config = base;
            config.kills[0] = Some(WorkerDeath {
                rank,
                at_half_iteration: half,
            });
            total_states += run_one_ckpt(config, failures).states;
        }
    }
    // A kill consumed behind the checkpoint: fire late, schedule the
    // next attempt's kill before the resume point — it must never fire.
    let mut consumed = base;
    consumed.kills[0] = Some(WorkerDeath {
        rank: 0,
        at_half_iteration: 2 * (iterations - 1),
    });
    consumed.kills[1] = Some(WorkerDeath {
        rank: ranks - 1,
        at_half_iteration: 0,
    });
    total_states += run_one_ckpt(consumed, failures).states;
    // Checkpointing disabled: recovery recomputes from iteration 0.
    let mut disabled = base;
    disabled.every = 0;
    disabled.kills[0] = Some(WorkerDeath {
        rank: 0,
        at_half_iteration: 2 * iterations - 1,
    });
    total_states += run_one_ckpt(disabled, failures).states;
    // Budget exhaustion: more firing kills than retries.
    let mut exhausted = base;
    exhausted.max_retries = 1;
    exhausted.kills[0] = Some(WorkerDeath {
        rank: 0,
        at_half_iteration: 1,
    });
    exhausted.kills[1] = Some(WorkerDeath {
        rank: ranks - 1,
        at_half_iteration: 2,
    });
    total_states += run_one_ckpt(exhausted, failures).states;
    total_states
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("modelcheck: {msg}");
            return ExitCode::from(2);
        }
    };
    let base = ModelConfig {
        ranks: opts.ranks,
        halves: opts.halves,
        kill: None,
        timeouts: false,
    };
    let mut failures = 0u32;
    let mut total_states = 0u64;

    if opts.ckpt_only {
        total_states += ckpt_suite(opts.ranks, opts.halves, &mut failures);
        println!(
            "modelcheck: {total_states} states explored across the ckpt suite; {failures} failure(s)"
        );
        return if failures == 0 {
            println!(
                "modelcheck: checkpoint/resume convergence and consumed-death properties hold"
            );
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if let Some(kill) = opts.kill {
        let report = run_one(
            ModelConfig {
                kill: Some(kill),
                timeouts: opts.timeouts_only,
                ..base
            },
            &mut failures,
        );
        total_states += report.states;
    } else if opts.timeouts_only {
        let report = run_one(
            ModelConfig {
                timeouts: true,
                ..base
            },
            &mut failures,
        );
        total_states += report.states;
    } else {
        // The full suite.
        total_states += run_one(base, &mut failures).states;
        total_states += run_one(
            ModelConfig {
                timeouts: true,
                ..base
            },
            &mut failures,
        )
        .states;
        for timeouts in [false, true] {
            for rank in 0..opts.ranks {
                for half in 0..opts.halves {
                    let report = run_one(
                        ModelConfig {
                            kill: Some(WorkerDeath {
                                rank,
                                at_half_iteration: half,
                            }),
                            timeouts,
                            ..base
                        },
                        &mut failures,
                    );
                    total_states += report.states;
                    // Only patient runs guarantee the kill fires in every
                    // schedule; with timeouts the run may collapse first.
                    if !timeouts
                        && report.terminals != report.lost_observed_terminals
                        && report.holds()
                    {
                        failures += 1;
                        println!(
                            "FAIL  kill {rank}:{half}: {} of {} terminal schedules missed the typed WorkerDied path",
                            report.terminals - report.lost_observed_terminals,
                            report.terminals
                        );
                    }
                }
            }
        }
        // The recovery layer above the solves: checkpoint barriers,
        // rollback, and the absolute kill addressing.
        total_states += ckpt_suite(opts.ranks, opts.halves, &mut failures);
    }

    println!("modelcheck: {total_states} states explored across the suite; {failures} failure(s)");
    if failures == 0 {
        println!(
            "modelcheck: deadlock-freedom, delivery, typed-death, and checkpoint/resume properties hold"
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
