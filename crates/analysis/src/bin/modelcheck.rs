//! `modelcheck` — exhaustive exploration of the SOR ghost-exchange
//! protocol (see `prodpred_analysis::model`), the checkpoint/resume
//! recovery protocol (`prodpred_analysis::ckpt`), and the lock-free
//! serving path (`prodpred_analysis::svc`).
//!
//! ```text
//! modelcheck                         full suite at 2 ranks x 2 half-iterations
//! modelcheck --ranks 3 --halves 4    bigger configuration
//! modelcheck --kill R:H              one seeded kill variant only
//! modelcheck --timeouts              healthy run with timeout transitions only
//! modelcheck --ckpt                  checkpoint/resume recovery suite only
//! modelcheck --svc                   serving-path (EpochSwap/EpochCache/Admission) suite
//! modelcheck --svc --readers 3       bigger serving-path configuration
//! modelcheck --expect-states N       fail unless the suite explored exactly N states
//! ```
//!
//! The default suite runs, for the chosen configuration:
//!
//! 1. the healthy patient protocol (proves deadlock freedom + delivery),
//! 2. the healthy protocol with `ExchangePolicy` timeout transitions,
//! 3. every kill schedule `rank x half` (proves the typed `WorkerDied`
//!    path is reached in **every** interleaving of every schedule),
//! 4. every kill schedule with timeouts enabled as well,
//! 5. the checkpoint/resume recovery suite (`prodpred_analysis::ckpt`):
//!    every single-kill position against the segment grid, a
//!    consumed-kill-behind-the-checkpoint schedule, disabled
//!    checkpointing, and budget exhaustion — proving rollback
//!    convergence and that a consumed death never re-fires.
//!
//! The `--svc` suite explores the serving-path model at the chosen
//! `--readers`/`--shards`/`--epochs` bounds (correct protocol, correct
//! protocol under admission pressure, and a ring-lapping horizon), then
//! runs the negative controls: model variants that drop the shard-lock
//! epoch compare, the Release fence, the fetch_max, or the inflight
//! rollback must each produce a violation, printed with its minimal
//! (BFS) counterexample trace.
//!
//! Exit code 0 means every property held over the full state space; the
//! explored-state counts are printed per configuration. `--expect-states`
//! turns silent model drift into a CI failure: the state count of a
//! deterministic exploration changes only when the model changes.

use prodpred_analysis::ckpt::{check_ckpt, CkptConfig, CkptReport, MAX_KILLS};
use prodpred_analysis::model::{check, ModelConfig, Report};
use prodpred_analysis::svc::{self, SvcConfig, SvcReport, Variant};
use prodpred_simgrid::faults::WorkerDeath;
use std::process::ExitCode;

struct Options {
    ranks: usize,
    halves: usize,
    kill: Option<WorkerDeath>,
    timeouts_only: bool,
    ckpt_only: bool,
    svc_only: bool,
    readers: usize,
    shards: usize,
    epochs: usize,
    expect_states: Option<u64>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        ranks: 2,
        halves: 2,
        kill: None,
        timeouts_only: false,
        ckpt_only: false,
        svc_only: false,
        readers: 2,
        shards: 2,
        epochs: 2,
        expect_states: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ranks" => {
                opts.ranks = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--ranks needs an integer")?;
            }
            "--halves" => {
                opts.halves = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--halves needs an integer")?;
            }
            "--kill" => {
                let spec = args.next().ok_or("--kill needs RANK:HALF")?;
                let (r, h) = spec.split_once(':').ok_or("--kill needs RANK:HALF")?;
                opts.kill = Some(WorkerDeath {
                    rank: r.parse().map_err(|_| "bad kill rank")?,
                    at_half_iteration: h.parse().map_err(|_| "bad kill half")?,
                });
            }
            "--timeouts" => opts.timeouts_only = true,
            "--ckpt" => opts.ckpt_only = true,
            "--svc" => opts.svc_only = true,
            "--readers" => {
                opts.readers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--readers needs an integer")?;
            }
            "--shards" => {
                opts.shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--shards needs an integer")?;
            }
            "--epochs" => {
                opts.epochs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--epochs needs an integer")?;
            }
            "--expect-states" => {
                opts.expect_states = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--expect-states needs an integer")?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: modelcheck [--ranks N] [--halves M] [--kill R:H] [--timeouts] [--ckpt] \
                     [--svc] [--readers N] [--shards N] [--epochs N] [--expect-states N]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn describe(report: &Report) -> String {
    let c = report.config;
    let fault = match c.kill {
        Some(d) => format!("kill {}:{}", d.rank, d.at_half_iteration),
        None => "healthy".to_string(),
    };
    let mode = if c.timeouts { "timeouts" } else { "patient" };
    format!(
        "{} ranks x {} half-iterations, {fault}, {mode}: {} states, {} transitions, {} terminals ({} all-done, {} observed-death), depth {}",
        c.ranks,
        c.halves,
        report.stats.states,
        report.stats.transitions,
        report.stats.terminals,
        report.all_done_terminals,
        report.lost_observed_terminals,
        report.stats.max_depth
    )
}

fn run_one(config: ModelConfig, failures: &mut u32) -> Report {
    let report = check(config);
    if report.holds() {
        println!("ok    {}", describe(&report));
    } else {
        *failures += 1;
        println!("FAIL  {}", describe(&report));
        if let Some(v) = &report.stats.violation {
            println!("      violation: {}", v.kind);
            for (i, step) in v.trace.iter().enumerate() {
                println!("      {i:>3}. {step}");
            }
        }
    }
    report
}

fn describe_ckpt(report: &CkptReport) -> String {
    let c = report.config;
    let kills: Vec<String> = c
        .kills
        .iter()
        .flatten()
        .map(|d| format!("{}:{}", d.rank, d.at_half_iteration))
        .collect();
    let kills = if kills.is_empty() {
        "healthy".to_string()
    } else {
        format!("kills [{}]", kills.join(", "))
    };
    format!(
        "ckpt {} ranks x {} iterations every {}, {kills}, retries {}: {} states, {} transitions, {} terminals ({} completed, {} abandoned, expect {:?}/{} fired), depth {}",
        c.ranks,
        c.iterations,
        c.every,
        c.max_retries,
        report.stats.states,
        report.stats.transitions,
        report.stats.terminals,
        report.completed_terminals,
        report.abandoned_terminals,
        report.expected,
        report.expected_fired,
        report.stats.max_depth
    )
}

fn run_one_ckpt(config: CkptConfig, failures: &mut u32) -> CkptReport {
    let report = check_ckpt(config);
    if report.holds() {
        println!("ok    {}", describe_ckpt(&report));
    } else {
        *failures += 1;
        println!("FAIL  {}", describe_ckpt(&report));
        if let Some(v) = &report.stats.violation {
            println!("      violation: {}", v.kind);
            for (i, step) in v.trace.iter().enumerate() {
                println!("      {i:>3}. {step}");
            }
        }
    }
    report
}

/// The checkpoint/resume recovery suite: every single-kill position on
/// a segmented run, the consumed-kill translation, disabled
/// checkpointing, and budget exhaustion. `ranks` and `iterations` are
/// clamped to the ckpt model's fixed-size bounds.
fn ckpt_suite(ranks: usize, iterations: usize, failures: &mut u32) -> u64 {
    use prodpred_analysis::ckpt::{MAX_ITERATIONS, MAX_RANKS};
    let ranks = ranks.clamp(2, MAX_RANKS);
    let iterations = iterations.clamp(2, MAX_ITERATIONS);
    let every = (iterations / 2).max(1);
    let base = CkptConfig {
        ranks,
        iterations,
        every,
        kills: [None; MAX_KILLS],
        max_retries: 3,
    };
    let mut total_states = 0u64;
    // Healthy segmented run.
    total_states += run_one_ckpt(base, failures).stats.states;
    // Every single-kill position: each must recover and converge.
    for rank in 0..ranks {
        for half in 0..2 * iterations {
            let mut config = base;
            config.kills[0] = Some(WorkerDeath {
                rank,
                at_half_iteration: half,
            });
            total_states += run_one_ckpt(config, failures).stats.states;
        }
    }
    // A kill consumed behind the checkpoint: fire late, schedule the
    // next attempt's kill before the resume point — it must never fire.
    let mut consumed = base;
    consumed.kills[0] = Some(WorkerDeath {
        rank: 0,
        at_half_iteration: 2 * (iterations - 1),
    });
    consumed.kills[1] = Some(WorkerDeath {
        rank: ranks - 1,
        at_half_iteration: 0,
    });
    total_states += run_one_ckpt(consumed, failures).stats.states;
    // Checkpointing disabled: recovery recomputes from iteration 0.
    let mut disabled = base;
    disabled.every = 0;
    disabled.kills[0] = Some(WorkerDeath {
        rank: 0,
        at_half_iteration: 2 * iterations - 1,
    });
    total_states += run_one_ckpt(disabled, failures).stats.states;
    // Budget exhaustion: more firing kills than retries.
    let mut exhausted = base;
    exhausted.max_retries = 1;
    exhausted.kills[0] = Some(WorkerDeath {
        rank: 0,
        at_half_iteration: 1,
    });
    exhausted.kills[1] = Some(WorkerDeath {
        rank: ranks - 1,
        at_half_iteration: 2,
    });
    total_states += run_one_ckpt(exhausted, failures).stats.states;
    total_states
}

fn describe_svc(report: &SvcReport) -> String {
    let c = report.config;
    let admission = if c.tokens == svc::UNBOUNDED && c.max_inflight == svc::UNBOUNDED {
        "unbounded admission".to_string()
    } else {
        format!("{} token(s), inflight cap {}", c.tokens, c.max_inflight)
    };
    format!(
        "svc {} readers x {} shards x {} epochs, {admission}: {} states, {} transitions, {} terminals, depth {}",
        c.readers,
        c.shards,
        c.epochs,
        report.stats.states,
        report.stats.transitions,
        report.stats.terminals,
        report.stats.max_depth
    )
}

fn run_one_svc(config: SvcConfig, failures: &mut u32) -> u64 {
    let report = svc::check(config);
    if report.holds() {
        println!("ok    {}", describe_svc(&report));
    } else {
        *failures += 1;
        println!("FAIL  {}", describe_svc(&report));
        if let Some(v) = &report.stats.violation {
            println!("      violation: {}", v.kind);
            for (i, step) in v.trace.iter().enumerate() {
                println!("      {i:>3}. {step}");
            }
        }
    }
    report.stats.states
}

/// A negative control: the seeded model bug must be *found* — the run
/// succeeds only when the exploration reports a violation of one of the
/// expected kinds, and the minimal (BFS) counterexample is printed so
/// the trace stays human-checkable.
fn run_negative(config: SvcConfig, expected: &[&str], failures: &mut u32) -> u64 {
    let report = svc::check(config);
    let states = report.stats.states;
    match svc::minimal_counterexample(config) {
        Some(v) if !report.holds() && expected.iter().any(|p| v.kind.starts_with(p)) => {
            println!(
                "ok    negative control {:?}: refuted by `{}` in {} step(s) ({} states)",
                config.variant,
                v.kind,
                v.trace.len(),
                states
            );
            for (i, step) in v.trace.iter().enumerate() {
                println!("      {i:>3}. {step}");
            }
        }
        Some(v) => {
            *failures += 1;
            println!(
                "FAIL  negative control {:?}: expected one of {expected:?}, found `{}`",
                config.variant, v.kind
            );
        }
        None => {
            *failures += 1;
            println!(
                "FAIL  negative control {:?}: expected one of {expected:?}, no violation found",
                config.variant
            );
        }
    }
    states
}

/// The serving-path suite: the correct protocol at the requested bounds
/// (plain, under admission pressure, and at a ring-lapping horizon),
/// then every negative control at fixed small bounds so the minimal
/// traces stay short enough to read.
fn svc_suite(readers: usize, shards: usize, epochs: usize, failures: &mut u32) -> u64 {
    let mut total = 0u64;
    total += run_one_svc(SvcConfig::new(readers, shards, epochs), failures);
    total += run_one_svc(
        SvcConfig::new(readers, shards, epochs).with_admission(1, 1),
        failures,
    );
    // 3 epochs on the 2-slot ring: epoch 3 reclaims epoch 1's slot.
    total += run_one_svc(SvcConfig::new(readers, 1, svc::MAX_EPOCHS), failures);
    // Negative controls. NoShardEpochCheck can surface either as the
    // TOCTOU hit itself or as the stale entry it leaves behind.
    total += run_negative(
        SvcConfig::new(2, 2, 2).with_variant(Variant::NoShardEpochCheck),
        &["cross-epoch-hit", "stale-entry"],
        failures,
    );
    total += run_negative(
        SvcConfig::new(2, 2, 2).with_variant(Variant::NoReleaseFence),
        &["torn-read"],
        failures,
    );
    total += run_negative(
        SvcConfig::new(1, 1, 2).with_variant(Variant::NoFetchMax),
        &["epoch-regression"],
        failures,
    );
    total += run_negative(
        SvcConfig::new(2, 1, 1)
            .with_admission(svc::UNBOUNDED, 1)
            .with_variant(Variant::NoInflightRollback),
        &["permit-leak"],
        failures,
    );
    total
}

/// Applies the `--expect-states` drift gate to a finished suite.
fn gate_states(expect: Option<u64>, total: u64, failures: &mut u32) {
    if let Some(expected) = expect {
        if total != expected {
            *failures += 1;
            println!(
                "FAIL  state-count drift: explored {total} states, expected exactly {expected} — the model changed"
            );
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("modelcheck: {msg}");
            return ExitCode::from(2);
        }
    };
    let base = ModelConfig {
        ranks: opts.ranks,
        halves: opts.halves,
        kill: None,
        timeouts: false,
    };
    let mut failures = 0u32;
    let mut total_states = 0u64;

    if opts.svc_only {
        total_states += svc_suite(opts.readers, opts.shards, opts.epochs, &mut failures);
        gate_states(opts.expect_states, total_states, &mut failures);
        println!(
            "modelcheck: {total_states} states explored across the svc suite; {failures} failure(s)"
        );
        return if failures == 0 {
            println!(
                "modelcheck: serving-path snapshot, cache-epoch, and admission properties hold"
            );
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if opts.ckpt_only {
        total_states += ckpt_suite(opts.ranks, opts.halves, &mut failures);
        gate_states(opts.expect_states, total_states, &mut failures);
        println!(
            "modelcheck: {total_states} states explored across the ckpt suite; {failures} failure(s)"
        );
        return if failures == 0 {
            println!(
                "modelcheck: checkpoint/resume convergence and consumed-death properties hold"
            );
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if let Some(kill) = opts.kill {
        let report = run_one(
            ModelConfig {
                kill: Some(kill),
                timeouts: opts.timeouts_only,
                ..base
            },
            &mut failures,
        );
        total_states += report.stats.states;
    } else if opts.timeouts_only {
        let report = run_one(
            ModelConfig {
                timeouts: true,
                ..base
            },
            &mut failures,
        );
        total_states += report.stats.states;
    } else {
        // The full suite.
        total_states += run_one(base, &mut failures).stats.states;
        total_states += run_one(
            ModelConfig {
                timeouts: true,
                ..base
            },
            &mut failures,
        )
        .stats
        .states;
        for timeouts in [false, true] {
            for rank in 0..opts.ranks {
                for half in 0..opts.halves {
                    let report = run_one(
                        ModelConfig {
                            kill: Some(WorkerDeath {
                                rank,
                                at_half_iteration: half,
                            }),
                            timeouts,
                            ..base
                        },
                        &mut failures,
                    );
                    total_states += report.stats.states;
                    // Only patient runs guarantee the kill fires in every
                    // schedule; with timeouts the run may collapse first.
                    if !timeouts
                        && report.stats.terminals != report.lost_observed_terminals
                        && report.holds()
                    {
                        failures += 1;
                        println!(
                            "FAIL  kill {rank}:{half}: {} of {} terminal schedules missed the typed WorkerDied path",
                            report.stats.terminals - report.lost_observed_terminals,
                            report.stats.terminals
                        );
                    }
                }
            }
        }
        // The recovery layer above the solves: checkpoint barriers,
        // rollback, and the absolute kill addressing.
        total_states += ckpt_suite(opts.ranks, opts.halves, &mut failures);
    }

    gate_states(opts.expect_states, total_states, &mut failures);
    println!("modelcheck: {total_states} states explored across the suite; {failures} failure(s)");
    if failures == 0 {
        println!(
            "modelcheck: deadlock-freedom, delivery, typed-death, and checkpoint/resume properties hold"
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
