//! `tidy` — the prodpred repo lint driver.
//!
//! ```text
//! tidy                  list unbaselined findings (human format)
//! tidy --check          CI mode: exit 1 on any ratchet violation
//! tidy --json           machine-readable findings + ratchet verdict
//! tidy --write-baseline rewrite tidy-baseline.json from current findings
//! tidy --root PATH      lint a different workspace root
//! tidy --baseline PATH  use a different baseline file
//! ```
//!
//! Output is byte-identical across repeated runs on an unchanged tree:
//! the walk is sorted, the diagnostics are sorted, and the baseline
//! serialization is canonical.

use prodpred_analysis::baseline::{json_string, Baseline, RatchetIssue};
use prodpred_analysis::lints::{lint_source, Finding, CODES};
use prodpred_analysis::walk::{default_root, workspace_files};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    check: bool,
    json: bool,
    write_baseline: bool,
    root: PathBuf,
    baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        check: false,
        json: false,
        write_baseline: false,
        root: default_root(),
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--json" => opts.json = true,
            "--write-baseline" => opts.write_baseline = true,
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a path argument")?);
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a path argument")?,
                ));
            }
            "--help" | "-h" => {
                return Err("usage: tidy [--check] [--json] [--write-baseline] [--root PATH] [--baseline PATH]".to_string());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("tidy-baseline.json"));

    let files = workspace_files(&opts.root)?;
    let mut findings: Vec<Finding> = Vec::new();
    for rel in &files {
        let path = opts.root.join(rel);
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        findings.extend(lint_source(rel, &src));
    }
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.code).cmp(&(&b.file, b.line, b.col, b.code)));
    let current = Baseline::from_findings(&findings);

    if opts.write_baseline {
        std::fs::write(&baseline_path, current.to_json())
            .map_err(|e| format!("write {}: {e}", baseline_path.display()))?;
        println!(
            "tidy: wrote {} ({} findings across {} files)",
            baseline_path.display(),
            current.total(),
            current.counts.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let committed = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("read {}: {e}", baseline_path.display())),
    };
    let issues = committed.ratchet(&current);
    let regressions: Vec<&RatchetIssue> = issues
        .iter()
        .filter(|i| matches!(i, RatchetIssue::Regression { .. }))
        .collect();

    if opts.json {
        print_json(&findings, &issues);
    } else {
        print_human(&findings, &committed, &issues);
    }

    if opts.check && !issues.is_empty() {
        return Ok(ExitCode::FAILURE);
    }
    // Even outside --check, regressions are worth a failing exit so ad
    // hoc runs notice them.
    if !regressions.is_empty() {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// Findings that exceed the baseline for their (file, code) bucket —
/// the ones a regression message should point at. When a bucket has
/// more findings than baseline slots, the *later* lines are reported
/// (earlier ones are assumed grandfathered).
fn over_baseline<'a>(findings: &'a [Finding], baseline: &Baseline) -> Vec<&'a Finding> {
    use std::collections::BTreeMap;
    let mut seen: BTreeMap<(&str, &str), u64> = BTreeMap::new();
    let mut over = Vec::new();
    for f in findings {
        let slot = seen.entry((f.file.as_str(), f.code)).or_insert(0);
        *slot += 1;
        let allowed = baseline
            .counts
            .get(&f.file)
            .and_then(|m| m.get(f.code))
            .copied()
            .unwrap_or(0);
        if *slot > allowed {
            over.push(f);
        }
    }
    over
}

fn print_human(findings: &[Finding], committed: &Baseline, issues: &[RatchetIssue]) {
    for f in over_baseline(findings, committed) {
        println!("{}", f.render());
    }
    for issue in issues {
        println!("{}", issue.render());
    }
    let current = Baseline::from_findings(findings);
    println!(
        "tidy: {} findings total, {} baselined, {} ratchet issue(s)",
        current.total(),
        committed.total(),
        issues.len()
    );
    if issues.is_empty() {
        println!("tidy: clean against the baseline");
    }
}

fn print_json(findings: &[Finding], issues: &[RatchetIssue]) {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"code\": {}, \"message\": {}}}",
            json_string(&f.file),
            f.line,
            f.col,
            json_string(f.code),
            json_string(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"ratchet\": [");
    for (i, issue) in issues.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}", json_string(&issue.render())));
    }
    if !issues.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"counts\": {");
    // Every stable code appears (zero included), in CODES order, so CI
    // consumers get a fixed-shape object to diff across runs.
    for (i, code) in CODES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let n = findings.iter().filter(|f| f.code == *code).count();
        out.push_str(&format!("\n    {}: {n}", json_string(code)));
    }
    out.push_str("\n  },\n");
    out.push_str(&format!("  \"total\": {},\n", findings.len()));
    out.push_str(&format!("  \"clean\": {}\n}}", issues.is_empty()));
    println!("{out}");
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("tidy: {msg}");
            ExitCode::from(2)
        }
    }
}
