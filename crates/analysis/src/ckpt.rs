//! Bounded, exhaustive model checking of the checkpoint/resume
//! recovery protocol.
//!
//! [`model`](crate::model) proves the *intra-solve* story: within one
//! parallel solve, an injected death surfaces as a typed `WorkerDied`
//! in every interleaving. This module proves the *inter-solve* story
//! layered on top of it by `prodpred_sor::checkpoint` and the
//! supervisor: segments bounded by checkpoint barriers, a grid
//! snapshot at every completed boundary short of the end, and on death
//! a rollback to the latest snapshot with the kill schedule addressed
//! in **absolute** half-iterations (`kill_in_segment`'s
//! `checked_sub(2 * start_iteration)` translation).
//!
//! The model drives one abstract worker per rank through global
//! half-iteration positions. Workers advance independently inside a
//! segment (every interleaving of those advances is explored), stop at
//! the segment boundary, and a single atomic barrier step — the
//! driver thread between solves — records the checkpoint and releases
//! the next segment. A scheduled kill fires exactly when its rank is
//! about to execute its absolute half-iteration; survivors observe the
//! death in any order (the cascade the intra-solve checker already
//! proved), and a restart transition rolls every rank back to the
//! checkpoint, consuming the kill. Attempt `k` of the run faces kill
//! `k` of the schedule, mirroring the chaos campaign.
//!
//! Exhaustive exploration then proves, for every interleaving of every
//! configuration checked:
//!
//! * **deadlock freedom** — no reachable state strands a live worker
//!   with no enabled transition;
//! * **a consumed death never re-fires** — a kill whose absolute
//!   half-iteration precedes `2 * resume` can never match a worker
//!   position again (worker positions start at `2 * resume` and only
//!   grow), and the checker verifies the schedule-independent fire
//!   count exactly;
//! * **killed-then-resumed converges** — every terminal state agrees
//!   with the straight-line (interleaving-free) expectation: either
//!   all workers `Done` at full delivery — the exact state of an
//!   unfaulted run — or, with the retry budget exhausted, all
//!   `Abandoned`. No interleaving changes the outcome.

use crate::mc::{self, ExploreStats, TransitionSystem};
use prodpred_simgrid::faults::WorkerDeath;

/// Upper bound on ranks the fixed-size state encoding supports.
pub const MAX_RANKS: usize = 4;
/// Upper bound on scheduled kills (one per retry attempt).
pub const MAX_KILLS: usize = 3;
/// Upper bound on iterations (positions are half-iterations in a u8).
pub const MAX_ITERATIONS: usize = 8;

/// One checker configuration: topology, horizon, checkpoint cadence,
/// kill schedule, and retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CkptConfig {
    /// Number of workers (2..=4).
    pub ranks: usize,
    /// Iterations of the whole solve (1..=8).
    pub iterations: usize,
    /// Checkpoint cadence in iterations; 0 disables checkpointing
    /// (every retry recomputes from iteration 0).
    pub every: usize,
    /// Kill schedule in **absolute** half-iterations: attempt `k`
    /// faces `kills[k]`. `None` entries (and the tail past the first
    /// `None`) leave the attempt unfaulted.
    pub kills: [Option<WorkerDeath>; MAX_KILLS],
    /// Retries allowed beyond the first attempt; a kill firing on
    /// attempt `max_retries` abandons the run.
    pub max_retries: u32,
}

/// How the model checker expects (and requires) a run to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every worker delivers all iterations — the unfaulted state.
    Completed,
    /// The retry budget was exhausted by firing kills.
    Abandoned,
}

/// Per-worker status in the recovery protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum St {
    /// Advancing through the current segment.
    Running,
    /// Waiting at a segment boundary for the checkpoint barrier.
    AtBarrier,
    /// Its scheduled kill fired.
    Dead,
    /// Observed a peer's death (the typed `WorkerDied` path).
    Aborted,
    /// Delivered every half-iteration.
    Done,
    /// Run abandoned with the retry budget exhausted.
    Abandoned,
}

/// Global model state: fully explicit, hashable, fixed-size.
#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    /// Current attempt (kill schedule index).
    attempt: u8,
    /// Iteration the current attempt started from.
    resume: u8,
    /// Latest recorded checkpoint iteration.
    checkpoint: u8,
    /// Kills that actually fired so far.
    fired: u8,
    /// Per-worker absolute half-iteration position.
    half: [u8; MAX_RANKS],
    status: [St; MAX_RANKS],
}

/// What one enabled transition does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// The worker executes its next half-iteration.
    Advance(usize),
    /// The worker's scheduled kill fires.
    Die(usize),
    /// The worker observes a dead peer and aborts the attempt.
    Observe(usize),
    /// All workers at the boundary: snapshot (or complete) atomically.
    Barrier,
    /// Death observed everywhere: roll back to the checkpoint (or
    /// abandon with the budget exhausted).
    Restart,
}

/// The result of one exhaustive exploration.
#[derive(Debug, Clone)]
pub struct CkptReport {
    /// Configuration explored.
    pub config: CkptConfig,
    /// Shared exploration accounting, including any
    /// [`Violation`](crate::mc::Violation).
    pub stats: ExploreStats,
    /// Terminals with every worker `Done` at full delivery.
    pub completed_terminals: u64,
    /// Terminals with the run abandoned.
    pub abandoned_terminals: u64,
    /// The straight-line expectation every terminal must match.
    pub expected: Outcome,
    /// Kills the straight-line expectation says must fire.
    pub expected_fired: u8,
}

impl CkptReport {
    /// True when the exploration finished without any violation.
    pub fn holds(&self) -> bool {
        self.stats.holds()
    }
}

struct Model {
    config: CkptConfig,
}

impl Model {
    /// True when `iter` ends a segment of the attempt started at
    /// `resume` — mirrors `run_segments`' boundary grid.
    fn is_boundary(&self, resume: usize, iter: usize) -> bool {
        iter == self.config.iterations
            || (iter > resume && (iter - resume).is_multiple_of(self.config.every))
    }

    /// The kill attempt `attempt` faces, if any.
    fn kill_for(&self, attempt: u8) -> Option<WorkerDeath> {
        self.config
            .kills
            .get(attempt as usize)
            .copied()
            .flatten()
            .filter(|d| d.rank < self.config.ranks)
    }
}

impl TransitionSystem for Model {
    type State = State;
    type Action = Step;

    fn initial(&self) -> State {
        State {
            attempt: 0,
            resume: 0,
            checkpoint: 0,
            fired: 0,
            half: [0; MAX_RANKS],
            status: [St::Running; MAX_RANKS],
        }
    }

    /// All transitions enabled in `state`, in deterministic order.
    fn enabled(&self, state: &State) -> Vec<Step> {
        let ranks = self.config.ranks;
        let any_dead = state.status[..ranks].contains(&St::Dead);
        let mut steps = Vec::new();
        for rank in 0..ranks {
            match state.status[rank] {
                St::Running => {
                    let fires = self.kill_for(state.attempt).is_some_and(|d| {
                        d.rank == rank && d.at_half_iteration == state.half[rank] as usize
                    });
                    if fires {
                        // The death preempts the half-iteration: dying
                        // is this worker's only step.
                        steps.push(Step::Die(rank));
                        continue;
                    }
                    if any_dead {
                        steps.push(Step::Observe(rank));
                    }
                    steps.push(Step::Advance(rank));
                }
                St::AtBarrier if any_dead => steps.push(Step::Observe(rank)),
                _ => {}
            }
        }
        // Barrier: the driver thread between segments. Atomic, and only
        // when every worker reached the boundary alive.
        if !any_dead && (0..ranks).all(|r| state.status[r] == St::AtBarrier) {
            steps.push(Step::Barrier);
        }
        // Restart: one worker dead, every survivor has aborted.
        if any_dead && (0..ranks).all(|r| matches!(state.status[r], St::Dead | St::Aborted)) {
            steps.push(Step::Restart);
        }
        steps
    }

    /// Applies `step`, returning the successor state, or a violation
    /// message when a safety property breaks inside the step.
    fn apply(&self, state: &State, step: Step) -> Result<State, String> {
        let ranks = self.config.ranks;
        let mut next = state.clone();
        match step {
            Step::Advance(rank) => {
                next.half[rank] += 1;
                let h = next.half[rank] as usize;
                if h.is_multiple_of(2) && self.is_boundary(next.resume as usize, h / 2) {
                    next.status[rank] = St::AtBarrier;
                }
            }
            Step::Die(rank) => {
                let Some(kill) = self.kill_for(next.attempt) else {
                    return Err(format!(
                        "model invariant: rank {rank} died with no kill scheduled"
                    ));
                };
                // The consumed-death property, checked rather than
                // assumed: a kill behind the resume point can never
                // match a worker position again.
                if kill.at_half_iteration < 2 * next.resume as usize {
                    return Err(format!(
                        "consumed death re-fired: kill at half {} behind resume iteration {}",
                        kill.at_half_iteration, next.resume
                    ));
                }
                if next.fired != next.attempt {
                    return Err(format!(
                        "kill {} fired twice (attempt {}, {} kills already fired)",
                        next.attempt, next.attempt, next.fired
                    ));
                }
                next.fired += 1;
                next.status[rank] = St::Dead;
            }
            Step::Observe(rank) => next.status[rank] = St::Aborted,
            Step::Barrier => {
                let boundary = next.half[0] as usize / 2;
                if next.half[..ranks]
                    .iter()
                    .any(|&h| h as usize != 2 * boundary)
                {
                    return Err(format!(
                        "barrier with workers at unequal boundaries: {:?}",
                        &next.half[..ranks]
                    ));
                }
                if boundary == self.config.iterations {
                    for r in 0..ranks {
                        next.status[r] = St::Done;
                    }
                } else {
                    // `run_segments` records a checkpoint at every
                    // completed boundary short of the end.
                    next.checkpoint = boundary as u8;
                    for r in 0..ranks {
                        next.status[r] = St::Running;
                    }
                }
            }
            Step::Restart => {
                if u32::from(next.attempt) >= self.config.max_retries {
                    for r in 0..ranks {
                        next.status[r] = St::Abandoned;
                    }
                } else {
                    next.attempt += 1;
                    next.resume = next.checkpoint;
                    for r in 0..ranks {
                        next.half[r] = 2 * next.resume;
                        next.status[r] = St::Running;
                    }
                }
            }
        }
        Ok(next)
    }

    fn describe(&self, state: &State, step: Step) -> String {
        match step {
            Step::Advance(r) => format!(
                "worker {r} attempt {}: half {} -> {}",
                state.attempt,
                state.half[r],
                state.half[r] + 1
            ),
            Step::Die(r) => format!(
                "worker {r} attempt {}: scheduled kill fires at half {}",
                state.attempt, state.half[r]
            ),
            Step::Observe(r) => format!("worker {r}: observes the death, aborts the attempt"),
            Step::Barrier => format!(
                "barrier at iteration {}: checkpoint or complete",
                state.half[0] / 2
            ),
            Step::Restart => format!(
                "restart after attempt {}: roll back to checkpoint {}",
                state.attempt, state.checkpoint
            ),
        }
    }
}

/// The interleaving-free expectation: replays the kill schedule against
/// the segment grid exactly as `run_segments` + the supervisor would,
/// with no concurrency. Every explored terminal must match it.
fn straight_line(config: &CkptConfig) -> (Outcome, u8) {
    let mut resume = 0usize;
    let mut checkpoint = 0usize;
    let mut fired = 0u8;
    for attempt in 0..=(MAX_KILLS as u32) {
        let kill = config
            .kills
            .get(attempt as usize)
            .copied()
            .flatten()
            .filter(|d| d.rank < config.ranks);
        let fires = kill.is_some_and(|d| {
            d.at_half_iteration >= 2 * resume && d.at_half_iteration < 2 * config.iterations
        });
        let Some(kill) = kill.filter(|_| fires) else {
            return (Outcome::Completed, fired);
        };
        fired += 1;
        if attempt >= config.max_retries {
            return (Outcome::Abandoned, fired);
        }
        let it = kill.at_half_iteration / 2;
        if let Some(behind) = (it - resume).checked_div(config.every) {
            checkpoint = resume + behind * config.every;
        }
        resume = checkpoint;
    }
    (Outcome::Completed, fired)
}

/// Exhaustively explores every interleaving of `config` and checks all
/// properties. Deterministic: identical configs produce identical
/// reports.
///
/// # Panics
///
/// Panics if `config.ranks` is outside `2..=MAX_RANKS`,
/// `config.iterations` is outside `1..=MAX_ITERATIONS`, or
/// `config.max_retries` exceeds [`MAX_KILLS`] — configuration errors,
/// not model failures.
pub fn check_ckpt(config: CkptConfig) -> CkptReport {
    assert!(
        (2..=MAX_RANKS).contains(&config.ranks),
        "ranks must be 2..={MAX_RANKS}"
    );
    assert!(
        (1..=MAX_ITERATIONS).contains(&config.iterations),
        "iterations must be 1..={MAX_ITERATIONS}"
    );
    assert!(
        config.max_retries as usize <= MAX_KILLS,
        "max_retries must be <= {MAX_KILLS} (the kill schedule bound)"
    );
    let model = Model { config };
    let (expected, expected_fired) = straight_line(&config);
    let mut completed_terminals = 0u64;
    let mut abandoned_terminals = 0u64;
    let stats = mc::explore(&model, &mc::Budget::default(), |state: &State| {
        if let Some(kind) = check_terminal(&model, state, expected, expected_fired) {
            return Err(kind);
        }
        if state.status[0] == St::Abandoned {
            abandoned_terminals += 1;
        } else {
            completed_terminals += 1;
        }
        Ok(())
    });
    CkptReport {
        config,
        stats,
        completed_terminals,
        abandoned_terminals,
        expected,
        expected_fired,
    }
}

/// Terminal-state checks: no deadlock, and every terminal matches the
/// straight-line expectation exactly.
fn check_terminal(
    model: &Model,
    state: &State,
    expected: Outcome,
    expected_fired: u8,
) -> Option<String> {
    let ranks = model.config.ranks;
    let statuses = &state.status[..ranks];
    let live = statuses
        .iter()
        .any(|s| matches!(s, St::Running | St::AtBarrier | St::Dead | St::Aborted));
    if live {
        return Some(format!(
            "deadlock: workers {statuses:?} quiescent without completing or abandoning"
        ));
    }
    let outcome = if statuses.iter().all(|s| *s == St::Done) {
        Outcome::Completed
    } else if statuses.iter().all(|s| *s == St::Abandoned) {
        Outcome::Abandoned
    } else {
        return Some(format!("terminal with mixed worker outcomes: {statuses:?}"));
    };
    if outcome != expected {
        return Some(format!(
            "outcome diverged from the straight-line run: this interleaving {outcome:?}, expected {expected:?}"
        ));
    }
    if state.fired != expected_fired {
        return Some(format!(
            "fire count diverged: this interleaving fired {} kills, the straight-line run fires {expected_fired}",
            state.fired
        ));
    }
    if outcome == Outcome::Completed {
        // Full delivery: the exact final position of an unfaulted run.
        let full = 2 * model.config.iterations as u8;
        if state.half[..ranks].iter().any(|&h| h != full) {
            return Some(format!(
                "completed terminal short of full delivery: halves {:?}, expected {full} everywhere",
                &state.half[..ranks]
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ranks: usize, iterations: usize, every: usize) -> CkptConfig {
        CkptConfig {
            ranks,
            iterations,
            every,
            kills: [None; MAX_KILLS],
            max_retries: 3,
        }
    }

    fn kill(rank: usize, at_half_iteration: usize) -> Option<WorkerDeath> {
        Some(WorkerDeath {
            rank,
            at_half_iteration,
        })
    }

    #[test]
    fn healthy_run_completes_in_every_interleaving() {
        let report = check_ckpt(cfg(3, 4, 2));
        assert!(report.holds(), "{:?}", report.stats.violation);
        assert_eq!(report.expected, Outcome::Completed);
        assert_eq!(report.stats.terminals, report.completed_terminals);
        assert!(report.stats.states > 10);
    }

    #[test]
    fn every_single_kill_position_recovers_everywhere() {
        let base = cfg(2, 3, 1);
        for rank in 0..2 {
            for half in 0..6 {
                let mut config = base;
                config.kills[0] = kill(rank, half);
                let report = check_ckpt(config);
                assert!(
                    report.holds(),
                    "kill {rank}@{half}: {:?}",
                    report.stats.violation
                );
                assert_eq!(
                    report.expected,
                    Outcome::Completed,
                    "kill {rank}@{half} must be recoverable within the budget"
                );
                assert_eq!(report.expected_fired, 1);
                assert_eq!(report.stats.terminals, report.completed_terminals);
            }
        }
    }

    #[test]
    fn a_consumed_death_behind_the_checkpoint_never_refires() {
        // Kill 0 fires at half 6 (iteration 3); the checkpoint grid at
        // cadence 2 has recorded iteration 2, so the retry resumes at
        // half 4. Kill 1 sits at half 2 — behind the resume point — and
        // must be consumed without firing in every interleaving.
        let mut config = cfg(3, 4, 2);
        config.kills[0] = kill(1, 6);
        config.kills[1] = kill(2, 2);
        let report = check_ckpt(config);
        assert!(report.holds(), "{:?}", report.stats.violation);
        assert_eq!(report.expected, Outcome::Completed);
        assert_eq!(
            report.expected_fired, 1,
            "the behind-resume kill must not count as a fire"
        );
        assert_eq!(report.stats.terminals, report.completed_terminals);
    }

    #[test]
    fn repeated_kills_exhaust_the_budget_into_abandonment() {
        let mut config = cfg(2, 2, 1);
        config.max_retries = 1;
        // Both attempts die at the same absolute position (the retry
        // resumes at checkpoint 1, half 2, so half 2 re-fires).
        config.kills[0] = kill(0, 2);
        config.kills[1] = kill(1, 2);
        let report = check_ckpt(config);
        assert!(report.holds(), "{:?}", report.stats.violation);
        assert_eq!(report.expected, Outcome::Abandoned);
        assert_eq!(report.expected_fired, 2);
        assert_eq!(report.stats.terminals, report.abandoned_terminals);
    }

    #[test]
    fn disabled_checkpointing_recomputes_from_scratch_and_recovers() {
        let mut config = cfg(2, 3, 0);
        config.kills[0] = kill(1, 5);
        let report = check_ckpt(config);
        assert!(report.holds(), "{:?}", report.stats.violation);
        assert_eq!(report.expected, Outcome::Completed);
        assert_eq!(report.stats.terminals, report.completed_terminals);
    }

    #[test]
    fn kill_past_the_horizon_never_fires() {
        let mut config = cfg(2, 2, 1);
        config.kills[0] = kill(0, 4); // == 2 * iterations: out of range
        let report = check_ckpt(config);
        assert!(report.holds(), "{:?}", report.stats.violation);
        assert_eq!(report.expected_fired, 0);
        assert_eq!(report.stats.terminals, report.completed_terminals);
    }

    #[test]
    fn exploration_is_deterministic() {
        let mut config = cfg(3, 4, 2);
        config.kills[0] = kill(0, 3);
        let a = check_ckpt(config);
        let b = check_ckpt(config);
        assert_eq!(a.stats.states, b.stats.states);
        assert_eq!(a.stats.transitions, b.stats.transitions);
        assert_eq!(a.stats.terminals, b.stats.terminals);
    }
}
