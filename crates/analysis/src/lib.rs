//! # prodpred-analysis
//!
//! Correctness tooling for the prodpred workspace — the subsystem that
//! turns the determinism and fault-recovery invariants of PRs 1–4 from
//! conventions into *checked* properties:
//!
//! * [`scan`] + [`lints`] + [`baseline`] — the `tidy` lint engine: a
//!   hand-rolled, token-aware Rust source scanner (std-only, works
//!   offline, no rustc plugin) implementing the repo-specific `PPnnn`
//!   lints with inline justified suppressions and a shrink-only
//!   baseline ratchet. Run it via `cargo run -p prodpred-analysis --bin
//!   tidy -- --check`.
//! * [`model`] — a bounded model checker that exhaustively enumerates
//!   every interleaving of the SOR ghost-exchange mailbox protocol for
//!   small configurations, proving deadlock freedom, exact message
//!   delivery, and typed worker-death surfacing under injected kills
//!   and `ExchangePolicy` timeouts. Run it via `cargo run -p
//!   prodpred-analysis --bin modelcheck`.
//! * [`ckpt`] — the same treatment for the checkpoint/resume recovery
//!   protocol layered above the solves: segment barriers, snapshots at
//!   boundaries, the absolute→segment kill translation, and rollback,
//!   proving that a consumed death never re-fires and that every
//!   interleaving of a killed-then-resumed run converges to the
//!   unfaulted delivery state (or a typed abandonment). Part of the
//!   default `modelcheck` suite.
//!
//! The two halves meet in the middle: the lints keep nondeterminism and
//! unchecked panics out of the sources, and the model checker proves
//! the one protocol whose correctness argument cannot be read off a
//! single thread's source. See DESIGN.md §9.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod baseline;
pub mod ckpt;
pub mod lints;
pub mod model;
pub mod scan;
pub mod walk;
