//! # prodpred-analysis
//!
//! Correctness tooling for the prodpred workspace — the subsystem that
//! turns the determinism and fault-recovery invariants of PRs 1–4 from
//! conventions into *checked* properties:
//!
//! * [`scan`] + [`lints`] + [`baseline`] — the `tidy` lint engine: a
//!   hand-rolled, token-aware Rust source scanner (std-only, works
//!   offline, no rustc plugin) implementing the repo-specific `PPnnn`
//!   lints with inline justified suppressions and a shrink-only
//!   baseline ratchet. Run it via `cargo run -p prodpred-analysis --bin
//!   tidy -- --check`.
//! * [`model`] — a bounded model checker that exhaustively enumerates
//!   every interleaving of the SOR ghost-exchange mailbox protocol for
//!   small configurations, proving deadlock freedom, exact message
//!   delivery, and typed worker-death surfacing under injected kills
//!   and `ExchangePolicy` timeouts. Run it via `cargo run -p
//!   prodpred-analysis --bin modelcheck`.
//! * [`ckpt`] — the same treatment for the checkpoint/resume recovery
//!   protocol layered above the solves: segment barriers, snapshots at
//!   boundaries, the absolute→segment kill translation, and rollback,
//!   proving that a consumed death never re-fires and that every
//!   interleaving of a killed-then-resumed run converges to the
//!   unfaulted delivery state (or a typed abandonment). Part of the
//!   default `modelcheck` suite.
//! * [`mc`] — the shared bounded explicit-state exploration kernel the
//!   checkers above are built on: generic transition systems, canonical
//!   state dedup with symmetry reduction, DFS with depth/state budgets,
//!   counterexample trace reconstruction, minimal (BFS) counterexamples
//!   for the negative-control suites, and schedule harvesting for
//!   conformance replay.
//! * [`svc`] — the serving-path proof: an abstract model of the
//!   `prodpred-service` atomics (the `EpochSwap` slot ring and
//!   Release/Acquire epoch word, reader snapshot loads, `EpochCache`
//!   shard probes/inserts, `bump_to`'s fetch_max-then-clear, and
//!   admission token grant/release), explored across every interleaving
//!   at small bounds, plus the conformance harness that replays
//!   explored schedules against the real implementation. Run it via
//!   `cargo run -p prodpred-analysis --bin modelcheck -- --svc`.
//!
//! The two halves meet in the middle: the lints keep nondeterminism and
//! unchecked panics out of the sources (PP010 fences atomics into the
//! audited modules the [`svc`] model abstracts), and the model checkers
//! prove the protocols whose correctness arguments cannot be read off a
//! single thread's source. See DESIGN.md §9 and §14.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod baseline;
pub mod ckpt;
pub mod lints;
pub mod mc;
pub mod model;
pub mod scan;
pub mod svc;
pub mod walk;
