//! The `prodpred-tidy` lint set: repo-specific, stable-coded checks that
//! enforce at the source level the invariants PRs 1–4 made load-bearing
//! at runtime (bit-identical resumes, pool-width-invariant digests,
//! poison-free locking, typed failures).
//!
//! | code  | meaning |
//! |-------|---------|
//! | PP000 | `tidy:allow` without a justification (or malformed) |
//! | PP001 | nondeterminism source (`Instant::now`, `thread_rng`, …) in a simulation/prediction path |
//! | PP002 | iteration over a `HashMap`/`HashSet`, whose order can leak into results |
//! | PP003 | `unwrap`/`expect` in non-test library code |
//! | PP004 | float hygiene: `partial_cmp` ordering, `==`/`!=` against a float literal |
//! | PP005 | raw `.lock().unwrap()` bypassing the poison-recovering helpers |
//! | PP006 | `pub fn … -> Result` without an `# Errors` doc section |
//! | PP007 | trace-sized buffer copy in a `simgrid`/`core` hot path |
//! | PP008 | `std::net` socket usage outside the service crate's shell |
//! | PP009 | wall-clock reads (`SystemTime::now`, `Instant::now`) in the service crate outside its shell |
//! | PP010 | atomics (`Atomic*`, memory orderings) outside the audited concurrency modules |
//!
//! Matching runs over *masked* source (see [`crate::scan`]): strings,
//! comments and doc examples can never trigger a lint. Findings are
//! suppressed by an inline `// tidy:allow(PPnnn): reason` on the same
//! line or on comment lines directly above; the reason text is
//! mandatory — an unjustified allow is itself a PP000 finding.

use crate::scan::{
    analyze_regions, find_word, has_word, is_ident_char, mask_source, MaskedLine, Regions,
};

/// One diagnostic produced by the lint engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (byte offset into the line).
    pub col: usize,
    /// Stable lint code (`PP000` … `PP010`).
    pub code: &'static str,
    /// Human-readable description, stable across runs.
    pub message: String,
}

impl Finding {
    /// Renders the canonical single-line human diagnostic.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.code, self.message
        )
    }
}

/// All stable lint codes, in order.
pub const CODES: [&str; 11] = [
    "PP000", "PP001", "PP002", "PP003", "PP004", "PP005", "PP006", "PP007", "PP008", "PP009",
    "PP010",
];

/// Nondeterminism sources flagged by PP001.
const PP001_SOURCES: [&str; 6] = [
    "SystemTime::now(",
    "Instant::now(",
    "thread_rng(",
    "from_entropy(",
    "rand::random(",
    "Local::now(",
];

/// Hash-container iteration methods flagged by PP002.
const PP002_ITERS: [&str; 7] = [
    ".iter()",
    ".keys()",
    ".values()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
];

/// Panic-on-`Err`/`None` methods flagged by PP003.
const PP003_PANICS: [&str; 4] = [".unwrap()", ".expect(", ".unwrap_err()", ".expect_err("];

/// Identifier-chain suffixes whose `.clone()`/`.to_vec()` copies an
/// entire trace-sized buffer — flagged by PP007 in `simgrid`/`core` hot
/// paths. The match requires the whole final path segment (or a
/// `_`-separated suffix of it), so `payload.clone()` does not trip the
/// `load` entry.
const PP007_BUFFERS: [&str; 6] = ["trace", "load", "avail", "values", "prefix", "columns"];

/// Socket tokens flagged by PP008 outside the service shell.
const PP008_NET: [&str; 4] = ["std::net", "TcpListener", "TcpStream", "UdpSocket"];

/// Wall-clock reads flagged by PP009 inside the service crate.
const PP009_CLOCKS: [&str; 2] = ["SystemTime::now(", "Instant::now("];

/// Memory-ordering tokens flagged by PP010. Only the five
/// `std::sync::atomic::Ordering` variants — a bare `Ordering::` pattern
/// would also catch the unrelated `std::cmp::Ordering`.
const PP010_ORDERINGS: [&str; 5] = [
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// Atomic cell types (and the module path itself) flagged by PP010.
const PP010_ATOMICS: [&str; 13] = [
    "std::sync::atomic",
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

/// Raw guard acquisitions flagged by PP005.
const PP005_LOCKS: [&str; 6] = [
    ".lock().unwrap()",
    ".lock().expect(",
    ".read().unwrap()",
    ".read().expect(",
    ".write().unwrap()",
    ".write().expect(",
];

/// What the file's path says about how strictly to lint it.
#[derive(Debug, Clone, Copy)]
struct PathScope {
    /// Integration tests, benches, examples: panicking and timing are fine.
    test_path: bool,
    /// Binary targets: CLI entry points may unwrap and measure wall time.
    bin: bool,
    /// The measurement crate: wall-clock timing is its whole point.
    bench_crate: bool,
    /// Simulation hot paths (`simgrid`/`core` lib sources): trace-sized
    /// buffer copies are budget violations there (PP007).
    hot_path: bool,
}

fn path_scope(relpath: &str) -> PathScope {
    let test_path = relpath.starts_with("tests/")
        || relpath.contains("/tests/")
        || relpath.contains("/benches/")
        || relpath.starts_with("examples/")
        || relpath.contains("/examples/");
    let bin = relpath.contains("/src/bin/") || relpath.ends_with("src/main.rs");
    PathScope {
        test_path,
        bin,
        bench_crate: relpath.starts_with("crates/bench/"),
        hot_path: !bin
            && (relpath.starts_with("crates/simgrid/src/")
                || relpath.starts_with("crates/core/src/")),
    }
}

/// Lints one source file, applying scoping rules and `tidy:allow`
/// suppressions. Returns the surviving findings in (line, col, code)
/// order.
pub fn lint_source(relpath: &str, src: &str) -> Vec<Finding> {
    let lines = mask_source(src);
    let regions = analyze_regions(&lines);
    let scope = path_scope(relpath);
    let mut findings = Vec::new();

    let hash_names = collect_hash_container_names(&lines);

    for (idx, line) in lines.iter().enumerate() {
        let in_test = scope.test_path || regions.in_test[idx];
        let code_line = line.code.as_str();
        if !in_test && !scope.bin && !scope.bench_crate {
            pp001(relpath, idx, code_line, &mut findings);
        }
        if !in_test {
            pp002(relpath, idx, code_line, &hash_names, &mut findings);
            pp004(relpath, idx, code_line, &mut findings);
            pp005(relpath, idx, code_line, &mut findings);
        }
        if !in_test && !scope.bin {
            pp003(relpath, idx, code_line, &mut findings);
        }
        if !in_test && scope.hot_path {
            pp007(relpath, idx, code_line, &mut findings);
        }
        // PP008 runs in every scope, tests included: the tier-1 suite is
        // contractually socket-free, so sockets outside the shell are a
        // defect even in test code.
        if !pp008_exempt(relpath) {
            pp008(relpath, idx, code_line, &mut findings);
        }
        // PP009 also ignores scope: the serving state machine, admission
        // control and ingest supervisor are pure functions of the
        // simulated clock, and a wall-clock read anywhere in the service
        // crate (tests included) silently breaks replay determinism.
        if relpath.starts_with("crates/service/src/") && !pp009_exempt(relpath) {
            pp009(relpath, idx, code_line, &mut findings);
        }
        // PP010 likewise covers every scope: the svc model checker's
        // memory-ordering proofs only reach the designated modules, so
        // an atomic anywhere else is unaudited by construction.
        if !pp010_exempt(relpath) {
            pp010(relpath, idx, code_line, &mut findings);
        }
    }
    if !scope.test_path && !scope.bin {
        pp006(relpath, &lines, &regions, &mut findings);
    }

    apply_suppressions(relpath, &lines, &mut findings);
    findings.sort_by(|a, b| (a.line, a.col, a.code).cmp(&(b.line, b.col, b.code)));
    findings
}

fn push(
    findings: &mut Vec<Finding>,
    file: &str,
    idx: usize,
    col0: usize,
    code: &'static str,
    message: String,
) {
    findings.push(Finding {
        file: file.to_string(),
        line: idx + 1,
        col: col0 + 1,
        code,
        message,
    });
}

fn pp001(file: &str, idx: usize, code_line: &str, findings: &mut Vec<Finding>) {
    for pat in PP001_SOURCES {
        let mut from = 0;
        while let Some(at) = find_word(code_line, pat, from) {
            let name = pat.trim_end_matches('(');
            push(
                findings,
                file,
                idx,
                at,
                "PP001",
                format!("nondeterminism source `{name}` in a simulation/prediction path; inject time or seed explicitly"),
            );
            from = at + pat.len();
        }
    }
}

/// First pass of PP002: names bound or declared with a `HashMap`/`HashSet`
/// type anywhere in the file (let bindings and struct fields).
fn collect_hash_container_names(lines: &[MaskedLine]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for line in lines {
        let code = line.code.as_str();
        if !code.contains("HashMap") && !code.contains("HashSet") {
            continue;
        }
        // `let [mut] name … = HashMap::new()` / `let name: HashMap<…>`.
        if let Some(let_at) = find_word(code, "let", 0) {
            let after = &code[let_at + 3..];
            let after = after.trim_start();
            let after = after.strip_prefix("mut ").unwrap_or(after).trim_start();
            let name: String = after.chars().take_while(|&c| is_ident_char(c)).collect();
            let rest = &after[name.len()..];
            if !name.is_empty() && (rest.contains("HashMap") || rest.contains("HashSet")) {
                names.push(name);
            }
        }
        // `field: HashMap<…>` / `field: HashSet<…>` (struct fields, fn params).
        for marker in [": HashMap", ": HashSet"] {
            let mut from = 0;
            while let Some(at) = code[from..].find(marker).map(|p| p + from) {
                let head = &code[..at];
                let name: String = head
                    .chars()
                    .rev()
                    .take_while(|&c| is_ident_char(c))
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if !name.is_empty() {
                    names.push(name);
                }
                from = at + marker.len();
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

fn pp002(
    file: &str,
    idx: usize,
    code_line: &str,
    hash_names: &[String],
    findings: &mut Vec<Finding>,
) {
    for name in hash_names {
        for suffix in PP002_ITERS {
            let pat = format!("{name}{suffix}");
            let mut from = 0;
            while let Some(at) = find_word(code_line, &pat, from) {
                push(
                    findings,
                    file,
                    idx,
                    at,
                    "PP002",
                    format!("iteration over hash-ordered container `{name}` can leak nondeterministic order into results; use BTreeMap/BTreeSet or sort first"),
                );
                from = at + pat.len();
            }
        }
        for prefix in ["in &", "in &mut "] {
            let pat = format!("{prefix}{name}");
            let mut from = 0;
            while let Some(at) = find_word(code_line, &pat, from) {
                // `for x in &map` — iteration by reference.
                push(
                    findings,
                    file,
                    idx,
                    at,
                    "PP002",
                    format!("iteration over hash-ordered container `{name}` can leak nondeterministic order into results; use BTreeMap/BTreeSet or sort first"),
                );
                from = at + pat.len();
            }
        }
    }
}

fn pp003(file: &str, idx: usize, code_line: &str, findings: &mut Vec<Finding>) {
    for pat in PP003_PANICS {
        let mut from = 0;
        while let Some(at) = find_word(code_line, pat, from) {
            let name = pat.trim_start_matches('.').trim_end_matches('(');
            let name = name.trim_end_matches("()");
            push(
                findings,
                file,
                idx,
                at,
                "PP003",
                format!("`{name}` in non-test library code; return a typed error, or document the invariant and add a tidy:allow"),
            );
            from = at + pat.len();
        }
    }
}

fn pp004(file: &str, idx: usize, code_line: &str, findings: &mut Vec<Finding>) {
    let mut from = 0;
    while let Some(at) = find_word(code_line, ".partial_cmp(", from) {
        push(
            findings,
            file,
            idx,
            at,
            "PP004",
            "float ordering via `partial_cmp`; use `total_cmp` so NaN cannot panic or reorder"
                .to_string(),
        );
        from = at + ".partial_cmp(".len();
    }
    for (op_at, _op) in comparison_ops(code_line) {
        let left = token_before(code_line, op_at);
        let right = token_after(code_line, op_at + 2);
        if is_float_literal(&left) || is_float_literal(&right) {
            push(
                findings,
                file,
                idx,
                op_at,
                "PP004",
                "exact `==`/`!=` comparison against a float literal; use an epsilon or a documented bit-exact check".to_string(),
            );
        }
    }
}

/// Byte offsets of standalone `==` / `!=` operators.
fn comparison_ops(line: &str) -> Vec<(usize, &'static str)> {
    let bytes = line.as_bytes();
    let mut ops = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let pair = &bytes[i..i + 2];
        if pair == b"==" {
            let prev = i.checked_sub(1).map(|j| bytes[j]);
            let next = bytes.get(i + 2).copied();
            // Exclude `<=`, `>=`, `!=`'s tail, `===` (not Rust, but safe).
            if !matches!(prev, Some(b'=') | Some(b'!') | Some(b'<') | Some(b'>'))
                && next != Some(b'=')
            {
                ops.push((i, "=="));
            }
            i += 2;
        } else if pair == b"!=" {
            ops.push((i, "!="));
            i += 2;
        } else {
            i += 1;
        }
    }
    ops
}

fn token_before(line: &str, end: usize) -> String {
    let bytes = line.as_bytes();
    let mut i = end;
    while i > 0 && bytes[i - 1] == b' ' {
        i -= 1;
    }
    let stop = i;
    while i > 0 {
        let c = bytes[i - 1] as char;
        if is_ident_char(c) || c == '.' {
            i -= 1;
        } else {
            break;
        }
    }
    line[i..stop].to_string()
}

fn token_after(line: &str, start: usize) -> String {
    let bytes = line.as_bytes();
    let mut i = start;
    while i < bytes.len() && bytes[i] == b' ' {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'-' {
        i += 1; // negative literal
    }
    let begin = i;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if is_ident_char(c) || c == '.' {
            i += 1;
        } else if (c == '+' || c == '-') && i > begin && matches!(bytes[i - 1], b'e' | b'E') {
            i += 1; // exponent sign
        } else {
            break;
        }
    }
    line[begin..i].to_string()
}

/// True for Rust float literals: `1.0`, `0.5f64`, `1e-9`, `2f32`, `1_000.0`.
fn is_float_literal(tok: &str) -> bool {
    let body = tok
        .strip_suffix("f64")
        .or_else(|| tok.strip_suffix("f32"))
        .unwrap_or(tok);
    let has_suffix = body.len() != tok.len();
    let body = body.replace('_', "");
    let mut chars = body.chars();
    match chars.next() {
        Some(c) if c.is_ascii_digit() => {}
        _ => return false,
    }
    let valid = body
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'));
    if !valid {
        return false;
    }
    has_suffix || body.contains('.') || body.contains('e') || body.contains('E')
}

fn pp005(file: &str, idx: usize, code_line: &str, findings: &mut Vec<Finding>) {
    for pat in PP005_LOCKS {
        let mut from = 0;
        while let Some(at) = find_word(code_line, pat, from) {
            push(
                findings,
                file,
                idx,
                at,
                "PP005",
                format!("raw `{pat}` bypasses the poison-recovering lock helpers; a peer's panic becomes a secondary panic here"),
            );
            from = at + pat.len();
        }
    }
}

/// PP007: trace-sized buffer copies in `simgrid`/`core` hot paths.
///
/// Flags `.values().to_vec()` literally, plus `.clone()`/`.to_vec()`
/// whose receiver chain ends in a trace-sized buffer name
/// ([`PP007_BUFFERS`]). The grid-scale memory budget (O(1) amortized
/// bytes/machine) dies by a thousand such copies; route queries through
/// `TraceRef`/`TraceStore` views instead, or justify an intentional copy
/// with `tidy:allow(PP007): reason`.
fn pp007(file: &str, idx: usize, code_line: &str, findings: &mut Vec<Finding>) {
    let mut from = 0;
    while let Some(at) = find_word(code_line, ".values().to_vec()", from) {
        push(
            findings,
            file,
            idx,
            at,
            "PP007",
            "`.values().to_vec()` copies a full value buffer in a hot path; iterate the slice or use a TraceRef view".to_string(),
        );
        from = at + ".values().to_vec()".len();
    }
    for pat in [".clone()", ".to_vec()"] {
        let mut from = 0;
        while let Some(at) = find_word(code_line, pat, from) {
            from = at + pat.len();
            let chain = token_before(code_line, at);
            let last = chain.rsplit('.').next().unwrap_or("");
            let copies_buffer = PP007_BUFFERS
                .iter()
                .any(|b| last == *b || last.ends_with(&format!("_{b}")));
            if copies_buffer {
                push(
                    findings,
                    file,
                    idx,
                    at,
                    "PP007",
                    format!("`{last}{pat}` copies a trace-sized buffer in a hot path; borrow it or route through TraceStore views"),
                );
            }
        }
    }
}

/// Paths allowed to touch `std::net`: the service crate's shell module
/// (the designed socket veneer) and its binary targets (the daemon and
/// its smoke-mode HTTP client).
fn pp008_exempt(relpath: &str) -> bool {
    relpath == "crates/service/src/shell.rs" || relpath.starts_with("crates/service/src/bin/")
}

/// PP008: `std::net` socket usage outside the service crate's shell.
///
/// The service core is a pure function of `(sensor trace, clock)` and
/// the tier-1 tests drive it with zero real I/O — a guarantee that only
/// holds while socket code stays quarantined in
/// `crates/service/src/shell.rs` and the service binaries. Any other
/// `std::net` reference (tests included) is flagged.
fn pp008(file: &str, idx: usize, code_line: &str, findings: &mut Vec<Finding>) {
    for pat in PP008_NET {
        let mut from = 0;
        while let Some(at) = find_word(code_line, pat, from) {
            push(
                findings,
                file,
                idx,
                at,
                "PP008",
                format!(
                    "`{pat}` outside the service shell; sockets live only in crates/service/src/shell.rs (the core must stay I/O-free)"
                ),
            );
            from = at + pat.len();
        }
    }
}

/// Paths inside the service crate allowed to read the wall clock: the
/// shell (its tick loop and socket timeouts are real time by design)
/// and the binaries (the daemon's smoke harness measures real sockets).
fn pp009_exempt(relpath: &str) -> bool {
    relpath == "crates/service/src/shell.rs" || relpath.starts_with("crates/service/src/bin/")
}

/// PP009: wall-clock reads in the service crate outside its shell.
///
/// Resilience decisions — serving-state derivation, retry backoff,
/// breaker cooldowns, admission budgets — are pure functions of
/// `(seed, simulated clock)`; that is what makes the chaos campaign and
/// the availability DP replayable bit-for-bit. PP001 already bans
/// nondeterminism in library code but waives tests and binaries; here
/// even a test that consults `Instant::now` for control flow can mask a
/// determinism regression, so the ban covers every scope.
fn pp009(file: &str, idx: usize, code_line: &str, findings: &mut Vec<Finding>) {
    for pat in PP009_CLOCKS {
        let mut from = 0;
        while let Some(at) = find_word(code_line, pat, from) {
            let name = pat.trim_end_matches('(');
            push(
                findings,
                file,
                idx,
                at,
                "PP009",
                format!(
                    "`{name}` in the service crate outside shell.rs; resilience logic must run on the simulated clock"
                ),
            );
            from = at + pat.len();
        }
    }
}

/// The modules allowed to use atomics: the serving path's audited
/// concurrency modules — whose orderings the `prodpred-analysis::svc`
/// model checker explores exhaustively — and the worker pool's
/// coordination primitives.
fn pp010_exempt(relpath: &str) -> bool {
    relpath == "crates/service/src/swap.rs"
        || relpath == "crates/service/src/cache.rs"
        || relpath == "crates/service/src/resilience.rs"
        || relpath.starts_with("crates/pool/")
}

/// PP010: atomics fenced into the audited concurrency modules.
///
/// The serving-path proof (`prodpred-analysis::svc`) enumerates every
/// interleaving of the atomics in `swap.rs`/`cache.rs`/`resilience.rs`;
/// the pool's primitives predate it and are covered by their own stress
/// suite. An `Atomic*` cell or memory ordering anywhere else has no
/// model backing its orderings — move the state behind one of the
/// audited modules' abstractions, or justify the escape with
/// `tidy:allow(PP010): reason`. Covers every scope (tests and binaries
/// included): an unaudited atomic in a test harness can hide the same
/// ordering bugs.
fn pp010(file: &str, idx: usize, code_line: &str, findings: &mut Vec<Finding>) {
    for pat in PP010_ORDERINGS.iter().chain(PP010_ATOMICS.iter()) {
        let mut from = 0;
        while let Some(at) = find_word(code_line, pat, from) {
            push(
                findings,
                file,
                idx,
                at,
                "PP010",
                format!(
                    "`{pat}` outside the audited atomics modules (service swap/cache/resilience, crates/pool); route the state through them or justify with tidy:allow(PP010)"
                ),
            );
            from = at + pat.len();
        }
    }
}

/// PP006: public functions returning `Result` must carry an `# Errors`
/// doc section. Trait-impl methods are exempt (their contract lives on
/// the trait).
fn pp006(file: &str, lines: &[MaskedLine], regions: &Regions, findings: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if regions.in_test[idx] || regions.in_trait_impl[idx] {
            continue;
        }
        let Some(col) = public_fn_at(&line.code) else {
            continue;
        };
        let signature = capture_signature(lines, idx);
        let Some(ret) = signature.rsplit("->").next() else {
            continue;
        };
        // Word match, not substring: `DistSorResult` is a plain struct.
        if signature.contains("->") && has_word(ret, "Result") && !docs_mention_errors(lines, idx) {
            push(
                findings,
                file,
                idx,
                col,
                "PP006",
                "`pub fn` returning `Result` without an `# Errors` doc section".to_string(),
            );
        }
    }
}

/// Column of a plain `pub fn` (not `pub(crate)`) definition on this line.
fn public_fn_at(code_line: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(at) = find_word(code_line, "pub", from) {
        let rest = code_line[at + 3..].trim_start();
        from = at + 3;
        if rest.starts_with('(') {
            continue; // pub(crate), pub(super), …: not public API
        }
        // Skip qualifier keywords between `pub` and `fn`.
        let mut r = rest;
        loop {
            r = r.trim_start();
            if r.starts_with("fn ") || r == "fn" {
                return Some(at);
            }
            let mut advanced = false;
            for kw in ["const ", "async ", "unsafe ", "extern "] {
                if let Some(stripped) = r.strip_prefix(kw) {
                    r = stripped;
                    advanced = true;
                    break;
                }
            }
            if let Some(stripped) = r.strip_prefix("\"\"") {
                // masked ABI string of `extern "C"`
                r = stripped;
                advanced = true;
            }
            if !advanced {
                break;
            }
        }
    }
    None
}

/// The masked signature text from the `pub fn` line to the body brace.
fn capture_signature(lines: &[MaskedLine], start: usize) -> String {
    let mut sig = String::new();
    for line in lines.iter().skip(start).take(24) {
        let code = line.code.as_str();
        let end = code.find(['{', ';']);
        match end {
            Some(e) => {
                sig.push_str(&code[..e]);
                return sig;
            }
            None => {
                sig.push_str(code);
                sig.push(' ');
            }
        }
    }
    sig
}

/// True when the contiguous doc block above `idx` mentions `# Errors`.
fn docs_mention_errors(lines: &[MaskedLine], idx: usize) -> bool {
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let line = &lines[j];
        let code_trim = line.code.trim();
        if line.is_doc {
            if line.comment.contains("# Errors") {
                return true;
            }
            continue;
        }
        if code_trim.starts_with("#[") || code_trim.starts_with("#!") {
            continue; // attribute between docs and fn
        }
        return false;
    }
    false
}

/// One parsed `tidy:allow` marker.
#[derive(Debug, Clone)]
struct Allow {
    code: String,
    justified: bool,
    line: usize,
    col: usize,
}

/// True for a concrete lint code: `PP` followed by three ASCII digits.
fn is_lint_code(code: &str) -> bool {
    code.len() == 5 && code.starts_with("PP") && code[2..].bytes().all(|b| b.is_ascii_digit())
}

/// Extracts every `tidy:allow(PPnnn)[: reason]` from a comment.
fn parse_allows(comment: &str, line: usize) -> Vec<Allow> {
    let mut allows = Vec::new();
    let mut from = 0;
    while let Some(pos) = comment[from..].find("tidy:allow").map(|p| p + from) {
        let rest = &comment[pos + "tidy:allow".len()..];
        let (code, justified) = match rest.strip_prefix('(') {
            Some(inner) => match inner.find(')') {
                Some(close) => {
                    let code = inner[..close].trim().to_string();
                    // Prose about the grammar (e.g. `tidy:allow(PPnnn)`)
                    // is not an allow attempt; only concrete codes are.
                    if !is_lint_code(&code) {
                        from = pos + "tidy:allow".len();
                        continue;
                    }
                    let tail = inner[close + 1..].trim_start();
                    let reason = tail.strip_prefix(':').map(str::trim).unwrap_or("");
                    (code, !reason.is_empty())
                }
                None => (String::new(), false),
            },
            None => (String::new(), false),
        };
        allows.push(Allow {
            code,
            justified,
            line,
            col: pos + 1,
        });
        from = pos + "tidy:allow".len();
    }
    allows
}

/// Applies `tidy:allow` suppressions in place and appends PP000 findings
/// for unjustified or malformed allows.
fn apply_suppressions(file: &str, lines: &[MaskedLine], findings: &mut Vec<Finding>) {
    // Allows attached to each line: its own trailing comment plus any
    // comment-only lines directly above.
    // Doc comments talk *about* the tool (grammar tables, usage docs);
    // suppressions must be written in regular comments.
    let per_line: Vec<Vec<Allow>> = lines
        .iter()
        .enumerate()
        .map(|(i, l)| {
            if l.is_doc {
                Vec::new()
            } else {
                parse_allows(&l.comment, i + 1)
            }
        })
        .collect();

    let effective = |lineno: usize| -> Vec<&Allow> {
        let idx = lineno - 1;
        let mut out: Vec<&Allow> = per_line[idx].iter().collect();
        let mut j = idx;
        while j > 0 {
            j -= 1;
            let l = &lines[j];
            if l.code.trim().is_empty() && !l.comment.trim().is_empty() {
                out.extend(per_line[j].iter());
            } else {
                break;
            }
        }
        out
    };

    findings.retain(|f| {
        !effective(f.line)
            .iter()
            .any(|a| a.justified && a.code == f.code)
    });

    for allows in &per_line {
        for a in allows {
            if !a.justified {
                findings.push(Finding {
                    file: file.to_string(),
                    line: a.line,
                    col: a.col,
                    code: "PP000",
                    message: "unjustified tidy:allow; write `tidy:allow(PPnnn): reason` with a non-empty reason".to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn pp001_fires_in_lib_but_not_in_tests_or_strings() {
        let f = lint_source("crates/x/src/a.rs", "fn f() { let t = Instant::now(); }\n");
        assert_eq!(codes(&f), ["PP001"]);
        let f = lint_source(
            "crates/x/tests/a.rs",
            "fn f() { let t = Instant::now(); }\n",
        );
        assert!(f.is_empty());
        let f = lint_source(
            "crates/x/src/a.rs",
            "fn f() { let s = \"Instant::now()\"; }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn pp003_flags_unwrap_and_expect_not_unwrap_or() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap_or(3); v.expect(\"x\") }\n";
        let f = lint_source("crates/x/src/a.rs", src);
        assert_eq!(codes(&f), ["PP003"]);
    }

    #[test]
    fn pp004_float_literal_comparisons() {
        let f = lint_source("crates/x/src/a.rs", "fn f(x: f64) -> bool { x == 0.0 }\n");
        assert_eq!(codes(&f), ["PP004"]);
        let f = lint_source("crates/x/src/a.rs", "fn f(x: usize) -> bool { x == 2 }\n");
        assert!(f.is_empty());
        let f = lint_source("crates/x/src/a.rs", "fn f(x: f64) -> bool { x <= 1.0 }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn suppression_requires_reason() {
        let ok = "fn f(v: Option<u32>) -> u32 {\n    // tidy:allow(PP003): invariant: v is Some by construction\n    v.unwrap()\n}\n";
        let f = lint_source("crates/x/src/a.rs", ok);
        assert!(f.is_empty(), "{f:?}");
        let bad = "fn f(v: Option<u32>) -> u32 {\n    // tidy:allow(PP003)\n    v.unwrap()\n}\n";
        let f = lint_source("crates/x/src/a.rs", bad);
        assert_eq!(codes(&f), ["PP000", "PP003"]);
    }

    #[test]
    fn pp006_wants_errors_section() {
        let undocumented = "/// Does a thing.\npub fn f() -> Result<(), E> { Ok(()) }\n";
        let f = lint_source("crates/x/src/a.rs", undocumented);
        assert_eq!(codes(&f), ["PP006"]);
        let documented =
            "/// Does a thing.\n///\n/// # Errors\n/// When it cannot.\npub fn f() -> Result<(), E> { Ok(()) }\n";
        let f = lint_source("crates/x/src/a.rs", documented);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn pp007_flags_trace_buffer_copies_in_hot_crates_only() {
        // Fires on buffer-suffixed receivers in simgrid/core lib sources.
        let src = "fn f(m: &Machine) { let x = m.load.clone(); use_it(x); }\n";
        let f = lint_source("crates/simgrid/src/a.rs", src);
        assert_eq!(codes(&f), ["PP007"]);
        let f = lint_source("crates/core/src/a.rs", src);
        assert_eq!(codes(&f), ["PP007"]);
        // The literal full-copy idiom and `.to_vec()` forms fire too.
        let f = lint_source(
            "crates/simgrid/src/a.rs",
            "fn f(t: &Trace) { sink(t.values().to_vec()); }\n",
        );
        assert_eq!(codes(&f), ["PP007"]);
        let f = lint_source(
            "crates/core/src/a.rs",
            "fn f(p: &[f64]) { sink(self.prefix.to_vec()); }\n",
        );
        assert_eq!(codes(&f), ["PP007"]);
        // Whole-segment matching: `payload` must not trip the `load` entry.
        let f = lint_source(
            "crates/simgrid/src/a.rs",
            "fn f(e: &Ev) { let p = e.payload.clone(); use_it(p); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
        // Out of the hot crates — or in tests — the copy is fine.
        let f = lint_source("crates/sor/src/a.rs", src);
        assert!(f.is_empty(), "{f:?}");
        let f = lint_source("crates/simgrid/tests/a.rs", src);
        assert!(f.is_empty(), "{f:?}");
        // An intentional copy carries a justified allow.
        let allowed = "fn f(m: &Machine) {\n    // tidy:allow(PP007): oracle tests need a standalone trace\n    let x = m.load.clone();\n    use_it(x);\n}\n";
        let f = lint_source("crates/simgrid/src/a.rs", allowed);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn pp008_fences_sockets_into_the_service_shell() {
        let src =
            "use std::net::TcpListener;\nfn f() { let l = TcpListener::bind(\"x\"); use_it(l); }\n";
        // Any ordinary lib source: two findings on line 1 (`std::net` and
        // the type), one on line 2.
        let f = lint_source("crates/core/src/a.rs", src);
        assert_eq!(codes(&f), ["PP008", "PP008", "PP008"]);
        // Tests are NOT exempt: tier-1 is contractually socket-free.
        let f = lint_source("tests/service_core.rs", src);
        assert_eq!(codes(&f), ["PP008", "PP008", "PP008"]);
        // Other crates' bins are not exempt either.
        let f = lint_source("crates/bench/src/bin/replay.rs", src);
        assert_eq!(codes(&f), ["PP008", "PP008", "PP008"]);
        // The designed socket veneer and the service binaries are exempt.
        assert!(lint_source("crates/service/src/shell.rs", src).is_empty());
        assert!(lint_source("crates/service/src/bin/serviced.rs", src).is_empty());
        // Elsewhere in the service crate the fence still holds.
        let f = lint_source("crates/service/src/core.rs", src);
        assert_eq!(codes(&f), ["PP008", "PP008", "PP008"]);
        // Masked occurrences (strings, comments) never fire.
        let f = lint_source(
            "crates/core/src/a.rs",
            "fn f() { let s = \"std::net::TcpStream\"; use_it(s); } // std::net\n",
        );
        assert!(f.is_empty(), "{f:?}");
        // `UdpSocket` and bare `TcpStream` are fenced too.
        let f = lint_source(
            "crates/nws/src/a.rs",
            "fn f() { let s = TcpStream::connect(\"x\"); let u = UdpSocket::bind(\"y\"); use_both(s, u); }\n",
        );
        assert_eq!(codes(&f), ["PP008", "PP008"]);
    }

    #[test]
    fn pp009_fences_wall_clocks_out_of_the_service_crate() {
        let src = "fn f() { let t = Instant::now(); use_it(t); }\n";
        // Library code in the service crate: one finding.
        let f = lint_source("crates/service/src/core.rs", src);
        assert_eq!(codes(&f), ["PP001", "PP009"]);
        // `SystemTime::now` is fenced the same way.
        let f = lint_source(
            "crates/service/src/resilience.rs",
            "fn f() { let t = SystemTime::now(); use_it(t); }\n",
        );
        assert_eq!(codes(&f), ["PP001", "PP009"]);
        // Unlike PP001, in-file test modules are NOT exempt: a test that
        // branches on real time can mask a determinism regression.
        let tested = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let x = Instant::now(); use_it(x); }\n}\n";
        let f = lint_source("crates/service/src/http.rs", tested);
        assert_eq!(codes(&f), ["PP009"]);
        // The shell (real tick loop) and binaries (smoke harness) are
        // PP009-exempt — the shell still answers to PP001 and justifies
        // its timers with allows.
        assert_eq!(
            codes(&lint_source("crates/service/src/shell.rs", src)),
            ["PP001"]
        );
        assert!(lint_source("crates/service/src/bin/serviced.rs", src).is_empty());
        // Other crates are out of PP009's reach (PP001 already covers
        // their library paths).
        let f = lint_source("crates/bench/src/bin/service_chaos.rs", src);
        assert!(f.is_empty(), "{f:?}");
        // Masked occurrences never fire.
        let f = lint_source(
            "crates/service/src/core.rs",
            "fn f() { let s = \"Instant::now()\"; use_it(s); } // Instant::now()\n",
        );
        assert!(f.is_empty(), "{f:?}");
        // A justified allow suppresses the finding.
        let allowed = "fn f() {\n    // tidy:allow(PP001): latency probe, result not load-bearing\n    // tidy:allow(PP009): latency probe, result not load-bearing\n    let t = Instant::now();\n    use_it(t);\n}\n";
        let f = lint_source("crates/service/src/core.rs", allowed);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn pp010_fences_atomics_into_audited_modules() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\nfn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }\n";
        // Ordinary lib code: the module path and the type on line 1, the
        // type and the ordering on line 2.
        let f = lint_source("crates/core/src/a.rs", src);
        assert_eq!(codes(&f), ["PP010", "PP010", "PP010", "PP010"]);
        // Tests and binaries are NOT exempt: unaudited atomics hide the
        // same ordering bugs there.
        let f = lint_source("crates/sor/tests/a.rs", src);
        assert_eq!(codes(&f), ["PP010", "PP010", "PP010", "PP010"]);
        let f = lint_source("crates/bench/src/bin/replay.rs", src);
        assert_eq!(codes(&f), ["PP010", "PP010", "PP010", "PP010"]);
        // The audited modules and the pool's primitives are exempt.
        assert!(lint_source("crates/service/src/swap.rs", src).is_empty());
        assert!(lint_source("crates/service/src/cache.rs", src).is_empty());
        assert!(lint_source("crates/service/src/resilience.rs", src).is_empty());
        assert!(lint_source("crates/pool/src/lib.rs", src).is_empty());
        assert!(lint_source("crates/pool/tests/stress.rs", src).is_empty());
        // Elsewhere in the service crate the fence holds.
        let f = lint_source("crates/service/src/core.rs", src);
        assert_eq!(codes(&f), ["PP010", "PP010", "PP010", "PP010"]);
        // `std::cmp::Ordering` is a different type entirely and must not
        // trip the ordering patterns.
        let cmp = "fn f(a: &u32, b: &u32) -> bool { a.cmp(b) == std::cmp::Ordering::Equal }\n";
        let f = lint_source("crates/simgrid/src/event.rs", cmp);
        assert!(f.is_empty(), "{f:?}");
        // Masked occurrences (strings, comments) never fire.
        let f = lint_source(
            "crates/core/src/a.rs",
            "fn f() { let s = \"AtomicU64, Ordering::SeqCst\"; use_it(s); } // std::sync::atomic\n",
        );
        assert!(f.is_empty(), "{f:?}");
        // A justified allow keeps an intentional escape visible.
        let allowed = "// tidy:allow(PP010): shutdown latch, no data published through it\nfn f(stop: &AtomicBool) -> bool {\n    // tidy:allow(PP010): shutdown latch, no data published through it\n    stop.load(Ordering::Acquire)\n}\n";
        let f = lint_source("crates/service/src/shell.rs", allowed);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn pp002_flags_hash_iteration_by_name() {
        let src = "fn f() { let mut m = HashMap::new(); m.insert(1, 2); for (k, v) in &m { use_it(k, v); } }\n";
        let f = lint_source("crates/x/src/a.rs", src);
        assert_eq!(codes(&f), ["PP002"]);
        let src = "fn f() { let mut m = HashMap::new(); m.insert(1, 2); let _ = m.get(&1); }\n";
        let f = lint_source("crates/x/src/a.rs", src);
        assert!(f.is_empty());
    }
}
