//! A reusable bounded explicit-state model-checking kernel.
//!
//! [`model`](crate::model) (PR 5) and [`ckpt`](crate::ckpt) (PR 8) each
//! grew a bespoke depth-first explorer: the same visited-set dedup, the
//! same DFS stack discipline, the same counterexample-trace
//! reconstruction, copy-pasted twice. This module factors that skeleton
//! into one kernel so new models — like the serving-path proof in
//! [`svc`](crate::svc) — are *just* a [`TransitionSystem`]: state,
//! enabled transitions, transition semantics, and a pretty-printer.
//!
//! The kernel provides:
//!
//! * **exhaustive DFS with state dedup** ([`explore`]) — every distinct
//!   state expanded exactly once, every transition from every state
//!   executed exactly once, deterministic order;
//! * **canonicalization** ([`TransitionSystem::canonical`]) — models
//!   with symmetric components (e.g. identical reader threads) map each
//!   state to a canonical representative before dedup, collapsing
//!   symmetric interleavings and (together with the dedup itself, which
//!   prunes stuttering transitions that reproduce a visited state) keeps
//!   larger configurations tractable;
//! * **depth/state budgets** ([`Budget`]) — bounded exploration that
//!   reports truncation instead of running away;
//! * **counterexample traces** — every violation, whether raised inside
//!   a transition or by the terminal-state check, carries the exact
//!   schedule from the initial state ([`Violation`]);
//! * **minimal counterexamples** ([`shortest_violation`]) — a
//!   breadth-first variant that returns the shortest schedule reaching
//!   any violation, used by the negative-control suites where a human
//!   reads the trace;
//! * **schedule harvesting** ([`collect_schedules`]) — concrete
//!   initial-to-terminal schedules out of the explored graph, which the
//!   conformance layer replays against the real implementation.
//!
//! The shared [`Violation`] here is the struct that used to be
//! copy-pasted between `model::Report` and the ckpt checker; both now
//! re-use it, as does [`svc`](crate::svc).

use std::collections::{HashSet, VecDeque};
use std::hash::Hash;

/// Why a checker rejected the model, with a schedule trace.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What property broke.
    pub kind: String,
    /// Human-readable schedule: the sequence of steps from the initial
    /// state to the violating state.
    pub trace: Vec<String>,
}

/// Exploration budgets. The defaults are unlimited: the existing
/// protocol models are small enough to exhaust outright, and an
/// unlimited budget keeps their state counts bit-identical to the
/// pre-kernel explorers.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Deepest schedule expanded; deeper frontiers are pruned (and the
    /// run marked truncated) instead of explored.
    pub max_depth: usize,
    /// Most distinct states admitted; once reached, new successors are
    /// pruned (and the run marked truncated).
    pub max_states: u64,
}

impl Default for Budget {
    fn default() -> Self {
        Self {
            max_depth: usize::MAX,
            max_states: u64::MAX,
        }
    }
}

/// What one exhaustive exploration did and found. Embedded by each
/// checker's report type — this is the shared half that was previously
/// duplicated field-for-field.
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// Distinct (canonical) states visited.
    pub states: u64,
    /// Transitions executed.
    pub transitions: u64,
    /// Distinct terminal (quiescent) states.
    pub terminals: u64,
    /// Deepest schedule explored.
    pub max_depth: usize,
    /// First property violation found, if any. `None` = proof (within
    /// this bound) that the property set holds.
    pub violation: Option<Violation>,
    /// True when a budget pruned part of the space: the absence of a
    /// violation is then *not* a proof.
    pub truncated: bool,
}

impl ExploreStats {
    /// True when the exploration finished without any violation.
    pub fn holds(&self) -> bool {
        self.violation.is_none()
    }
}

/// A model the kernel can explore: explicit state, enumerable
/// transitions, and transition semantics that may themselves raise a
/// safety violation.
pub trait TransitionSystem {
    /// Fully explicit, hashable global state.
    type State: Clone + Eq + Hash;
    /// One enabled transition (cheap to copy; usually a thread id or a
    /// small enum).
    type Action: Copy;

    /// The unique initial state.
    fn initial(&self) -> Self::State;

    /// All transitions enabled in `state`, in deterministic order. An
    /// empty vector marks the state terminal (quiescent).
    fn enabled(&self, state: &Self::State) -> Vec<Self::Action>;

    /// Applies `action`, returning the successor state, or a violation
    /// message when a safety property breaks inside the step.
    fn apply(&self, state: &Self::State, action: Self::Action) -> Result<Self::State, String>;

    /// Renders `action` (taken from `state`) for counterexample traces.
    fn describe(&self, state: &Self::State, action: Self::Action) -> String;

    /// Maps `state` to its canonical representative for dedup. The
    /// default is the identity; models with interchangeable components
    /// override it (e.g. sorting identical reader threads) to collapse
    /// symmetric states. Must be a congruence: canonical-equal states
    /// must have equivalent futures for every checked property.
    fn canonical(&self, state: &Self::State) -> Self::State {
        state.clone()
    }
}

/// One DFS stack frame: the state, its enabled actions, and the index
/// of the next action to try.
type Frame<S> = (
    <S as TransitionSystem>::State,
    Vec<<S as TransitionSystem>::Action>,
    usize,
);

/// One BFS node: the state, its parent's index, the action that
/// produced it, and its depth.
type BfsNode<S> = (
    <S as TransitionSystem>::State,
    usize,
    Option<<S as TransitionSystem>::Action>,
    usize,
);

/// The schedule leading to the DFS stack's current top, rendered.
fn trace_of<S: TransitionSystem>(sys: &S, stack: &[Frame<S>]) -> Vec<String> {
    stack
        .iter()
        .filter(|(_, steps, i)| *i > 0 && !steps.is_empty())
        .map(|(s, steps, i)| sys.describe(s, steps[i - 1]))
        .collect()
}

/// Exhaustively explores every interleaving of `sys` within `budget`,
/// depth-first with canonical-state dedup. Deterministic: identical
/// systems produce identical stats.
///
/// `on_terminal` runs once per distinct terminal state and performs the
/// model's terminal-state property checks (and any model-specific
/// terminal accounting); returning `Err` records a [`Violation`] with
/// the schedule that reached the terminal and stops the exploration.
/// Violations raised by [`TransitionSystem::apply`] are handled the same
/// way.
// tidy:allow(PP006): returns ExploreStats; the Result is the on_terminal closure's bound
pub fn explore<S, F>(sys: &S, budget: &Budget, mut on_terminal: F) -> ExploreStats
where
    S: TransitionSystem,
    F: FnMut(&S::State) -> Result<(), String>,
{
    let initial = sys.initial();
    let mut visited: HashSet<S::State> = HashSet::new();
    visited.insert(sys.canonical(&initial));
    let first_steps = sys.enabled(&initial);
    // DFS stack: (state, enabled steps, next step index).
    let mut stack: Vec<Frame<S>> = vec![(initial, first_steps, 0)];

    let mut stats = ExploreStats {
        states: 1,
        ..ExploreStats::default()
    };

    while let Some((state, steps, next_idx)) = stack.last().cloned() {
        stats.max_depth = stats.max_depth.max(stack.len() - 1);
        if steps.is_empty() {
            match on_terminal(&state) {
                Ok(()) => stats.terminals += 1,
                Err(kind) => {
                    stats.violation = Some(Violation {
                        kind,
                        trace: trace_of(sys, &stack),
                    });
                    return stats;
                }
            }
            stack.pop();
            continue;
        }
        if next_idx >= steps.len() {
            stack.pop();
            continue;
        }
        if stack.len() > budget.max_depth {
            stats.truncated = true;
            stack.pop();
            continue;
        }
        if let Some(top) = stack.last_mut() {
            top.2 += 1;
        }
        let action = steps[next_idx];
        stats.transitions += 1;
        match sys.apply(&state, action) {
            Ok(successor) => {
                if stats.states >= budget.max_states {
                    stats.truncated = true;
                } else if visited.insert(sys.canonical(&successor)) {
                    stats.states += 1;
                    let succ_steps = sys.enabled(&successor);
                    stack.push((successor, succ_steps, 0));
                }
            }
            Err(kind) => {
                stats.violation = Some(Violation {
                    kind,
                    trace: trace_of(sys, &stack),
                });
                return stats;
            }
        }
    }
    stats
}

/// Finds the violation with the shortest schedule, breadth-first, or
/// `None` when no violation is reachable within `budget.max_states`
/// explored states. `on_terminal` plays the same role as in
/// [`explore`]. Used by the negative-control suites: the returned trace
/// is minimal, so a human can read why the seeded bug breaks the
/// property.
// tidy:allow(PP006): returns Option<Violation>; the Result is the on_terminal closure's bound
pub fn shortest_violation<S, F>(sys: &S, budget: &Budget, mut on_terminal: F) -> Option<Violation>
where
    S: TransitionSystem,
    F: FnMut(&S::State) -> Result<(), String>,
{
    // BFS nodes: (state, parent index, action that produced it, depth).
    let initial = sys.initial();
    let mut nodes: Vec<BfsNode<S>> = vec![(initial.clone(), 0, None, 0)];
    let mut seen: HashSet<S::State> = HashSet::new();
    seen.insert(sys.canonical(&initial));
    let mut queue: VecDeque<usize> = VecDeque::from([0]);

    let trace_to = |nodes: &[BfsNode<S>], idx: usize| {
        let mut rev = Vec::new();
        let mut at = idx;
        while let Some(action) = nodes[at].2 {
            let parent = nodes[at].1;
            rev.push(sys.describe(&nodes[parent].0, action));
            at = parent;
        }
        rev.reverse();
        rev
    };

    // An apply-time violation discovered while expanding depth `d` has
    // trace length `d + 1`; a terminal violation at a later depth-`d`
    // node has length `d` and must win. Hold the pending candidate until
    // every node of a shallower depth has been checked.
    let mut pending: Option<(usize, Violation)> = None;

    while let Some(idx) = queue.pop_front() {
        let depth = nodes[idx].3;
        if let Some((len, _)) = &pending {
            if *len <= depth {
                return pending.map(|(_, v)| v);
            }
        }
        let state = nodes[idx].0.clone();
        let steps = sys.enabled(&state);
        if steps.is_empty() {
            if let Err(kind) = on_terminal(&state) {
                return Some(Violation {
                    kind,
                    trace: trace_to(&nodes, idx),
                });
            }
            continue;
        }
        for &action in &steps {
            match sys.apply(&state, action) {
                Ok(successor) => {
                    if nodes.len() as u64 >= budget.max_states {
                        continue;
                    }
                    if seen.insert(sys.canonical(&successor)) {
                        nodes.push((successor, idx, Some(action), depth + 1));
                        queue.push_back(nodes.len() - 1);
                    }
                }
                Err(kind) => {
                    if pending.is_none() {
                        let mut trace = trace_to(&nodes, idx);
                        trace.push(sys.describe(&state, action));
                        pending = Some((depth + 1, Violation { kind, trace }));
                    }
                }
            }
        }
    }
    pending.map(|(_, v)| v)
}

/// Harvests up to `limit` concrete initial-to-terminal schedules from
/// the explored graph, in deterministic DFS order. Each returned
/// schedule is a real executable path: replaying its actions from the
/// initial state via [`TransitionSystem::apply`] reaches a terminal
/// state. The conformance layer replays these against the real
/// implementation.
///
/// Exploration uses the same canonical-state dedup as [`explore`], so
/// the schedules cover every distinct terminal reachable in the reduced
/// graph rather than re-walking shared prefixes.
pub fn collect_schedules<S>(sys: &S, limit: usize) -> Vec<Vec<S::Action>>
where
    S: TransitionSystem,
{
    let initial = sys.initial();
    let mut visited: HashSet<S::State> = HashSet::new();
    visited.insert(sys.canonical(&initial));
    let first_steps = sys.enabled(&initial);
    let mut stack: Vec<Frame<S>> = vec![(initial, first_steps, 0)];
    let mut schedules = Vec::new();

    while let Some((state, steps, next_idx)) = stack.last().cloned() {
        if schedules.len() >= limit {
            break;
        }
        if steps.is_empty() {
            schedules.push(
                stack
                    .iter()
                    .filter(|(_, steps, i)| *i > 0 && !steps.is_empty())
                    .map(|(_, steps, i)| steps[i - 1])
                    .collect(),
            );
            stack.pop();
            continue;
        }
        if next_idx >= steps.len() {
            stack.pop();
            continue;
        }
        if let Some(top) = stack.last_mut() {
            top.2 += 1;
        }
        let action = steps[next_idx];
        if let Ok(successor) = sys.apply(&state, action) {
            if visited.insert(sys.canonical(&successor)) {
                let succ_steps = sys.enabled(&successor);
                stack.push((successor, succ_steps, 0));
            }
        }
    }
    schedules
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two independent counters, each stepping 0 -> `horizon`. The state
    /// space is the full grid of interleavings; a poisoned cell makes
    /// `apply` fail, a poisoned terminal makes the terminal check fail.
    struct Grid {
        horizon: u8,
        poison_cell: Option<(u8, u8)>,
        symmetric: bool,
    }

    impl TransitionSystem for Grid {
        type State = (u8, u8);
        type Action = u8;

        fn initial(&self) -> (u8, u8) {
            (0, 0)
        }

        fn enabled(&self, state: &(u8, u8)) -> Vec<u8> {
            let mut steps = Vec::new();
            if state.0 < self.horizon {
                steps.push(0);
            }
            if state.1 < self.horizon {
                steps.push(1);
            }
            steps
        }

        fn apply(&self, state: &(u8, u8), action: u8) -> Result<(u8, u8), String> {
            let next = if action == 0 {
                (state.0 + 1, state.1)
            } else {
                (state.0, state.1 + 1)
            };
            if self.poison_cell == Some(next) {
                return Err(format!("poisoned cell ({}, {})", next.0, next.1));
            }
            Ok(next)
        }

        fn describe(&self, state: &(u8, u8), action: u8) -> String {
            format!("counter {action} steps from ({}, {})", state.0, state.1)
        }

        fn canonical(&self, state: &(u8, u8)) -> (u8, u8) {
            if self.symmetric && state.1 < state.0 {
                (state.1, state.0)
            } else {
                *state
            }
        }
    }

    fn grid(horizon: u8) -> Grid {
        Grid {
            horizon,
            poison_cell: None,
            symmetric: false,
        }
    }

    #[test]
    fn explore_counts_the_full_grid() {
        let stats = explore(&grid(2), &Budget::default(), |_| Ok(()));
        // (horizon+1)^2 grid cells, one terminal corner, 2*h*(h+1) edges.
        assert_eq!(stats.states, 9);
        assert_eq!(stats.transitions, 12);
        assert_eq!(stats.terminals, 1);
        assert_eq!(stats.max_depth, 4);
        assert!(!stats.truncated);
        assert!(stats.holds());
    }

    #[test]
    fn symmetry_reduction_halves_the_off_diagonal() {
        let sys = Grid {
            symmetric: true,
            ..grid(2)
        };
        let stats = explore(&sys, &Budget::default(), |_| Ok(()));
        // 6 canonical cells: the upper triangle of the 3x3 grid.
        assert_eq!(stats.states, 6);
        assert!(stats.holds());
    }

    #[test]
    fn apply_violation_carries_the_schedule() {
        let sys = Grid {
            poison_cell: Some((1, 1)),
            ..grid(2)
        };
        let stats = explore(&sys, &Budget::default(), |_| Ok(()));
        let v = stats.violation.expect("poisoned cell must be found");
        assert_eq!(v.kind, "poisoned cell (1, 1)");
        // The trace ends with the step into the poisoned cell.
        assert!(!v.trace.is_empty());
        assert!(v.trace.last().unwrap().contains("steps from"));
    }

    #[test]
    fn terminal_violation_carries_the_schedule() {
        let stats = explore(&grid(2), &Budget::default(), |state: &(u8, u8)| {
            Err(format!("terminal ({}, {}) rejected", state.0, state.1))
        });
        let v = stats.violation.expect("terminal check must fire");
        assert_eq!(v.kind, "terminal (2, 2) rejected");
        assert_eq!(v.trace.len(), 4, "terminal sits at depth 4");
    }

    #[test]
    fn depth_budget_truncates_and_reports_it() {
        let budget = Budget {
            max_depth: 2,
            ..Budget::default()
        };
        let stats = explore(&grid(3), &budget, |_| Ok(()));
        assert!(stats.truncated);
        assert!(stats.max_depth <= 2);
        assert_eq!(stats.terminals, 0, "the only terminal sits past depth 2");
    }

    #[test]
    fn state_budget_truncates_and_reports_it() {
        let budget = Budget {
            max_states: 4,
            ..Budget::default()
        };
        let stats = explore(&grid(3), &budget, |_| Ok(()));
        assert!(stats.truncated);
        assert_eq!(stats.states, 4);
    }

    #[test]
    fn shortest_violation_is_minimal() {
        let sys = Grid {
            poison_cell: Some((2, 1)),
            ..grid(3)
        };
        let v = shortest_violation(&sys, &Budget::default(), |_| Ok(())).expect("reachable");
        // Minimal path to (2, 1) takes exactly 3 steps; DFS would detour.
        assert_eq!(v.trace.len(), 3);
        assert_eq!(v.kind, "poisoned cell (2, 1)");
    }

    #[test]
    fn shortest_terminal_violation_beats_a_deeper_apply_violation() {
        // Poison (3, 0) at depth 3; reject terminals at depth >= 2. The
        // first rejected "terminal"... there is only one true terminal,
        // so poison wins only if no terminal violation is shallower.
        let sys = Grid {
            poison_cell: Some((1, 0)),
            ..grid(1)
        };
        let v = shortest_violation(&sys, &Budget::default(), |_| {
            Err("terminal rejected".to_string())
        })
        .expect("something must fire");
        // Depth-1 apply violation vs depth-2 terminal: apply wins.
        assert_eq!(v.kind, "poisoned cell (1, 0)");
        assert_eq!(v.trace.len(), 1);
    }

    #[test]
    fn no_violation_returns_none() {
        assert!(shortest_violation(&grid(2), &Budget::default(), |_| Ok(())).is_none());
    }

    #[test]
    fn collected_schedules_replay_to_terminals() {
        let sys = grid(2);
        let schedules = collect_schedules(&sys, 64);
        assert!(!schedules.is_empty());
        for schedule in &schedules {
            let mut state = sys.initial();
            for &action in schedule {
                assert!(
                    sys.enabled(&state).contains(&action),
                    "schedule must be executable"
                );
                state = sys
                    .apply(&state, action)
                    .expect("no violations in a healthy grid");
            }
            assert!(sys.enabled(&state).is_empty(), "schedule must end terminal");
        }
    }

    #[test]
    fn schedule_limit_is_respected() {
        let schedules = collect_schedules(&grid(3), 2);
        assert!(schedules.len() <= 2);
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = explore(&grid(3), &Budget::default(), |_| Ok(()));
        let b = explore(&grid(3), &Budget::default(), |_| Ok(()));
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.terminals, b.terminals);
    }
}
