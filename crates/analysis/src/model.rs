//! Bounded, exhaustive model checking of the SOR ghost-exchange
//! protocol.
//!
//! The chaos campaign (PR 4) *samples* schedules; this checker
//! *enumerates* them. It builds an explicit-state model of the
//! [`prodpred_sor::exchange`] rendezvous-mailbox semantics — the
//! capacity-one data slot, the buffer-return slot, buffered delivery
//! past a hangup, disconnect-on-drop — and drives one abstract worker
//! per rank through exactly the script
//! [`prodpred_sor::protocol::half_iteration_script`] that the real
//! `worker_loop` executes. A depth-first search with state hashing then
//! explores *every* interleaving of the workers' atomic mailbox
//! operations for small configurations (2–4 ranks, a few
//! half-iterations), proving:
//!
//! * **deadlock freedom** — no reachable state has a live worker and no
//!   enabled transition;
//! * **no lost or duplicated messages** — every receive observes exactly
//!   the boundary row of its own half-iteration, in order, and no
//!   terminal state leaves an undelivered row in a mailbox;
//! * **typed worker death** — under an injected
//!   [`WorkerDeath`](prodpred_simgrid::faults::WorkerDeath) (the model's
//!   [`FaultSchedule`](prodpred_simgrid::faults::FaultSchedule) kills),
//!   every surviving worker reaches the `Disconnected` path (what the
//!   solver surfaces as `SolveError::WorkerDied`) in **every**
//!   interleaving — never a hang, never a missed death;
//! * **timeout safety** — with `ExchangePolicy`-style bounded waits
//!   modelled as a nondeterministic "patience ran out" transition on any
//!   blocked worker, the system still reaches quiescence with every
//!   worker in a typed terminal state.
//!
//! ## Model granularity and soundness limits
//!
//! Each transition is one mutex-protected mailbox operation (acquire a
//! buffer, deposit a row, take a row, return a buffer), which matches
//! the real implementation's atomicity: every such operation holds the
//! mailbox lock for its whole critical section. Local computation (the
//! relaxation sweep) touches no shared state and is abstracted away.
//! The model covers the 1-D strip topology; the 2-D block solver shares
//! the same mailbox layer but its op ordering is not yet extracted.
//! Buffer *identity* is abstracted to occupancy (the real link owns a
//! single buffer, so occupancy determines identity); payload contents
//! are abstracted to the half-iteration sequence number.

use crate::mc::{self, ExploreStats, TransitionSystem};
use prodpred_simgrid::faults::WorkerDeath;
use prodpred_sor::protocol::{half_iteration_script, ExchangeOp, Peer};

/// Upper bound on ranks the fixed-size state encoding supports.
pub const MAX_RANKS: usize = 4;
/// Upper bound on half-iterations (sequence numbers fit in a u8).
pub const MAX_HALVES: usize = 8;

/// One checker configuration: topology, horizon, and fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Number of strip workers (2..=4; 1 exchanges nothing).
    pub ranks: usize,
    /// Half-iterations each worker runs (1..=8).
    pub halves: usize,
    /// Injected death: the worker exits at the start of this
    /// half-iteration, exactly like the solver's `death_fires`.
    pub kill: Option<WorkerDeath>,
    /// Model `ExchangePolicy` exhaustion: any blocked mailbox wait may
    /// nondeterministically give up with a `Timeout`.
    pub timeouts: bool,
}

/// Where the single recycled buffer of one directed link currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Loc {
    /// In the sender's stash (before the first send of the solve).
    Stash,
    /// Held by the sender between acquiring and depositing.
    TxHeld,
    /// In the data mailbox, carrying the row of half-iteration `seq`.
    Data(u8),
    /// Held by the receiver between taking and returning.
    RxHeld,
    /// In the buffer-return mailbox, ready for the sender to reclaim.
    Ret,
    /// Dropped because the return leg found the sender gone.
    Gone,
}

/// How a worker's run ended (mirrors `parallel::WorkerEnd`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// Still executing its script.
    Running,
    /// Completed every half-iteration.
    Done,
    /// The injected death fired.
    Dead,
    /// Observed `Disconnected` — the typed `WorkerDied` path.
    Lost,
    /// Gave up a bounded wait — the typed `ExchangeTimeout` path.
    TimedOut,
}

/// One atomic mailbox micro-operation of a worker's script.
#[derive(Debug, Clone, Copy)]
struct Micro {
    kind: MicroKind,
    /// Neighbour pair index: link pair `i` joins ranks `i` and `i+1`.
    pair: usize,
    /// Direction within the pair: 0 = down (`i -> i+1`), 1 = up.
    dir: usize,
    /// The neighbouring rank this op talks to.
    peer: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MicroKind {
    /// Sender reclaims its buffer (stash or the return mailbox).
    Acquire,
    /// Sender deposits the filled row into the data mailbox.
    Deposit,
    /// Receiver takes the row out of the data mailbox.
    Take,
    /// Receiver pushes the buffer into the return mailbox.
    Return,
}

/// Expands the solver's per-half exchange script into mailbox micro-ops.
fn micro_script(rank: usize, ranks: usize) -> Vec<Micro> {
    let mut micros = Vec::new();
    for op in half_iteration_script(rank, ranks) {
        let (peer, kinds): (usize, [MicroKind; 2]) = match op {
            ExchangeOp::Send(p) => (p.rank_of(rank), [MicroKind::Acquire, MicroKind::Deposit]),
            ExchangeOp::Recv(p) => (p.rank_of(rank), [MicroKind::Take, MicroKind::Return]),
        };
        let (pair, dir) = match op {
            // Sending up travels pair `rank-1` in the up direction;
            // sending down travels pair `rank` downward. Receives use the
            // opposite direction of the same pair.
            ExchangeOp::Send(Peer::Up) => (rank - 1, 1),
            ExchangeOp::Send(Peer::Down) => (rank, 0),
            ExchangeOp::Recv(Peer::Up) => (rank - 1, 0),
            ExchangeOp::Recv(Peer::Down) => (rank, 1),
        };
        for kind in kinds {
            micros.push(Micro {
                kind,
                pair,
                dir,
                peer,
            });
        }
    }
    micros
}

/// Global model state: fully explicit, hashable, fixed-size.
#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    status: [Status; MAX_RANKS],
    /// Per worker: current half-iteration (0..halves).
    half: [u8; MAX_RANKS],
    /// Per worker: index into its micro script for the current half.
    op: [u8; MAX_RANKS],
    /// Buffer location per link pair and direction.
    links: [[Loc; 2]; MAX_RANKS - 1],
}

/// The result of one exhaustive exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Configuration explored.
    pub config: ModelConfig,
    /// Shared exploration accounting, including any
    /// [`Violation`](crate::mc::Violation).
    pub stats: ExploreStats,
    /// Terminal states in which every worker completed healthily.
    pub all_done_terminals: u64,
    /// Terminal states in which some survivor observed `Disconnected`.
    pub lost_observed_terminals: u64,
}

impl Report {
    /// True when the exploration finished without any violation.
    pub fn holds(&self) -> bool {
        self.stats.holds()
    }
}

/// What one enabled transition does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// Execute the worker's next micro-op.
    Advance(usize),
    /// The worker's injected death fires.
    Die(usize),
    /// The worker observes `Disconnected` on its current op.
    Disconnect(usize),
    /// The worker's bounded wait expires (timeout mode only).
    Timeout(usize),
}

struct Model {
    config: ModelConfig,
    scripts: Vec<Vec<Micro>>,
}

impl Model {
    fn new(config: ModelConfig) -> Self {
        let scripts = (0..config.ranks)
            .map(|r| micro_script(r, config.ranks))
            .collect();
        Self { config, scripts }
    }

    /// The owner ranks of a directed link: (sender, receiver).
    fn endpoints(pair: usize, dir: usize) -> (usize, usize) {
        if dir == 0 {
            (pair, pair + 1) // down: i -> i+1
        } else {
            (pair + 1, pair) // up: i+1 -> i
        }
    }

    fn kill_fires(&self, rank: usize, half: usize) -> bool {
        self.config
            .kill
            .is_some_and(|d| d.rank == rank && d.at_half_iteration == half)
    }

    /// A worker no longer holding its endpoints: exited for any reason.
    fn hung_up(status: Status) -> bool {
        !matches!(status, Status::Running)
    }
}

impl TransitionSystem for Model {
    type State = State;
    type Action = Step;

    fn initial(&self) -> State {
        State {
            status: [Status::Running; MAX_RANKS],
            half: [0; MAX_RANKS],
            op: [0; MAX_RANKS],
            links: [[Loc::Stash; 2]; MAX_RANKS - 1],
        }
    }

    /// All transitions enabled in `state`, in deterministic rank order.
    fn enabled(&self, state: &State) -> Vec<Step> {
        let mut steps = Vec::new();
        for rank in 0..self.config.ranks {
            if state.status[rank] != Status::Running {
                continue;
            }
            let half = state.half[rank] as usize;
            if half >= self.config.halves {
                // Script exhausted: completing is the worker's only step;
                // modelled in `apply` via Advance.
                steps.push(Step::Advance(rank));
                continue;
            }
            if state.op[rank] == 0 && self.kill_fires(rank, half) {
                steps.push(Step::Die(rank));
                continue;
            }
            let micro = self.scripts[rank][state.op[rank] as usize];
            let loc = state.links[micro.pair][micro.dir];
            let peer_gone = Self::hung_up(state.status[micro.peer]);
            let (runnable, blocked_is_disconnect) = match micro.kind {
                // Acquire succeeds from the stash or the return slot; a
                // buffer still in flight blocks; a hung-up peer with no
                // returned buffer is a disconnect (`returns` closed).
                MicroKind::Acquire => (matches!(loc, Loc::Stash | Loc::Ret), peer_gone),
                // Deposit: the single circulating buffer guarantees the
                // data slot is free, but a hung-up receiver means the
                // mailbox is closed — send always fails then.
                MicroKind::Deposit => (!peer_gone, peer_gone),
                // Take drains a buffered row even from a closed mailbox;
                // an empty slot with a hung-up sender is a disconnect.
                MicroKind::Take => (matches!(loc, Loc::Data(_)), peer_gone),
                // Return never blocks: slot free by the single-buffer
                // invariant; a hung-up sender just drops the buffer.
                MicroKind::Return => (true, false),
            };
            if runnable {
                steps.push(Step::Advance(rank));
            } else if blocked_is_disconnect {
                steps.push(Step::Disconnect(rank));
            } else if self.config.timeouts {
                steps.push(Step::Timeout(rank));
            }
            // Otherwise: blocked, waiting for the peer — no step.
        }
        steps
    }

    /// Applies `step`, returning the successor state, or a violation
    /// message when a safety property breaks inside the step.
    fn apply(&self, state: &State, step: Step) -> Result<State, String> {
        let mut next = state.clone();
        match step {
            Step::Die(rank) => next.status[rank] = Status::Dead,
            Step::Disconnect(rank) => next.status[rank] = Status::Lost,
            Step::Timeout(rank) => next.status[rank] = Status::TimedOut,
            Step::Advance(rank) => {
                let half = next.half[rank] as usize;
                if half >= self.config.halves {
                    next.status[rank] = Status::Done;
                    return Ok(next);
                }
                let micro = self.scripts[rank][next.op[rank] as usize];
                let loc = &mut next.links[micro.pair][micro.dir];
                match micro.kind {
                    MicroKind::Acquire => {
                        debug_assert!(matches!(*loc, Loc::Stash | Loc::Ret));
                        *loc = Loc::TxHeld;
                    }
                    MicroKind::Deposit => {
                        if !matches!(*loc, Loc::TxHeld) {
                            return Err(format!(
                                "model invariant: deposit by rank {rank} without holding the buffer (loc {loc:?})"
                            ));
                        }
                        *loc = Loc::Data(next.half[rank]);
                    }
                    MicroKind::Take => {
                        let Loc::Data(seq) = *loc else {
                            return Err(format!(
                                "model invariant: take by rank {rank} from empty slot"
                            ));
                        };
                        if seq != next.half[rank] {
                            return Err(format!(
                                "delivery violation: rank {rank} expected the row of half-iteration {} but received half-iteration {seq} (lost or duplicated message)",
                                next.half[rank]
                            ));
                        }
                        *loc = Loc::RxHeld;
                    }
                    MicroKind::Return => {
                        debug_assert!(matches!(*loc, Loc::RxHeld));
                        let (sender, _) = Self::endpoints(micro.pair, micro.dir);
                        *loc = if Self::hung_up(next.status[sender]) {
                            Loc::Gone
                        } else {
                            Loc::Ret
                        };
                    }
                }
                next.op[rank] += 1;
                if next.op[rank] as usize >= self.scripts[rank].len() {
                    next.op[rank] = 0;
                    next.half[rank] += 1;
                    if next.half[rank] as usize >= self.config.halves {
                        next.status[rank] = Status::Done;
                    }
                }
            }
        }
        Ok(next)
    }

    fn describe(&self, state: &State, step: Step) -> String {
        match step {
            Step::Die(r) => format!("worker {r}: injected death fires"),
            Step::Disconnect(r) => format!("worker {r}: observes Disconnected"),
            Step::Timeout(r) => format!("worker {r}: bounded wait expires"),
            Step::Advance(r) => {
                let half = state.half[r];
                if (half as usize) >= self.config.halves {
                    return format!("worker {r}: completes");
                }
                let micro = self.scripts[r][state.op[r] as usize];
                format!(
                    "worker {r} half {half}: {:?} on pair {} dir {} (peer {})",
                    micro.kind, micro.pair, micro.dir, micro.peer
                )
            }
        }
    }
}

/// Exhaustively explores every interleaving of `config` and checks all
/// properties. Deterministic: identical configs produce identical
/// reports.
///
/// # Panics
///
/// Panics if `config.ranks` is outside `2..=MAX_RANKS` or
/// `config.halves` is outside `1..=MAX_HALVES` — configuration errors,
/// not model failures.
pub fn check(config: ModelConfig) -> Report {
    assert!(
        (2..=MAX_RANKS).contains(&config.ranks),
        "ranks must be 2..={MAX_RANKS}"
    );
    assert!(
        (1..=MAX_HALVES).contains(&config.halves),
        "halves must be 1..={MAX_HALVES}"
    );
    let model = Model::new(config);
    let mut all_done_terminals = 0u64;
    let mut lost_observed_terminals = 0u64;
    let stats = mc::explore(&model, &mc::Budget::default(), |state: &State| {
        // Quiescent: either all workers exited (terminal) or a live
        // worker waits forever (deadlock).
        let live = (0..config.ranks).any(|r| state.status[r] == Status::Running);
        if live {
            return Err(format!(
                "deadlock: workers {:?} blocked with no enabled transition",
                &state.status[..config.ranks]
            ));
        }
        let statuses = &state.status[..config.ranks];
        if statuses.iter().all(|s| *s == Status::Done) {
            all_done_terminals += 1;
            // Healthy completion must leave no undelivered row.
            let leftover = state.links[..config.ranks - 1]
                .iter()
                .flatten()
                .any(|l| matches!(l, Loc::Data(_)));
            if leftover {
                return Err(
                    "lost message: all workers done but a row is still in flight".to_string(),
                );
            }
        }
        if statuses.contains(&Status::Lost) {
            lost_observed_terminals += 1;
        }
        match check_terminal(&model, state) {
            Some(v) => Err(v),
            None => Ok(()),
        }
    });
    Report {
        config,
        stats,
        all_done_terminals,
        lost_observed_terminals,
    }
}

/// Terminal-state property checks beyond deadlock and delivery.
fn check_terminal(model: &Model, state: &State) -> Option<String> {
    let config = model.config;
    let statuses = &state.status[..config.ranks];
    if config.timeouts {
        // With nondeterministic timeouts the run may collapse before an
        // injected death fires, so only the weak property holds: every
        // worker ends in a typed terminal state.
        let all_typed = statuses.iter().all(|s| {
            matches!(
                s,
                Status::Done | Status::Dead | Status::Lost | Status::TimedOut
            )
        });
        if !all_typed {
            return Some(format!(
                "timeout run ended with an untyped worker state: {statuses:?}"
            ));
        }
        return None;
    }
    let kill_active = config
        .kill
        .is_some_and(|d| d.rank < config.ranks && d.at_half_iteration < config.halves);
    if let (Some(d), true) = (config.kill, kill_active) {
        if statuses[d.rank] != Status::Dead {
            return Some(format!(
                "injected death of rank {} at half {} never fired (terminal statuses {statuses:?})",
                d.rank, d.at_half_iteration
            ));
        }
        // A survivor distant from the dead rank may legitimately finish
        // all its half-iterations before the failure cascade reaches it
        // (e.g. kill an edge rank at the last half of a 3-rank chain),
        // so `Done` is an acceptable survivor outcome. What is *not*
        // acceptable is a survivor stuck in an untyped state.
        let survivors_typed = statuses
            .iter()
            .enumerate()
            .filter(|(r, _)| *r != d.rank)
            .all(|(_, s)| matches!(s, Status::Done | Status::Lost | Status::TimedOut));
        if !survivors_typed {
            return Some(format!(
                "a survivor of rank {}'s death ended in an untyped state (terminal statuses {statuses:?})",
                d.rank
            ));
        }
        if config.ranks > 1 && !statuses.contains(&Status::Lost) {
            return Some(format!(
                "no survivor observed Disconnected after rank {}'s death (terminal statuses {statuses:?})",
                d.rank
            ));
        }
    } else if !config.timeouts {
        // Healthy, patient: the only terminal is everyone Done.
        if !statuses.iter().all(|s| *s == Status::Done) {
            return Some(format!(
                "healthy patient run ended with non-Done workers: {statuses:?}"
            ));
        }
    } else {
        // Healthy with timeouts: every worker must end typed.
        let all_typed = statuses
            .iter()
            .all(|s| matches!(s, Status::Done | Status::Lost | Status::TimedOut));
        if !all_typed {
            return Some(format!(
                "timeout run ended with an untyped worker state: {statuses:?}"
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ranks: usize, halves: usize) -> ModelConfig {
        ModelConfig {
            ranks,
            halves,
            kill: None,
            timeouts: false,
        }
    }

    #[test]
    fn two_ranks_two_halves_patient_is_deadlock_free() {
        let report = check(cfg(2, 2));
        assert!(report.holds(), "{:?}", report.stats.violation);
        assert!(report.stats.states > 10);
        assert!(report.stats.terminals >= 1);
        assert_eq!(report.stats.terminals, report.all_done_terminals);
    }

    #[test]
    fn three_ranks_patient_is_deadlock_free() {
        let report = check(cfg(3, 2));
        assert!(report.holds(), "{:?}", report.stats.violation);
    }

    #[test]
    fn kill_reaches_typed_worker_died_in_every_schedule() {
        for rank in 0..2 {
            for half in 0..2 {
                let report = check(ModelConfig {
                    kill: Some(WorkerDeath {
                        rank,
                        at_half_iteration: half,
                    }),
                    ..cfg(2, 2)
                });
                assert!(
                    report.holds(),
                    "kill {rank}@{half}: {:?}",
                    report.stats.violation
                );
                assert_eq!(
                    report.stats.terminals, report.lost_observed_terminals,
                    "kill {rank}@{half}: some schedule missed the WorkerDied path"
                );
            }
        }
    }

    #[test]
    fn kill_past_the_horizon_never_fires() {
        let report = check(ModelConfig {
            kill: Some(WorkerDeath {
                rank: 0,
                at_half_iteration: 2,
            }),
            ..cfg(2, 2)
        });
        assert!(report.holds(), "{:?}", report.stats.violation);
        assert_eq!(report.stats.terminals, report.all_done_terminals);
    }

    #[test]
    fn timeout_mode_reaches_quiescence_everywhere() {
        let report = check(ModelConfig {
            timeouts: true,
            ..cfg(2, 2)
        });
        assert!(report.holds(), "{:?}", report.stats.violation);
        // With timeouts enabled there are both healthy and degraded
        // terminals; every one is typed (checked inside).
        assert!(report.all_done_terminals >= 1);
        assert!(report.stats.terminals > report.all_done_terminals);
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = check(cfg(3, 2));
        let b = check(cfg(3, 2));
        assert_eq!(a.stats.states, b.stats.states);
        assert_eq!(a.stats.transitions, b.stats.transitions);
        assert_eq!(a.stats.terminals, b.stats.terminals);
    }
}
