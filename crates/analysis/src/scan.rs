//! Token-aware masking of Rust source: a hand-rolled, std-only scanner
//! that blanks out string/char-literal contents and lifts comments into a
//! side channel, so the lint matchers in [`crate::lints`] can search for
//! code patterns with plain substring logic and *never* fire inside a
//! string, a comment, or a doc example.
//!
//! The scanner is a character-level state machine, not a full parser. It
//! understands exactly the lexical features that matter for masking:
//!
//! * line comments (`//`, `///`, `//!`) and (nested) block comments,
//! * string literals with escapes, including multi-line strings,
//! * raw strings `r"…"`, `r#"…"#`, … and their byte variants,
//! * byte strings `b"…"` and char/byte-char literals `'x'`, `b'\n'`,
//! * lifetimes (`'a`) vs. char literals, the classic ambiguity.
//!
//! On top of the masked text, [`analyze_regions`] runs a brace-depth
//! pass that marks which lines live inside `#[cfg(test)]` items and
//! which live inside trait `impl … for …` blocks — the two region kinds
//! the lint scoping rules care about.

/// One source line after masking.
#[derive(Debug, Clone)]
pub struct MaskedLine {
    /// The line's code with string/char contents and comments replaced by
    /// spaces. Columns are preserved, so byte offsets into `code` match
    /// the original source line.
    pub code: String,
    /// The comment text carried by this line (without the `//`/`/*`
    /// markers), used for `tidy:allow` suppressions.
    pub comment: String,
    /// True when the line carries a doc comment (`///`, `//!`, `/**`).
    pub is_doc: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Normal,
    LineComment { doc: bool },
    BlockComment { depth: u32, doc: bool },
    Str,
    RawStr { hashes: u32 },
    CharLit,
}

/// Masks `src` into per-line code/comment channels. Never fails: on
/// unterminated constructs the open mode simply runs to end of file,
/// which is the useful behaviour for a linter.
pub fn mask_source(src: &str) -> Vec<MaskedLine> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut is_doc = false;
    let mut mode = Mode::Normal;
    let mut i = 0usize;

    macro_rules! flush_line {
        () => {
            lines.push(MaskedLine {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                is_doc: std::mem::take(&mut is_doc),
            });
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if let Mode::LineComment { .. } = mode {
                mode = Mode::Normal;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match mode {
            Mode::Normal => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        let third = chars.get(i + 2).copied();
                        let fourth = chars.get(i + 3).copied();
                        let doc = (third == Some('/') && fourth != Some('/')) || third == Some('!');
                        is_doc |= doc;
                        mode = Mode::LineComment { doc };
                        // Consume the doc marker (`///` or `//!`) so the
                        // lifted comment text starts at the payload.
                        let consumed = if doc { 3 } else { 2 };
                        for _ in 0..consumed {
                            code.push(' ');
                        }
                        i += consumed;
                    }
                    '/' if next == Some('*') => {
                        let third = chars.get(i + 2).copied();
                        let doc = third == Some('*') && chars.get(i + 3).copied() != Some('*')
                            || third == Some('!');
                        is_doc |= doc;
                        mode = Mode::BlockComment { depth: 1, doc };
                        code.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        mode = Mode::Str;
                        code.push('"');
                        i += 1;
                    }
                    'r' | 'b' if starts_raw_string(&chars, i) => {
                        let (hashes, consumed) = raw_string_open(&chars, i);
                        for _ in 0..consumed {
                            code.push(' ');
                        }
                        code.pop();
                        code.push('"');
                        mode = Mode::RawStr { hashes };
                        i += consumed;
                    }
                    'b' if next == Some('"') => {
                        code.push(' ');
                        code.push('"');
                        mode = Mode::Str;
                        i += 2;
                    }
                    'b' if next == Some('\'') => {
                        code.push(' ');
                        code.push('\'');
                        mode = Mode::CharLit;
                        i += 2;
                    }
                    '\'' => {
                        if is_char_literal(&chars, i) {
                            mode = Mode::CharLit;
                        }
                        code.push('\'');
                        i += 1;
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                }
            }
            Mode::LineComment { .. } => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            Mode::BlockComment { depth, doc } => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    code.push_str("  ");
                    i += 2;
                    if depth == 1 {
                        mode = Mode::Normal;
                    } else {
                        mode = Mode::BlockComment {
                            depth: depth - 1,
                            doc,
                        };
                    }
                } else if c == '/' && next == Some('*') {
                    comment.push_str("/*");
                    code.push_str("  ");
                    i += 2;
                    mode = Mode::BlockComment {
                        depth: depth + 1,
                        doc,
                    };
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::Str => {
                let next = chars.get(i + 1).copied();
                if c == '\\' && next.is_some() {
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Normal;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr { hashes } => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                    mode = Mode::Normal;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::CharLit => {
                let next = chars.get(i + 1).copied();
                if c == '\\' && next.is_some() {
                    code.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    code.push('\'');
                    mode = Mode::Normal;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    flush_line!();
    lines
}

/// True when position `i` (an `r` or `b`) opens a raw string: `r"`,
/// `r#…#"`, `br"`, `br#…#"`. Requires an identifier boundary before `i`
/// so identifiers ending in `r`/`b` are never misread.
fn starts_raw_string(chars: &[char], i: usize) -> bool {
    if i > 0 && is_ident_char(chars[i - 1]) {
        return false;
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j).copied() != Some('r') {
            return false;
        }
    }
    if chars.get(j).copied() != Some('r') {
        return false;
    }
    j += 1;
    while chars.get(j).copied() == Some('#') {
        j += 1;
    }
    chars.get(j).copied() == Some('"')
}

/// Returns (hash count, chars consumed through the opening quote).
fn raw_string_open(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    j += 1; // the 'r'
    let mut hashes = 0u32;
    while chars.get(j).copied() == Some('#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j + 1 - i)
}

fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k).copied() == Some('#'))
}

/// Distinguishes a char literal from a lifetime at a `'`: a backslash
/// escape or a `'x'` pattern is a literal; anything else (`'a`, `'_`,
/// `'static`) is a lifetime or loop label.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1).copied() {
        Some('\\') => true,
        Some(_) => chars.get(i + 2).copied() == Some('\''),
        None => false,
    }
}

/// True for characters that can appear in a Rust identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Per-line region classification computed from the masked code.
#[derive(Debug, Clone)]
pub struct Regions {
    /// Line is inside a `#[cfg(test)]` module or function.
    pub in_test: Vec<bool>,
    /// Line is inside a trait implementation (`impl Trait for Type`).
    pub in_trait_impl: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum RegionKind {
    Test,
    TraitImpl,
    Other,
}

/// Classifies each line of the masked file. A single forward pass tracks
/// brace depth; at every `{` the tokens seen since the last `{`, `}` or
/// `;` decide what region opens: a `mod`/`fn` item carrying a
/// `#[cfg(test)]` or `#[test]` attribute opens a test region, and an
/// `impl … for …` header opens a trait-impl region. Regions nest; a line
/// is "in test" when any enclosing region is.
pub fn analyze_regions(lines: &[MaskedLine]) -> Regions {
    let mut in_test = vec![false; lines.len()];
    let mut in_trait_impl = vec![false; lines.len()];
    let mut stack: Vec<RegionKind> = Vec::new();
    // Tokens accumulated since the last item boundary.
    let mut pending = String::new();

    for (lineno, line) in lines.iter().enumerate() {
        in_test[lineno] = stack.contains(&RegionKind::Test);
        in_trait_impl[lineno] = stack.contains(&RegionKind::TraitImpl);
        for c in line.code.chars() {
            match c {
                '{' => {
                    let kind = classify_header(&pending);
                    if kind != RegionKind::Other {
                        // The opening line belongs to the region too.
                        match kind {
                            RegionKind::Test => in_test[lineno] = true,
                            RegionKind::TraitImpl => in_trait_impl[lineno] = true,
                            RegionKind::Other => {}
                        }
                    }
                    stack.push(kind);
                    pending.clear();
                }
                '}' => {
                    stack.pop();
                    pending.clear();
                }
                ';' => pending.clear(),
                _ => pending.push(c),
            }
        }
        // Re-evaluate after the line: a `{` earlier on this line may have
        // opened a region covering the line's tail; keep the stronger of
        // the two evaluations.
        in_test[lineno] |= stack.contains(&RegionKind::Test);
        in_trait_impl[lineno] |= stack.contains(&RegionKind::TraitImpl);
    }
    Regions {
        in_test,
        in_trait_impl,
    }
}

fn classify_header(pending: &str) -> RegionKind {
    let has_cfg_test = pending.contains("#[cfg(test)]") || has_word(pending, "#[test]");
    if has_cfg_test && (has_word(pending, "mod") || has_word(pending, "fn")) {
        return RegionKind::Test;
    }
    if has_word(pending, "impl") && has_word(pending, "for") {
        return RegionKind::TraitImpl;
    }
    RegionKind::Other
}

/// True when `word` occurs in `hay` at identifier boundaries.
pub fn has_word(hay: &str, word: &str) -> bool {
    find_word(hay, word, 0).is_some()
}

/// Finds the next occurrence of `word` in `hay` at identifier boundaries,
/// starting at byte offset `from`.
pub fn find_word(hay: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut start = from;
    while let Some(pos) = hay[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1] as char);
        let end = at + word.len();
        let first = word.chars().next().map(is_ident_char).unwrap_or(false);
        let last = word.chars().last().map(is_ident_char).unwrap_or(false);
        let after_ok = end >= hay.len() || !is_ident_char(bytes[end] as char);
        // Only enforce the boundary on sides where the pattern itself is
        // identifier-like (e.g. `.unwrap()` needs no left boundary).
        if (!first || before_ok) && (!last || after_ok) {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_string_contents_but_keeps_columns() {
        let lines = mask_source("let x = \"Instant::now()\"; x.len()");
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].code.contains("Instant"));
        assert!(lines[0].code.contains("x.len()"));
        assert_eq!(
            lines[0].code.len(),
            "let x = \"Instant::now()\"; x.len()".len()
        );
    }

    #[test]
    fn masks_line_and_block_comments() {
        let lines = mask_source("a(); // .unwrap() here\nb(); /* .expect( */ c();");
        assert!(!lines[0].code.contains("unwrap"));
        assert_eq!(lines[0].comment.trim(), ".unwrap() here");
        assert!(!lines[1].code.contains("expect"));
        assert!(lines[1].code.contains("c();"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let lines = mask_source("/* outer /* inner */ still */ code()");
        assert!(lines[0].code.contains("code()"));
        assert!(!lines[0].code.contains("outer"));
        assert!(!lines[0].code.contains("still"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let lines = mask_source("let s = r#\"has \"quotes\" and .unwrap()\"#; t()");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("t()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = mask_source("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(lines[0].code.contains("str"));
        let lines = mask_source("let c = 'x'; let d = '\\n'; done()");
        assert!(lines[0].code.contains("done()"));
        assert!(!lines[0].code.contains('x'));
    }

    #[test]
    fn doc_comments_are_flagged_and_lifted() {
        let lines = mask_source("/// # Errors\npub fn f() {}");
        assert!(lines[0].is_doc);
        assert_eq!(lines[0].comment.trim(), "# Errors");
        assert!(!lines[1].is_doc);
    }

    #[test]
    fn test_regions_cover_cfg_test_modules() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { v.unwrap(); }\n}\npub fn after() {}\n";
        let lines = mask_source(src);
        let regions = analyze_regions(&lines);
        assert!(!regions.in_test[0]);
        assert!(regions.in_test[3]);
        assert!(!regions.in_test[5]);
    }

    #[test]
    fn trait_impl_regions() {
        let src = "impl std::fmt::Display for X {\n    fn fmt(&self) -> fmt::Result { Ok(()) }\n}\nimpl X {\n    pub fn inherent(&self) -> Result<(), E> { Ok(()) }\n}\n";
        let lines = mask_source(src);
        let regions = analyze_regions(&lines);
        assert!(regions.in_trait_impl[1]);
        assert!(!regions.in_trait_impl[4]);
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(has_word("impl Display for X", "for"));
        assert!(!has_word("information", "for"));
        assert!(has_word("x.unwrap()", ".unwrap()"));
    }
}
