//! Bounded, exhaustive model checking of the lock-free serving path.
//!
//! PR 7–9 put the prediction path behind shared-memory concurrency:
//! `EpochSwap` publishes snapshots into a slot ring behind a
//! Release/Acquire epoch word, `EpochCache` guards its shards with
//! per-shard epochs cleared by `bump_to`'s fetch_max-then-sweep, and
//! `Admission` hands out RAII miss permits from a token counter. Their
//! correctness was pinned by race regression tests — schedules *sampled*
//! by spawning threads. This module *enumerates* the schedules instead:
//! an abstract model of exactly those atomics, explored across every
//! interleaving at small bounds on the shared [`mc`](crate::mc) kernel.
//!
//! ## The model
//!
//! One writer thread publishes epochs `1..=epochs` into a 2-slot ring
//! (the real ring has 8 slots; only the index arithmetic differs, so a
//! smaller ring reaches the lapped-slot path at checkable bounds). Each
//! publish is three micro-steps — write the slot's epoch tag, write its
//! value, store the epoch word — because that is what the Release fence
//! orders: both slot writes happen-before the word store. The epoch word
//! store also refills admission tokens, mirroring the ingest tick.
//! `bump_to(e)` runs as its own task per published epoch (the real
//! `bump_to` is callable concurrently): one fetch_max micro-step on the
//! cache epoch word, then one sweep micro-step per shard under that
//! shard's lock. N identical reader threads each run one query per
//! shard: load the epoch word, validate the ring slot, probe the
//! shard (hit ends the query), and on a miss take an admission token,
//! enter the inflight gauge (rolling back over the cap), insert under
//! the shard lock, and release the permit.
//!
//! Values are abstracted to the epoch that produced them, so every
//! cached or loaded value carries its provenance and the checker can
//! compare it against the epoch the reader is serving.
//!
//! ## Checked invariants
//!
//! * **no torn or reclaimed reads** — a reader that validates a slot for
//!   epoch `e` always observes the value written under `e`;
//! * **no cross-epoch hits** — a cache hit never returns a value
//!   inserted under a different epoch (the PR-7 TOCTOU, now a theorem at
//!   model scale);
//! * **epoch monotonicity** — the cache epoch word never regresses, even
//!   under racing bumps;
//! * **permit balance** — every admission permit granted is released
//!   exactly once: no leak, no double-spend, inflight drains to zero;
//! * **convergence** — at quiescence every shard sits at the final
//!   epoch with no stale entry surviving.
//!
//! ## Negative controls
//!
//! [`Variant`] seeds the historical (or plausible) bugs back into the
//! model: dropping the shard-lock epoch compare on insert
//! ([`Variant::NoShardEpochCheck`], the TOCTOU), publishing the epoch
//! word before the slot value lands ([`Variant::NoReleaseFence`]),
//! replacing fetch_max with a plain store ([`Variant::NoFetchMax`]), and
//! skipping the over-cap inflight rollback
//! ([`Variant::NoInflightRollback`]). Each must produce a violation, and
//! [`minimal_counterexample`] reconstructs the shortest schedule that
//! exhibits it.
//!
//! ## Conformance
//!
//! The model would prove nothing if it drifted from the implementation,
//! so [`replay`] walks any explored schedule step-for-step against a
//! [`ServingHarness`] — the trait-level instrumentation hook the real
//! `EpochSwap`/`EpochCache`/`Admission` implement via their probe seams
//! — asserting at every step that the implementation observes exactly
//! what the model predicts (epoch loads, slot validation, hit/miss,
//! admission outcomes).

use crate::mc::{self, ExploreStats, TransitionSystem, Violation};

/// Upper bound on reader threads the fixed-size state encoding supports.
pub const MAX_READERS: usize = 3;
/// Upper bound on cache shards (one query key per shard).
pub const MAX_SHARDS: usize = 3;
/// Upper bound on published epochs.
pub const MAX_EPOCHS: usize = 3;
/// Ring slots in the model (the real `EpochSwap` uses 8; see module docs).
pub const RING: usize = 2;
/// Sentinel for an unbounded token pool or inflight cap.
pub const UNBOUNDED: u8 = u8::MAX;

/// Which semantics the model runs: the faithful protocol or one seeded
/// bug per negative control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The protocol as implemented.
    Correct,
    /// Insert skips the under-shard-lock epoch compare (the PR-7
    /// TOCTOU): a stale insert can land after a bump's sweep.
    NoShardEpochCheck,
    /// The epoch word store is reordered before the slot value write —
    /// what dropping the Release/Acquire pair permits.
    NoReleaseFence,
    /// `bump_to` stores the epoch word instead of fetch_max-ing it, so
    /// racing bumps can regress it.
    NoFetchMax,
    /// The over-cap admission path forgets the inflight rollback,
    /// leaking a permit.
    NoInflightRollback,
}

/// One checker configuration: thread counts, horizon, admission limits,
/// and the model variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SvcConfig {
    /// Reader threads (1..=3). Readers are identical, so the kernel's
    /// symmetry reduction sorts them into a canonical order.
    pub readers: usize,
    /// Cache shards, one query key each (1..=3).
    pub shards: usize,
    /// Epochs the writer publishes (1..=3; 3 laps the 2-slot ring).
    pub epochs: usize,
    /// Miss tokens refilled at each publish; [`UNBOUNDED`] disables the
    /// token gate.
    pub tokens: u8,
    /// Inflight-miss cap; [`UNBOUNDED`] disables the gauge cap.
    pub max_inflight: u8,
    /// Faithful protocol or a seeded negative control.
    pub variant: Variant,
}

impl SvcConfig {
    /// A correct-variant configuration with unbounded admission.
    pub fn new(readers: usize, shards: usize, epochs: usize) -> Self {
        Self {
            readers,
            shards,
            epochs,
            tokens: UNBOUNDED,
            max_inflight: UNBOUNDED,
            variant: Variant::Correct,
        }
    }

    /// Bounds the admission token pool and inflight cap.
    pub fn with_admission(mut self, tokens: u8, max_inflight: u8) -> Self {
        self.tokens = tokens;
        self.max_inflight = max_inflight;
        self
    }

    /// Selects a model variant (negative controls).
    pub fn with_variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }
}

/// One ring slot: the epoch tag and the value, written separately so
/// the fence (or its absence) is visible to readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Slot {
    tag: u8,
    val: u8,
}

/// One cache shard: its epoch and the single keyed entry, holding the
/// epoch tag of the cached value (0 = empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Shard {
    epoch: u8,
    entry: u8,
}

/// A reader thread's program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Rpc {
    /// Acquire-load the epoch word (blocked until the first publish).
    Load,
    /// Validate the ring slot against the loaded epoch.
    ReadSlot,
    /// Probe the query's shard under the shard lock.
    Probe,
    /// Take a miss token (CAS loop).
    AdmitToken,
    /// Enter the inflight gauge and check the cap.
    AdmitInflight,
    /// Roll the over-cap fetch_add back.
    Rollback,
    /// Insert under the shard lock.
    Insert,
    /// Drop the permit: leave the inflight gauge.
    Release,
    /// Every query finished.
    Done,
}

/// One reader thread's local state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Reader {
    pc: Rpc,
    /// Query index == target shard (one key per shard).
    qi: u8,
    /// The epoch loaded for the current query (0 between queries).
    e: u8,
}

/// Global model state: fully explicit, hashable, fixed-size.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SvcState {
    /// Writer micro-steps completed (3 per epoch).
    wpc: u8,
    /// The `EpochSwap` epoch word.
    word: u8,
    slots: [Slot; RING],
    /// The `EpochCache` epoch word (`bump_to`'s fetch_max target).
    cword: u8,
    /// Per published epoch: bump-task progress. 0 = word step pending,
    /// `1 + k` = sweeping shard `k`, `shards + 1` = done.
    bump: [u8; MAX_EPOCHS],
    shards: [Shard; MAX_SHARDS],
    readers: [Reader; MAX_READERS],
    /// Admission miss tokens ([`UNBOUNDED`] = gate disabled).
    tokens: u8,
    /// Admission inflight gauge.
    inflight: u8,
    /// Permits granted (inflight entries that kept their slot).
    granted: u8,
    /// Permits released.
    released: u8,
}

/// One scheduling choice: which thread executes its next micro-step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// The writer's next publish micro-step.
    Writer,
    /// The bump task of this epoch performs its next micro-step.
    Bumper(u8),
    /// This reader performs its next micro-step.
    Reader(u8),
}

/// What the writer does at one micro-step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriterOp {
    Tag,
    Val,
    Publish,
}

/// The serving-path transition system. Construct via [`Svc::new`], then
/// explore with the [`mc`] kernel or the [`check`]/[`replay`] drivers.
pub struct Svc {
    config: SvcConfig,
}

impl Svc {
    /// Builds the model for `config`.
    ///
    /// # Panics
    ///
    /// Panics if a bound is outside its documented range — a
    /// configuration error, not a model failure.
    pub fn new(config: SvcConfig) -> Self {
        assert!(
            (1..=MAX_READERS).contains(&config.readers),
            "readers must be 1..={MAX_READERS}"
        );
        assert!(
            (1..=MAX_SHARDS).contains(&config.shards),
            "shards must be 1..={MAX_SHARDS}"
        );
        assert!(
            (1..=MAX_EPOCHS).contains(&config.epochs),
            "epochs must be 1..={MAX_EPOCHS}"
        );
        Svc { config }
    }

    /// The writer's op at micro-step `sub` of an epoch. The correct
    /// order writes the whole slot before the word store (the Release
    /// fence); [`Variant::NoReleaseFence`] lets the word store overtake
    /// the value write.
    fn writer_op(&self, sub: u8) -> WriterOp {
        let order = if self.config.variant == Variant::NoReleaseFence {
            [WriterOp::Tag, WriterOp::Publish, WriterOp::Val]
        } else {
            [WriterOp::Tag, WriterOp::Val, WriterOp::Publish]
        };
        order[sub as usize]
    }

    /// True once the writer has executed the word store for `epoch`.
    fn published(&self, state: &SvcState, epoch: u8) -> bool {
        let base = 3 * (epoch - 1);
        let pub_sub = if self.config.variant == Variant::NoReleaseFence {
            1
        } else {
            2
        };
        state.wpc > base + pub_sub
    }

    /// Ends the reader's current query and lines up the next.
    fn finish_query(&self, rd: &mut Reader) {
        rd.qi += 1;
        rd.e = 0;
        rd.pc = if rd.qi as usize >= self.config.shards {
            Rpc::Done
        } else {
            Rpc::Load
        };
    }

    /// Terminal-state checks: quiescence must mean clean completion with
    /// balanced permits and converged shards.
    fn check_terminal(&self, state: &SvcState) -> Result<(), String> {
        let c = &self.config;
        let writer_done = state.wpc as usize == 3 * c.epochs;
        let bumps_done = (0..c.epochs).all(|i| state.bump[i] as usize == c.shards + 1);
        let readers_done = state.readers[..c.readers].iter().all(|r| r.pc == Rpc::Done);
        if !(writer_done && bumps_done && readers_done) {
            return Err(format!(
                "deadlock: quiescent with unfinished threads (writer done: {writer_done}, bumps done: {bumps_done}, readers done: {readers_done})"
            ));
        }
        if state.inflight != 0 {
            return Err(format!(
                "permit-leak: {} admission permit(s) never released at quiescence",
                state.inflight
            ));
        }
        if state.granted != state.released {
            return Err(format!(
                "permit-imbalance: {} permits granted but {} released",
                state.granted, state.released
            ));
        }
        if state.cword as usize != c.epochs {
            return Err(format!(
                "bump-divergence: cache epoch word ended at {}, expected {}",
                state.cword, c.epochs
            ));
        }
        for k in 0..c.shards {
            let sh = state.shards[k];
            if sh.epoch as usize != c.epochs {
                return Err(format!(
                    "sweep-divergence: shard {k} ended at epoch {}, expected {}",
                    sh.epoch, c.epochs
                ));
            }
            if sh.entry != 0 && sh.entry != sh.epoch {
                return Err(format!(
                    "stale-entry: shard {k} still holds a value from epoch {} at epoch {}",
                    sh.entry, sh.epoch
                ));
            }
        }
        Ok(())
    }
}

impl TransitionSystem for Svc {
    type State = SvcState;
    type Action = Action;

    fn initial(&self) -> SvcState {
        let mut readers = [Reader {
            pc: Rpc::Done,
            qi: 0,
            e: 0,
        }; MAX_READERS];
        for rd in readers.iter_mut().take(self.config.readers) {
            rd.pc = Rpc::Load;
        }
        // Bump tasks past the horizon are born done so quiescence does
        // not wait on them.
        let mut bump = [0u8; MAX_EPOCHS];
        for (i, b) in bump.iter_mut().enumerate() {
            if i >= self.config.epochs {
                *b = self.config.shards as u8 + 1;
            }
        }
        SvcState {
            wpc: 0,
            word: 0,
            slots: [Slot { tag: 0, val: 0 }; RING],
            cword: 0,
            bump,
            shards: [Shard { epoch: 0, entry: 0 }; MAX_SHARDS],
            readers,
            tokens: self.config.tokens,
            inflight: 0,
            granted: 0,
            released: 0,
        }
    }

    /// All enabled scheduling choices: writer first, then bump tasks by
    /// epoch, then readers by index — deterministic order.
    fn enabled(&self, state: &SvcState) -> Vec<Action> {
        let c = &self.config;
        let mut steps = Vec::new();
        if (state.wpc as usize) < 3 * c.epochs {
            steps.push(Action::Writer);
        }
        for e in 1..=c.epochs as u8 {
            if self.published(state, e) && (state.bump[e as usize - 1] as usize) <= c.shards {
                steps.push(Action::Bumper(e));
            }
        }
        for (r, rd) in state.readers[..c.readers].iter().enumerate() {
            match rd.pc {
                Rpc::Done => {}
                // A reader spins (parks) until the first publish; the
                // load is only a step once the word is nonzero.
                Rpc::Load if state.word == 0 => {}
                _ => steps.push(Action::Reader(r as u8)),
            }
        }
        steps
    }

    fn apply(&self, state: &SvcState, action: Action) -> Result<SvcState, String> {
        let c = self.config;
        let mut next = state.clone();
        match action {
            Action::Writer => {
                let epoch = next.wpc / 3 + 1;
                match self.writer_op(next.wpc % 3) {
                    WriterOp::Tag => next.slots[epoch as usize % RING].tag = epoch,
                    WriterOp::Val => next.slots[epoch as usize % RING].val = epoch,
                    WriterOp::Publish => {
                        next.word = epoch;
                        // The ingest tick refills miss tokens before it
                        // publishes.
                        next.tokens = c.tokens;
                    }
                }
                next.wpc += 1;
            }
            Action::Bumper(e) => {
                let i = e as usize - 1;
                if next.bump[i] == 0 {
                    let prev = next.cword;
                    let new = if c.variant == Variant::NoFetchMax {
                        e
                    } else {
                        prev.max(e)
                    };
                    if new < prev {
                        return Err(format!(
                            "epoch-regression: cache epoch word regressed from {prev} to {new} under racing bumps"
                        ));
                    }
                    next.cword = new;
                    // fetch_max returning prev >= e means a newer bump
                    // already swept; this one returns without sweeping.
                    next.bump[i] = if c.variant != Variant::NoFetchMax && prev >= e {
                        c.shards as u8 + 1
                    } else {
                        1
                    };
                } else {
                    let k = next.bump[i] as usize - 1;
                    let sh = &mut next.shards[k];
                    if sh.epoch < e {
                        sh.entry = 0;
                        sh.epoch = e;
                    }
                    next.bump[i] += 1;
                }
            }
            Action::Reader(r) => {
                let rd = &mut next.readers[r as usize];
                match rd.pc {
                    Rpc::Load => {
                        rd.e = next.word;
                        rd.pc = Rpc::ReadSlot;
                    }
                    Rpc::ReadSlot => {
                        let slot = next.slots[rd.e as usize % RING];
                        if slot.tag != rd.e {
                            // Lapped or not yet tagged: retry the load,
                            // exactly like the real validation loop.
                            rd.e = 0;
                            rd.pc = Rpc::Load;
                        } else {
                            if slot.val != rd.e {
                                return Err(format!(
                                    "torn-read: reader {r} validated the slot for epoch {} but read a value written under epoch {}",
                                    rd.e, slot.val
                                ));
                            }
                            rd.pc = Rpc::Probe;
                        }
                    }
                    Rpc::Probe => {
                        let sh = next.shards[rd.qi as usize];
                        if sh.epoch == rd.e && sh.entry != 0 {
                            if sh.entry != rd.e {
                                return Err(format!(
                                    "cross-epoch-hit: reader {r} hit a cached value written under epoch {} while serving epoch {}",
                                    sh.entry, rd.e
                                ));
                            }
                            self.finish_query(rd);
                        } else {
                            rd.pc = Rpc::AdmitToken;
                        }
                    }
                    Rpc::AdmitToken => {
                        if next.tokens == 0 {
                            // Shed: the query degrades to uncached-path
                            // behavior; no permit, no insert.
                            self.finish_query(rd);
                        } else {
                            if next.tokens != UNBOUNDED {
                                next.tokens -= 1;
                            }
                            rd.pc = Rpc::AdmitInflight;
                        }
                    }
                    Rpc::AdmitInflight => {
                        next.inflight += 1;
                        next.granted += 1;
                        if c.max_inflight != UNBOUNDED && next.inflight > c.max_inflight {
                            if c.variant == Variant::NoInflightRollback {
                                // Seeded bug: shed without undoing the
                                // fetch_add.
                                self.finish_query(rd);
                            } else {
                                rd.pc = Rpc::Rollback;
                            }
                        } else {
                            rd.pc = Rpc::Insert;
                        }
                    }
                    Rpc::Rollback => {
                        next.inflight -= 1;
                        next.granted -= 1;
                        self.finish_query(rd);
                    }
                    Rpc::Insert => {
                        let sh = &mut next.shards[rd.qi as usize];
                        if c.variant == Variant::NoShardEpochCheck || sh.epoch == rd.e {
                            sh.entry = rd.e;
                        }
                        rd.pc = Rpc::Release;
                    }
                    Rpc::Release => {
                        if next.inflight == 0 {
                            return Err(format!(
                                "double-release: reader {r} released a permit with none outstanding"
                            ));
                        }
                        next.inflight -= 1;
                        next.released += 1;
                        self.finish_query(rd);
                    }
                    Rpc::Done => unreachable!("Done readers are never enabled"),
                }
            }
        }
        Ok(next)
    }

    fn describe(&self, state: &SvcState, action: Action) -> String {
        match action {
            Action::Writer => {
                let epoch = state.wpc / 3 + 1;
                match self.writer_op(state.wpc % 3) {
                    WriterOp::Tag => format!(
                        "writer: tags slot {} for epoch {epoch}",
                        epoch as usize % RING
                    ),
                    WriterOp::Val => format!(
                        "writer: writes the epoch-{epoch} value into slot {}",
                        epoch as usize % RING
                    ),
                    WriterOp::Publish => {
                        format!(
                            "writer: publishes epoch word := {epoch} (Release) and refills tokens"
                        )
                    }
                }
            }
            Action::Bumper(e) => {
                let prog = state.bump[e as usize - 1];
                if prog == 0 {
                    if self.config.variant == Variant::NoFetchMax {
                        format!("bump({e}): stores the cache epoch word (no fetch_max)")
                    } else {
                        format!("bump({e}): fetch_max on the cache epoch word")
                    }
                } else {
                    format!("bump({e}): sweeps shard {} under its lock", prog - 1)
                }
            }
            Action::Reader(r) => {
                let rd = state.readers[r as usize];
                match rd.pc {
                    Rpc::Load => format!("reader {r}: loads epoch word -> {}", state.word),
                    Rpc::ReadSlot => {
                        let slot = state.slots[rd.e as usize % RING];
                        if slot.tag != rd.e {
                            format!(
                                "reader {r}: slot tagged {} != loaded epoch {}, retries",
                                slot.tag, rd.e
                            )
                        } else {
                            format!("reader {r}: validates the slot for epoch {}", rd.e)
                        }
                    }
                    Rpc::Probe => format!("reader {r}: probes shard {} at epoch {}", rd.qi, rd.e),
                    Rpc::AdmitToken => {
                        if state.tokens == 0 {
                            format!("reader {r}: no miss token, sheds the query")
                        } else {
                            format!("reader {r}: takes a miss token")
                        }
                    }
                    Rpc::AdmitInflight => format!("reader {r}: enters the inflight gauge"),
                    Rpc::Rollback => format!("reader {r}: rolls back the over-cap admission"),
                    Rpc::Insert => format!(
                        "reader {r}: inserts into shard {} under epoch {}",
                        rd.qi, rd.e
                    ),
                    Rpc::Release => format!("reader {r}: releases its miss permit"),
                    Rpc::Done => String::from("reader done"),
                }
            }
        }
    }

    /// Symmetry reduction: readers run identical scripts against shared
    /// state that never names a reader, so sorting the reader vector
    /// yields a canonical representative of the symmetry class.
    fn canonical(&self, state: &SvcState) -> SvcState {
        let mut canon = state.clone();
        canon.readers[..self.config.readers].sort_unstable();
        canon
    }
}

/// The result of one exhaustive serving-path exploration.
#[derive(Debug, Clone)]
pub struct SvcReport {
    /// Configuration explored.
    pub config: SvcConfig,
    /// Shared exploration accounting, including any [`Violation`].
    pub stats: ExploreStats,
}

impl SvcReport {
    /// True when the exploration finished without any violation.
    pub fn holds(&self) -> bool {
        self.stats.holds()
    }
}

/// Exhaustively explores every interleaving of `config` and checks all
/// serving-path invariants. Deterministic: identical configs produce
/// identical reports.
pub fn check(config: SvcConfig) -> SvcReport {
    let sys = Svc::new(config);
    let stats = mc::explore(&sys, &mc::Budget::default(), |s| sys.check_terminal(s));
    SvcReport { config, stats }
}

/// Finds the shortest schedule violating any invariant under `config`,
/// or `None` when the configuration holds. Used by the negative-control
/// suites, where a human reads the trace.
pub fn minimal_counterexample(config: SvcConfig) -> Option<Violation> {
    let sys = Svc::new(config);
    mc::shortest_violation(&sys, &mc::Budget::default(), |s| sys.check_terminal(s))
}

/// Harvests up to `limit` explored initial-to-terminal schedules for
/// conformance replay.
pub fn schedules(config: SvcConfig, limit: usize) -> Vec<Vec<Action>> {
    mc::collect_schedules(&Svc::new(config), limit)
}

/// The trait-level instrumentation hook the conformance layer drives.
///
/// Each method is one model micro-step; the real
/// `EpochSwap`/`EpochCache`/`Admission` implement it via their probe
/// seams (`begin_publish`/`commit`, `try_load_at`, `bump_word`,
/// `sweep_shard`, `take_token`/`enter_inflight`/`exit_inflight`), and
/// [`replay`] asserts after every step that the implementation observed
/// exactly what the model predicts.
pub trait ServingHarness {
    /// Stage the slot write for `epoch` (the tag half).
    fn write_slot_tag(&mut self, epoch: u64);
    /// Complete the slot write for `epoch` (the value half).
    fn write_slot_val(&mut self, epoch: u64);
    /// Release-store the epoch word and refill miss tokens.
    fn publish_epoch(&mut self, epoch: u64);
    /// Acquire-load the epoch word.
    fn load_epoch(&mut self) -> u64;
    /// Validate the ring slot for `epoch`; `Some(value)` on success,
    /// `None` when the slot was lapped (retry).
    fn read_slot(&mut self, epoch: u64) -> Option<u64>;
    /// Probe `shard` at `epoch`; `Some(value)` on a hit.
    fn probe(&mut self, shard: usize, epoch: u64) -> Option<u64>;
    /// Take a miss token; false = shed.
    fn take_token(&mut self) -> bool;
    /// Enter the inflight gauge; false = over the cap.
    fn enter_inflight(&mut self) -> bool;
    /// Roll back an over-cap [`Self::enter_inflight`].
    fn rollback_inflight(&mut self);
    /// Insert the epoch-tagged value into `shard` under its lock.
    fn insert(&mut self, shard: usize, epoch: u64);
    /// Release the miss permit.
    fn release_permit(&mut self);
    /// `bump_to`'s fetch_max on the cache epoch word; returns whether
    /// this bump must sweep (the word advanced).
    fn bump_word(&mut self, epoch: u64) -> bool;
    /// Sweep one shard under its lock.
    fn sweep_shard(&mut self, shard: usize, epoch: u64);
}

/// Replays `schedule` step-for-step against `harness`, walking the
/// model alongside and asserting at every step that the implementation
/// agrees with the model's prediction: epoch loads, slot validation,
/// hit/miss outcomes, hit values, admission outcomes, and sweep
/// decisions. Use [`Variant::Correct`] configs — the point is to pin
/// the *implementation* to the *proved* model.
///
/// # Errors
///
/// Returns the first disagreement (or model-level violation) rendered
/// as a human-readable message.
pub fn replay<H: ServingHarness>(
    config: SvcConfig,
    schedule: &[Action],
    harness: &mut H,
) -> Result<(), String> {
    let sys = Svc::new(config);
    let mut state = sys.initial();
    for (i, &action) in schedule.iter().enumerate() {
        let step = sys.describe(&state, action);
        match action {
            Action::Writer => {
                let epoch = u64::from(state.wpc / 3 + 1);
                match sys.writer_op(state.wpc % 3) {
                    WriterOp::Tag => harness.write_slot_tag(epoch),
                    WriterOp::Val => harness.write_slot_val(epoch),
                    WriterOp::Publish => harness.publish_epoch(epoch),
                }
            }
            Action::Bumper(e) => {
                let i = e as usize - 1;
                if state.bump[i] == 0 {
                    let model_sweeps = state.cword < e;
                    let impl_sweeps = harness.bump_word(u64::from(e));
                    if impl_sweeps != model_sweeps {
                        return Err(format!(
                            "conformance step {i} [{step}]: bump_word({e}) swept={impl_sweeps}, model predicts {model_sweeps}"
                        ));
                    }
                } else {
                    harness.sweep_shard(state.bump[i] as usize - 1, u64::from(e));
                }
            }
            Action::Reader(r) => {
                let rd = state.readers[r as usize];
                match rd.pc {
                    Rpc::Load => {
                        let got = harness.load_epoch();
                        if got != u64::from(state.word) {
                            return Err(format!(
                                "conformance step {i} [{step}]: loaded epoch {got}, model predicts {}",
                                state.word
                            ));
                        }
                    }
                    Rpc::ReadSlot => {
                        let slot = state.slots[rd.e as usize % RING];
                        let model_valid = slot.tag == rd.e;
                        let got = harness.read_slot(u64::from(rd.e));
                        match (got, model_valid) {
                            (Some(v), true) if v != u64::from(slot.val) => {
                                return Err(format!(
                                    "conformance step {i} [{step}]: slot value {v}, model predicts {}",
                                    slot.val
                                ));
                            }
                            (Some(_), true) | (None, false) => {}
                            (got, _) => {
                                return Err(format!(
                                    "conformance step {i} [{step}]: slot validation {:?}, model predicts valid={model_valid}",
                                    got.map(|_| "valid")
                                ));
                            }
                        }
                    }
                    Rpc::Probe => {
                        let sh = state.shards[rd.qi as usize];
                        let model_hit = sh.epoch == rd.e && sh.entry != 0;
                        let got = harness.probe(rd.qi as usize, u64::from(rd.e));
                        if got.is_some() != model_hit {
                            return Err(format!(
                                "conformance step {i} [{step}]: hit={}, model predicts {model_hit}",
                                got.is_some()
                            ));
                        }
                        if let Some(v) = got {
                            if v != u64::from(sh.entry) {
                                return Err(format!(
                                    "conformance step {i} [{step}]: hit value from epoch {v}, model predicts {}",
                                    sh.entry
                                ));
                            }
                        }
                    }
                    Rpc::AdmitToken => {
                        let model_grants = state.tokens != 0;
                        let got = harness.take_token();
                        if got != model_grants {
                            return Err(format!(
                                "conformance step {i} [{step}]: take_token={got}, model predicts {model_grants}"
                            ));
                        }
                    }
                    Rpc::AdmitInflight => {
                        let model_within = config.max_inflight == UNBOUNDED
                            || state.inflight < config.max_inflight;
                        let got = harness.enter_inflight();
                        if got != model_within {
                            return Err(format!(
                                "conformance step {i} [{step}]: enter_inflight={got}, model predicts {model_within}"
                            ));
                        }
                    }
                    Rpc::Rollback => harness.rollback_inflight(),
                    Rpc::Insert => harness.insert(rd.qi as usize, u64::from(rd.e)),
                    Rpc::Release => harness.release_permit(),
                    Rpc::Done => {
                        return Err(format!(
                            "conformance step {i}: schedule drives a finished reader {r}"
                        ))
                    }
                }
            }
        }
        state = sys
            .apply(&state, action)
            .map_err(|v| format!("conformance step {i} [{step}]: model violation: {v}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bounds_hold() {
        let report = check(SvcConfig::new(2, 2, 2));
        assert!(report.holds(), "{:?}", report.stats.violation);
        assert!(report.stats.states > 1_000);
        assert!(report.stats.terminals >= 1);
        assert!(!report.stats.truncated);
    }

    #[test]
    fn lapping_the_ring_holds() {
        // 3 epochs on a 2-slot ring: epoch 3 reclaims epoch 1's slot,
        // exercising the retry path of slot validation.
        let report = check(SvcConfig::new(2, 1, 3));
        assert!(report.holds(), "{:?}", report.stats.violation);
    }

    #[test]
    fn admission_pressure_holds() {
        let report = check(SvcConfig::new(2, 2, 2).with_admission(1, 1));
        assert!(report.holds(), "{:?}", report.stats.violation);
    }

    #[test]
    fn toctou_variant_is_refuted_with_a_trace() {
        let config = SvcConfig::new(2, 2, 2).with_variant(Variant::NoShardEpochCheck);
        let report = check(config);
        assert!(!report.holds(), "the seeded TOCTOU must be found");
        let v = minimal_counterexample(config).expect("BFS must find it too");
        assert!(v.kind.starts_with("cross-epoch-hit") || v.kind.starts_with("stale-entry"));
        assert!(!v.trace.is_empty());
    }

    #[test]
    fn dropped_release_fence_is_refuted_with_a_trace() {
        let config = SvcConfig::new(2, 2, 2).with_variant(Variant::NoReleaseFence);
        let report = check(config);
        assert!(!report.holds(), "the dropped fence must be found");
        let v = minimal_counterexample(config).expect("BFS must find it too");
        assert!(v.kind.starts_with("torn-read"), "{}", v.kind);
        assert!(!v.trace.is_empty());
    }

    #[test]
    fn plain_store_bump_is_refuted() {
        let config = SvcConfig::new(1, 1, 2).with_variant(Variant::NoFetchMax);
        let v = minimal_counterexample(config).expect("racing bumps must regress");
        assert!(v.kind.starts_with("epoch-regression"), "{}", v.kind);
    }

    #[test]
    fn missing_rollback_is_refuted() {
        let config = SvcConfig::new(2, 1, 1)
            .with_admission(UNBOUNDED, 1)
            .with_variant(Variant::NoInflightRollback);
        let v = minimal_counterexample(config).expect("the leak must surface");
        assert!(v.kind.starts_with("permit-leak"), "{}", v.kind);
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = check(SvcConfig::new(2, 2, 2));
        let b = check(SvcConfig::new(2, 2, 2));
        assert_eq!(a.stats.states, b.stats.states);
        assert_eq!(a.stats.transitions, b.stats.transitions);
        assert_eq!(a.stats.terminals, b.stats.terminals);
    }

    /// A faithful shadow implementation of the harness: replays the
    /// model semantics with plain fields, pinning the replay driver's
    /// predictions (the real-types harness lives in the workspace test
    /// suite, which depends on `prodpred-service`).
    struct Shadow {
        config: SvcConfig,
        word: u64,
        slots: [(u64, u64); RING],
        cword: u64,
        shards: Vec<(u64, u64)>,
        tokens: u64,
        inflight: u64,
    }

    impl Shadow {
        fn new(config: SvcConfig) -> Self {
            Shadow {
                config,
                word: 0,
                slots: [(0, 0); RING],
                cword: 0,
                shards: vec![(0, 0); config.shards],
                tokens: u64::from(config.tokens),
                inflight: 0,
            }
        }
    }

    impl ServingHarness for Shadow {
        fn write_slot_tag(&mut self, epoch: u64) {
            self.slots[epoch as usize % RING].0 = epoch;
        }
        fn write_slot_val(&mut self, epoch: u64) {
            self.slots[epoch as usize % RING].1 = epoch;
        }
        fn publish_epoch(&mut self, epoch: u64) {
            self.word = epoch;
            self.tokens = u64::from(self.config.tokens);
        }
        fn load_epoch(&mut self) -> u64 {
            self.word
        }
        fn read_slot(&mut self, epoch: u64) -> Option<u64> {
            let (tag, val) = self.slots[epoch as usize % RING];
            (tag == epoch).then_some(val)
        }
        fn probe(&mut self, shard: usize, epoch: u64) -> Option<u64> {
            let (sh_epoch, entry) = self.shards[shard];
            (sh_epoch == epoch && entry != 0).then_some(entry)
        }
        fn take_token(&mut self) -> bool {
            if self.tokens == 0 {
                return false;
            }
            if self.tokens != u64::from(UNBOUNDED) {
                self.tokens -= 1;
            }
            true
        }
        fn enter_inflight(&mut self) -> bool {
            self.inflight += 1;
            u64::from(self.config.max_inflight) == u64::from(UNBOUNDED)
                || self.inflight <= u64::from(self.config.max_inflight)
        }
        fn rollback_inflight(&mut self) {
            self.inflight -= 1;
        }
        fn insert(&mut self, shard: usize, epoch: u64) {
            if self.shards[shard].0 == epoch {
                self.shards[shard].1 = epoch;
            }
        }
        fn release_permit(&mut self) {
            self.inflight -= 1;
        }
        fn bump_word(&mut self, epoch: u64) -> bool {
            let prev = self.cword;
            self.cword = self.cword.max(epoch);
            prev < epoch
        }
        fn sweep_shard(&mut self, shard: usize, epoch: u64) {
            if self.shards[shard].0 < epoch {
                self.shards[shard] = (epoch, 0);
            }
        }
    }

    #[test]
    fn explored_schedules_replay_against_the_shadow() {
        let config = SvcConfig::new(2, 2, 2);
        let all = schedules(config, 200);
        assert!(!all.is_empty());
        for schedule in &all {
            let mut shadow = Shadow::new(config);
            replay(config, schedule, &mut shadow).expect("shadow must conform");
        }
    }

    #[test]
    fn replay_with_admission_pressure_conforms() {
        let config = SvcConfig::new(2, 1, 2).with_admission(1, 1);
        for schedule in schedules(config, 200) {
            let mut shadow = Shadow::new(config);
            replay(config, &schedule, &mut shadow).expect("shadow must conform");
        }
    }
}
