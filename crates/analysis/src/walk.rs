//! Deterministic workspace traversal for the tidy engine: finds every
//! first-party `.rs` file under the workspace root, in sorted order, so
//! repeated runs produce byte-identical output.

use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "node_modules"];

/// The workspace root as seen from this crate's manifest at compile
/// time. `tidy --root` overrides it for tests and odd layouts.
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .components()
        .collect()
}

/// Collects every lintable `.rs` file under `root`, returned as sorted
/// repo-relative paths with forward slashes. Only the first-party source
/// trees are scanned (`crates/`, `tests/`, `examples/`); vendored code
/// and build output are skipped, as are the lint-test fixtures (which
/// contain findings on purpose).
///
/// # Errors
///
/// Returns the first I/O error hit while reading a directory.
pub fn workspace_files(root: &Path) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect(root, &dir, &mut files)?;
        }
    }
    files.retain(|f| !f.starts_with("crates/analysis/tests/fixtures/"));
    files.sort();
    Ok(files)
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip_prefix {}: {e}", path.display()))?;
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_crate_and_skips_vendor_and_fixtures() {
        let root = default_root();
        let files = workspace_files(&root).unwrap();
        assert!(files.iter().any(|f| f == "crates/analysis/src/walk.rs"));
        assert!(files.iter().all(|f| !f.starts_with("vendor/")));
        assert!(files
            .iter()
            .all(|f| !f.starts_with("crates/analysis/tests/fixtures/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk order must be sorted");
    }
}
