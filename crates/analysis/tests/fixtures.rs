//! Golden-diagnostic tests: every `PPnnn` code has a fixture under
//! `tests/fixtures/` whose rendered findings must match the committed
//! `.expected` file byte for byte. Regenerate with
//! `UPDATE_FIXTURES=1 cargo test -p prodpred-analysis --test fixtures`
//! and review the diff.

use prodpred_analysis::lints::lint_source;

fn fixture_dir() -> String {
    format!("{}/tests/fixtures", env!("CARGO_MANIFEST_DIR"))
}

fn render_fixture(name: &str) -> String {
    let src = std::fs::read_to_string(format!("{}/{name}.rs", fixture_dir()))
        .expect("fixture source exists");
    // Fixtures pretend to live in a library path so path scoping (test
    // dirs, bins, the bench crate) does not mask the lint under test.
    let rel = format!("crates/fixture/src/{name}.rs");
    lint_source(&rel, &src)
        .iter()
        .map(|f| f.render() + "\n")
        .collect()
}

fn check(name: &str) {
    let rendered = render_fixture(name);
    let expected_path = format!("{}/{name}.expected", fixture_dir());
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        std::fs::write(&expected_path, &rendered).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&expected_path).expect("golden exists");
    assert_eq!(rendered, expected, "golden mismatch for fixture {name}");
}

#[test]
fn pp000_unjustified_allow_is_a_finding() {
    check("pp000");
}

#[test]
fn pp001_nondeterminism_sources() {
    check("pp001");
}

#[test]
fn pp002_hash_iteration() {
    check("pp002");
}

#[test]
fn pp003_unchecked_panics() {
    check("pp003");
}

#[test]
fn pp004_float_hygiene() {
    check("pp004");
}

#[test]
fn pp005_raw_locks() {
    check("pp005");
}

#[test]
fn pp006_errors_docs() {
    check("pp006");
}

#[test]
fn pp010_unfenced_atomics() {
    check("pp010");
}

#[test]
fn every_fixture_has_at_least_one_finding() {
    for name in [
        "pp000", "pp001", "pp002", "pp003", "pp004", "pp005", "pp006", "pp010",
    ] {
        assert!(
            !render_fixture(name).is_empty(),
            "fixture {name} produced no findings at all"
        );
    }
}

#[test]
fn diagnostics_are_deterministic() {
    for name in [
        "pp000", "pp001", "pp002", "pp003", "pp004", "pp005", "pp006", "pp010",
    ] {
        assert_eq!(
            render_fixture(name),
            render_fixture(name),
            "non-deterministic output for {name}"
        );
    }
}
