//! PP000 fixture: allow-marker hygiene.

pub fn good() -> u64 {
    // tidy:allow(PP003): fixture demonstrates a justified suppression
    maybe().unwrap()
}

pub fn bad() -> u64 {
    // tidy:allow(PP003)
    maybe().unwrap()
}

fn maybe() -> Option<u64> {
    Some(1)
}
