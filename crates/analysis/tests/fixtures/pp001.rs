//! PP001 fixture: nondeterminism sources in simulation/prediction paths.

use std::time::{Instant, SystemTime};

pub fn now_pair() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}

pub fn allowed() -> Instant {
    Instant::now() // tidy:allow(PP001): fixture demonstrates a justified wall-clock read
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
