//! PP002 fixture: iteration order of hash containers leaking into results.

use std::collections::HashMap;

pub fn leaky() -> u32 {
    let m: HashMap<u32, u32> = HashMap::new();
    m.values().sum()
}

pub fn fine() -> Option<u32> {
    let m: HashMap<u32, u32> = HashMap::new();
    m.get(&1).copied()
}
