//! PP003 fixture: unchecked panics in library code.

pub fn panicky(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn with_message(v: Option<u32>) -> u32 {
    v.expect("fixture invariant")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}
