//! PP004 fixture: float comparison hygiene.

pub fn nan_unsafe_sort(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn exact_compare(x: f64) -> bool {
    x == 0.5
}

pub fn fine(xs: &mut [f64], x: f64) -> bool {
    xs.sort_by(f64::total_cmp);
    (x - 0.5).abs() < 1e-9
}
