//! PP005 fixture: raw mutex access instead of the poison-recovering helper.

use std::sync::Mutex;

pub fn raw_lock(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}
