//! PP006 fixture: fallible public API documentation.

/// Parses a number.
pub fn undocumented(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| "not a number".to_string())
}

/// Parses a number.
///
/// # Errors
///
/// Returns an error when `s` is not a decimal integer.
pub fn documented(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| "not a number".to_string())
}
