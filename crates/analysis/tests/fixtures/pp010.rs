//! PP010 fixture: atomics fenced into the audited concurrency modules.

use std::sync::atomic::{AtomicU64, Ordering};

/// A stray lock-free counter outside the audited modules.
pub struct Counter {
    hits: AtomicU64,
}

impl Counter {
    /// Bumps the counter.
    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads the counter through a justified escape.
    pub fn hits(&self) -> u64 {
        // tidy:allow(PP010): fixture of a justified escape hatch
        self.hits.load(Ordering::Acquire)
    }
}
