//! Negative controls for the serving-path checker: each deliberately
//! seeded model bug must be *found*, with the expected violation code
//! and a minimal counterexample trace of pinned length.
//!
//! The pinned lengths are part of the contract: BFS minimality is what
//! keeps the traces human-readable, and a silent model change that
//! lengthens (or shortens) the shortest refutation shows up here before
//! it shows up in a review.

use prodpred_analysis::svc::{self, SvcConfig, Variant, UNBOUNDED};

fn refute(config: SvcConfig, expected_kinds: &[&str], expected_len: usize) {
    let report = svc::check(config);
    assert!(
        !report.holds(),
        "{:?} must be refuted by the exhaustive exploration",
        config.variant
    );
    let v = svc::minimal_counterexample(config)
        .unwrap_or_else(|| panic!("{:?}: BFS found no violation", config.variant));
    assert!(
        expected_kinds.iter().any(|p| v.kind.starts_with(p)),
        "{:?}: expected one of {expected_kinds:?}, got `{}`",
        config.variant,
        v.kind
    );
    assert_eq!(
        v.trace.len(),
        expected_len,
        "{:?}: minimal trace length drifted; trace:\n{}",
        config.variant,
        v.trace.join("\n")
    );
}

#[test]
fn dropping_the_shard_epoch_check_reintroduces_the_toctou() {
    refute(
        SvcConfig::new(2, 2, 2).with_variant(Variant::NoShardEpochCheck),
        &["cross-epoch-hit", "stale-entry"],
        17,
    );
}

#[test]
fn dropping_the_release_store_tears_a_read() {
    refute(
        SvcConfig::new(2, 2, 2).with_variant(Variant::NoReleaseFence),
        &["torn-read"],
        4,
    );
}

#[test]
fn plain_store_instead_of_fetch_max_regresses_the_epoch() {
    refute(
        SvcConfig::new(1, 1, 2).with_variant(Variant::NoFetchMax),
        &["epoch-regression"],
        8,
    );
}

#[test]
fn skipping_the_over_cap_rollback_leaks_a_permit() {
    refute(
        SvcConfig::new(2, 1, 1)
            .with_admission(UNBOUNDED, 1)
            .with_variant(Variant::NoInflightRollback),
        &["permit-leak"],
        17,
    );
}

#[test]
fn the_correct_variant_has_no_counterexample_at_the_same_bounds() {
    for config in [
        SvcConfig::new(2, 2, 2),
        SvcConfig::new(2, 1, 1).with_admission(UNBOUNDED, 1),
        SvcConfig::new(1, 1, 2),
    ] {
        assert!(svc::check(config).holds(), "{config:?}");
        assert!(
            svc::minimal_counterexample(config).is_none(),
            "{config:?}: BFS found a violation the DFS missed"
        );
    }
}
