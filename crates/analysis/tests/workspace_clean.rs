//! The tier-1 guarantee behind `tidy --check`: the workspace lints clean
//! against the committed baseline, and the scan is deterministic.

use prodpred_analysis::baseline::Baseline;
use prodpred_analysis::lints::{lint_source, Finding};
use prodpred_analysis::walk::{default_root, workspace_files};

fn scan_workspace() -> Vec<Finding> {
    let root = default_root();
    let files = workspace_files(&root).expect("workspace walk");
    let mut findings = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel)).expect("readable source");
        findings.extend(lint_source(rel, &src));
    }
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.code).cmp(&(&b.file, b.line, b.col, b.code)));
    findings
}

#[test]
fn workspace_is_clean_against_committed_baseline() {
    let root = default_root();
    let committed = Baseline::parse(
        &std::fs::read_to_string(root.join("tidy-baseline.json")).expect("baseline committed"),
    )
    .expect("baseline parses");
    let current = Baseline::from_findings(&scan_workspace());
    let issues = committed.ratchet(&current);
    assert!(
        issues.is_empty(),
        "tidy ratchet violations:\n{}",
        issues
            .iter()
            .map(|i| i.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_scan_is_deterministic() {
    let a: Vec<String> = scan_workspace().iter().map(Finding::render).collect();
    let b: Vec<String> = scan_workspace().iter().map(Finding::render).collect();
    assert_eq!(a, b);
}
