//! Criterion benchmarks for the NWS forecaster ensemble: the adaptive
//! selection re-postcasts every strategy over the history, so its cost
//! bounds how often a scheduler can refresh its stochastic values.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use prodpred_nws::forecast::{postcast_mse, AdaptiveForecaster, ExpSmoothing, LastValue};
use prodpred_nws::TimeSeries;
use prodpred_simgrid::load::{LoadGenerator, MarkovModal};

fn series_of(len: usize) -> TimeSeries {
    let trace = MarkovModal::platform2(25.0).generate(1, 0.0, 5.0, len);
    let mut s = TimeSeries::new(len);
    for (i, &v) in trace.values().iter().enumerate() {
        s.push(i as f64 * 5.0, v);
    }
    s
}

fn bench_adaptive(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive-forecast");
    for len in [32usize, 128, 512] {
        let series = series_of(len);
        let ens = AdaptiveForecaster::standard();
        group.bench_with_input(BenchmarkId::from_parameter(len), &series, |b, s| {
            b.iter(|| ens.forecast(black_box(s)))
        });
    }
    group.finish();
}

fn bench_single_strategies(c: &mut Criterion) {
    let series = series_of(256);
    let history = series.values();
    let mut group = c.benchmark_group("postcast-mse-256");
    group.bench_function("last-value", |b| {
        b.iter(|| postcast_mse(&LastValue, black_box(&history)))
    });
    group.bench_function("exp-smoothing", |b| {
        b.iter(|| postcast_mse(&ExpSmoothing { alpha: 0.3 }, black_box(&history)))
    });
    group.finish();
}

criterion_group!(benches, bench_adaptive, bench_single_strategies);
criterion_main!(benches);
