//! Criterion benchmark for the full prediction pipeline: NWS advance plus
//! a stochastic prediction — the cost a scheduler pays per decision.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use prodpred_core::{decompose, DecompositionPolicy, PredictorConfig, SorPredictor};
use prodpred_nws::{NwsConfig, NwsService};
use prodpred_simgrid::Platform;

fn bench_predict(c: &mut Criterion) {
    let platform = Platform::platform2(7, 20_000.0);
    let nws = NwsService::attach(&platform, NwsConfig::default());
    nws.advance_to(&platform, 2_000.0);
    let strips = decompose(&platform, 1600, DecompositionPolicy::DedicatedSpeed, None);
    let predictor = SorPredictor::new(&platform, &nws, PredictorConfig::default());

    c.bench_function("predict-1600-4procs", |b| {
        b.iter(|| predictor.predict(black_box(1600), black_box(&strips)))
    });

    c.bench_function("nws-advance-60s", |b| {
        let mut t = 2_000.0;
        b.iter(|| {
            t += 60.0;
            if t > 19_000.0 {
                t = 2_000.0;
            }
            nws.advance_to(&platform, black_box(t));
        })
    });
}

criterion_group!(benches, bench_predict);
criterion_main!(benches);
