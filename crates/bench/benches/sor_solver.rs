//! Criterion benchmarks for the real SOR solvers: sequential vs.
//! multithreaded scaling, and the simulated distributed execution cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use prodpred_simgrid::Platform;
use prodpred_sor::{
    partition_equal, simulate, solve_parallel, solve_seq, DistSorConfig, Grid, SorParams,
};

fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("sor-sequential");
    for n in [65usize, 129, 257] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut g = Grid::laplace_problem(n);
                solve_seq(&mut g, SorParams::for_grid(n, 10));
                black_box(g.interior_sum())
            })
        });
    }
    group.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let n = 257;
    let mut group = c.benchmark_group("sor-parallel-257");
    for p in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let mut g = Grid::laplace_problem(n);
                solve_parallel(&mut g, SorParams::for_grid(n, 10), p);
                black_box(g.interior_sum())
            })
        });
    }
    group.finish();
}

fn bench_distsim(c: &mut Criterion) {
    let platform = Platform::platform2(1, 40_000.0);
    let strips = partition_equal(1598, 4);
    c.bench_function("distsim-1600x50iters", |b| {
        b.iter(|| {
            simulate(
                black_box(&platform),
                &strips,
                DistSorConfig::new(1600, 50, 500.0),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_sequential,
    bench_parallel_scaling,
    bench_distsim
);
criterion_main!(benches);
