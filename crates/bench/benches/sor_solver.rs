//! Criterion benchmarks for the real SOR solvers: per-kernel sweep
//! throughput (slice kernel vs the historical indexed loop), sequential
//! vs. multithreaded scaling, and the simulated distributed execution
//! cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prodpred_simgrid::Platform;
use prodpred_sor::{
    partition_equal, simulate, solve_parallel, solve_seq, Color, DistSorConfig, Grid, SorParams,
};

/// The pre-refactor sweep, verbatim: per-cell `get`/`set` index math.
/// Kept here as the baseline the slice kernel is measured against.
fn sweep_indexed(grid: &mut Grid, color: Color, omega: f64) {
    let n = grid.n();
    for i in 1..n - 1 {
        let start = 1 + ((i + 1 + color.parity()) % 2);
        let mut j = start;
        while j < n - 1 {
            let u = grid.get(i, j);
            let sum =
                grid.get(i - 1, j) + grid.get(i + 1, j) + grid.get(i, j - 1) + grid.get(i, j + 1);
            grid.set(i, j, u + omega * 0.25 * (sum - 4.0 * u));
            j += 2;
        }
    }
}

fn bench_kernels(c: &mut Criterion) {
    let n = 2048;
    let omega = prodpred_sor::optimal_omega(n);
    let mut group = c.benchmark_group("sor-kernel-2048");
    group.throughput(Throughput::Elements(((n - 2) * (n - 2)) as u64));
    group.bench_function("fused", |b| {
        let mut g = Grid::laplace_problem(n);
        b.iter(|| {
            prodpred_sor::sweep_iteration(&mut g, omega);
            black_box(g.get(1, 1))
        })
    });
    group.bench_function("slice-two-pass", |b| {
        let mut g = Grid::laplace_problem(n);
        b.iter(|| {
            prodpred_sor::seq::sweep_color_rows(&mut g, Color::Red, omega, 1, n - 1);
            prodpred_sor::seq::sweep_color_rows(&mut g, Color::Black, omega, 1, n - 1);
            black_box(g.get(1, 1))
        })
    });
    group.bench_function("indexed", |b| {
        let mut g = Grid::laplace_problem(n);
        b.iter(|| {
            sweep_indexed(&mut g, Color::Red, omega);
            sweep_indexed(&mut g, Color::Black, omega);
            black_box(g.get(1, 1))
        })
    });
    group.finish();
}

fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("sor-sequential");
    for n in [65usize, 129, 257] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut g = Grid::laplace_problem(n);
                solve_seq(&mut g, SorParams::for_grid(n, 10));
                black_box(g.interior_sum())
            })
        });
    }
    group.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let n = 257;
    let mut group = c.benchmark_group("sor-parallel-257");
    for p in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let mut g = Grid::laplace_problem(n);
                solve_parallel(&mut g, SorParams::for_grid(n, 10), p);
                black_box(g.interior_sum())
            })
        });
    }
    group.finish();
}

fn bench_distsim(c: &mut Criterion) {
    let platform = Platform::platform2(1, 40_000.0);
    let strips = partition_equal(1598, 4);
    c.bench_function("distsim-1600x50iters", |b| {
        b.iter(|| {
            simulate(
                black_box(&platform),
                &strips,
                DistSorConfig::new(1600, 50, 500.0),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_kernels,
    bench_sequential,
    bench_parallel_scaling,
    bench_distsim
);
criterion_main!(benches);
