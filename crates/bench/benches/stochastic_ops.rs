//! Criterion micro-benchmarks for the stochastic-value arithmetic: the
//! prediction pipeline evaluates thousands of these per forecast, so the
//! ops must stay allocation-free and branch-light.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use prodpred_stochastic::{max_of, Dependence, MaxStrategy, StochasticValue};

fn bench_arithmetic(c: &mut Criterion) {
    let a = StochasticValue::new(12.0, 0.6);
    let b = StochasticValue::new(5.0, 1.0);
    let mut group = c.benchmark_group("stochastic-arithmetic");
    group.bench_function("add_related", |bch| {
        bch.iter(|| black_box(a).add(&black_box(b), Dependence::Related))
    });
    group.bench_function("add_unrelated", |bch| {
        bch.iter(|| black_box(a).add(&black_box(b), Dependence::Unrelated))
    });
    group.bench_function("mul_related", |bch| {
        bch.iter(|| black_box(a).mul(&black_box(b), Dependence::Related))
    });
    group.bench_function("mul_unrelated", |bch| {
        bch.iter(|| black_box(a).mul(&black_box(b), Dependence::Unrelated))
    });
    group.bench_function("div_unrelated", |bch| {
        bch.iter(|| black_box(a).div(&black_box(b), Dependence::Unrelated))
    });
    group.finish();
}

fn bench_max_strategies(c: &mut Criterion) {
    let values: Vec<StochasticValue> = (0..16)
        .map(|i| StochasticValue::new(10.0 + i as f64 * 0.3, 0.5 + 0.1 * i as f64))
        .collect();
    let mut group = c.benchmark_group("max-strategies");
    group.bench_function("by_mean_16", |bch| {
        bch.iter(|| max_of(black_box(&values), MaxStrategy::ByMean))
    });
    group.bench_function("by_upper_bound_16", |bch| {
        bch.iter(|| max_of(black_box(&values), MaxStrategy::ByUpperBound))
    });
    group.bench_function("clark_16", |bch| {
        bch.iter(|| max_of(black_box(&values), MaxStrategy::Clark))
    });
    group.bench_function("monte_carlo_1k_16", |bch| {
        bch.iter(|| {
            max_of(
                black_box(&values),
                MaxStrategy::MonteCarlo {
                    samples: 1000,
                    seed: 1,
                },
            )
        })
    });
    group.finish();
}

fn bench_distributions(c: &mut Criterion) {
    use prodpred_stochastic::{Distribution, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let n = Normal::new(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("normal-distribution");
    group.bench_function("pdf", |bch| bch.iter(|| n.pdf(black_box(0.7))));
    group.bench_function("cdf", |bch| bch.iter(|| n.cdf(black_box(0.7))));
    group.bench_function("quantile", |bch| bch.iter(|| n.quantile(black_box(0.7))));
    group.bench_function("sample", |bch| bch.iter(|| n.sample(&mut rng)));
    group.finish();
}

criterion_group!(
    benches,
    bench_arithmetic,
    bench_max_strategies,
    bench_distributions
);
criterion_main!(benches);
