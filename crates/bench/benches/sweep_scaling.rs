//! Criterion benchmarks for the deterministic work pool: how Monte-Carlo
//! validation and multi-seed experiment sweeps scale with worker count,
//! and what the pool's fixed overhead costs on trivial tasks.
//!
//! The thread axis is explicit (1, 2, 4) rather than auto so the
//! committed numbers mean the same thing on any host; the repeat axis
//! shows whether pool overhead is amortized as the task list grows.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prodpred_core::platform2_seed_sweep;
use prodpred_stochastic::{Dependence, StochasticValue};
use prodpred_structural::{monte_carlo_par, Component};

/// A component tree shaped like the SOR model: per-processor products
/// folded by an unrelated sum.
fn model_tree() -> Component {
    let sv = |m: f64, h: f64| Component::stochastic(StochasticValue::new(m, h));
    Component::Sum(
        (0..4)
            .map(|i| {
                Component::Product(
                    vec![sv(12.0 + i as f64, 0.6), sv(5.0, 1.0)],
                    Dependence::Unrelated,
                )
            })
            .collect(),
        Dependence::Unrelated,
    )
}

fn bench_mc_validate(c: &mut Criterion) {
    let tree = model_tree();
    let mut group = c.benchmark_group("sweep-scaling/mc-validate-100k");
    group.throughput(Throughput::Elements(100_000));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| black_box(monte_carlo_par(&tree, 100_000, 7, t)));
        });
    }
    group.finish();
}

fn bench_seed_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep-scaling/platform2-sweep");
    for repeats in [2usize, 8] {
        let seeds: Vec<u64> = (1..=repeats as u64).collect();
        group.throughput(Throughput::Elements(repeats as u64));
        for threads in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("r{repeats}/threads"), threads),
                &threads,
                |b, &t| {
                    b.iter(|| black_box(platform2_seed_sweep(&seeds, 1000, 3, t)));
                },
            );
        }
    }
    group.finish();
}

fn bench_pool_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep-scaling/pool-overhead");
    // 256 near-empty tasks: measures spawn + self-scheduling + ordered
    // merge, the fixed cost a sweep must amortize.
    let items: Vec<u64> = (0..256).collect();
    group.throughput(Throughput::Elements(items.len() as u64));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| {
                black_box(prodpred_pool::parallel_map(&items, t, |i, &x| {
                    x.wrapping_mul(i as u64 + 1)
                }))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mc_validate,
    bench_seed_sweep,
    bench_pool_overhead
);
criterion_main!(benches);
