//! Criterion benchmarks for `Trace` integration: the O(1) prefix-integral
//! path against the O(steps) step-walk reference it replaced, and the
//! binary-search `time_to_complete` against its walking reference, on
//! production-scale (hour-long, one-second-step) traces.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prodpred_simgrid::Trace;

/// An hour of one-second availability samples with realistic structure:
/// a slow diurnal-ish drift modulated by a faster oscillation.
fn hour_trace(steps: usize) -> Trace {
    Trace::from_fn(0.0, 1.0, steps, |t| {
        0.55 + 0.4 * (t * 0.013).sin() * (t * 0.0007).cos()
    })
}

/// Query windows spread across the horizon, most spanning hundreds of
/// steps — the regime where the walk pays its O(steps) cost.
fn windows(horizon: f64) -> Vec<(f64, f64)> {
    (0..256)
        .map(|i| {
            let a = (i % 617) as f64 * (horizon / 617.0) * 0.9 - 100.0;
            let b = a + 40.0 + (i % 251) as f64 * (horizon / 300.0);
            (a, b)
        })
        .collect()
}

fn bench_integral(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace-integral");
    for steps in [600usize, 3600] {
        let trace = hour_trace(steps);
        let qs = windows(steps as f64);
        group.throughput(Throughput::Elements(qs.len() as u64));
        group.bench_with_input(BenchmarkId::new("prefix", steps), &trace, |b, trace| {
            b.iter(|| {
                let mut acc = 0.0;
                for &(x, y) in &qs {
                    acc += trace.integral(x, y);
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("walk", steps), &trace, |b, trace| {
            b.iter(|| {
                let mut acc = 0.0;
                for &(x, y) in &qs {
                    acc += trace.integral_reference(x, y);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_time_to_complete(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace-time-to-complete");
    for steps in [600usize, 3600] {
        let trace = hour_trace(steps);
        let qs = windows(steps as f64);
        group.throughput(Throughput::Elements(qs.len() as u64));
        group.bench_with_input(BenchmarkId::new("search", steps), &trace, |b, trace| {
            b.iter(|| {
                let mut acc = 0.0;
                for &(x, y) in &qs {
                    acc += trace.time_to_complete(x.max(0.0), y.max(1.0));
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("walk", steps), &trace, |b, trace| {
            b.iter(|| {
                let mut acc = 0.0;
                for &(x, y) in &qs {
                    acc += trace.time_to_complete_reference(x.max(0.0), y.max(1.0));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_integral, bench_time_to_complete);
criterion_main!(benches);
