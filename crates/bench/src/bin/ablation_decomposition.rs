//! Ablation: strip vs. 2D block decomposition.
//!
//! The paper uses the strip decomposition ("a common data distribution
//! for this"). Blocks exchange shorter edges (`O(N/sqrt(P))` instead of
//! `O(N)`), so they win once communication matters — this study maps the
//! crossover over processor count and network speed.

use prodpred_core::report::{f, render_table};
use prodpred_simgrid::{MachineClass, Platform};
use prodpred_sor::{
    partition_blocks, partition_equal, simulate, simulate_blocks, BlockLayout, DistSorConfig,
};

fn main() {
    println!("== Ablation: strip vs block decomposition ==\n");
    let n = 600;
    let iterations = 10;
    let mut rows = Vec::new();
    for p in [4usize, 9, 16] {
        for (net, bw) in [("10 Mbit", 1.25e6), ("1 Mbit", 1.25e5)] {
            let mut platform = Platform::dedicated(&vec![MachineClass::Sparc10; p], 1.0e6);
            platform.network.spec.dedicated_bw = bw;
            let cfg = DistSorConfig::new(n, iterations, 0.0);
            let t_strip = simulate(&platform, &partition_equal(n - 2, p), cfg).total_secs;
            let layout = BlockLayout::squarest(p);
            let t_block =
                simulate_blocks(&platform, &partition_blocks(n, layout), layout, cfg).total_secs;
            rows.push(vec![
                p.to_string(),
                net.to_string(),
                f(t_strip, 2),
                f(t_block, 2),
                if t_block < t_strip { "block" } else { "strip" }.to_string(),
                f(t_strip / t_block, 2),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "P",
                "network",
                "strip (s)",
                "block (s)",
                "winner",
                "strip/block"
            ],
            &rows
        )
    );
    println!(
        "\nBlocks never lose outright — their edges are shorter from P = 4 on —\n\
         but the margin is modest on a fast network (tens of percent) and\n\
         grows as bandwidth shrinks or P rises (the comm-bound limit is\n\
         sqrt(P)/2). At the paper's scale (P = 4, 10 Mbit, compute-dominated\n\
         runs) the strip's simplicity costs little, which is why the paper\n\
         uses it."
    );
}
