//! Ablation: related vs. unrelated combination rules in the SOR model
//! (Section 2.3.1's two addition regimes).
//!
//! The phase terms share machines and the ethernet segment, so the paper's
//! conservative related rule is the faithful default; this study shows
//! what the optimistic independence assumption would do to coverage.

use prodpred_core::report::{f, render_table};
use prodpred_core::{run_series, ExperimentConfig, PredictorConfig};
use prodpred_simgrid::Platform;
use prodpred_stochastic::Dependence;

fn main() {
    println!("== Ablation: dependence assumption between phase terms ==\n");
    let mut rows = Vec::new();
    for (name, dep) in [
        ("related (conservative)", Dependence::Related),
        ("unrelated (quadrature)", Dependence::Unrelated),
    ] {
        for (pname, seed) in [("platform1", 42u64), ("platform2", 1600u64)] {
            let platform = if pname == "platform1" {
                Platform::platform1(seed, 60_000.0)
            } else {
                Platform::platform2(seed, 60_000.0)
            };
            let sizes: Vec<usize> = if pname == "platform1" {
                vec![1000, 1200, 1400, 1600, 1800, 2000]
            } else {
                vec![1600; 12]
            };
            let cfg = ExperimentConfig {
                seed,
                gap_secs: 20.0,
                predictor: PredictorConfig {
                    phase_dependence: dep,
                    ..Default::default()
                },
                ..Default::default()
            };
            let series = run_series(&platform, &sizes, &cfg, 0);
            let acc = series.accuracy().unwrap();
            let mean_width: f64 = series
                .records
                .iter()
                .map(|r| r.prediction.stochastic.half_width() / r.prediction.stochastic.mean())
                .sum::<f64>()
                / series.records.len() as f64;
            rows.push(vec![
                name.to_string(),
                pname.to_string(),
                f(acc.coverage * 100.0, 0),
                f(acc.max_range_error * 100.0, 1),
                f(mean_width * 100.0, 1),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "rule",
                "platform",
                "coverage %",
                "max range err %",
                "mean rel width %"
            ],
            &rows
        )
    );
    println!(
        "\nIteration terms repeat the same machines and segment: treating\n\
         them as unrelated shrinks the interval by sqrt(NumIts) and costs\n\
         coverage; the related rule keeps the paper's conservative bound."
    );
}
