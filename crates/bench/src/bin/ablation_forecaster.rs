//! Ablation: the NWS spread policy and forecaster choice, end-to-end.
//!
//! The paper takes the NWS's value-plus-variance as given; this study
//! shows how the reported spread's derivation moves the coverage/width
//! trade-off of the final predictions.

use prodpred_core::report::{f, render_table};
use prodpred_core::{decompose, DecompositionPolicy, PredictorConfig, SorPredictor};
use prodpred_nws::{NwsConfig, NwsService, SpreadPolicy};
use prodpred_simgrid::Platform;
use prodpred_sor::{simulate, DistSorConfig};
use prodpred_stochastic::{AccuracyReport, Observation};

fn run_with(spread: SpreadPolicy, seed: u64, runs: usize) -> (AccuracyReport, f64) {
    let platform = Platform::platform2(seed, 60_000.0);
    let nws = NwsService::attach(
        &platform,
        NwsConfig {
            spread,
            ..Default::default()
        },
    );
    let n = 1600;
    let strips = decompose(&platform, n, DecompositionPolicy::DedicatedSpeed, None);
    let mut t = 300.0;
    let mut obs = Vec::new();
    let mut width_sum = 0.0;
    for _ in 0..runs {
        nws.advance_to(&platform, t);
        let predictor = SorPredictor::new(&platform, &nws, PredictorConfig::default());
        let p = predictor.predict(n, &strips).expect("warm");
        let run = simulate(
            &platform,
            &strips,
            DistSorConfig {
                paging: None,
                n,
                iterations: 50,
                start_time: t,
            },
        );
        obs.push(Observation {
            predicted: p.stochastic,
            actual: run.total_secs,
        });
        width_sum += p.stochastic.half_width() / p.stochastic.mean();
        t += run.total_secs + 20.0;
    }
    (
        AccuracyReport::from_observations(&obs).unwrap(),
        width_sum / runs as f64,
    )
}

fn main() {
    println!("== Ablation: NWS spread policy (Platform 2, 1600², 12 runs) ==\n");
    // Each policy replays its own platform from the same seed, so the
    // three studies are independent and fan out over the work pool.
    let policies: Vec<(&str, SpreadPolicy)> = vec![
        ("forecast RMSE (NWS-style)", SpreadPolicy::ForecastRmse),
        ("window variance", SpreadPolicy::WindowVariance),
        ("combined", SpreadPolicy::Combined),
    ];
    let rows = prodpred_pool::parallel_map(&policies, 0, |_, &(name, spread)| {
        let (acc, width) = run_with(spread, 1600, 12);
        vec![
            name.to_string(),
            f(acc.coverage * 100.0, 0),
            f(acc.max_range_error * 100.0, 1),
            f(acc.max_mean_error * 100.0, 1),
            f(width * 100.0, 1),
        ]
    });
    println!(
        "{}",
        render_table(
            &[
                "spread policy",
                "coverage %",
                "max range err %",
                "max mean err %",
                "mean rel width %"
            ],
            &rows
        )
    );
    println!(
        "\nThe forecast-RMSE spread (what the real NWS reports) is the sweet\n\
         spot: high coverage at a fraction of the window-variance width.\n\
         Window variance on multi-modal load counts between-mode spread the\n\
         application will mostly average over, so its intervals balloon."
    );
}
