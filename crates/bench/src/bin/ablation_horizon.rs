//! Ablation: instantaneous vs. run-horizon-scaled load values.
//!
//! Section 2.1.2's multi-modal averaging, made quantitative: a run long
//! enough to span several load bursts experiences the *time-averaged*
//! load, whose variance is smaller (and whose mean is closer to the
//! long-run mean) than the instantaneous NWS reading. This study compares
//! both load sources end-to-end on Platform 2.

use prodpred_core::report::{f, render_table};
use prodpred_core::{run_series, ExperimentConfig, LoadSource, PredictorConfig};
use prodpred_simgrid::Platform;

fn main() {
    println!("== Ablation: load source for bursty-platform predictions ==\n");
    // The 3x3 configuration grid: every cell is an independent series
    // (its own platform, clock, and NWS), so the grid fans out over the
    // work pool; rows come back in grid order regardless of thread count.
    let grid: Vec<(&str, LoadSource, usize)> = [
        ("instantaneous NWS value", LoadSource::Instantaneous),
        ("run-horizon scaled", LoadSource::RunHorizon),
        ("modal average (Sec 2.1.2)", LoadSource::ModalAverage),
    ]
    .into_iter()
    .flat_map(|(name, source)| [1000usize, 1600, 2000].map(|n| (name, source, n)))
    .collect();
    let rows = prodpred_pool::parallel_map(&grid, 0, |_, &(name, source, n)| {
        let platform = Platform::platform2(n as u64, 60_000.0);
        let cfg = ExperimentConfig {
            seed: n as u64,
            gap_secs: 20.0,
            predictor: PredictorConfig {
                load_source: source,
                ..Default::default()
            },
            ..Default::default()
        };
        let series = run_series(&platform, &[n; 12], &cfg, 0);
        let acc = series.accuracy().unwrap();
        let mean_width: f64 = series
            .records
            .iter()
            .map(|r| r.prediction.stochastic.half_width() / r.prediction.stochastic.mean())
            .sum::<f64>()
            / series.records.len() as f64;
        let mean_point_err: f64 = series
            .records
            .iter()
            .map(|r| (r.prediction.stochastic.mean() - r.actual_secs).abs() / r.actual_secs)
            .sum::<f64>()
            / series.records.len() as f64;
        vec![
            name.to_string(),
            n.to_string(),
            f(acc.coverage * 100.0, 0),
            f(acc.max_range_error * 100.0, 1),
            f(mean_point_err * 100.0, 1),
            f(mean_width * 100.0, 1),
        ]
    });
    println!(
        "{}",
        render_table(
            &[
                "load source",
                "n",
                "coverage %",
                "max range err %",
                "mean |pred-actual| %",
                "mean rel width %"
            ],
            &rows
        )
    );
    println!(
        "\nWhen the run is about as long as a burst (1000²) the averaging\n\
         factor is ~1 and the two sources agree. For longer runs the\n\
         horizon-scaled intervals tighten (2000²: ~106% -> ~74% relative\n\
         width) at a modest coverage cost — the run genuinely averages over\n\
         bursts, so the instantaneous spread is wider than needed. Mean\n\
         regression toward the long-run load helps when bursts are\n\
         stationary over the history and hurts when the regime has shifted;\n\
         the paper's prescription (estimate P_i over the run's own time\n\
         scale) is exactly the knob this ablation turns."
    );
}
