//! Ablation: how the normal approximation of long-tailed data degrades as
//! the tail grows (Section 2.1.1: "we have exchanged the efficiency of
//! computing the distribution for the quality of its results").

use prodpred_core::report::{f, render_table};
use prodpred_simgrid::network::EthernetContention;
use prodpred_stochastic::fit::normality_report;
use prodpred_stochastic::Summary;

fn main() {
    println!("== Ablation: normal summary vs. tail weight ==\n");
    // Six independent 30k-sample trace generations + normality reports:
    // one pool task per tail weight, results in input order.
    let weights = [0.0f64, 0.05, 0.12, 0.25, 0.40, 0.60];
    let rows = prodpred_pool::parallel_map(&weights, 0, |_, &busy_weight| {
        let gen = EthernetContention {
            busy_weight: busy_weight.max(1e-6),
            ..Default::default()
        };
        let trace = gen.generate(7, 0.0, 5.0, 30_000);
        let mbit: Vec<f64> = trace.values().iter().map(|v| v * 10.0).collect();
        let s = Summary::from_slice(&mbit);
        let rep = normality_report(&mbit).unwrap();
        vec![
            f(busy_weight, 2),
            f(s.mean(), 2),
            f(s.sd(), 2),
            f(s.skewness(), 2),
            f(rep.two_sigma_coverage * 100.0, 1),
            if rep.is_adequate() { "yes" } else { "no" }.to_string(),
        ]
    });
    println!(
        "{}",
        render_table(
            &[
                "busy weight",
                "mean Mbit/s",
                "sd",
                "skew",
                "2-sigma coverage %",
                "normal OK"
            ],
            &rows
        )
    );
    println!(
        "\nWith no contention the normal summary hits its nominal ~95%\n\
         coverage; as the busy fraction grows the left tail drags coverage\n\
         down (the paper's 91% example sits near busy weight 0.12) until\n\
         the normal assumption stops being adequate for tight scheduling."
    );
}
