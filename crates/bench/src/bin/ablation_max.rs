//! Ablation: the Max-strategy choice of Section 2.3.3.
//!
//! "Depending on the penalty for an incorrect guess, different approaches
//! may be taken." This study quantifies the trade-off: per strategy, how
//! the Platform-2 prediction's coverage and width change.

use prodpred_core::report::{f, render_table};
use prodpred_core::{platform2_experiment, run_series, ExperimentConfig, PredictorConfig};
use prodpred_simgrid::Platform;
use prodpred_stochastic::{max_of, MaxStrategy, StochasticValue};

fn main() {
    println!("== Ablation: Max strategy over per-processor components ==\n");

    // Micro level: the paper's worked example A=4±0.5, B=3±2, C=3±1.
    let vals = [
        StochasticValue::new(4.0, 0.5),
        StochasticValue::new(3.0, 2.0),
        StochasticValue::new(3.0, 1.0),
    ];
    let strategies: Vec<(&str, MaxStrategy)> = vec![
        ("by mean", MaxStrategy::ByMean),
        ("by upper bound", MaxStrategy::ByUpperBound),
        ("by lower bound", MaxStrategy::ByLowerBound),
        ("Clark", MaxStrategy::Clark),
        (
            "Monte Carlo 200k",
            MaxStrategy::MonteCarlo {
                samples: 200_000,
                seed: 9,
            },
        ),
    ];
    let rows: Vec<Vec<String>> = strategies
        .iter()
        .map(|(name, s)| {
            let m = max_of(&vals, *s);
            vec![name.to_string(), format!("{m}"), f(m.lo(), 3), f(m.hi(), 3)]
        })
        .collect();
    println!(
        "{}",
        render_table(&["strategy", "Max(4±0.5, 3±2, 3±1)", "lo", "hi"], &rows)
    );

    // System level: end-to-end accuracy per strategy on Platform 2.
    println!("\n-- end-to-end effect on Platform 2 (1600², 12 runs) --\n");
    let mut rows = Vec::new();
    for (name, s) in &strategies {
        let platform = Platform::platform2(1600, 60_000.0);
        let cfg = ExperimentConfig {
            seed: 1600,
            gap_secs: 20.0,
            predictor: PredictorConfig {
                max_strategy: *s,
                ..Default::default()
            },
            ..Default::default()
        };
        let series = run_series(&platform, &[1600; 12], &cfg, 0);
        let acc = series.accuracy().unwrap();
        let mean_width: f64 = series
            .records
            .iter()
            .map(|r| r.prediction.stochastic.half_width() / r.prediction.stochastic.mean())
            .sum::<f64>()
            / series.records.len() as f64;
        rows.push(vec![
            name.to_string(),
            f(acc.coverage * 100.0, 0),
            f(acc.max_range_error * 100.0, 1),
            f(acc.max_mean_error * 100.0, 1),
            f(mean_width * 100.0, 1),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "strategy",
                "coverage %",
                "max range err %",
                "max mean err %",
                "mean rel width %"
            ],
            &rows
        )
    );
    let _ = platform2_experiment; // referenced for discoverability
    println!(
        "\nSelection strategies (by mean / bounds) pick one input's interval;\n\
         Clark folds all inputs into a genuinely new distribution and tracks\n\
         the Monte-Carlo ground truth closely at a fraction of the cost."
    );
}
