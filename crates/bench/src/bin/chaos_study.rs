//! Deterministic chaos campaign over the supervised SOR solver.
//!
//! Fans a seeded campaign of [`FaultSchedule`]s (healthy runs, single
//! worker deaths, repeated deaths outlasting the retry budget) over the
//! work pool and checks the recovery invariants the robustness layer
//! promises:
//!
//! * every recovered grid is **bit-identical** to the unfaulted
//!   sequential reference — checkpoint/resume loses nothing,
//! * every failure is a **typed error** (`SolveError`), never a panic —
//!   each task runs under `catch_unwind` and the campaign asserts zero
//!   unwinds,
//! * the whole campaign digest is **bit-deterministic** at 1 and 8 pool
//!   threads,
//! * checkpointing a **healthy** solve costs only a bounded wall-time
//!   overhead (CI gates the committed number at 5%).
//!
//! Results are written to `BENCH_chaos.json` (override with the second
//! argument) so recovery-rate or overhead regressions show up as diffs.
//!
//! Usage: `cargo run --release --bin chaos_study [schedules] [out.json]`

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use serde::Serialize;

use prodpred_core::{predict_campaign, solve_strips_supervised, RetryPolicy};
use prodpred_pool::parallel_map;
use prodpred_simgrid::faults::{mix, FaultSchedule};
use prodpred_sor::{
    partition_equal, solve_seq, try_solve_parallel_strips, try_solve_strips_checkpointed,
    CheckpointPolicy, CheckpointStore, ExchangePolicy, Grid, SolveOptions, SorParams,
};

/// Campaign geometry: small enough that hundreds of faulted solves (each
/// spawning real worker threads, some twice) finish in seconds, large
/// enough that every rank owns several rows.
const N: usize = 33;
const ITERATIONS: usize = 20;
const RANKS: usize = 4;
const CHECKPOINT_EVERY: usize = 4;
const CAMPAIGN_SEED: u64 = 4242;

fn snappy() -> ExchangePolicy {
    ExchangePolicy {
        timeout: std::time::Duration::from_millis(200),
        retries: 1,
    }
}

fn retry() -> RetryPolicy {
    RetryPolicy {
        seed: CAMPAIGN_SEED,
        ..Default::default()
    }
}

/// What one schedule did, reduced to deterministic bits.
struct Outcome {
    panicked: bool,
    completed: bool,
    completed_unsupervised: bool,
    retries: u64,
    abandoned: bool,
    resumed_iterations_saved: u64,
    backoff_secs: f64,
    exact: bool,
    /// Interior sum bits of the final grid state (the solution when
    /// completed, the last checkpoint boundary when abandoned).
    sum_bits: u64,
}

fn run_schedule(schedule: &FaultSchedule, reference: &Grid) -> Outcome {
    let params = SorParams::for_grid(N, ITERATIONS);
    let strips = partition_equal(N - 2, RANKS);
    let caught = catch_unwind(AssertUnwindSafe(|| {
        // Supervised: retries resume from the last checkpoint.
        let mut grid = Grid::laplace_problem(N);
        let recovery = solve_strips_supervised(
            &mut grid,
            params,
            &strips,
            snappy(),
            schedule,
            &retry(),
            CheckpointPolicy::every(CHECKPOINT_EVERY),
        );
        // Unsupervised control: one attempt, no second chances.
        let mut bare = Grid::laplace_problem(N);
        let no_retry = solve_strips_supervised(
            &mut bare,
            params,
            &strips,
            snappy(),
            schedule,
            &RetryPolicy::none(),
            CheckpointPolicy::disabled(),
        );
        Outcome {
            panicked: false,
            completed: recovery.succeeded(),
            completed_unsupervised: no_retry.succeeded(),
            retries: recovery.stats.retries,
            abandoned: recovery.stats.abandoned > 0,
            resumed_iterations_saved: recovery.stats.resumed_iterations_saved,
            backoff_secs: recovery.stats.backoff_secs,
            exact: recovery.succeeded() && grid.max_diff(reference) == 0.0, // tidy:allow(PP004): bit-exact recovery equality is the point of this field
            sum_bits: grid.interior_sum().to_bits(),
        }
    }));
    caught.unwrap_or(Outcome {
        panicked: true,
        completed: false,
        completed_unsupervised: false,
        retries: 0,
        abandoned: false,
        resumed_iterations_saved: 0,
        backoff_secs: 0.0,
        exact: false,
        sum_bits: 0,
    })
}

/// Runs the whole campaign at a pinned pool width and folds the per-
/// schedule outcomes into one order-sensitive digest.
fn run_campaign(
    campaign: &[FaultSchedule],
    reference: &Grid,
    threads: usize,
) -> (Vec<Outcome>, u64) {
    let outcomes = parallel_map(campaign, threads, |_, s| run_schedule(s, reference));
    let mut digest = 0u64;
    for (s, o) in campaign.iter().zip(&outcomes) {
        digest = mix(digest ^ s.id);
        digest = mix(digest ^ u64::from(o.completed));
        digest = mix(digest ^ o.retries);
        digest = mix(digest ^ o.sum_bits);
    }
    (outcomes, digest)
}

/// Wall-time overhead of checkpointing a healthy solve, as a fraction of
/// the uncheckpointed parallel solve.
///
/// Checkpointing costs a grid snapshot plus a solver restart (thread
/// respawn, scatter/gather) per segment boundary, so the overhead scales
/// as `fixed_cost / every`: the committed number uses the production-ish
/// cadence of one mid-solve checkpoint (`every = iterations / 2`), where
/// a lost solve forfeits at most half its work. Timings are taken as
/// interleaved plain/checkpointed pairs and reduced by median ratio, so
/// background-load drift hits both sides of each pair equally.
fn healthy_checkpoint_overhead() -> (f64, f64, f64) {
    let n = 513;
    let iters = 480;
    let every = iters / 2;
    let p = 2;
    let params = SorParams::for_grid(n, iters);
    let strips = partition_equal(n - 2, p);
    let plain = |_: usize| {
        let mut g = Grid::laplace_problem(n);
        try_solve_parallel_strips(&mut g, params, &strips, &SolveOptions::reliable()).unwrap();
        std::hint::black_box(g.interior_sum());
    };
    let checkpointed = |_: usize| {
        let mut g = Grid::laplace_problem(n);
        let mut store = CheckpointStore::new();
        try_solve_strips_checkpointed(
            &mut g,
            params,
            &strips,
            &SolveOptions::reliable(),
            CheckpointPolicy::every(every),
            &mut store,
        )
        .unwrap();
        assert_eq!(store.taken(), 1);
        std::hint::black_box(g.interior_sum());
    };
    // Warmup, then interleaved pairs.
    plain(0);
    checkpointed(0);
    let pairs = 31;
    let mut base_times = Vec::with_capacity(pairs);
    let mut ck_times = Vec::with_capacity(pairs);
    let mut ratios = Vec::with_capacity(pairs);
    for i in 0..pairs {
        let t = Instant::now();
        plain(i);
        let base = t.elapsed().as_secs_f64();
        let t = Instant::now();
        checkpointed(i);
        let ck = t.elapsed().as_secs_f64();
        base_times.push(base);
        ck_times.push(ck);
        ratios.push(ck / base - 1.0);
    }
    base_times.sort_by(|a, b| a.total_cmp(b));
    ck_times.sort_by(|a, b| a.total_cmp(b));
    ratios.sort_by(|a, b| a.total_cmp(b));
    (
        base_times[pairs / 2],
        ck_times[pairs / 2],
        ratios[pairs / 2],
    )
}

/// The committed record.
#[derive(Debug, Serialize)]
struct ChaosReport {
    schedules: usize,
    campaign_seed: u64,
    panics: usize,
    faulty_schedules: usize,
    completed_with_recovery: usize,
    completed_without_recovery: usize,
    completion_rate_with_recovery: f64,
    completion_rate_without_recovery: f64,
    recovered_exact: usize,
    mean_retries: f64,
    mean_backoff_secs: f64,
    abandoned: usize,
    resumed_iterations_saved: u64,
    /// Fault-model forecasts of the campaign aggregates above, computed
    /// *before* running a single schedule (`prodpred_core::faultmodel`
    /// at intensity 1.0 — the campaign's own kill-count distribution).
    predicted_completion_rate: f64,
    predicted_mean_retries: f64,
    predicted_mean_backoff_secs: f64,
    predicted_mean_saved_iterations: f64,
    healthy_solve_secs: f64,
    checkpointed_solve_secs: f64,
    checkpoint_overhead_healthy: f64,
    deterministic_1_vs_8: bool,
    digest: String,
}

fn main() {
    let schedules: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("schedule count"))
        .unwrap_or(200);
    let out_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_chaos.json".to_string());

    println!(
        "== Chaos campaign: {schedules} seeded fault schedules over the \
         supervised solver ==\n\
         grid {N}x{N}, {ITERATIONS} iterations, {RANKS} ranks, checkpoint \
         every {CHECKPOINT_EVERY}\n"
    );

    let campaign = FaultSchedule::random_campaign(CAMPAIGN_SEED, schedules, RANKS, ITERATIONS);
    let mut reference = Grid::laplace_problem(N);
    solve_seq(&mut reference, SorParams::for_grid(N, ITERATIONS));

    // The determinism pin: the same campaign at a single worker and an
    // oversubscribed pool must fold to the same digest.
    let (outcomes, digest1) = run_campaign(&campaign, &reference, 1);
    let (_, digest8) = run_campaign(&campaign, &reference, 8);
    let deterministic = digest1 == digest8;

    let panics = outcomes.iter().filter(|o| o.panicked).count();
    let faulty = campaign.iter().filter(|s| !s.is_healthy()).count();
    let with_recovery = outcomes.iter().filter(|o| o.completed).count();
    let without_recovery = outcomes.iter().filter(|o| o.completed_unsupervised).count();
    let exact = outcomes.iter().filter(|o| o.exact).count();
    let abandoned = outcomes.iter().filter(|o| o.abandoned).count();
    let retries: u64 = outcomes.iter().map(|o| o.retries).sum();
    let saved: u64 = outcomes.iter().map(|o| o.resumed_iterations_saved).sum();
    let backoff: f64 = outcomes.iter().map(|o| o.backoff_secs).sum();

    // The fault model's forecast of the same aggregates, from the kill
    // distribution alone — the numbers `faultpred_study` gates.
    let predicted = predict_campaign(
        1.0,
        &retry(),
        CheckpointPolicy::every(CHECKPOINT_EVERY),
        ITERATIONS,
    );

    // The invariants the campaign exists to enforce.
    assert_eq!(panics, 0, "every failure must be a typed error");
    assert_eq!(
        exact, with_recovery,
        "every completed solve must match the unfaulted reference bits"
    );
    assert_eq!(
        with_recovery + abandoned,
        schedules,
        "every schedule either completes or exhausts into a typed error"
    );
    assert!(deterministic, "campaign must not depend on pool width");

    println!("schedules            {schedules:>8}  ({faulty} faulty)");
    println!("panics               {panics:>8}");
    println!(
        "completed            {with_recovery:>8}  with recovery ({:.1}%)",
        100.0 * with_recovery as f64 / schedules as f64
    );
    println!(
        "                     {without_recovery:>8}  without recovery ({:.1}%)",
        100.0 * without_recovery as f64 / schedules as f64
    );
    println!("bit-exact recoveries {exact:>8}");
    println!("abandoned            {abandoned:>8}  (kills outlasting the retry budget)");
    println!(
        "retries              {retries:>8}  (mean {:.2}/schedule)",
        retries as f64 / schedules as f64
    );
    println!("iterations saved     {saved:>8}  (resumed from checkpoints, not recomputed)");
    println!("digest (1 == 8 thr)  {digest1:>#18x}");
    println!(
        "predicted            {:>8.3}  completion rate (measured {:.3})",
        predicted.completion_rate,
        with_recovery as f64 / schedules as f64
    );
    println!(
        "                     {:>8.3}  mean retries (measured {:.3})",
        predicted.mean_retries,
        retries as f64 / schedules as f64
    );
    println!(
        "                     {:>8.1}  mean backoff secs (measured {:.1})",
        predicted.mean_backoff_secs,
        backoff / schedules as f64
    );
    println!(
        "                     {:>8.2}  mean saved iterations (measured {:.2})",
        predicted.mean_saved_iterations,
        saved as f64 / schedules as f64
    );

    println!("\n-- healthy checkpoint overhead (n=513, 480 iters, 1 mid-solve checkpoint) --");
    let (base, checkpointed, overhead) = healthy_checkpoint_overhead();
    println!("plain solve          {:>11.4} s", base);
    println!("checkpointed solve   {:>11.4} s", checkpointed);
    println!("overhead             {:>11.2} %", overhead * 100.0);

    let report = ChaosReport {
        schedules,
        campaign_seed: CAMPAIGN_SEED,
        panics,
        faulty_schedules: faulty,
        completed_with_recovery: with_recovery,
        completed_without_recovery: without_recovery,
        completion_rate_with_recovery: with_recovery as f64 / schedules as f64,
        completion_rate_without_recovery: without_recovery as f64 / schedules as f64,
        recovered_exact: exact,
        mean_retries: retries as f64 / schedules as f64,
        mean_backoff_secs: backoff / schedules as f64,
        abandoned,
        resumed_iterations_saved: saved,
        predicted_completion_rate: predicted.completion_rate,
        predicted_mean_retries: predicted.mean_retries,
        predicted_mean_backoff_secs: predicted.mean_backoff_secs,
        predicted_mean_saved_iterations: predicted.mean_saved_iterations,
        healthy_solve_secs: base,
        checkpointed_solve_secs: checkpointed,
        checkpoint_overhead_healthy: overhead,
        deterministic_1_vs_8: deterministic,
        digest: format!("{digest1:#x}"),
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    std::fs::write(&out_path, json + "\n").expect("write chaos report");
    println!("\nwrote {out_path}");
}
