//! Section 2.2.1's validation: "In a dedicated setting, the structural
//! model defined in this section predicted overall application execution
//! times to within 2% of actual execution time."

use prodpred_core::dedicated_check;
use prodpred_core::report::{f, render_table};

fn main() {
    println!("== Dedicated structural-model validation (Sec 2.2.1) ==\n");
    let checks = dedicated_check(&[600, 800, 1000, 1200, 1400, 1600, 1800, 2000], 50);
    let rows: Vec<Vec<String>> = checks
        .iter()
        .map(|c| {
            vec![
                c.n.to_string(),
                f(c.predicted_secs, 3),
                f(c.actual_secs, 3),
                f(c.rel_error * 100.0, 3),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["n", "predicted (s)", "actual (s)", "error %"], &rows)
    );
    let max = checks.iter().map(|c| c.rel_error).fold(0.0, f64::max);
    println!("max error {:.3}%  (paper: within 2%)", max * 100.0);
}
