//! The Section-1.2 scheduling study, end-to-end: allocate an
//! embarrassingly parallel job under each policy using live stochastic
//! unit-time estimates, execute on real load traces, and compare mean and
//! tail completion times — quantifying the paper's claim that stochastic
//! values enable "a sophisticated scheduling strategy tuned to the user's
//! performance metric".

use prodpred_core::ep::{ep_policy_study, EpJob};
use prodpred_core::report::{f, render_table};
use prodpred_core::AllocationPolicy;
use prodpred_simgrid::Platform;

fn main() {
    println!("== EP scheduling study: allocation policy vs outcome ==\n");
    let job = EpJob {
        units: 400,
        unit_dedicated_secs: 0.25,
    };
    let policies: [(&str, AllocationPolicy); 3] = [
        ("by mean (point model)", AllocationPolicy::ByMean),
        (
            "risk-averse lambda=2",
            AllocationPolicy::RiskAverse { lambda: 2.0 },
        ),
        (
            "optimistic lambda=1",
            AllocationPolicy::Optimistic { lambda: 1.0 },
        ),
    ];

    // The two platform studies share nothing (each builds its own load
    // realizations), so they run concurrently on the work pool; printing
    // happens afterwards, in input order.
    let platforms = [
        (
            "Platform 1 (single-mode)",
            Platform::platform1(7, 200_000.0),
        ),
        ("Platform 2 (bursty)", Platform::platform2(7, 200_000.0)),
    ];
    let tables = prodpred_pool::parallel_map(&platforms, 0, |_, (_, platform)| {
        ep_policy_study(&job, platform, &policies, 25, 180.0)
            .iter()
            .map(|r| {
                vec![
                    r.policy.clone(),
                    f(r.mean_secs, 1),
                    f(r.p95_secs, 1),
                    f(r.coverage * 100.0, 0),
                ]
            })
            .collect::<Vec<_>>()
    });
    for ((pname, _), table) in platforms.iter().zip(&tables) {
        println!("-- {pname} --\n");
        println!(
            "{}",
            render_table(
                &[
                    "policy",
                    "mean completion (s)",
                    "p95 completion (s)",
                    "coverage %"
                ],
                table
            )
        );
        println!();
    }
    println!(
        "On the stable platform the policies barely differ (variance is\n\
         tiny) and risk aversion gets a slightly tighter tail for free —\n\
         the paper's Table-1 story. Under bursty load the picture inverts:\n\
         runs (~40 s) are longer than bursts (~25 s), so each machine's\n\
         *run-averaged* load regresses toward its long-run mean, and a\n\
         policy that reacts strongly to the instantaneous NWS reading —\n\
         fleeing a machine that currently looks busy — misallocates by the\n\
         time the burst has passed. This is precisely why Section 2.1.2\n\
         says bursty data must be summarized by the multi-modal weighted\n\
         average over the run's time scale rather than by the current\n\
         sample: the variance that matters is the variance of the load the\n\
         run will actually experience."
    );
}
