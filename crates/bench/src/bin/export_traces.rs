//! Exports experiment artifacts as JSON for archival or external
//! plotting: the two platforms' load/bandwidth traces and a full
//! Platform-2 experiment series.
//!
//! Usage: `cargo run -p prodpred-bench --bin export_traces [out_dir]`
//! (default `./artifacts`).

use prodpred_core::platform2_experiment;
use prodpred_simgrid::Platform;
use std::fs;
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "artifacts".to_string())
        .into();
    fs::create_dir_all(&out)?;

    let p1 = Platform::platform1(42, 3600.0);
    fs::write(
        out.join("platform1.json"),
        serde_json::to_string_pretty(&p1).expect("serialize platform1"),
    )?;
    let p2 = Platform::platform2(42, 3600.0);
    fs::write(
        out.join("platform2.json"),
        serde_json::to_string_pretty(&p2).expect("serialize platform2"),
    )?;

    let series = platform2_experiment(1600, 1600, 10);
    fs::write(
        out.join("platform2_1600_series.json"),
        serde_json::to_string_pretty(&series).expect("serialize series"),
    )?;

    println!("wrote:");
    for f in [
        "platform1.json",
        "platform2.json",
        "platform2_1600_series.json",
    ] {
        let path = out.join(f);
        let bytes = fs::metadata(&path)?.len();
        println!("  {} ({} KiB)", path.display(), bytes / 1024);
    }
    println!(
        "\nEach file reloads losslessly (see tests/serialization.rs) so\n\
         experiments can be archived, diffed, and replotted elsewhere."
    );
    Ok(())
}
