//! Fault study: prediction accuracy vs fault intensity, on both platforms.
//!
//! The paper's production experiments assume a healthy measurement
//! substrate. This study asks how gracefully the stochastic predictions
//! degrade when the substrate is not healthy: sensors drop, delay,
//! spike, and corrupt polls, a monitoring blackout opens mid-series, and
//! the watched machine weathers a load storm — all scaled by one
//! intensity knob ([`prodpred_simgrid::faults::FaultConfig::with_intensity`]).
//!
//! Each intensity is replicated over independent seeds; the whole
//! (intensity × seed) grid fans out over the work pool and the output is
//! bit-identical at any thread count.

use prodpred_core::report::{f, render_table};
use prodpred_core::{platform1_fault_sweep, platform2_fault_sweep, spread_widening, FaultStudyRow};
use prodpred_simgrid::faults::FaultConfig;

const SEEDS: [u64; 4] = [11, 23, 47, 95];
const INTENSITIES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

fn rows_to_table(rows: &[FaultStudyRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                f(r.intensity, 2),
                format!("{}", r.runs),
                format!("{}", r.skipped_runs),
                f(r.mean_coverage * 100.0, 0),
                f(r.min_coverage * 100.0, 0),
                f(r.mean_abs_error * 100.0, 1),
                f(r.worst_mean_error * 100.0, 1),
                f(r.degraded_fraction * 100.0, 0),
                f(r.max_stale_intervals, 0),
                format!("{}", r.missed_polls),
                format!("{}", r.corrupt_polls),
            ]
        })
        .collect()
}

/// The fault-model validation view: each measured degradation aggregate
/// next to the `core::faultmodel` term that predicts it. Row 0 (the
/// healthy intensity) is the baseline for the measured ratios.
fn model_table(rows: &[FaultStudyRow]) -> Vec<Vec<String>> {
    let base = &rows[0];
    rows.iter()
        .map(|r| {
            let cfg = FaultConfig::with_intensity(0, r.intensity);
            vec![
                f(r.intensity, 2),
                f(r.mean_actual_secs, 1),
                f(r.mean_actual_secs / base.mean_actual_secs, 3),
                f(r.mean_half_width_secs / base.mean_half_width_secs, 3),
                f(spread_widening(&cfg), 3),
                f(r.degraded_fraction * 100.0, 0),
                f(cfg.perturbation_rate() * 100.0, 0),
            ]
        })
        .collect()
}

const MODEL_HEADERS: [&str; 7] = [
    "intensity",
    "actual s",
    "slowdown",
    "widen meas",
    "widen pred",
    "degraded %",
    "degr pred %",
];

const HEADERS: [&str; 11] = [
    "intensity",
    "runs",
    "skipped",
    "mean cov %",
    "min cov %",
    "mean |err| %",
    "worst mean err %",
    "degraded %",
    "max stale",
    "missed",
    "corrupt",
];

fn main() {
    println!(
        "== Fault study: prediction accuracy vs fault intensity ==\n\
         {} seeds per intensity; faults: dropout/delay/spike/corruption\n\
         scaled by intensity, blackout from t=360s, load storm on the\n\
         watched machine from t=320s.\n",
        SEEDS.len()
    );

    println!("-- Platform 1 (Figures 8-9 series, sizes 1000..2000) --\n");
    let sizes = [1000, 1200, 1400, 1600, 1800, 2000];
    let p1 = platform1_fault_sweep(&SEEDS, &sizes, &INTENSITIES, 0);
    println!("{}", render_table(&HEADERS, &rows_to_table(&p1)));
    println!("\n   fault-model validation (measured vs predicted):\n");
    println!("{}", render_table(&MODEL_HEADERS, &model_table(&p1)));

    println!("\n-- Platform 2 (Figures 12-17 series, 1600^2 x 10 runs) --\n");
    let p2 = platform2_fault_sweep(&SEEDS, 1600, 10, &INTENSITIES, 0);
    println!("{}", render_table(&HEADERS, &rows_to_table(&p2)));
    println!("\n   fault-model validation (measured vs predicted):\n");
    println!("{}", render_table(&MODEL_HEADERS, &model_table(&p2)));

    println!(
        "\nReading: coverage is the fraction of actual times inside the\n\
         predicted mean +/- 2 sigma. The staleness-aware query chain widens\n\
         its intervals as measurements age, so coverage should erode slowly\n\
         while the mean-point error grows with intensity; 'degraded' counts\n\
         queries answered from a fallback estimator or stale data, and\n\
         'skipped' counts runs the service declined to predict at all.\n\
         The validation tables pair each measured aggregate with the\n\
         core::faultmodel term that predicts it: interval widening vs\n\
         the 1/sqrt(kept-fraction) spread term, and the degraded-query\n\
         fraction vs the sensor perturbation rate. The per-run degraded\n\
         runtime prediction is validated (and gated) by faultpred_study."
    );
}
