//! Fault-aware prediction validation: the `core::faultmodel` degradation
//! terms against the machinery they claim to predict.
//!
//! Two measured artifacts, two halves:
//!
//! 1. **Campaign half** — rerun the chaos campaign's supervised solves
//!    (same geometry, seed, and retry policy as `chaos_study`) and
//!    compare the measured completion rate, mean retries, mean backoff,
//!    and mean checkpoint-saved iterations against
//!    [`predict_campaign`](prodpred_core::predict_campaign) at intensity
//!    1.0 — the campaign's own kill law.
//! 2. **Sweep half** — pair each faulted Platform-2 run with its healthy
//!    twin (same seed, same run index, faults off) and predict the
//!    degraded duration from the healthy one by pushing it through the
//!    model's storm-stretch term at the faulted run's actual launch
//!    time. The fault-blind error (predicting the degraded run with the
//!    plain healthy duration) is reported alongside, so the model has to
//!    *beat* doing nothing, not just land somewhere.
//!
//! The combined mean relative error is committed to
//! `BENCH_faultpred.json` with the gated bound; at full scale the binary
//! asserts the bound itself, and CI's `faultpred-smoke` job gates the
//! committed file.
//!
//! Usage: `cargo run --release --bin faultpred_study [schedules] [out.json]`

use serde::Serialize;

use prodpred_core::{
    platform2_experiment, platform2_experiment_with_faults, predict_campaign,
    solve_strips_supervised, storm_stretched_secs, RetryPolicy,
};
use prodpred_pool::parallel_map;
use prodpred_simgrid::faults::{FaultConfig, FaultSchedule};
use prodpred_sor::{partition_equal, CheckpointPolicy, ExchangePolicy, Grid, SorParams};

/// Campaign geometry — must mirror `chaos_study` exactly, since the
/// committed `BENCH_chaos.json` is the measured side of these terms.
const N: usize = 33;
const ITERATIONS: usize = 20;
const RANKS: usize = 4;
const CHECKPOINT_EVERY: usize = 4;
const CAMPAIGN_SEED: u64 = 4242;

/// Sweep geometry — the Platform-2 half of `fault_study`, minus the
/// healthy row (its pairing error is identically zero).
const SWEEP_SEEDS: [u64; 4] = [11, 23, 47, 95];
const SWEEP_INTENSITIES: [f64; 4] = [0.25, 0.5, 0.75, 1.0];
const SWEEP_N: usize = 1600;
const SWEEP_RUNS: usize = 10;
/// Machines in the Platform-2 decomposition.
const SWEEP_PROCS: usize = 4;

/// The stated, gated bound on the combined mean relative error.
const ERROR_BOUND: f64 = 0.25;

fn snappy() -> ExchangePolicy {
    ExchangePolicy {
        timeout: std::time::Duration::from_millis(200),
        retries: 1,
    }
}

fn retry() -> RetryPolicy {
    RetryPolicy {
        seed: CAMPAIGN_SEED,
        ..Default::default()
    }
}

/// Predicted vs measured for one campaign aggregate.
#[derive(Debug, Serialize)]
struct Term {
    name: String,
    predicted: f64,
    measured: f64,
    rel_error: f64,
}

impl Term {
    fn new(name: &str, predicted: f64, measured: f64) -> Self {
        // tidy:allow(PP004): exact-zero denominator guard, not a tolerance check
        let rel_error = if measured == 0.0 {
            predicted.abs()
        } else {
            (predicted - measured).abs() / measured.abs()
        };
        Self {
            name: name.to_string(),
            predicted,
            measured,
            rel_error,
        }
    }
}

/// One intensity row of the sweep half.
#[derive(Debug, Serialize)]
struct SweepRow {
    intensity: f64,
    /// Healthy/faulted record pairs compared at this intensity.
    paired_runs: usize,
    /// Faulted runs that could not be paired (skipped by the degraded
    /// service, or past the shorter series).
    unpaired_runs: usize,
    /// Mean `|predicted − actual| / actual` of the model's degraded
    /// duration.
    mean_rel_error: f64,
    /// Same error when predicting with the raw healthy duration instead
    /// (no degradation terms) — the do-nothing baseline.
    fault_blind_rel_error: f64,
}

/// The committed record.
#[derive(Debug, Serialize)]
struct FaultPredReport {
    schedules: usize,
    campaign_seed: u64,
    campaign_terms: Vec<Term>,
    campaign_mean_rel_error: f64,
    sweep_seeds: usize,
    sweep_rows: Vec<SweepRow>,
    sweep_mean_rel_error: f64,
    sweep_fault_blind_rel_error: f64,
    mean_rel_error: f64,
    error_bound: f64,
}

/// Reruns the supervised campaign (lightweight: no unsupervised control,
/// no reference-grid diff — `chaos_study` owns those invariants) and
/// returns the measured aggregates next to the model's forecasts.
fn campaign_half(schedules: usize) -> Vec<Term> {
    let campaign = FaultSchedule::random_campaign(CAMPAIGN_SEED, schedules, RANKS, ITERATIONS);
    let params = SorParams::for_grid(N, ITERATIONS);
    let strips = partition_equal(N - 2, RANKS);
    let outcomes = parallel_map(&campaign, 0, |_, schedule| {
        let mut grid = Grid::laplace_problem(N);
        let recovery = solve_strips_supervised(
            &mut grid,
            params,
            &strips,
            snappy(),
            schedule,
            &retry(),
            CheckpointPolicy::every(CHECKPOINT_EVERY),
        );
        (
            recovery.succeeded(),
            recovery.stats.retries,
            recovery.stats.backoff_secs,
            recovery.stats.resumed_iterations_saved,
        )
    });
    let total = schedules as f64;
    let completed = outcomes.iter().filter(|o| o.0).count() as f64;
    let retries: u64 = outcomes.iter().map(|o| o.1).sum();
    let backoff: f64 = outcomes.iter().map(|o| o.2).sum();
    let saved: u64 = outcomes.iter().map(|o| o.3).sum();

    let predicted = predict_campaign(
        1.0,
        &retry(),
        CheckpointPolicy::every(CHECKPOINT_EVERY),
        ITERATIONS,
    );
    vec![
        Term::new(
            "completion_rate",
            predicted.completion_rate,
            completed / total,
        ),
        Term::new(
            "mean_retries",
            predicted.mean_retries,
            retries as f64 / total,
        ),
        Term::new(
            "mean_backoff_secs",
            predicted.mean_backoff_secs,
            backoff / total,
        ),
        Term::new(
            "mean_saved_iterations",
            predicted.mean_saved_iterations,
            saved as f64 / total,
        ),
    ]
}

/// Runs the healthy/faulted series of every (seed, intensity) cell and
/// pairs records by run index. `runs` lets the CI smoke job shrink the
/// series.
fn sweep_half(runs: usize) -> Vec<SweepRow> {
    // Healthy twins, one per seed, shared across intensities.
    let healthy = parallel_map(&SWEEP_SEEDS, 0, |_, &seed| {
        platform2_experiment(seed, SWEEP_N, runs)
    });
    let cells: Vec<(f64, u64)> = SWEEP_INTENSITIES
        .iter()
        .flat_map(|&i| SWEEP_SEEDS.iter().map(move |&s| (i, s)))
        .collect();
    let faulted = parallel_map(&cells, 0, |_, &(intensity, seed)| {
        let cfg = FaultConfig::with_intensity(seed, intensity);
        platform2_experiment_with_faults(seed, SWEEP_N, runs, &cfg)
    });

    SWEEP_INTENSITIES
        .iter()
        .zip(faulted.chunks(SWEEP_SEEDS.len()))
        .map(|(&intensity, chunk)| {
            // Window placement is seed-independent, so one config serves
            // the whole row's predictions.
            let cfg = FaultConfig::with_intensity(0, intensity);
            let mut paired = 0usize;
            let mut unpaired = 0usize;
            let mut err_sum = 0.0;
            let mut blind_sum = 0.0;
            for (f, h) in chunk.iter().zip(&healthy) {
                // Skipped runs drop out of the faulted series without a
                // marker, so positional pairing is only sound up to the
                // first skip; past it we stop rather than mispair.
                let sound = f.series.records.len().min(h.records.len());
                unpaired += f.series.records.len() - sound + f.stats.skipped_runs;
                for (fr, hr) in f.series.records[..sound].iter().zip(&h.records[..sound]) {
                    let predicted =
                        storm_stretched_secs(&cfg, SWEEP_PROCS, fr.start, hr.actual_secs);
                    err_sum += (predicted - fr.actual_secs).abs() / fr.actual_secs;
                    blind_sum += (hr.actual_secs - fr.actual_secs).abs() / fr.actual_secs;
                    paired += 1;
                }
            }
            let per = |sum: f64| {
                if paired == 0 {
                    0.0
                } else {
                    sum / paired as f64
                }
            };
            SweepRow {
                intensity,
                paired_runs: paired,
                unpaired_runs: unpaired,
                mean_rel_error: per(err_sum),
                fault_blind_rel_error: per(blind_sum),
            }
        })
        .collect()
}

fn main() {
    let schedules: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("schedule count"))
        .unwrap_or(200);
    let out_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_faultpred.json".to_string());
    // Reduced-scale runs shrink both halves together.
    let full_scale = schedules >= 200;
    let sweep_runs = if full_scale { SWEEP_RUNS } else { 3 };

    println!(
        "== Fault-aware prediction validation ==\n\
         campaign: {schedules} schedules, grid {N}x{N}, {ITERATIONS} iterations, \
         {RANKS} ranks, checkpoint every {CHECKPOINT_EVERY}\n\
         sweep: platform 2, {}^2 x {sweep_runs} runs, {} seeds x {} intensities\n",
        SWEEP_N,
        SWEEP_SEEDS.len(),
        SWEEP_INTENSITIES.len()
    );

    let campaign_terms = campaign_half(schedules);
    println!("-- campaign terms (model at intensity 1.0 vs measured) --");
    for t in &campaign_terms {
        println!(
            "{:<24} predicted {:>9.3}  measured {:>9.3}  rel err {:>5.1}%",
            t.name,
            t.predicted,
            t.measured,
            t.rel_error * 100.0
        );
    }
    let campaign_err =
        campaign_terms.iter().map(|t| t.rel_error).sum::<f64>() / campaign_terms.len() as f64;

    let sweep_rows = sweep_half(sweep_runs);
    println!("\n-- sweep terms (storm-stretched healthy twin vs measured) --");
    for r in &sweep_rows {
        println!(
            "intensity {:<5} paired {:>3}  rel err {:>5.1}%  (fault-blind {:>5.1}%)",
            r.intensity,
            r.paired_runs,
            r.mean_rel_error * 100.0,
            r.fault_blind_rel_error * 100.0
        );
    }
    let sweep_err =
        sweep_rows.iter().map(|r| r.mean_rel_error).sum::<f64>() / sweep_rows.len() as f64;
    let blind_err = sweep_rows
        .iter()
        .map(|r| r.fault_blind_rel_error)
        .sum::<f64>()
        / sweep_rows.len() as f64;

    let mean_rel_error = (campaign_err + sweep_err) / 2.0;
    println!(
        "\ncampaign mean rel error {:>6.1}%\n\
         sweep mean rel error    {:>6.1}%  (fault-blind baseline {:.1}%)\n\
         combined                {:>6.1}%  (bound {:.0}%)",
        campaign_err * 100.0,
        sweep_err * 100.0,
        blind_err * 100.0,
        mean_rel_error * 100.0,
        ERROR_BOUND * 100.0
    );

    if full_scale {
        assert!(
            mean_rel_error <= ERROR_BOUND,
            "fault-model error {mean_rel_error:.3} exceeds the gated bound {ERROR_BOUND}"
        );
        assert!(
            sweep_err <= blind_err,
            "the degradation terms must beat the fault-blind baseline \
             ({sweep_err:.3} vs {blind_err:.3})"
        );
    }

    let report = FaultPredReport {
        schedules,
        campaign_seed: CAMPAIGN_SEED,
        campaign_terms,
        campaign_mean_rel_error: campaign_err,
        sweep_seeds: SWEEP_SEEDS.len(),
        sweep_rows,
        sweep_mean_rel_error: sweep_err,
        sweep_fault_blind_rel_error: blind_err,
        mean_rel_error,
        error_bound: ERROR_BOUND,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    std::fs::write(&out_path, json + "\n").expect("write faultpred report");
    println!("\nwrote {out_path}");
}
