//! Figures 1 and 2: PDF and CDF of in-core sort runtimes on a dedicated
//! workstation, with the fitted normal overlay.
//!
//! Pass `--live` to time real sorts on this host instead of replaying the
//! deterministic simulated benchmark.

use prodpred_bench::{print_cdf_comparison, print_histogram_with_normal};
use prodpred_simgrid::benchmark::{figure1_runtimes, run_sort_benchmark};
use prodpred_stochastic::fit::normality_report;
use prodpred_stochastic::StochasticValue;

fn main() {
    let live = std::env::args().any(|a| a == "--live");
    let runtimes = if live {
        // Real sorts: scale counts so one repetition takes ~5-20 ms.
        run_sort_benchmark(400_000, 200, 1)
    } else {
        figure1_runtimes(400, 1)
    };
    let what = if live {
        "live sort timings"
    } else {
        "simulated dedicated sort runtimes"
    };
    print_histogram_with_normal(&runtimes, 14, &format!("Figure 1: {what}"), "sec");
    print_cdf_comparison(&runtimes, 12, "Figure 2: sample runtime", "sec");

    let report = normality_report(&runtimes).expect("enough samples");
    let sv = StochasticValue::from_samples(&runtimes).unwrap();
    println!("stochastic summary: {sv}");
    println!(
        "two-sigma coverage {:.1}%  skewness {:+.2}  KS p {:.3}  AD A*2 {:.2}  -> normal assumption {}",
        report.two_sigma_coverage * 100.0,
        report.skewness,
        report.ks_p_value,
        report.ad_statistic,
        if report.is_adequate() { "adequate" } else { "NOT adequate" }
    );
}
