//! Figures 3 and 4: long-tailed distribution of shared-ethernet bandwidth
//! with the corresponding (inadequate) normal fit. The paper's headline:
//! mean 5.25 ± 0.8, and "the normal distribution is representative of 91%
//! of the values, rather than the 95% typically assumed."

use prodpred_bench::{print_cdf_comparison, print_histogram_with_normal};
use prodpred_simgrid::network::EthernetContention;
use prodpred_stochastic::fit::normality_report;
use prodpred_stochastic::{StochasticValue, Summary};

fn main() {
    let contention = EthernetContention::default();
    let trace = contention.generate(3, 0.0, 5.0, 20_000);
    let mbit: Vec<f64> = trace.values().iter().map(|f| f * 10.0).collect();

    print_histogram_with_normal(
        &mbit,
        16,
        "Figure 3: ethernet bandwidth between two workstations",
        "Mbit/s",
    );
    print_cdf_comparison(&mbit, 12, "Figure 4: bandwidth", "Mbit/s");

    let s = Summary::from_slice(&mbit);
    let sv = StochasticValue::from_samples(&mbit).unwrap();
    let report = normality_report(&mbit).expect("enough samples");
    println!("stochastic summary: {sv}  (paper: 5.25 ± 0.8)");
    println!(
        "skewness {:+.2} (left tail), median {:.2} vs mean {:.2}",
        s.skewness(),
        prodpred_stochastic::stats::median(&mbit).unwrap(),
        s.mean()
    );
    println!(
        "two-sigma coverage {:.1}%  (paper: ~91% instead of the nominal ~95%)",
        report.two_sigma_coverage * 100.0
    );
    println!(
        "Anderson-Darling A*2 = {:.2} -> normality {} at 5% (tail-sensitive)",
        report.ad_statistic,
        if report.ad_rejects {
            "REJECTED"
        } else {
            "accepted"
        }
    );
    println!(
        "normal assumption adequate for a tolerant scheduler: {}",
        report.is_adequate()
    );
}
