//! Figure 5: the tri-modal CPU load histogram of a production workstation
//! (modes near 0.94, 0.49 and 0.33), with the mode decomposition the
//! paper's Section 2.1.2 performs.

use prodpred_core::report::{f, render_table};
use prodpred_simgrid::load::{LoadGenerator, MarkovModal, SessionLoad};
use prodpred_stochastic::fit::detect_modes;
use prodpred_stochastic::Histogram;

fn main() {
    // The statistical generator used by the experiments...
    let markov = MarkovModal::platform1(120.0).generate(5, 0.0, 1.0, 100_000);
    // ...and the mechanistic competing-user model that explains *why* load
    // is modal (round-robin sharing: idle/(1+k)).
    let sessions = SessionLoad::default().generate(6, 0.0, 1.0, 100_000);

    for (name, trace) in [
        ("Markov tri-modal", &markov),
        ("competing-user sessions", &sessions),
    ] {
        println!("== Figure 5: load on a production workstation ({name}) ==");
        let hist = Histogram::from_data(trace.values(), 25).unwrap();
        println!("{}", hist.render_ascii(48));
        let model = detect_modes(trace.values(), Default::default()).expect("modal data");
        let rows: Vec<Vec<String>> = model
            .modes()
            .iter()
            .map(|m| {
                vec![
                    f(m.normal.mu(), 3),
                    f(m.normal.sigma(), 3),
                    f(m.weight * 100.0, 1),
                    format!("{}", m.stochastic()),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["mode mean", "mode sd", "occupancy %", "stochastic value"],
                &rows
            )
        );
        println!(
            "multi-modal weighted average (Sec 2.1.2): {}\n",
            model.weighted_average()
        );
    }
    println!(
        "Paper's modes: 0.94 (normal), 0.49 (long-tailed), 0.33 (normal).\n\
         The session model shows the mechanism: k competing CPU-bound jobs\n\
         leave idle/(1+k) for the application, producing modes at ~0.94,\n\
         ~0.47, ~0.31, ..."
    );
}
