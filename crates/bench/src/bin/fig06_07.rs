//! Figures 6 and 7 — the paper's two illustrative diagrams, rendered from
//! live objects instead of clip art:
//!
//! * Figure 6: the strip decomposition of the SOR grid;
//! * Figure 7: program skew — "delays in communication between a
//!   processor executing data strip S_i and its neighbor ... can retard
//!   communication ... accumulating communication delays can create a
//!   kind of 'skew'".

use prodpred_core::report::{f, render_table};
use prodpred_simgrid::{Machine, MachineClass, MachineSpec, Platform, Trace};
use prodpred_sor::{partition_rows, simulate, DistSorConfig};

fn main() {
    println!("== Figure 6: strip decomposition (1000 x 1000, Platform 1 speeds) ==\n");
    let weights = [
        1.0 / MachineClass::Sparc2.benchmark_secs_per_element(),
        1.0 / MachineClass::Sparc2.benchmark_secs_per_element(),
        1.0 / MachineClass::Sparc5.benchmark_secs_per_element(),
        1.0 / MachineClass::Sparc10.benchmark_secs_per_element(),
    ];
    let strips = partition_rows(998, &weights);
    let rows: Vec<Vec<String>> = strips
        .iter()
        .map(|s| {
            vec![
                format!("P{}", s.proc + 1),
                format!("{:?}", s.rows),
                s.n_rows().to_string(),
                s.elements(1000).to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["processor", "rows", "row count", "elements"], &rows)
    );
    println!("Faster machines receive proportionally taller strips (footnote 2).\n");

    println!("== Figure 7: program skew from a delayed neighbour ==\n");
    // Four identical dedicated machines, except P2 stalls (availability
    // 0.2) for the first 3 seconds. Watch the stall ripple outward one
    // neighbour per iteration, then drain once P2 recovers.
    let horizon = 100_000usize;
    let mut machines: Vec<Machine> = (0..4)
        .map(|i| {
            Machine::new(
                MachineSpec::new(format!("m{i}"), MachineClass::Sparc10),
                Trace::constant(0.0, 1.0, 1.0, horizon),
            )
        })
        .collect();
    let mut stall = vec![0.2; 3];
    stall.extend(vec![1.0; horizon - 3]);
    machines[1] = Machine::new(
        MachineSpec::new("m1-stalled", MachineClass::Sparc10),
        Trace::new(0.0, 1.0, stall),
    );
    let network = Platform::dedicated(&[MachineClass::Sparc10], 10.0).network;
    let platform = Platform {
        machines,
        network,
        horizon: horizon as f64,
    };
    let strips = prodpred_sor::partition_equal(998, 4);
    let run = simulate(&platform, &strips, DistSorConfig::new(1000, 12, 0.0));
    let clean = simulate(
        &Platform::dedicated([MachineClass::Sparc10; 4].as_ref(), 1.0e5),
        &strips,
        DistSorConfig::new(1000, 12, 0.0),
    );
    let rows: Vec<Vec<String>> = run
        .iteration_secs
        .iter()
        .zip(&clean.iteration_secs)
        .enumerate()
        .map(|(i, (&loaded, &baseline))| {
            let bar = "#".repeat((loaded * 40.0).round() as usize);
            vec![
                (i + 1).to_string(),
                f(loaded, 3),
                f(baseline, 3),
                f(loaded - baseline, 3),
                bar,
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "iteration",
                "loaded (s)",
                "baseline (s)",
                "skew delay (s)",
                "bar"
            ],
            &rows
        )
    );
    println!(
        "total {:.2} s vs clean {:.2} s; final inter-processor skew {:.4} s\n\
         Early iterations absorb the stalled neighbour's delay (the skew of\n\
         Figure 7); once the stall clears, iterations return to the\n\
         baseline — the loose synchronization bounds the damage instead of\n\
         letting it accumulate without limit.",
        run.total_secs, clean.total_secs, run.skew_secs
    );
}
