//! Figures 8 and 9: Platform 1 (2x Sparc-2, Sparc-5, Sparc-10) with load
//! that stays within a single mode. Figure 8 is the watched machine's load
//! trace; Figure 9 shows actual execution times falling inside the
//! stochastic interval across problem sizes.
//!
//! Paper's headline numbers: measurements fall *entirely* within the
//! stochastic prediction; maximal mean-point discrepancy 9.7%; stochastic
//! (range) discrepancy 0%.
//!
//! The headline series replays the paper's single experiment (seed 42);
//! the replication table below it reruns the full size sweep under seven
//! more seeds — in parallel over the work pool, one series per worker —
//! to show the coverage claim is a property of the method, not of one
//! lucky load realization.

use prodpred_bench::{print_experiment, print_replication_table};
use prodpred_core::{platform1_experiment, platform1_seed_sweep};

fn main() {
    let sizes = [
        1000, 1100, 1200, 1300, 1400, 1500, 1600, 1700, 1800, 1900, 2000,
    ];
    let series = platform1_experiment(42, &sizes);
    print_experiment(
        &series,
        "Figures 8-9: Platform 1, single-mode load, size sweep",
        40,
    );
    let acc = series.accuracy().unwrap();
    println!(
        "paper: coverage 100%, stochastic discrepancy 0%, mean-point max 9.7%\n\
         here : coverage {:.0}%, stochastic max {:.1}%, mean-point max {:.1}%",
        acc.coverage * 100.0,
        acc.max_range_error * 100.0,
        acc.max_mean_error * 100.0
    );

    let seeds: Vec<u64> = (43..50).collect();
    let sweep = platform1_seed_sweep(&seeds, &sizes, 0);
    print_replication_table(&seeds, &sweep, "replication across seeds (size sweep)");
}
