//! Figures 10 and 11: Platform 2's 4-modal load histogram and a time
//! trace of its burstiness.

use prodpred_core::report::{f, render_series, render_table};
use prodpred_simgrid::Platform;
use prodpred_stochastic::fit::detect_modes;
use prodpred_stochastic::Histogram;

fn main() {
    let platform = Platform::platform2(9, 40_000.0);
    let trace = &platform.machines[0].load;

    println!("== Figure 10: histogram data for Platform 2 ==");
    let hist = Histogram::from_data(trace.values(), 25).unwrap();
    println!("{}", hist.render_ascii(48));

    if let Some(model) = detect_modes(trace.values(), Default::default()) {
        let rows: Vec<Vec<String>> = model
            .modes()
            .iter()
            .map(|m| {
                vec![
                    f(m.normal.mu(), 3),
                    f(m.normal.sigma(), 3),
                    f(m.weight * 100.0, 1),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["mode mean", "mode sd", "occupancy %"], &rows)
        );
        println!(
            "detected {} modes; paper reports a 4-modal bursty distribution\n",
            model.modes().len()
        );
    }

    println!("== Figure 11: typical multi-modal bursty load ==");
    let window: Vec<(f64, f64)> = trace.sample_every(0.0, 600.0, 5.0);
    println!(
        "{}",
        render_series(&window, 48, "availability (10-minute window)")
    );
}
