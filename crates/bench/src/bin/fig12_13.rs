//! Figures 12 and 13: repeated 1600x1600 runs on Platform 2 under bursty
//! load — execution times with stochastic intervals (Fig 12) and the
//! companion load trace (Fig 13).
//!
//! Paper's headline numbers: ~80% of actuals inside the stochastic range,
//! maximum stochastic error ~14%, maximum mean-point error 38.6%.

use prodpred_bench::print_experiment;
use prodpred_core::platform2_experiment;

fn main() {
    let series = platform2_experiment(1600, 1600, 14);
    print_experiment(
        &series,
        "Figures 12-13: Platform 2, bursty load, 1600x1600 repeats",
        40,
    );
    let acc = series.accuracy().unwrap();
    println!(
        "paper: coverage ~80%, stochastic max ~14%, mean-point max 38.6%\n\
         here : coverage {:.0}%, stochastic max {:.1}%, mean-point max {:.1}%",
        acc.coverage * 100.0,
        acc.max_range_error * 100.0,
        acc.max_mean_error * 100.0
    );
}
