//! Figures 12 and 13: repeated 1600x1600 runs on Platform 2 under bursty
//! load — execution times with stochastic intervals (Fig 12) and the
//! companion load trace (Fig 13), plus a parallel multi-seed replication
//! of the claim.
//!
//! Paper's headline numbers: ~80% of actuals inside the stochastic range,
//! maximum stochastic error ~14%, maximum mean-point error 38.6%.

use prodpred_bench::platform2_figure;

fn main() {
    platform2_figure(
        1600,
        14,
        "Figures 12-13: Platform 2, bursty load, 1600x1600 repeats",
        "coverage ~80%, stochastic max ~14%, mean-point max 38.6%",
    );
}
