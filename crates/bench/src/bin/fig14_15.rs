//! Figures 14 and 15: the Platform-2 bursty-load study at the small
//! (1000x1000) problem size.

use prodpred_bench::print_experiment;
use prodpred_core::platform2_experiment;

fn main() {
    let series = platform2_experiment(1000, 1000, 14);
    print_experiment(
        &series,
        "Figures 14-15: Platform 2, bursty load, 1000x1000 repeats",
        40,
    );
    let acc = series.accuracy().unwrap();
    println!(
        "paper: almost all actuals within range, small out-of-range errors\n\
         here : coverage {:.0}%, stochastic max {:.1}%, mean-point max {:.1}%",
        acc.coverage * 100.0,
        acc.max_range_error * 100.0,
        acc.max_mean_error * 100.0
    );
}
