//! Figures 14 and 15: the Platform-2 bursty-load study at the small
//! (1000x1000) problem size, plus a parallel multi-seed replication.

use prodpred_bench::platform2_figure;

fn main() {
    platform2_figure(
        1000,
        14,
        "Figures 14-15: Platform 2, bursty load, 1000x1000 repeats",
        "almost all actuals within range, small out-of-range errors",
    );
}
