//! Figures 16 and 17: the Platform-2 bursty-load study at the large
//! (2000x2000) problem size, plus a parallel multi-seed replication.

use prodpred_bench::platform2_figure;

fn main() {
    platform2_figure(
        2000,
        14,
        "Figures 16-17: Platform 2, bursty load, 2000x2000 repeats",
        "almost all actuals within range, small out-of-range errors",
    );
}
