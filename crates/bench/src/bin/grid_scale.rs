//! Grid-at-1000× scale gate: generates a production grid of tens of
//! thousands of machines on the columnar `TraceStore`, runs hundreds of
//! SOR tenants through the sharded deterministic simulation, checks the
//! result is bit-identical at 1/2/4/8 pool threads, and writes the
//! committed `BENCH_scale.json` record:
//!
//! * `machines`, `tenants`, `shards` — the configuration that ran,
//! * `gen_wall_s` — wall seconds to generate the grid (streamed chunks),
//! * `sim_wall_s` — wall seconds for one sharded simulation pass,
//! * `events` / `events_per_s` — queue pops plus per-phase compute and
//!   transfer integrations, and their throughput,
//! * `bytes_per_machine` — amortized trace bytes per machine (store
//!   columns + built prefixes + 16-byte slots) after the simulation has
//!   touched the store,
//! * `naive_bytes_per_machine` — what a standalone per-machine trace
//!   (samples + prefix) would cost, `memory_ratio` = naive / actual
//!   (the acceptance gate requires ≥ 20×),
//! * `deterministic_1_vs_8` — digests agreed across 1/2/4/8 threads,
//! * `makespan_s`, `peak_concurrency` — simulation shape, for the record.
//!
//! Usage: `cargo run --release --bin grid_scale [machines] [tenants] [output.json]`
//!
//! Defaults run the acceptance configuration: 10,000 machines × 120
//! tenants. The CI smoke job runs a reduced grid (still asserting the
//! determinism and memory gates) under a hard timeout.

use std::time::Instant;

use serde::Serialize;

use prodpred_core::{simulate_grid_sharded, GridSimConfig, TenantSpec};
use prodpred_simgrid::GridPlatform;

/// The committed scale record.
#[derive(Debug, Serialize)]
struct ScaleRecord {
    machines: usize,
    tenants: usize,
    shards: usize,
    horizon_s: f64,
    gen_wall_s: f64,
    sim_wall_s: f64,
    events: u64,
    events_per_s: f64,
    bytes_per_machine: f64,
    naive_bytes_per_machine: usize,
    memory_ratio: f64,
    deterministic_1_vs_8: bool,
    makespan_s: f64,
    peak_concurrency: usize,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let machines: usize = args
        .next()
        .map(|a| a.parse().expect("machines must be a number"))
        .unwrap_or(10_000);
    let tenants: usize = args
        .next()
        .map(|a| a.parse().expect("tenants must be a number"))
        .unwrap_or(120);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_scale.json".to_string());

    let horizon = 3600.0;
    let seed = 2026;
    // Shards are configuration, not thread count: scale with the grid but
    // keep every shard big enough for a 4-machine tenant job.
    let shards = (machines / 64).clamp(1, 64);
    let cfg = GridSimConfig {
        tenants,
        shards,
        tenant: TenantSpec {
            n: 600,
            iterations: 20,
            procs: 4,
        },
        seed: seed ^ 0xBEEF,
        mean_arrival_gap: 12.0,
    };

    println!("generating grid: {machines} machines, horizon {horizon} s");
    let t = Instant::now();
    let grid = GridPlatform::production(machines, seed, horizon, 0);
    let gen_wall_s = t.elapsed().as_secs_f64();
    println!(
        "  {gen_wall_s:.3} s, {} template columns",
        grid.store().columns()
    );

    println!("simulating {tenants} tenants across {shards} shards");
    let t = Instant::now();
    let result = simulate_grid_sharded(&grid, &cfg, 0);
    let sim_wall_s = t.elapsed().as_secs_f64();
    let events_per_s = result.events as f64 / sim_wall_s;
    println!(
        "  {sim_wall_s:.3} s, {} events ({events_per_s:.0} events/s), makespan {:.1} s, peak {} tenants",
        result.events, result.makespan, result.peak_concurrency
    );

    // Determinism gate: the digest must be bit-identical at 1/2/4/8 pool
    // threads (the tier-1 test pins this on a small grid; here it runs at
    // full scale).
    let mut deterministic = true;
    for threads in [1usize, 2, 4, 8] {
        let run = simulate_grid_sharded(&grid, &cfg, threads);
        if run.digest != result.digest {
            deterministic = false;
            eprintln!(
                "DETERMINISM VIOLATION at {threads} threads: {:#018x} vs {:#018x}",
                run.digest, result.digest
            );
        }
    }
    assert!(
        deterministic,
        "sharded simulation must be thread-count invariant"
    );
    println!(
        "  digest {:#018x} identical at 1/2/4/8 threads",
        result.digest
    );

    // Memory accounting after the simulation has touched the store, so
    // built prefixes are included.
    let bytes_per_machine = grid.bytes_per_machine();
    let naive = grid.naive_bytes_per_machine();
    let memory_ratio = naive as f64 / bytes_per_machine;
    println!(
        "  {bytes_per_machine:.1} bytes/machine vs naive {naive} ({memory_ratio:.1}x smaller)"
    );
    // The 20x gate is a property of the acceptance scale: the store's
    // cost is O(columns · steps) + O(machines), so it only amortizes past
    // a few thousand machines. Reduced smoke grids skip the hard assert
    // (CI bounds their bytes/machine against the committed record
    // instead) but still report the ratio.
    if machines >= 10_000 {
        assert!(
            memory_ratio >= 20.0,
            "bytes/machine must be ≤ 1/20th of the naive cost, got {memory_ratio:.1}x"
        );
    }

    let record = ScaleRecord {
        machines,
        tenants,
        shards,
        horizon_s: horizon,
        gen_wall_s,
        sim_wall_s,
        events: result.events,
        events_per_s,
        bytes_per_machine,
        naive_bytes_per_machine: naive,
        memory_ratio,
        deterministic_1_vs_8: deterministic,
        makespan_s: result.makespan,
        peak_concurrency: result.peak_concurrency,
    };
    let json = serde_json::to_string_pretty(&record).expect("serializable record");
    std::fs::write(&out_path, json + "\n").expect("write scale file");
    println!("\nwrote {out_path}");
}
