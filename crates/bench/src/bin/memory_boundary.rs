//! The in-core boundary of Figure 9: the paper restricts its validation to
//! "problem sizes which fit within main memory". This study shows why —
//! the structural model's linear per-element cost (and with it the
//! stochastic prediction) breaks down once a strip's working set pages.

use prodpred_core::report::{f, render_table};
use prodpred_core::{decompose, predict_dedicated, DecompositionPolicy};
use prodpred_simgrid::{MachineClass, PagingModel, Platform};
use prodpred_sor::{simulate, DistSorConfig};

fn main() {
    println!("== Memory boundary: where the prediction regime ends ==\n");
    let platform = Platform::dedicated(&[MachineClass::Sparc2, MachineClass::Sparc2], 1.0e7);
    let paging = PagingModel::default();
    let boundary = paging.max_in_core_n(&platform.machines[0].spec, 2);
    println!("two Sparc-2s (64 MB each, 50% usable): strips stay in core up to n = {boundary}\n");

    let mut rows = Vec::new();
    for n in [1200usize, 1600, 2000, 2200, 2400, 2800, 3200] {
        let strips = decompose(&platform, n, DecompositionPolicy::Equal, None);
        let predicted = predict_dedicated(&platform, n, &strips, 20).mean();
        let run = simulate(
            &platform,
            &strips,
            DistSorConfig {
                n,
                iterations: 20,
                start_time: 0.0,
                paging: Some(paging),
            },
        );
        let err = (predicted - run.total_secs).abs() / run.total_secs;
        rows.push(vec![
            n.to_string(),
            if n <= boundary { "in-core" } else { "PAGING" }.to_string(),
            f(predicted, 2),
            f(run.total_secs, 2),
            f(err * 100.0, 1),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["n", "regime", "predicted (s)", "actual (s)", "error %"],
            &rows
        )
    );
    println!(
        "\nInside the in-core regime the model stays within a fraction of a\n\
         percent; once the working set exceeds memory the paging slowdown\n\
         (invisible to the per-element model) makes the prediction useless —\n\
         which is exactly why Figure 9 stops at in-core sizes. A deployment\n\
         would gate predictions on PagingModel::fits_in_core."
    );
}
