//! Timed baseline for the system's hot paths, written to
//! `BENCH_baseline.json` so performance regressions show up as diffs.
//!
//! Measures, with warmup and median-of-k sampling:
//!
//! * Red-Black sweep throughput (Mcell/s) at n in {512, 1024, 2048},
//! * trace integration throughput on a 3600-step trace — both the O(1)
//!   prefix path and the O(steps) step-walk reference, so the speedup
//!   ratio is part of the committed record,
//! * `time_to_complete` throughput (binary search vs walk),
//! * one `distsim::simulate` run (Platform 2, n=1600, 50 iterations),
//! * one end-to-end Platform-2 prediction + simulated run,
//! * the deterministic work pool: chunked Monte-Carlo validation and the
//!   multi-seed Platform-2 sweep at 1 worker vs. all workers, with the
//!   wall-clock speedup and worker count as committed entries (the
//!   speedup scales with the host's cores; `PRODPRED_THREADS` pins it).
//!
//! **Single-core rule:** when the pool resolves to one worker there is no
//! parallelism to measure — a "speedup" would only record scheduling
//! noise around 1.0× and read as a regression. The `*_par` and
//! `*_speedup` rows are therefore omitted entirely on 1-worker hosts;
//! consumers must treat their absence as "n/a", not as a missing
//! measurement.
//!
//! Usage: `cargo run --release --bin perf_baseline [output.json]`

use std::time::Instant;

use serde::Serialize;

use prodpred_core::{platform2_experiment, platform2_seed_sweep};
use prodpred_simgrid::{Platform, Trace};
use prodpred_sor::{partition_equal, seq, simulate, Color, DistSorConfig, Grid, SorParams};
use prodpred_stochastic::{Dependence, StochasticValue};
use prodpred_structural::{monte_carlo_par, Component};

/// One benchmark result row: `[{"name", "value", "unit"}]`.
#[derive(Debug, Serialize)]
struct Measurement {
    name: String,
    value: f64,
    unit: String,
}

/// Runs `f` once as warmup, then `k` timed samples, returning the median
/// sample duration in seconds.
fn median_secs(k: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut samples: Vec<f64> = (0..k)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn sweep_mcells_per_sec(n: usize) -> f64 {
    // Enough iterations that a sample takes tens of milliseconds.
    let iters = (16 * 1024 * 1024 / (n * n)).clamp(2, 200);
    let mut grid = Grid::laplace_problem(n);
    let params = SorParams::for_grid(n, iters);
    let secs = median_secs(5, || {
        for _ in 0..params.iterations {
            seq::sweep_color_rows(&mut grid, Color::Red, params.omega, 1, n - 1);
            seq::sweep_color_rows(&mut grid, Color::Black, params.omega, 1, n - 1);
        }
        std::hint::black_box(grid.data().as_ptr());
    });
    let cells = ((n - 2) * (n - 2) * iters) as f64;
    cells / secs / 1.0e6
}

/// A production-scale availability trace: 3600 one-second steps.
fn hour_trace() -> Trace {
    Trace::from_fn(0.0, 1.0, 3600, |t| {
        0.55 + 0.4 * (t * 0.013).sin() * (t * 0.0007).cos()
    })
}

fn trace_ops_per_sec(mut op: impl FnMut(f64, f64) -> f64) -> f64 {
    const BATCH: usize = 4096;
    let mut acc = 0.0;
    let secs = median_secs(5, || {
        for i in 0..BATCH {
            // Spread query windows across the horizon, many spanning
            // hundreds of steps (where the walk pays its O(steps)).
            let a = (i % 617) as f64 * 5.3 - 100.0;
            let b = a + 40.0 + (i % 251) as f64 * 11.0;
            acc += op(a, b);
        }
    });
    std::hint::black_box(acc);
    BATCH as f64 / secs
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let mut results: Vec<Measurement> = Vec::new();
    let push = |results: &mut Vec<Measurement>, name: &str, value: f64, unit: &str| {
        println!("{name:<44} {value:>14.3} {unit}");
        results.push(Measurement {
            name: name.to_string(),
            value,
            unit: unit.to_string(),
        });
    };

    // --- SOR sweep throughput ---
    for n in [512usize, 1024, 2048] {
        let rate = sweep_mcells_per_sec(n);
        push(&mut results, &format!("sor_sweep_n{n}"), rate, "Mcell/s");
    }

    // --- trace integration ---
    let trace = hour_trace();
    let fast = trace_ops_per_sec(|a, b| trace.integral(a, b));
    push(&mut results, "trace_integral_prefix", fast, "ops/s");
    let slow = trace_ops_per_sec(|a, b| trace.integral_reference(a, b));
    push(&mut results, "trace_integral_walk", slow, "ops/s");
    push(&mut results, "trace_integral_speedup", fast / slow, "x");

    let ttc_fast = trace_ops_per_sec(|a, b| trace.time_to_complete(a.max(0.0), b.max(1.0)));
    push(
        &mut results,
        "trace_time_to_complete_search",
        ttc_fast,
        "ops/s",
    );
    let ttc_slow =
        trace_ops_per_sec(|a, b| trace.time_to_complete_reference(a.max(0.0), b.max(1.0)));
    push(
        &mut results,
        "trace_time_to_complete_walk",
        ttc_slow,
        "ops/s",
    );
    push(
        &mut results,
        "trace_time_to_complete_speedup",
        ttc_fast / ttc_slow,
        "x",
    );

    // --- simulated distributed run ---
    let platform = Platform::platform2(1, 40_000.0);
    let strips = partition_equal(1598, 4);
    let distsim_secs = median_secs(3, || {
        std::hint::black_box(simulate(
            &platform,
            &strips,
            DistSorConfig::new(1600, 50, 500.0),
        ));
    });
    push(&mut results, "distsim_platform2_1600x50", distsim_secs, "s");

    // --- end-to-end prediction + run ---
    let e2e_secs = median_secs(3, || {
        std::hint::black_box(platform2_experiment(1, 1600, 1));
    });
    push(&mut results, "platform2_predict_and_run", e2e_secs, "s");

    // --- deterministic work pool: Monte-Carlo validation ---
    let threads = prodpred_pool::num_threads();
    push(&mut results, "pool_threads", threads as f64, "workers");
    let tree = Component::Sum(
        (0..4)
            .map(|i| {
                Component::Product(
                    vec![
                        Component::stochastic(StochasticValue::new(12.0 + i as f64, 0.6)),
                        Component::stochastic(StochasticValue::new(5.0, 1.0)),
                    ],
                    Dependence::Unrelated,
                )
            })
            .collect(),
        Dependence::Unrelated,
    );
    const MC_SAMPLES: usize = 400_000;
    let mc_seq = median_secs(5, || {
        std::hint::black_box(monte_carlo_par(&tree, MC_SAMPLES, 7, 1));
    });
    push(&mut results, "mc_validate_seq", mc_seq, "s");

    // --- deterministic work pool: multi-seed experiment sweep ---
    let seeds: Vec<u64> = (1..=8).collect();
    let sweep_seq = median_secs(3, || {
        std::hint::black_box(platform2_seed_sweep(&seeds, 1600, 4, 1));
    });
    push(&mut results, "sweep_seq", sweep_seq, "s");

    // Speedup rows only exist where there is parallelism to measure; on a
    // 1-worker host they are omitted (n/a), per the single-core rule in
    // the module docs.
    if threads > 1 {
        let mc_par = median_secs(5, || {
            std::hint::black_box(monte_carlo_par(&tree, MC_SAMPLES, 7, threads));
        });
        push(&mut results, "mc_validate_par", mc_par, "s");
        push(&mut results, "mc_validate_speedup", mc_seq / mc_par, "x");
        let sweep_par = median_secs(3, || {
            std::hint::black_box(platform2_seed_sweep(&seeds, 1600, 4, threads));
        });
        push(&mut results, "sweep_par", sweep_par, "s");
        push(&mut results, "sweep_speedup", sweep_seq / sweep_par, "x");
    } else {
        println!("{:<44} {:>14} (1 worker)", "mc_validate_speedup", "n/a");
        println!("{:<44} {:>14} (1 worker)", "sweep_speedup", "n/a");
    }

    let json = serde_json::to_string_pretty(&results).expect("serializable measurements");
    std::fs::write(&out_path, json + "\n").expect("write baseline file");
    println!("\nwrote {out_path}");
}
