//! Service-chaos campaign: the gate behind the committed
//! `BENCH_servicechaos.json`.
//!
//! Replays the seeded 192-config request stream against an in-process
//! [`prodpred_service::ServiceCore`] whose NWS ingest is hammered by an
//! injected fault schedule (dropout, delay, spikes, corruption, and
//! blackout windows — including one long enough to exhaust the retry
//! budget and trip the watchdog/breaker). Two arms run under the
//! identical schedule:
//!
//! * **supervised** — the resilience layer on: retry ride-through on
//!   the simulated clock, breaker + no-publish watchdog, degraded-mode
//!   serving with age-widened intervals, bounded admission (so cache
//!   misses shed under the post-publish cold-cache burst);
//! * **unsupervised** — the fault-blind baseline: no retries, no
//!   breaker, fresh-data-only serving (stale snapshots refuse with
//!   503), unbounded admission.
//!
//! Before measuring, the cached==uncached soundness gate is extended to
//! degraded responses: a core is driven into a non-Healthy state and
//! every distinct request config must answer bit-identically through
//! the cached, uncached, and widened paths.
//!
//! The supervised arm's availability is *predicted first* by
//! [`prodpred_service::predict_availability`] — the same
//! retry/breaker/watchdog recurrence run as a DP over the fault
//! schedule, mirroring how `faultpred_study` predicts runtimes before
//! measuring them — and the measured value is gated against it.
//!
//! Usage: `cargo run --release --bin service_chaos [ticks]
//! [queries_per_tick] [output.json]` — defaults 400 ticks, 50
//! queries/tick. The availability/error bounds are asserted only at
//! full scale (`ticks >= 300`); reduced-scale smoke runs exercise the
//! machinery without the sampling-sensitive gates.

use std::collections::HashSet;
use std::time::Instant;

use prodpred_core::supervisor::RetryPolicy;
use prodpred_service::replay::{percentile_us, request_for, DISTINCT_REQUESTS};
use prodpred_service::{
    predict_availability, AdmissionConfig, ChaosArm, ChaosReport, ResilienceConfig, ServiceConfig,
    ServiceCore, ServiceError,
};
use prodpred_simgrid::faults::FaultConfig;

const SEED: u64 = 42;
const WARMUP: f64 = 600.0;
const HORIZON: f64 = 20_000.0;
const PUBLISH_INTERVAL: f64 = 5.0;
/// `NwsConfig::default().interval` — the sensor poll cadence the
/// availability DP mirrors.
const POLL_INTERVAL: f64 = 5.0;

/// The campaign's fault schedule: a steady drizzle of per-poll faults
/// plus three blackouts — two short ones the retry budget rides through
/// inside a single tick, and one 1000 s outage that exhausts retries,
/// wakes the watchdog, and exercises the breaker's cooldown/probe loop.
fn chaos_faults() -> FaultConfig {
    let mut f = FaultConfig::none(SEED);
    f.dropout = 0.08;
    f.delay = 0.05;
    f.max_delay_intervals = 3;
    f.spike = 0.04;
    f.spike_factor = 3.0;
    f.corrupt = 0.03;
    f.blackouts = vec![(900.0, 1020.0), (1500.0, 1620.0), (2200.0, 3200.0)];
    f
}

/// The supervised arm's knobs: defaults, a snappier breaker cooldown
/// (30 s = 6 short-circuited ticks per trip), and a miss budget tight
/// enough that the post-publish cold-cache burst sheds.
fn supervised_resilience() -> ResilienceConfig {
    ResilienceConfig {
        breaker_cooldown_secs: 30.0,
        admission: AdmissionConfig {
            max_inflight_misses: u64::MAX,
            miss_tokens_per_tick: 40,
        },
        ..ResilienceConfig::default()
    }
}

/// Soundness gate, extended to degraded responses: drive a core into a
/// degraded serving state (permanent blackout, no retries, escalation
/// held off) and require the cached and uncached paths to agree bit for
/// bit — widened intervals included — for every distinct config in the
/// stream. Returns the number of configs checked.
fn degraded_soundness() -> u64 {
    let mut fault = FaultConfig::none(SEED);
    fault.blackouts.push((WARMUP, f64::MAX));
    let core = ServiceCore::new(ServiceConfig {
        seed: SEED,
        horizon: HORIZON,
        warmup: WARMUP,
        fault: Some(fault),
        resilience: ResilienceConfig {
            retry: RetryPolicy::none(),
            breaker_threshold: u32::MAX,
            watchdog_ticks: u64::MAX,
            stale_age_ticks: u64::MAX,
            ..ResilienceConfig::default()
        },
        ..ServiceConfig::default()
    });
    for _ in 0..3 {
        core.ingest_tick(); // three failed ticks: age 3, Degraded
    }
    let mut checked = HashSet::new();
    let mut index = 0u64;
    while checked.len() < DISTINCT_REQUESTS && index < 50_000 {
        let req = request_for(SEED, index);
        index += 1;
        if !checked.insert(format!("{req:?}")) {
            continue;
        }
        let uncached = core.query_uncached(&req).expect("uncached query failed");
        core.query(&req).expect("populating query failed");
        let cached = core.query(&req).expect("cached query failed");
        assert!(cached.cache_hit, "second identical query missed the cache");
        assert!(
            cached.degraded && uncached.degraded,
            "soundness run must exercise the degraded path for {req:?}"
        );
        assert_eq!(cached.serving, uncached.serving);
        assert_eq!(cached.snapshot_age_ticks, uncached.snapshot_age_ticks);
        assert_eq!(
            (
                uncached.mean.to_bits(),
                uncached.lo.to_bits(),
                uncached.hi.to_bits(),
                uncached.point.to_bits()
            ),
            (
                cached.mean.to_bits(),
                cached.lo.to_bits(),
                cached.hi.to_bits(),
                cached.point.to_bits()
            ),
            "degraded cached diverges from uncached for {req:?}"
        );
    }
    checked.len() as u64
}

/// Runs one arm of the campaign: `ticks` ingest ticks under the chaos
/// schedule, `queries_per_tick` seeded queries between consecutive
/// ticks (single client thread, so shed/unavailable counts are
/// deterministic), statuses and latency tallied per query.
fn run_arm(
    label: &str,
    resilience: ResilienceConfig,
    ticks: u64,
    queries_per_tick: u64,
) -> ChaosArm {
    let core = ServiceCore::new(ServiceConfig {
        seed: SEED,
        horizon: HORIZON,
        warmup: WARMUP,
        fault: Some(chaos_faults()),
        resilience,
        ..ServiceConfig::default()
    });
    let epoch_before = core.epoch();
    let requests = ticks * queries_per_tick;
    let mut latencies: Vec<u64> = Vec::with_capacity(requests as usize);
    let (mut ok, mut degraded, mut shed, mut unavailable) = (0u64, 0u64, 0u64, 0u64);
    for tick in 0..ticks {
        core.ingest_tick();
        for j in 0..queries_per_tick {
            let req = request_for(SEED, tick * queries_per_tick + j);
            let t0 = Instant::now();
            let outcome = core.query(&req);
            latencies.push(t0.elapsed().as_micros() as u64);
            match outcome {
                Ok(r) => {
                    ok += 1;
                    if r.degraded {
                        degraded += 1;
                    }
                }
                Err(ServiceError::Unavailable { .. }) => unavailable += 1,
                Err(ServiceError::Overloaded { .. }) => shed += 1,
                Err(e) => panic!("{label}: unexpected query error: {e}"),
            }
        }
    }
    let stats = core.stats();
    let arm = ChaosArm {
        requests,
        ok,
        degraded,
        shed,
        unavailable,
        availability: 1.0 - unavailable as f64 / requests.max(1) as f64,
        degraded_fraction: degraded as f64 / ok.max(1) as f64,
        shed_rate: shed as f64 / requests.max(1) as f64,
        p99_us: percentile_us(&mut latencies, 0.99),
        epochs_published: core.epoch() - epoch_before,
        ingest_failures: stats.ingest.failures,
        ingest_retries: stats.ingest.retries,
        breaker_trips: stats.ingest.breaker_trips,
        watchdog_trips: stats.ingest.watchdog_trips,
    };
    eprintln!(
        "{label}: availability {:.4}, degraded {:.3}, shed {:.3}, p99 {}us, \
         {} publishes / {} failures / {} retries, {} breaker trips ({} watchdog)",
        arm.availability,
        arm.degraded_fraction,
        arm.shed_rate,
        arm.p99_us,
        arm.epochs_published,
        arm.ingest_failures,
        arm.ingest_retries,
        arm.breaker_trips,
        arm.watchdog_trips,
    );
    arm
}

fn main() {
    let mut args = std::env::args().skip(1);
    let ticks: u64 = args
        .next()
        .map(|a| a.parse().expect("ticks must be a number"))
        .unwrap_or(400);
    let queries_per_tick: u64 = args
        .next()
        .map(|a| a.parse().expect("queries_per_tick must be a number"))
        .unwrap_or(50);
    let out = args
        .next()
        .unwrap_or_else(|| "BENCH_servicechaos.json".to_string());

    let soundness_checked_configs = degraded_soundness();
    eprintln!("soundness: {soundness_checked_configs} configs degraded cached == uncached bitwise");

    // Predict before measuring (the faultpred discipline): the DP runs
    // the same tick/retry/breaker/watchdog recurrence over the schedule.
    let predicted = predict_availability(
        &chaos_faults(),
        &supervised_resilience(),
        PUBLISH_INTERVAL,
        POLL_INTERVAL,
        WARMUP,
        HORIZON,
        ticks,
    );
    eprintln!(
        "predicted (supervised): availability {:.4}, degraded fraction {:.3}, \
         {} published / {} failed / {} short-circuited ticks",
        predicted.availability,
        predicted.degraded_fraction,
        predicted.published_ticks,
        predicted.failed_ticks,
        predicted.short_circuited_ticks,
    );

    let supervised = run_arm(
        "supervised",
        supervised_resilience(),
        ticks,
        queries_per_tick,
    );
    let unsupervised = run_arm(
        "unsupervised",
        ResilienceConfig::unsupervised(),
        ticks,
        queries_per_tick,
    );

    let availability_error = (predicted.availability - supervised.availability).abs();
    let report = ChaosReport {
        seed: SEED,
        ticks,
        queries_per_tick,
        soundness_checked_configs,
        supervised,
        unsupervised,
        predicted_availability: predicted.availability,
        availability_error,
    };

    // Full-scale gates only: short smoke runs keep the machinery honest
    // without asserting the schedule-sensitive bounds themselves.
    if ticks >= 300 {
        assert!(
            report.supervised.availability >= 0.99,
            "supervised availability {:.4} below the 99% floor",
            report.supervised.availability
        );
        assert!(
            report.unsupervised.availability <= report.supervised.availability - 0.05,
            "unsupervised arm ({:.4}) is not measurably worse than supervised ({:.4})",
            report.unsupervised.availability,
            report.supervised.availability
        );
        assert!(
            report.availability_error <= 0.02,
            "predicted {:.4} vs measured {:.4}: error {:.4} above the 0.02 gate",
            report.predicted_availability,
            report.supervised.availability,
            report.availability_error
        );
        assert!(
            report.supervised.breaker_trips > 0 && report.supervised.watchdog_trips > 0,
            "the long outage must exercise the watchdog and breaker"
        );
        assert!(
            report.supervised.shed > 0,
            "the bounded miss budget must shed under the cold-cache burst"
        );
        assert!(
            report.supervised.degraded > 0,
            "the campaign must serve degraded answers"
        );
    } else {
        eprintln!("service_chaos: reduced scale ({ticks} ticks), gates skipped");
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    println!("{json}");
    std::fs::write(&out, json + "\n").expect("write report");
    eprintln!(
        "service_chaos: supervised {:.4} vs unsupervised {:.4} availability \
         (predicted {:.4}, error {:.4}) -> {out}",
        report.supervised.availability,
        report.unsupervised.availability,
        report.predicted_availability,
        report.availability_error,
    );
}
