//! Replay-driven latency benchmark for the prediction service: the gate
//! behind the committed `BENCH_service.json`.
//!
//! Drives [`prodpred_service::ServiceCore`] **in-process** (no sockets —
//! the HTTP shell is a veneer; this measures the query path itself) with
//! the seeded request stream from [`prodpred_service::replay`]:
//!
//! * requests are split round-robin across client threads,
//! * an ingest tick (snapshot publish + wholesale cache invalidation)
//!   fires between fixed-size request batches, so the cache keeps being
//!   cold-started the way a live daemon's is,
//! * every request must succeed; per-request latency is recorded and
//!   summarized as p50/p99/max, qps, and cache hit rate.
//!
//! Before measuring, the bench asserts the service invariant that makes
//! caching sound at all: a cached answer is bit-identical to the
//! uncached path for every distinct request configuration in the stream.
//!
//! Usage: `cargo run --release --bin service_replay [requests] [threads]
//! [batch] [output.json]` — defaults 20000 requests, 4 threads, batch
//! 2000 (one epoch bump per 2000 requests).

use std::sync::Arc;
use std::time::Instant;

use prodpred_service::replay::{percentile_us, request_for, DISTINCT_REQUESTS};
use prodpred_service::{ReplayReport, ServiceConfig, ServiceCore};

const SEED: u64 = 42;
const WARMUP: u64 = 500;

fn main() {
    let mut args = std::env::args().skip(1);
    let requests: u64 = args
        .next()
        .map(|a| a.parse().expect("requests must be a number"))
        .unwrap_or(20_000);
    let threads: usize = args
        .next()
        .map(|a| a.parse().expect("threads must be a number"))
        .unwrap_or(4);
    let batch: u64 = args
        .next()
        .map(|a| a.parse().expect("batch must be a number"))
        .unwrap_or(2_000);
    let out = args
        .next()
        .unwrap_or_else(|| "BENCH_service.json".to_string());

    let core = Arc::new(ServiceCore::new(ServiceConfig {
        seed: SEED,
        ..ServiceConfig::default()
    }));

    // Soundness gate first: cached answers must be bit-identical to the
    // uncached path across the whole configuration space of the stream.
    let mut checked = std::collections::HashSet::new();
    let mut index = 0u64;
    while checked.len() < DISTINCT_REQUESTS && index < 50_000 {
        let req = request_for(SEED, index);
        index += 1;
        if !checked.insert(format!("{req:?}")) {
            continue;
        }
        let uncached = core.query_uncached(&req).expect("uncached query failed");
        core.query(&req).expect("populating query failed");
        let cached = core.query(&req).expect("cached query failed");
        assert!(cached.cache_hit, "second identical query missed the cache");
        assert_eq!(
            (
                uncached.mean.to_bits(),
                uncached.lo.to_bits(),
                uncached.hi.to_bits()
            ),
            (
                cached.mean.to_bits(),
                cached.lo.to_bits(),
                cached.hi.to_bits()
            ),
            "cached diverges from uncached for {req:?}"
        );
    }
    eprintln!(
        "soundness: {} configs cached == uncached bitwise",
        checked.len()
    );

    // Warmup epoch: populate code paths and let the allocator settle.
    core.ingest_tick();
    for i in 0..WARMUP {
        core.query(&request_for(SEED, i))
            .expect("warmup query failed");
    }

    let stats_before = core.stats();
    let epoch_before = core.epoch();
    let started = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(requests as usize);
    let mut errors = 0u64;
    let mut done = 0u64;
    while done < requests {
        let size = batch.min(requests - done);
        core.ingest_tick();
        let (batch_latencies, batch_errors) = replay_batch(&core, done, size, threads);
        latencies.extend(batch_latencies);
        errors += batch_errors;
        done += size;
    }
    let elapsed_us = started.elapsed().as_micros() as u64;

    let stats = core.stats();
    let hits = stats.cache.hits - stats_before.cache.hits;
    let misses = stats.cache.misses - stats_before.cache.misses;
    let report = ReplayReport {
        seed: SEED,
        requests,
        threads,
        ticks: core.epoch() - epoch_before,
        elapsed_us,
        qps: requests as f64 / (elapsed_us.max(1) as f64 / 1e6),
        p50_us: percentile_us(&mut latencies.clone(), 0.50),
        p99_us: percentile_us(&mut latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        cache_hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        errors,
    };
    assert_eq!(report.errors, 0, "replay produced failing queries");

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    println!("{json}");
    std::fs::write(&out, json + "\n").expect("write report");
    eprintln!(
        "service_replay: {} requests, {} threads: p50 {}us p99 {}us, {:.0} qps, hit rate {:.1}% -> {}",
        report.requests,
        report.threads,
        report.p50_us,
        report.p99_us,
        report.qps,
        100.0 * report.cache_hit_rate,
        out
    );
}

/// Replays `size` requests starting at stream offset `start`, split
/// round-robin across `threads` client threads hammering the core
/// concurrently (while sharing it with nothing else — the ingest tick
/// fired before the batch). Returns (latencies, error count).
fn replay_batch(core: &Arc<ServiceCore>, start: u64, size: u64, threads: usize) -> (Vec<u64>, u64) {
    let threads = threads.max(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let core = Arc::clone(core);
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(size as usize / threads + 1);
                    let mut errors = 0u64;
                    let mut i = start + t as u64;
                    while i < start + size {
                        let req = request_for(SEED, i);
                        let t0 = Instant::now();
                        match core.query(&req) {
                            Ok(_) => latencies.push(t0.elapsed().as_micros() as u64),
                            Err(e) => {
                                errors += 1;
                                eprintln!("request {i} failed: {e}");
                            }
                        }
                        i += threads as u64;
                    }
                    (latencies, errors)
                })
            })
            .collect();
        let mut all = Vec::with_capacity(size as usize);
        let mut errors = 0u64;
        for h in handles {
            let (lat, err) = h.join().expect("client thread panicked");
            all.extend(lat);
            errors += err;
        }
        (all, errors)
    })
}
