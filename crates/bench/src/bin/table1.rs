//! Table 1: execution times for a unit of work in dedicated and production
//! modes on two machines, plus the scheduling consequences the paper draws
//! from them (Section 1.2).

use prodpred_core::report::render_table;
use prodpred_core::{allocate_units, planned_completion, AllocationPolicy};
use prodpred_stochastic::StochasticValue;

fn main() {
    println!("== Table 1: execution times for a unit of work ==\n");
    let dedicated = [StochasticValue::point(10.0), StochasticValue::point(5.0)];
    let production_point = [StochasticValue::point(12.0), StochasticValue::point(12.0)];
    let production_stoch = [
        StochasticValue::from_percent(12.0, 5.0),
        StochasticValue::from_percent(12.0, 30.0),
    ];
    let rows = vec![
        vec![
            "Dedicated".to_string(),
            format!("{} sec", dedicated[0].mean()),
            format!("{} sec", dedicated[1].mean()),
        ],
        vec![
            "Production (point)".to_string(),
            format!("{} sec", production_point[0].mean()),
            format!("{} sec", production_point[1].mean()),
        ],
        vec![
            "Production (stochastic)".to_string(),
            format!(
                "12 sec ± 5%  ({:.1}..{:.1})",
                production_stoch[0].lo(),
                production_stoch[0].hi()
            ),
            format!(
                "12 sec ± 30% ({:.1}..{:.1})",
                production_stoch[1].lo(),
                production_stoch[1].hi()
            ),
        ],
    ];
    println!(
        "{}",
        render_table(&["mode", "Machine A", "Machine B"], &rows)
    );

    println!("\n-- scheduling consequences for 100 units of work --\n");
    let mut rows = Vec::new();
    let ded_alloc = allocate_units(100, &dedicated, AllocationPolicy::ByMean);
    rows.push(vec![
        "dedicated, by mean".to_string(),
        format!("{:?}", ded_alloc),
        format!("{}", planned_completion(&ded_alloc, &dedicated)),
    ]);
    for (label, times, policy) in [
        (
            "production, by mean (point model)",
            &production_stoch,
            AllocationPolicy::ByMean,
        ),
        (
            "production, risk-averse (lambda = 2)",
            &production_stoch,
            AllocationPolicy::RiskAverse { lambda: 2.0 },
        ),
        (
            "production, optimistic (lambda = 1)",
            &production_stoch,
            AllocationPolicy::Optimistic { lambda: 1.0 },
        ),
    ] {
        let alloc = allocate_units(100, times, policy);
        rows.push(vec![
            label.to_string(),
            format!("{:?}", alloc),
            format!("{}", planned_completion(&alloc, times)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["strategy", "units [A, B]", "planned completion (sec)"],
            &rows
        )
    );
    println!(
        "\nDedicated: B is twice as fast, so it receives twice the work.\n\
         Production: equal means suggest an even split, but the stochastic\n\
         values reveal B's ±30% spread — the risk-averse plan shifts work to\n\
         the stable machine A and shrinks the worst-case completion time."
    );
}
