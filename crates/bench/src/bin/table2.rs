//! Table 2: the arithmetic combination rules for stochastic values,
//! validated against Monte-Carlo ground truth for the independence cases
//! and against worst-case interval arithmetic for the related cases.

use prodpred_core::report::{f, render_table};
use prodpred_stochastic::{Dependence, Distribution, StochasticValue, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mc_sum(a: StochasticValue, b: StochasticValue, samples: usize) -> StochasticValue {
    let (na, nb) = (a.to_normal(), b.to_normal());
    let mut rng = StdRng::seed_from_u64(7);
    let mut s = Summary::new();
    for _ in 0..samples {
        s.push(na.sample(&mut rng) + nb.sample(&mut rng));
    }
    StochasticValue::from_mean_sd(s.mean(), s.sd())
}

fn mc_product(a: StochasticValue, b: StochasticValue, samples: usize) -> StochasticValue {
    let (na, nb) = (a.to_normal(), b.to_normal());
    let mut rng = StdRng::seed_from_u64(8);
    let mut s = Summary::new();
    for _ in 0..samples {
        s.push(na.sample(&mut rng) * nb.sample(&mut rng));
    }
    StochasticValue::from_mean_sd(s.mean(), s.sd())
}

fn main() {
    println!("== Table 2: arithmetic combinations of stochastic values ==\n");
    let x = StochasticValue::new(12.0, 0.6);
    let y = StochasticValue::new(5.0, 1.0);
    let p = 3.0;
    let samples = 400_000;

    let rows = vec![
        vec![
            "point + stochastic".to_string(),
            format!("({x}) + {p}"),
            format!("{}", x.shift(p)),
            "exact (Table 2 row 1)".to_string(),
        ],
        vec![
            "point * stochastic".to_string(),
            format!("{p} * ({x})"),
            format!("{}", x.scale(p)),
            "exact (Table 2 row 1)".to_string(),
        ],
        vec![
            "related addition".to_string(),
            format!("({x}) + ({y})"),
            format!("{}", x.add(&y, Dependence::Related)),
            "conservative: widths add".to_string(),
        ],
        vec![
            "unrelated addition".to_string(),
            format!("({x}) + ({y})"),
            format!("{}", x.add(&y, Dependence::Unrelated)),
            format!("MC truth: {}", mc_sum(x, y, samples)),
        ],
        vec![
            "related multiplication".to_string(),
            format!("({x}) * ({y})"),
            format!("{}", x.mul(&y, Dependence::Related)),
            "worst-case interval product".to_string(),
        ],
        vec![
            "unrelated multiplication".to_string(),
            format!("({x}) * ({y})"),
            format!("{}", x.mul(&y, Dependence::Unrelated)),
            format!("MC truth: {}", mc_product(x, y, samples)),
        ],
        vec![
            "division (via reciprocal)".to_string(),
            format!("({x}) / ({y})"),
            format!("{}", x.div(&y, Dependence::Unrelated)),
            "footnote 5 (first-order recip)".to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &["operation", "expression", "rule result", "reference"],
            &rows
        )
    );

    // Quantify the agreement of the independence rules with sampling.
    let add_rule = x.add(&y, Dependence::Unrelated);
    let add_mc = mc_sum(x, y, samples);
    let mul_rule = x.mul(&y, Dependence::Unrelated);
    let mul_mc = mc_product(x, y, samples);
    println!(
        "{}",
        render_table(
            &["rule", "mean err %", "width err %"],
            &[
                vec![
                    "unrelated addition".to_string(),
                    f(
                        (add_rule.mean() - add_mc.mean()).abs() / add_mc.mean() * 100.0,
                        3
                    ),
                    f(
                        (add_rule.half_width() - add_mc.half_width()).abs() / add_mc.half_width()
                            * 100.0,
                        2
                    ),
                ],
                vec![
                    "unrelated multiplication".to_string(),
                    f(
                        (mul_rule.mean() - mul_mc.mean()).abs() / mul_mc.mean() * 100.0,
                        3
                    ),
                    f(
                        (mul_rule.half_width() - mul_mc.half_width()).abs() / mul_mc.half_width()
                            * 100.0,
                        2
                    ),
                ],
            ]
        )
    );
    println!(
        "The unrelated rules are exact for independent normals (addition) and\n\
         first-order accurate for products of low-variance values (§2.3.2)."
    );
}
