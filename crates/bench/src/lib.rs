//! Shared helpers for the figure/table regeneration binaries.

use prodpred_core::report::{f, render_interval_chart, render_series, render_table};
use prodpred_core::{platform2_experiment, platform2_seed_sweep, ExperimentSeries, SweepSummary};
use prodpred_stochastic::{Distribution, Histogram, Normal};

/// Prints a histogram with its fitted-normal overlay, in the style of the
/// paper's PDF figures: per bin, the observed percentage and the normal's
/// predicted percentage.
pub fn print_histogram_with_normal(data: &[f64], bins: usize, title: &str, unit: &str) {
    let hist = Histogram::from_data(data, bins).expect("non-degenerate data"); // tidy:allow(PP003): figure harness precondition; callers pass measured samples
    let normal = prodpred_stochastic::fit::fit_normal(data).expect("enough data"); // tidy:allow(PP003): figure harness precondition; callers pass measured samples
    println!("== {title} ==");
    println!(
        "fitted normal: mean {:.4}, sd {:.4} {unit}",
        normal.mu(),
        normal.sigma()
    );
    let rows: Vec<Vec<String>> = (0..hist.bins())
        .map(|i| {
            let center = hist.bin_center(i);
            let observed = hist.percent(i);
            let predicted = normal.mass_between(
                center - hist.bin_width() / 2.0,
                center + hist.bin_width() / 2.0,
            ) * 100.0;
            vec![
                f(center, 3),
                f(observed, 1),
                f(predicted, 1),
                "#".repeat((observed.round() as usize).min(60)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&[unit, "observed %", "normal %", "bar"], &rows)
    );
}

/// Prints the empirical CDF against the fitted normal CDF (the paper's
/// Figures 2 and 4).
pub fn print_cdf_comparison(data: &[f64], points: usize, title: &str, unit: &str) {
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let normal = prodpred_stochastic::fit::fit_normal(data).expect("enough data"); // tidy:allow(PP003): figure harness precondition; callers pass measured samples
    println!("== {title} (CDF) ==");
    let n = sorted.len();
    let rows: Vec<Vec<String>> = (1..=points)
        .map(|k| {
            let idx = (k * n / points).min(n) - 1;
            let x = sorted[idx];
            let ecdf = 100.0 * (idx + 1) as f64 / n as f64;
            let ncdf = 100.0 * normal.cdf(x);
            vec![f(x, 3), f(ecdf, 1), f(ncdf, 1)]
        })
        .collect();
    println!(
        "{}",
        render_table(&[unit, "actual CDF %", "normal CDF %"], &rows)
    );
}

/// Prints an experiment series as the paper's paired figures: the
/// execution-time interval chart plus the watched machine's load trace.
pub fn print_experiment(series: &ExperimentSeries, title: &str, max_load_rows: usize) {
    println!("== {title} ==");
    let rows: Vec<(String, f64, f64, f64, f64)> = series
        .records
        .iter()
        .map(|r| {
            (
                format!("n={} t={:.0}", r.n, r.start),
                r.prediction.stochastic.lo(),
                r.prediction.stochastic.mean(),
                r.prediction.stochastic.hi(),
                r.actual_secs,
            )
        })
        .collect();
    println!("{}", render_interval_chart(&rows, 64));
    println!(
        "{}",
        render_table(
            &[
                "run",
                "predicted",
                "point",
                "actual",
                "in range",
                "range err %",
                "mean err %"
            ],
            &series
                .records
                .iter()
                .map(|r| {
                    let sv = r.prediction.stochastic;
                    vec![
                        format!("n={} t={:.0}", r.n, r.start),
                        format!("{sv}"),
                        f(r.prediction.point, 2),
                        f(r.actual_secs, 2),
                        if sv.contains(r.actual_secs) {
                            "yes"
                        } else {
                            "NO"
                        }
                        .to_string(),
                        f(sv.relative_error_outside(r.actual_secs) * 100.0, 1),
                        f((sv.mean() - r.actual_secs).abs() / r.actual_secs * 100.0, 1),
                    ]
                })
                .collect::<Vec<_>>()
        )
    );
    if let Some(acc) = series.accuracy() {
        println!(
            "coverage {:.0}%   max range error {:.1}%   max mean-point error {:.1}%",
            acc.coverage * 100.0,
            acc.max_range_error * 100.0,
            acc.max_mean_error * 100.0
        );
        let obs: Vec<prodpred_stochastic::Observation> =
            series.records.iter().map(|r| r.observation()).collect();
        let curve = prodpred_stochastic::calibration_curve(&obs, &[0.25, 0.5, 0.75, 1.0, 1.5, 2.0]);
        let line: Vec<String> = curve
            .iter()
            .map(|(f, c)| format!("{f}x:{:.0}%", c * 100.0))
            .collect();
        println!(
            "calibration (interval scale -> coverage): {}\n",
            line.join("  ")
        );
    }
    let load: Vec<(f64, f64)> = series
        .load_samples
        .iter()
        .copied()
        .take(max_load_rows)
        .collect();
    if !load.is_empty() {
        println!(
            "{}",
            render_series(&load, 48, "watched machine CPU availability")
        );
    }
}

/// One Platform-2 repeated-run figure (the shared shape of Figures 12–13,
/// 14–15, and 16–17): the headline series at seed `n`, rendered with
/// [`print_experiment`], its accuracy against `paper_line`, and a
/// multi-seed replication table (run in parallel over the work pool) that
/// quantifies how stable the claim is across reseeded replays.
pub fn platform2_figure(n: usize, runs: usize, title: &str, paper_line: &str) -> ExperimentSeries {
    let series = platform2_experiment(n as u64, n, runs);
    print_experiment(&series, title, 40);
    let acc = series.accuracy().expect("figure series has runs"); // tidy:allow(PP003): figure harness drives a non-zero run count
    println!(
        "paper: {paper_line}\n\
         here : coverage {:.0}%, stochastic max {:.1}%, mean-point max {:.1}%",
        acc.coverage * 100.0,
        acc.max_range_error * 100.0,
        acc.max_mean_error * 100.0
    );
    let seeds: Vec<u64> = (1..=6).map(|i| n as u64 + i * 1000).collect();
    let sweep = platform2_seed_sweep(&seeds, n, runs, 0);
    print_replication_table(
        &seeds,
        &sweep,
        &format!("replication across seeds ({n}x{n}, {runs} runs each)"),
    );
    series
}

/// Prints a per-seed accuracy table for a replication sweep, plus the
/// aggregate [`SweepSummary`] line.
pub fn print_replication_table(seeds: &[u64], sweep: &[ExperimentSeries], title: &str) {
    println!("\n-- {title} --\n");
    let rows: Vec<Vec<String>> = seeds
        .iter()
        .zip(sweep)
        .filter_map(|(seed, series)| {
            let acc = series.accuracy()?;
            Some(vec![
                seed.to_string(),
                f(acc.coverage * 100.0, 0),
                f(acc.max_range_error * 100.0, 1),
                f(acc.max_mean_error * 100.0, 1),
            ])
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["seed", "coverage %", "max range err %", "max mean err %"],
            &rows
        )
    );
    if let Some(s) = SweepSummary::from_sweep(sweep) {
        println!(
            "across {} replications: mean coverage {:.0}%  worst coverage {:.0}%  \
             worst range err {:.1}%  worst mean err {:.1}%\n",
            s.replications,
            s.mean_coverage * 100.0,
            s.min_coverage * 100.0,
            s.worst_range_error * 100.0,
            s.worst_mean_error * 100.0
        );
    }
}

/// Convenience: samples a normal deterministically.
pub fn sample_normal(mu: f64, sigma: f64, n: usize, seed: u64) -> Vec<f64> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    Normal::new(mu, sigma).sample_n(&mut rng, n)
}
