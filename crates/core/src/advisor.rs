//! Turning stochastic predictions into decisions — the paper's closing
//! argument: "Accurate predictions are based not just on information but
//! on the accuracy or 'quality' of that information."
//!
//! A stochastic prediction supports questions a point value cannot answer:
//! *what is the probability this run meets its deadline?* (the paper's
//! "service range" alternative to QoS guarantees), and *how much should I
//! trust this number?*

use prodpred_stochastic::{Distribution, StochasticValue};
use serde::{Deserialize, Serialize};

/// A coarse quality grade for a stochastic prediction, by relative width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictionQuality {
    /// Relative half-width below 10% — schedule on it directly.
    Sharp,
    /// 10–40% — usable, prefer conservative policies.
    Moderate,
    /// Above 40% — the range matters more than the mean; plan for the
    /// upper bound or gather more data.
    Poor,
}

impl PredictionQuality {
    /// Grades a stochastic value.
    pub fn of(v: StochasticValue) -> Self {
        // tidy:allow(PP004): exact zero guard before dividing by the mean
        let rel = if v.mean() != 0.0 {
            v.half_width() / v.mean().abs()
        } else {
            f64::INFINITY
        };
        if rel < 0.10 {
            PredictionQuality::Sharp
        } else if rel < 0.40 {
            PredictionQuality::Moderate
        } else {
            PredictionQuality::Poor
        }
    }
}

/// Deadline analysis for a stochastic execution-time prediction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DeadlineReport {
    /// The deadline analyzed.
    pub deadline: f64,
    /// Probability the run finishes by the deadline (normal model).
    pub p_meet: f64,
    /// The completion time achievable with the requested confidence —
    /// the "service range" level.
    pub time_at_confidence: f64,
    /// Confidence used for `time_at_confidence`.
    pub confidence: f64,
}

/// Analyzes a deadline against a stochastic prediction.
///
/// # Panics
///
/// Panics unless `confidence` lies in `(0, 1)`.
pub fn deadline_report(
    prediction: StochasticValue,
    deadline: f64,
    confidence: f64,
) -> DeadlineReport {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    let normal = prediction.to_normal();
    let p_meet = if prediction.is_point() {
        if prediction.mean() <= deadline {
            1.0
        } else {
            0.0
        }
    } else {
        normal.cdf(deadline)
    };
    let time_at_confidence = if prediction.is_point() {
        prediction.mean()
    } else {
        normal.quantile(confidence)
    };
    DeadlineReport {
        deadline,
        p_meet,
        time_at_confidence,
        confidence,
    }
}

/// A service-range statement: the completion levels achievable at each of
/// the standard confidence levels — the alternative to a single hard QoS
/// guarantee the paper sketches in Section 1.2.
pub fn service_range(prediction: StochasticValue) -> Vec<(f64, f64)> {
    [0.50, 0.75, 0.90, 0.95, 0.99]
        .into_iter()
        .map(|c| (c, deadline_report(prediction, 0.0, c).time_at_confidence))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_grading() {
        assert_eq!(
            PredictionQuality::of(StochasticValue::new(100.0, 5.0)),
            PredictionQuality::Sharp
        );
        assert_eq!(
            PredictionQuality::of(StochasticValue::new(100.0, 20.0)),
            PredictionQuality::Moderate
        );
        assert_eq!(
            PredictionQuality::of(StochasticValue::new(100.0, 80.0)),
            PredictionQuality::Poor
        );
        assert_eq!(
            PredictionQuality::of(StochasticValue::new(0.0, 1.0)),
            PredictionQuality::Poor
        );
    }

    #[test]
    fn deadline_probability_monotone() {
        let pred = StochasticValue::new(60.0, 10.0);
        let mut prev = 0.0;
        for d in [40.0, 50.0, 60.0, 70.0, 80.0] {
            let r = deadline_report(pred, d, 0.95);
            assert!(r.p_meet >= prev);
            prev = r.p_meet;
        }
        // At the mean, probability is one half.
        assert!((deadline_report(pred, 60.0, 0.95).p_meet - 0.5).abs() < 1e-9);
    }

    #[test]
    fn two_sigma_deadline_is_977() {
        let pred = StochasticValue::new(60.0, 10.0); // sd = 5
        let r = deadline_report(pred, 70.0, 0.95);
        assert!((r.p_meet - 0.977_25).abs() < 1e-3);
    }

    #[test]
    fn point_prediction_is_a_step() {
        let pred = StochasticValue::point(50.0);
        assert_eq!(deadline_report(pred, 49.9, 0.9).p_meet, 0.0);
        assert_eq!(deadline_report(pred, 50.0, 0.9).p_meet, 1.0);
        assert_eq!(deadline_report(pred, 80.0, 0.9).time_at_confidence, 50.0);
    }

    #[test]
    fn service_range_is_monotone() {
        let levels = service_range(StochasticValue::new(60.0, 10.0));
        assert_eq!(levels.len(), 5);
        for w in levels.windows(2) {
            assert!(w[1].1 > w[0].1, "{levels:?}");
        }
        // Median level equals the mean for a symmetric prediction.
        assert!((levels[0].1 - 60.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_confidence() {
        deadline_report(StochasticValue::new(1.0, 0.1), 1.0, 1.0);
    }
}
