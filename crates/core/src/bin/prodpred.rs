//! `prodpred` — command-line front end to the prediction system.
//!
//! ```text
//! prodpred gen-platform <platform1|platform2|dedicated> [--seed N]
//!                       [--horizon SECS] [--out FILE]
//! prodpred predict  --platform FILE --n N [--iterations K] [--at T]
//! prodpred experiment <platform1|platform2> [--seed N] [--n N] [--runs R]
//! ```
//!
//! `gen-platform` writes a reproducible platform (machines + load and
//! bandwidth traces) as JSON; `predict` loads one, issues a stochastic
//! prediction from the NWS at time `--at`, runs the simulated execution,
//! and compares; `experiment` reproduces the paper's Section-3 series and
//! prints the accuracy report.

use prodpred_core::report::{f, render_table};
use prodpred_core::{
    decompose, platform1_experiment, platform2_experiment, DecompositionPolicy, PredictorConfig,
    SorPredictor,
};
use prodpred_nws::{NwsConfig, NwsService};
use prodpred_simgrid::{MachineClass, Platform};
use prodpred_sor::{simulate, DistSorConfig};
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  prodpred gen-platform <platform1|platform2|dedicated> [--seed N] [--horizon SECS] [--out FILE]\n  prodpred predict --platform FILE --n N [--iterations K] [--at T]\n  prodpred experiment <platform1|platform2> [--seed N] [--n N] [--runs R]"
    );
    ExitCode::from(2)
}

/// Parses `--key value` pairs after the positional arguments.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {}", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        out.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(out)
}

fn flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid --{key}: {v}")),
    }
}

fn gen_platform(kind: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = flag(flags, "seed", 42)?;
    let horizon: f64 = flag(flags, "horizon", 20_000.0)?;
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| format!("{kind}.json"));
    let platform = match kind {
        "platform1" => Platform::platform1(seed, horizon),
        "platform2" => Platform::platform2(seed, horizon),
        "dedicated" => Platform::dedicated(
            &[
                MachineClass::Sparc2,
                MachineClass::Sparc2,
                MachineClass::Sparc5,
                MachineClass::Sparc10,
            ],
            horizon,
        ),
        other => return Err(format!("unknown platform kind: {other}")),
    };
    let json = serde_json::to_string(&platform).map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} machines, horizon {horizon} s, seed {seed}",
        platform.len()
    );
    Ok(())
}

fn predict(flags: &HashMap<String, String>) -> Result<(), String> {
    let file = flags
        .get("platform")
        .ok_or("predict needs --platform FILE")?;
    let n: usize = flag(flags, "n", 1600)?;
    let iterations: usize = flag(flags, "iterations", 50)?;
    let at: f64 = flag(flags, "at", 300.0)?;

    let json = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let platform: Platform = serde_json::from_str(&json).map_err(|e| e.to_string())?;

    let nws = NwsService::attach(&platform, NwsConfig::default());
    nws.advance_to(&platform, at);
    let strips = decompose(&platform, n, DecompositionPolicy::DedicatedSpeed, None);
    let predictor = SorPredictor::new(
        &platform,
        &nws,
        PredictorConfig {
            iterations,
            ..Default::default()
        },
    );
    let prediction = predictor
        .predict(n, &strips)
        .ok_or("NWS has no data yet: increase --at")?;
    let run = simulate(&platform, &strips, DistSorConfig::new(n, iterations, at));

    let sv = prediction.stochastic;
    println!(
        "{}",
        render_table(
            &["quantity", "value"],
            &[
                vec![
                    "problem".into(),
                    format!("{n} x {n}, {iterations} iterations")
                ],
                vec!["stochastic prediction (s)".into(), format!("{sv}")],
                vec![
                    "interval (s)".into(),
                    format!("[{:.2}, {:.2}]", sv.lo(), sv.hi())
                ],
                vec!["point prediction (s)".into(), f(prediction.point, 2)],
                vec!["actual (simulated) (s)".into(), f(run.total_secs, 2)],
                vec![
                    "actual inside range".into(),
                    if sv.contains(run.total_secs) {
                        "yes"
                    } else {
                        "NO"
                    }
                    .into(),
                ],
                vec!["skew (s)".into(), f(run.skew_secs, 3)],
            ]
        )
    );
    Ok(())
}

fn experiment(kind: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = flag(flags, "seed", 42)?;
    let series = match kind {
        "platform1" => platform1_experiment(seed, &[1000, 1200, 1400, 1600, 1800, 2000]),
        "platform2" => {
            let n: usize = flag(flags, "n", 1600)?;
            let runs: usize = flag(flags, "runs", 12)?;
            platform2_experiment(seed, n, runs)
        }
        other => return Err(format!("unknown experiment kind: {other}")),
    };
    let rows: Vec<Vec<String>> = series
        .records
        .iter()
        .map(|r| {
            let sv = r.prediction.stochastic;
            vec![
                format!("n={} t={:.0}", r.n, r.start),
                format!("{sv}"),
                f(r.actual_secs, 2),
                if sv.contains(r.actual_secs) {
                    "yes"
                } else {
                    "NO"
                }
                .into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["run", "prediction (s)", "actual (s)", "covered"], &rows)
    );
    let acc = series.accuracy().ok_or("no runs")?;
    println!(
        "coverage {:.0}%  max range error {:.1}%  max mean-point error {:.1}%",
        acc.coverage * 100.0,
        acc.max_range_error * 100.0,
        acc.max_mean_error * 100.0
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match (cmd.as_str(), args.get(1)) {
        ("gen-platform", Some(kind)) => {
            parse_flags(&args[2..]).and_then(|flags| gen_platform(kind, &flags))
        }
        ("predict", _) => parse_flags(&args[1..]).and_then(|flags| predict(&flags)),
        ("experiment", Some(kind)) => {
            parse_flags(&args[2..]).and_then(|flags| experiment(kind, &flags))
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
