//! The embarrassingly parallel application of the paper's Section 1.2 —
//! "a simple two-machine system executing an embarrassingly parallel
//! application with a fixed number of units of work to be completed" —
//! as a second, complete application model: structural prediction,
//! simulated execution on load traces, and the scheduling study the paper
//! sketches around Table 1.

use crate::scheduler::AllocationPolicy;
use prodpred_simgrid::Platform;
use prodpred_stochastic::{max_of, MaxStrategy, StochasticValue};
use serde::{Deserialize, Serialize};

/// An embarrassingly parallel job: `units` independent units of work,
/// each costing `unit_dedicated_secs` on a reference machine (scaled per
/// machine by its benchmark ratio).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EpJob {
    /// Number of indivisible work units.
    pub units: u64,
    /// Dedicated seconds per unit on the reference class (Sparc-10).
    pub unit_dedicated_secs: f64,
}

impl EpJob {
    /// Dedicated seconds per unit on machine `i` of `platform`, scaled by
    /// the machine's per-element benchmark relative to the Sparc-10.
    pub fn unit_secs_on(&self, platform: &Platform, i: usize) -> f64 {
        let reference = prodpred_simgrid::MachineClass::Sparc10.benchmark_secs_per_element();
        let ratio = platform.machines[i].spec.class.benchmark_secs_per_element() / reference;
        self.unit_dedicated_secs * ratio
    }

    /// The stochastic per-unit time on machine `i` given a stochastic
    /// availability: `unit_secs / load`.
    pub fn stochastic_unit_time(
        &self,
        platform: &Platform,
        i: usize,
        load: StochasticValue,
    ) -> StochasticValue {
        StochasticValue::point(self.unit_secs_on(platform, i))
            .div(&load, prodpred_stochastic::Dependence::Unrelated)
    }
}

/// The EP structural model: `ExTime = Max_p (units_p * unit_time_p)`,
/// with stochastic unit times. No communication term — the units are
/// independent.
pub fn predict_ep(
    job: &EpJob,
    platform: &Platform,
    alloc: &[u64],
    loads: &[StochasticValue],
    strategy: MaxStrategy,
) -> StochasticValue {
    assert_eq!(alloc.len(), loads.len());
    assert!(!alloc.is_empty());
    let per: Vec<StochasticValue> = alloc
        .iter()
        .enumerate()
        .map(|(i, &u)| {
            job.stochastic_unit_time(platform, i, loads[i])
                .scale(u as f64)
        })
        .collect();
    max_of(&per, strategy)
}

/// Result of one simulated EP execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpRun {
    /// Wall-clock completion (slowest machine).
    pub total_secs: f64,
    /// Per-machine finish times.
    pub per_machine_secs: Vec<f64>,
}

/// Simulates a statically allocated EP execution: machine `i` grinds
/// through `alloc[i]` units starting at `start_time`, with wall-clock time
/// integrating against its availability trace.
pub fn simulate_ep(job: &EpJob, platform: &Platform, alloc: &[u64], start_time: f64) -> EpRun {
    assert_eq!(alloc.len(), platform.machines.len());
    let per_machine_secs: Vec<f64> = alloc
        .iter()
        .enumerate()
        .map(|(i, &u)| {
            let work = u as f64 * job.unit_secs_on(platform, i);
            platform.machines[i].load.time_to_complete(start_time, work)
        })
        .collect();
    let total_secs = per_machine_secs.iter().copied().fold(0.0, f64::max);
    EpRun {
        total_secs,
        per_machine_secs,
    }
}

/// One strategy's outcome over repeated production runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpStudyRow {
    /// Strategy label.
    pub policy: String,
    /// Mean completion over the runs.
    pub mean_secs: f64,
    /// 95th-percentile completion.
    pub p95_secs: f64,
    /// Fraction of runs inside the stochastic prediction issued at start.
    pub coverage: f64,
    /// Mean fraction of units assigned to each machine across the runs.
    pub mean_share: Vec<f64>,
}

/// Runs the Table-1 scheduling study end-to-end on live load traces.
///
/// Decisions happen at fixed instants `300 + k * period_secs`, the *same*
/// for every policy, so the policies face identical NWS states and their
/// outcomes are directly comparable. At each instant the study (a) reads
/// the stochastic unit-time estimates, (b) allocates under the policy,
/// (c) issues a prediction, (d) executes on the traces.
pub fn ep_policy_study(
    job: &EpJob,
    platform: &Platform,
    policies: &[(&str, AllocationPolicy)],
    runs: usize,
    period_secs: f64,
) -> Vec<EpStudyRow> {
    use prodpred_nws::{NwsConfig, NwsService};
    assert!(runs > 0 && period_secs > 0.0);
    let nws = NwsService::attach(platform, NwsConfig::default());
    let mut rows: Vec<EpStudyRow> = policies
        .iter()
        .map(|(name, _)| EpStudyRow {
            policy: name.to_string(),
            mean_secs: 0.0,
            p95_secs: 0.0,
            coverage: 0.0,
            mean_share: vec![0.0; platform.machines.len()],
        })
        .collect();
    let mut totals: Vec<Vec<f64>> = vec![Vec::with_capacity(runs); policies.len()];
    let mut covered = vec![0usize; policies.len()];

    for k in 0..runs {
        let t = 300.0 + k as f64 * period_secs;
        nws.advance_to(platform, t);
        let loads: Vec<StochasticValue> = (0..platform.machines.len())
            .map(|i| nws.cpu_stochastic(i).expect("warmed up")) // tidy:allow(PP003): the loop above warmed every NWS series first
            .collect();
        let unit_times: Vec<StochasticValue> = (0..platform.machines.len())
            .map(|i| job.stochastic_unit_time(platform, i, loads[i]))
            .collect();
        for (p_idx, (_, policy)) in policies.iter().enumerate() {
            let alloc = crate::scheduler::allocate_units(job.units, &unit_times, *policy);
            for (s, &u) in rows[p_idx].mean_share.iter_mut().zip(&alloc) {
                *s += u as f64 / job.units as f64;
            }
            let prediction = predict_ep(job, platform, &alloc, &loads, MaxStrategy::ByMean);
            let run = simulate_ep(job, platform, &alloc, t);
            if prediction.contains(run.total_secs) {
                covered[p_idx] += 1;
            }
            totals[p_idx].push(run.total_secs);
        }
    }

    for (p_idx, row) in rows.iter_mut().enumerate() {
        row.mean_secs = totals[p_idx].iter().sum::<f64>() / runs as f64;
        row.p95_secs =
            prodpred_stochastic::stats::quantile(&totals[p_idx], 0.95).expect("non-empty"); // tidy:allow(PP003): totals holds one entry per run and runs > 0
        row.coverage = covered[p_idx] as f64 / runs as f64;
        for s in &mut row.mean_share {
            *s /= runs as f64;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use prodpred_simgrid::{MachineClass, Platform};

    fn job() -> EpJob {
        EpJob {
            units: 200,
            unit_dedicated_secs: 0.5,
        }
    }

    #[test]
    fn unit_time_scales_with_machine_class() {
        let p = Platform::dedicated(
            &[
                MachineClass::Sparc2,
                MachineClass::Sparc10,
                MachineClass::UltraSparc,
            ],
            1.0e5,
        );
        let j = job();
        let s2 = j.unit_secs_on(&p, 0);
        let s10 = j.unit_secs_on(&p, 1);
        let us = j.unit_secs_on(&p, 2);
        assert!((s10 - 0.5).abs() < 1e-12); // reference class
        assert!(s2 > s10 && s10 > us);
        assert!((s2 / s10 - 2.0 / 0.9).abs() < 1e-9);
    }

    #[test]
    fn dedicated_simulation_matches_closed_form() {
        let p = Platform::dedicated(&[MachineClass::Sparc10, MachineClass::Sparc10], 1.0e6);
        let j = job();
        let run = simulate_ep(&j, &p, &[100, 100], 0.0);
        assert!((run.total_secs - 50.0).abs() < 1e-9);
        assert!((run.per_machine_secs[0] - run.per_machine_secs[1]).abs() < 1e-9);
    }

    #[test]
    fn loaded_machine_finishes_late() {
        use prodpred_simgrid::{Machine, MachineSpec, Trace};
        let quiet = Machine::new(
            MachineSpec::new("q", MachineClass::Sparc10),
            Trace::constant(0.0, 1.0, 1.0, 100_000),
        );
        let busy = Machine::new(
            MachineSpec::new("b", MachineClass::Sparc10),
            Trace::constant(0.0, 1.0, 0.25, 100_000),
        );
        let network = Platform::dedicated(&[MachineClass::Sparc10], 10.0).network;
        let p = Platform {
            machines: vec![quiet, busy],
            network,
            horizon: 1.0e5,
        };
        let run = simulate_ep(&job(), &p, &[100, 100], 0.0);
        assert!((run.per_machine_secs[1] / run.per_machine_secs[0] - 4.0).abs() < 1e-9);
        assert_eq!(run.total_secs, run.per_machine_secs[1]);
    }

    #[test]
    fn prediction_brackets_dedicated_run() {
        let p = Platform::dedicated(&[MachineClass::Sparc10, MachineClass::Sparc5], 1.0e6);
        let j = job();
        let loads = vec![StochasticValue::point(1.0); 2];
        let alloc = [120u64, 80];
        let pred = predict_ep(&j, &p, &alloc, &loads, MaxStrategy::ByMean);
        let run = simulate_ep(&j, &p, &alloc, 0.0);
        assert!(pred.is_point());
        assert!((pred.mean() - run.total_secs).abs() / run.total_secs < 1e-9);
    }

    #[test]
    fn policy_study_risk_averse_improves_p95_under_bursts() {
        // Heterogeneous volatility: machine 0 stable, machine 1 bursty.
        use prodpred_simgrid::load::{LoadGenerator, MarkovModal, SingleModeAr1};
        use prodpred_simgrid::{Machine, MachineSpec};
        let horizon = 200_000.0;
        let steps = horizon as usize;
        let stable = SingleModeAr1 {
            mean: 0.60,
            sd: 0.015,
            phi: 0.9,
        }
        .generate(1, 0.0, 1.0, steps);
        let bursty = MarkovModal {
            modes: vec![
                prodpred_simgrid::load::ModeSpec {
                    weight: 0.5,
                    mean: 0.95,
                    sd: 0.02,
                },
                prodpred_simgrid::load::ModeSpec {
                    weight: 0.5,
                    mean: 0.25,
                    sd: 0.02,
                },
            ],
            mean_dwell: 40.0,
            phi: 0.7,
        }
        .generate(2, 0.0, 1.0, steps);
        let network = Platform::dedicated(&[MachineClass::Sparc10], 10.0).network;
        let platform = Platform {
            machines: vec![
                Machine::new(MachineSpec::new("stable", MachineClass::Sparc10), stable),
                Machine::new(MachineSpec::new("bursty", MachineClass::Sparc10), bursty),
            ],
            network,
            horizon,
        };
        let rows = ep_policy_study(
            &job(),
            &platform,
            &[
                ("by-mean", AllocationPolicy::ByMean),
                ("risk-averse", AllocationPolicy::RiskAverse { lambda: 2.0 }),
            ],
            30,
            15.0,
        );
        assert_eq!(rows.len(), 2);
        // The mechanism: risk aversion shifts work away from the volatile
        // machine (index 1). Whether that also wins the tail depends on
        // how much a run averages over bursts — see the ep_study binary.
        assert!(
            rows[1].mean_share[1] < rows[0].mean_share[1],
            "risk-averse bursty share {} vs by-mean {}",
            rows[1].mean_share[1],
            rows[0].mean_share[1]
        );
        for r in &rows {
            assert!(r.mean_secs > 0.0);
            assert!(r.p95_secs >= r.mean_secs * 0.5);
            assert!((0.0..=1.0).contains(&r.coverage));
            assert!((r.mean_share.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn allocation_conservation_through_study() {
        let p = Platform::platform1(3, 40_000.0);
        let rows = ep_policy_study(
            &job(),
            &p,
            &[("by-mean", AllocationPolicy::ByMean)],
            3,
            10.0,
        );
        assert_eq!(rows.len(), 1);
        assert!(rows[0].mean_secs > 0.0);
    }
}
