//! The experiment harness reproducing the paper's Section 3 methodology:
//! attach the NWS to a platform, issue a stochastic prediction before each
//! run from live load data, execute the run (simulated distributed SOR),
//! and record predicted-vs-actual series.

use crate::predictor::{predict_dedicated, Prediction, PredictorConfig, SorPredictor};
use crate::scheduler::{decompose, DecompositionPolicy};
use crate::supervisor::{RecoveryStats, RetryPolicy, Supervisor};
use prodpred_nws::{NwsConfig, NwsService};
use prodpred_simgrid::faults::{FaultConfig, FaultPlan};
use prodpred_simgrid::{MachineClass, Platform};
use prodpred_sor::{simulate, DistSorConfig};
use prodpred_stochastic::{AccuracyReport, Observation};
use serde::{Deserialize, Serialize};

/// One predicted-then-measured run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Platform time at which the run started.
    pub start: f64,
    /// Grid dimension.
    pub n: usize,
    /// Measured execution time (simulated distributed run).
    pub actual_secs: f64,
    /// The prediction issued immediately before the run.
    pub prediction: Prediction,
}

impl RunRecord {
    /// The record as a coverage observation.
    pub fn observation(&self) -> Observation {
        Observation {
            predicted: self.prediction.stochastic,
            actual: self.actual_secs,
        }
    }
}

/// A series of runs plus the context needed for the paper's paired load
/// figures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentSeries {
    /// The runs, in time order.
    pub records: Vec<RunRecord>,
    /// Load samples `(t, availability)` of the watched machine over the
    /// experiment window (Figures 8, 13, 15, 17).
    pub load_samples: Vec<(f64, f64)>,
    /// Index of the machine whose load is recorded.
    pub watched_machine: usize,
}

impl ExperimentSeries {
    /// Accuracy of the stochastic predictions. `None` if no runs.
    pub fn accuracy(&self) -> Option<AccuracyReport> {
        let obs: Vec<Observation> = self.records.iter().map(RunRecord::observation).collect();
        AccuracyReport::from_observations(&obs)
    }
}

/// Configuration shared by the production experiments.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// RNG seed for the platform's load processes.
    pub seed: u64,
    /// Red+black iterations per run.
    pub iterations: usize,
    /// Warm-up before the first run (lets the NWS accumulate history).
    pub warmup_secs: f64,
    /// Idle gap between consecutive runs.
    pub gap_secs: f64,
    /// Strip decomposition policy.
    pub decomposition: DecompositionPolicy,
    /// Predictor settings.
    pub predictor: PredictorConfig,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            iterations: 50,
            warmup_secs: 300.0,
            gap_secs: 30.0,
            decomposition: DecompositionPolicy::DedicatedSpeed,
            predictor: PredictorConfig::default(),
        }
    }
}

/// Degradation accounting over one faulted series: how much the
/// measurement substrate decayed, and how often the prediction service
/// had to fall below full quality to keep answering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DegradationStats {
    /// CPU queries issued for prediction accounting (one per in-use
    /// machine per run).
    pub queries: usize,
    /// Queries answered in a degraded mode (fallback estimator, stale
    /// data) or not answerable at all.
    pub degraded_queries: usize,
    /// Largest staleness, in whole sensor cadences, seen by any query.
    pub max_stale_intervals: f64,
    /// Runs skipped because no machine had any retained measurements
    /// (total sensor blackout outlasting the retention window).
    pub skipped_runs: usize,
    /// Scheduled sensor polls that delivered nothing, summed over all
    /// CPU sensors.
    pub missed_polls: u64,
    /// Measurements discarded as corrupt, summed over all CPU sensors.
    pub corrupt_polls: u64,
}

/// An experiment series run under fault injection, with its degradation
/// accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultedSeries {
    /// The predicted-vs-actual records (skipped runs excluded).
    pub series: ExperimentSeries,
    /// How degraded the measurement substrate and query service were.
    pub stats: DegradationStats,
}

/// Runs a sequence of problem sizes (or repeated runs of one size) on a
/// platform: advance NWS → predict → simulate → record.
pub fn run_series(
    platform: &Platform,
    sizes: &[usize],
    cfg: &ExperimentConfig,
    watched_machine: usize,
) -> ExperimentSeries {
    run_series_inner(platform, sizes, cfg, watched_machine, None).series
}

/// Like [`run_series`], but every sensor poll is routed through `plan`
/// (the platform is expected to already carry the plan's load storms —
/// see [`FaultPlan::apply_storms`]) and the predictor should normally be
/// configured `staleness_aware`. Runs whose prediction cannot be issued
/// at all (every in-use sensor history empty) are skipped and counted,
/// not panicked on.
pub fn run_series_faulted(
    platform: &Platform,
    sizes: &[usize],
    cfg: &ExperimentConfig,
    watched_machine: usize,
    plan: FaultPlan,
) -> FaultedSeries {
    run_series_inner(platform, sizes, cfg, watched_machine, Some(plan))
}

/// A fault-injected series run under a [`Supervisor`]: recovery
/// accounting rides alongside the degradation accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SupervisedSeries {
    /// The predicted-vs-actual records (abandoned runs excluded).
    pub series: ExperimentSeries,
    /// How degraded the measurement substrate and query service were.
    pub stats: DegradationStats,
    /// What the supervisor did about it.
    pub recovery: RecoveryStats,
}

/// Like [`run_series_faulted`], but prediction failures are *supervised*
/// instead of immediately skipped: a run whose prediction cannot be
/// issued (e.g. every sensor inside a blackout) is retried under the
/// supervisor's [`RetryPolicy`](crate::supervisor::RetryPolicy), with
/// each deterministic backoff advancing the simulated clock — so an
/// outage shorter than the backoff budget delays the run instead of
/// losing it. Per-machine diagnostic queries route through the
/// supervisor's circuit breakers: a machine whose sensor keeps failing
/// is short-circuited (counted as degraded) until its cooldown elapses.
pub fn run_series_supervised(
    platform: &Platform,
    sizes: &[usize],
    cfg: &ExperimentConfig,
    watched_machine: usize,
    plan: FaultPlan,
    supervisor: &mut Supervisor,
) -> SupervisedSeries {
    assert!(!sizes.is_empty(), "need at least one run");
    assert!(watched_machine < platform.machines.len());
    let nws = NwsService::attach_with_faults(platform, NwsConfig::default(), plan);
    let mut t = cfg.warmup_secs;
    let mut records = Vec::with_capacity(sizes.len());
    let mut stats = DegradationStats::default();

    let mut predictor_cfg = cfg.predictor;
    predictor_cfg.iterations = cfg.iterations;

    for &n in sizes {
        nws.advance_to(platform, t);
        let strips = decompose(platform, n, cfg.decomposition, None);
        for i in 0..strips.len() {
            stats.queries += 1;
            if !supervisor.query_allowed(i, t) {
                // Open breaker: the sensor is known-bad, answer straight
                // from the degraded path without poking it again.
                stats.degraded_queries += 1;
                continue;
            }
            match nws.cpu_query(i) {
                Ok(q) => {
                    supervisor.record_query_outcome(i, t, true);
                    if q.degraded {
                        stats.degraded_queries += 1;
                    }
                    stats.max_stale_intervals = stats.max_stale_intervals.max(q.stale_intervals);
                }
                Err(_) => {
                    supervisor.record_query_outcome(i, t, false);
                    stats.degraded_queries += 1;
                }
            }
        }
        let predicted = supervisor.retry_timed(&mut t, |_, now| {
            // Backoff moved the clock: let the sensors poll up to `now`
            // before asking again.
            nws.advance_to(platform, now);
            SorPredictor::try_new(platform, &nws, predictor_cfg)
                .and_then(|p| p.try_predict(n, &strips))
        });
        let prediction = match predicted {
            Ok(p) => p,
            Err(_) => {
                // Retry budget exhausted inside the outage: skip the run.
                stats.skipped_runs += 1;
                t += cfg.gap_secs;
                continue;
            }
        };
        let run = simulate(
            platform,
            &strips,
            DistSorConfig {
                paging: None,
                n,
                iterations: cfg.iterations,
                start_time: t,
            },
        );
        records.push(RunRecord {
            start: t,
            n,
            actual_secs: run.total_secs,
            prediction,
        });
        t += run.total_secs + cfg.gap_secs;
    }

    for i in 0..platform.machines.len() {
        let (missed, corrupt) = nws.cpu_sensor_health(i);
        stats.missed_polls += missed;
        stats.corrupt_polls += corrupt;
    }

    let load_samples =
        platform.machines[watched_machine]
            .load
            .sample_every(0.0, t.min(platform.horizon), 5.0);
    SupervisedSeries {
        series: ExperimentSeries {
            records,
            load_samples,
            watched_machine,
        },
        stats,
        recovery: supervisor.stats(),
    }
}

fn run_series_inner(
    platform: &Platform,
    sizes: &[usize],
    cfg: &ExperimentConfig,
    watched_machine: usize,
    plan: Option<FaultPlan>,
) -> FaultedSeries {
    assert!(!sizes.is_empty(), "need at least one run");
    assert!(watched_machine < platform.machines.len());
    let faulted = plan.is_some();
    let nws = match plan {
        Some(plan) => NwsService::attach_with_faults(platform, NwsConfig::default(), plan),
        None => NwsService::attach(platform, NwsConfig::default()),
    };
    let mut t = cfg.warmup_secs;
    let mut records = Vec::with_capacity(sizes.len());
    let mut stats = DegradationStats::default();

    let mut predictor_cfg = cfg.predictor;
    predictor_cfg.iterations = cfg.iterations;

    for &n in sizes {
        nws.advance_to(platform, t);
        let strips = decompose(platform, n, cfg.decomposition, None);
        if faulted {
            for i in 0..strips.len() {
                stats.queries += 1;
                match nws.cpu_query(i) {
                    Ok(q) => {
                        if q.degraded {
                            stats.degraded_queries += 1;
                        }
                        stats.max_stale_intervals =
                            stats.max_stale_intervals.max(q.stale_intervals);
                    }
                    Err(_) => stats.degraded_queries += 1,
                }
            }
        }
        let predictor = SorPredictor::new(platform, &nws, predictor_cfg);
        let prediction = match predictor.predict(n, &strips) {
            Some(p) => p,
            None if faulted => {
                // Nothing to predict from: a total measurement outage.
                // Skip the run rather than panic; the study counts it.
                stats.skipped_runs += 1;
                t += cfg.gap_secs;
                continue;
            }
            None => panic!("NWS has data after warmup"),
        };
        let run = simulate(
            platform,
            &strips,
            DistSorConfig {
                paging: None,
                n,
                iterations: cfg.iterations,
                start_time: t,
            },
        );
        records.push(RunRecord {
            start: t,
            n,
            actual_secs: run.total_secs,
            prediction,
        });
        t += run.total_secs + cfg.gap_secs;
    }

    for i in 0..platform.machines.len() {
        let (missed, corrupt) = nws.cpu_sensor_health(i);
        stats.missed_polls += missed;
        stats.corrupt_polls += corrupt;
    }

    let load_samples =
        platform.machines[watched_machine]
            .load
            .sample_every(0.0, t.min(platform.horizon), 5.0);
    FaultedSeries {
        series: ExperimentSeries {
            records,
            load_samples,
            watched_machine,
        },
        stats,
    }
}

/// The machine classes of Platform 1, for building a matching dedicated
/// platform.
pub const PLATFORM1_CLASSES: [MachineClass; 4] = [
    MachineClass::Sparc2,
    MachineClass::Sparc2,
    MachineClass::Sparc5,
    MachineClass::Sparc10,
];

/// One row of the dedicated-model validation (paper §2.2.1: "the
/// structural model defined in this section predicted overall application
/// execution times to within 2% of actual execution time").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DedicatedCheck {
    /// Grid dimension.
    pub n: usize,
    /// Structural-model point prediction.
    pub predicted_secs: f64,
    /// Simulated dedicated run time.
    pub actual_secs: f64,
    /// `|predicted - actual| / actual`.
    pub rel_error: f64,
}

/// Validates the dedicated structural model across problem sizes.
pub fn dedicated_check(sizes: &[usize], iterations: usize) -> Vec<DedicatedCheck> {
    let horizon = 1.0e6;
    let platform = Platform::dedicated(&PLATFORM1_CLASSES, horizon);
    sizes
        .iter()
        .map(|&n| {
            let strips = decompose(&platform, n, DecompositionPolicy::DedicatedSpeed, None);
            let predicted = predict_dedicated(&platform, n, &strips, iterations);
            let run = simulate(
                &platform,
                &strips,
                DistSorConfig {
                    paging: None,
                    n,
                    iterations,
                    start_time: 0.0,
                },
            );
            DedicatedCheck {
                n,
                predicted_secs: predicted.mean(),
                actual_secs: run.total_secs,
                rel_error: (predicted.mean() - run.total_secs).abs() / run.total_secs,
            }
        })
        .collect()
}

/// The Platform-1 experiment (Figures 8–9): single-mode load, a sweep of
/// problem sizes, stochastic predictions expected to cover every actual.
pub fn platform1_experiment(seed: u64, sizes: &[usize]) -> ExperimentSeries {
    let horizon = 40_000.0;
    let platform = Platform::platform1(seed, horizon);
    let cfg = ExperimentConfig {
        seed,
        ..Default::default()
    };
    // Watch a Sparc-2: "the load of the (consistently) slowest machine".
    run_series(&platform, sizes, &cfg, 0)
}

/// The Platform-2 experiment (Figures 12–17): bursty 4-modal load,
/// repeated runs of one problem size.
pub fn platform2_experiment(seed: u64, n: usize, runs: usize) -> ExperimentSeries {
    assert!(runs > 0);
    let horizon = 60_000.0;
    let platform = Platform::platform2(seed, horizon);
    let cfg = ExperimentConfig {
        seed,
        gap_secs: 20.0,
        ..Default::default()
    };
    let sizes = vec![n; runs];
    run_series(&platform, &sizes, &cfg, 0)
}

/// Shared setup of the fault-injected experiments: apply the plan's load
/// storms to the ground truth, attach a fault-routed NWS, and predict
/// through the staleness-aware query path.
fn faulted_config(seed: u64, faults: &FaultConfig) -> (FaultPlan, ExperimentConfig) {
    let plan = FaultPlan::new(faults.clone());
    let mut cfg = ExperimentConfig {
        seed,
        ..Default::default()
    };
    cfg.predictor.staleness_aware = true;
    (plan, cfg)
}

/// The Platform-1 experiment under fault injection: same size sweep as
/// [`platform1_experiment`], but sensors miss/delay/corrupt polls per
/// `faults`, load storms perturb the ground truth, and predictions flow
/// through the degradation-aware query chain.
pub fn platform1_experiment_with_faults(
    seed: u64,
    sizes: &[usize],
    faults: &FaultConfig,
) -> FaultedSeries {
    let horizon = 40_000.0;
    let mut platform = Platform::platform1(seed, horizon);
    let (plan, cfg) = faulted_config(seed, faults);
    plan.apply_storms(&mut platform);
    run_series_faulted(&platform, sizes, &cfg, 0, plan)
}

/// The Platform-2 experiment under fault injection; see
/// [`platform1_experiment_with_faults`].
pub fn platform2_experiment_with_faults(
    seed: u64,
    n: usize,
    runs: usize,
    faults: &FaultConfig,
) -> FaultedSeries {
    assert!(runs > 0);
    let horizon = 60_000.0;
    let mut platform = Platform::platform2(seed, horizon);
    let (plan, mut cfg) = faulted_config(seed, faults);
    cfg.gap_secs = 20.0;
    plan.apply_storms(&mut platform);
    let sizes = vec![n; runs];
    run_series_faulted(&platform, &sizes, &cfg, 0, plan)
}

/// The Platform-2 fault-injected experiment run under a supervisor: the
/// setup of [`platform2_experiment_with_faults`] plus bounded prediction
/// retries and a per-machine circuit breaker (3 consecutive sensor
/// failures open it for two minutes of simulated time).
pub fn platform2_experiment_supervised(
    seed: u64,
    n: usize,
    runs: usize,
    faults: &FaultConfig,
    retry: RetryPolicy,
) -> SupervisedSeries {
    assert!(runs > 0);
    let horizon = 60_000.0;
    let mut platform = Platform::platform2(seed, horizon);
    let (plan, mut cfg) = faulted_config(seed, faults);
    cfg.gap_secs = 20.0;
    plan.apply_storms(&mut platform);
    let sizes = vec![n; runs];
    let mut supervisor = Supervisor::new(retry).with_breakers(platform.machines.len(), 3, 120.0);
    run_series_supervised(&platform, &sizes, &cfg, 0, plan, &mut supervisor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedicated_model_within_two_percent() {
        for check in dedicated_check(&[600, 1000, 1400], 20) {
            assert!(
                check.rel_error < 0.02,
                "n={}: predicted {:.2}, actual {:.2}, err {:.3}",
                check.n,
                check.predicted_secs,
                check.actual_secs,
                check.rel_error
            );
        }
    }

    #[test]
    fn platform1_stochastic_covers_all_runs() {
        let series = platform1_experiment(11, &[1000, 1200, 1400, 1600, 1800, 2000]);
        let acc = series.accuracy().unwrap();
        // Figure 9: "execution time measurements fall entirely within the
        // stochastic prediction" — allow one near miss under reseeding.
        assert!(acc.coverage >= 0.8, "coverage {}", acc.coverage);
        // "maximal discrepancy between the means ... and actual execution
        // times is 9.7%": mean-point error is visible but bounded.
        assert!(acc.max_mean_error < 0.25, "mean err {}", acc.max_mean_error);
        assert!(acc.max_range_error <= acc.max_mean_error);
    }

    #[test]
    fn platform1_times_grow_with_problem_size() {
        let series = platform1_experiment(12, &[1000, 1400, 2000]);
        let t: Vec<f64> = series.records.iter().map(|r| r.actual_secs).collect();
        assert!(t[1] > t[0] && t[2] > t[1], "{t:?}");
        // Roughly quadratic: 2000^2 / 1000^2 = 4x work.
        assert!(t[2] / t[0] > 2.5 && t[2] / t[0] < 6.0, "{t:?}");
    }

    #[test]
    fn platform2_stochastic_beats_point() {
        let series = platform2_experiment(21, 1600, 10);
        let acc = series.accuracy().unwrap();
        // Figures 12–17: most actuals inside the range; the range error is
        // far below the mean-point error.
        assert!(acc.coverage >= 0.5, "coverage {}", acc.coverage);
        assert!(
            acc.max_range_error < acc.max_mean_error,
            "range {} vs mean {}",
            acc.max_range_error,
            acc.max_mean_error
        );
    }

    #[test]
    fn faultless_faulted_experiment_matches_the_healthy_one_bitwise() {
        let healthy = platform2_experiment(31, 1000, 4);
        let faulted = platform2_experiment_with_faults(31, 1000, 4, &FaultConfig::none(31));
        assert_eq!(faulted.stats.skipped_runs, 0);
        assert_eq!(faulted.stats.missed_polls, 0);
        assert_eq!(faulted.stats.corrupt_polls, 0);
        assert_eq!(faulted.series.records.len(), healthy.records.len());
        for (a, b) in faulted.series.records.iter().zip(&healthy.records) {
            assert_eq!(a.actual_secs.to_bits(), b.actual_secs.to_bits());
            // The staleness-aware path answers from fresh forecasts on
            // healthy data, so predictions agree bit-for-bit too.
            assert_eq!(
                a.prediction.stochastic.mean().to_bits(),
                b.prediction.stochastic.mean().to_bits()
            );
        }
    }

    #[test]
    fn faulted_experiment_is_deterministic_and_counts_degradation() {
        let faults = FaultConfig::with_intensity(31, 0.8);
        let a = platform1_experiment_with_faults(31, &[1000, 1400], &faults);
        let b = platform1_experiment_with_faults(31, &[1000, 1400], &faults);
        assert_eq!(a.stats.queries, b.stats.queries);
        assert_eq!(a.stats.degraded_queries, b.stats.degraded_queries);
        assert_eq!(a.stats.missed_polls, b.stats.missed_polls);
        assert!(a.stats.missed_polls > 0, "dropout never fired");
        assert!(a.stats.queries > 0);
        for (ra, rb) in a.series.records.iter().zip(&b.series.records) {
            assert_eq!(ra.actual_secs.to_bits(), rb.actual_secs.to_bits());
            assert_eq!(
                ra.prediction.stochastic.mean().to_bits(),
                rb.prediction.stochastic.mean().to_bits()
            );
        }
    }

    #[test]
    fn supervised_series_retries_through_a_blackout() {
        // Blackout [0, 500] swallows the warmup: at t=300 every sensor
        // history is empty, so the unsupervised harness loses the run.
        let mut faults = FaultConfig::none(41);
        faults.blackouts.push((0.0, 500.0));
        let unsupervised = platform2_experiment_with_faults(41, 1000, 3, &faults);
        assert!(
            unsupervised.stats.skipped_runs >= 1,
            "blackout should cost the unsupervised harness at least one run"
        );

        // A retry budget whose backoffs outlast the blackout recovers it:
        // 60 + 120 + 240 s (zero jitter) pushes the clock past t=500.
        let retry = RetryPolicy {
            max_retries: 3,
            base_backoff_secs: 60.0,
            backoff_factor: 2.0,
            max_backoff_secs: 600.0,
            jitter_fraction: 0.0,
            seed: 41,
        };
        let supervised = platform2_experiment_supervised(41, 1000, 3, &faults, retry);
        assert_eq!(
            supervised.stats.skipped_runs, 0,
            "retries must save the run"
        );
        assert_eq!(supervised.series.records.len(), 3);
        assert!(supervised.recovery.retries >= 1);
        assert_eq!(supervised.recovery.recovered, 1);
        assert_eq!(supervised.recovery.abandoned, 0);
        assert!(supervised.recovery.backoff_secs >= 60.0);
        // The first run waited out the blackout.
        assert!(supervised.series.records[0].start > 500.0);
    }

    #[test]
    fn supervised_series_is_deterministic() {
        let faults = FaultConfig::with_intensity(43, 0.8);
        let retry = RetryPolicy {
            jitter_fraction: 0.25,
            seed: 43,
            ..Default::default()
        };
        let a = platform2_experiment_supervised(43, 1000, 4, &faults, retry);
        let b = platform2_experiment_supervised(43, 1000, 4, &faults, retry);
        assert_eq!(a.recovery, b.recovery);
        assert_eq!(a.stats.degraded_queries, b.stats.degraded_queries);
        assert_eq!(a.series.records.len(), b.series.records.len());
        for (ra, rb) in a.series.records.iter().zip(&b.series.records) {
            assert_eq!(ra.start.to_bits(), rb.start.to_bits());
            assert_eq!(ra.actual_secs.to_bits(), rb.actual_secs.to_bits());
            assert_eq!(
                ra.prediction.stochastic.mean().to_bits(),
                rb.prediction.stochastic.mean().to_bits()
            );
        }
    }

    #[test]
    fn supervised_matches_faulted_when_nothing_fails() {
        // With no faults and a healthy substrate the supervisor is pure
        // bookkeeping: the series must be bit-identical to the faulted
        // harness, with zero recovery activity.
        let faults = FaultConfig::none(31);
        let plain = platform2_experiment_with_faults(31, 1000, 4, &faults);
        let supervised =
            platform2_experiment_supervised(31, 1000, 4, &faults, RetryPolicy::default());
        assert_eq!(supervised.recovery, RecoveryStats::default());
        assert_eq!(supervised.series.records.len(), plain.series.records.len());
        for (a, b) in supervised.series.records.iter().zip(&plain.series.records) {
            assert_eq!(a.actual_secs.to_bits(), b.actual_secs.to_bits());
            assert_eq!(
                a.prediction.stochastic.mean().to_bits(),
                b.prediction.stochastic.mean().to_bits()
            );
        }
    }

    #[test]
    fn series_records_are_time_ordered_and_load_sampled() {
        let series = platform2_experiment(22, 1000, 5);
        assert_eq!(series.records.len(), 5);
        for w in series.records.windows(2) {
            assert!(w[1].start > w[0].start + w[0].actual_secs - 1e-9);
        }
        assert!(!series.load_samples.is_empty());
        assert!(series
            .load_samples
            .iter()
            .all(|&(_, v)| v > 0.0 && v <= 1.0));
    }
}
