//! Fault-aware prediction: degradation terms for the structural model.
//!
//! The Table 2 algebra predicts `ExTime` for a healthy run; this module
//! extends it with the expected cost of running *unhealthily* — the
//! production regime PR 3–4 built (sensor faults, load storms, worker
//! deaths, checkpointed supervised retry). Every quantity here is a
//! **pure function** of `(FaultConfig, RetryPolicy, CheckpointPolicy,
//! iterations, procs)`: no RNG state, no clock, no measurement — so a
//! fault-aware prediction is exactly as bit-deterministic as a healthy
//! one, and the epoch-keyed service cache can key on the intensity.
//!
//! Four families of terms, each anchored to a measured artifact:
//!
//! 1. **Retry and recovery expectations** ([`predict_campaign`]): an
//!    exact dynamic program over the chaos-campaign generator's
//!    kill-count distribution and uniform kill positions, mirroring the
//!    supervisor's resume semantics (`sor::checkpoint::kill_in_segment`:
//!    a kill whose absolute half-iteration precedes the resumed segment
//!    never re-fires). It yields expected retries, expected deterministic
//!    backoff (`RetryPolicy::backoff_secs` summed in expectation),
//!    expected iterations saved by checkpoint resume, expected redone
//!    work, and the completion rate. Validated against `BENCH_chaos.json`
//!    by the `faultpred_study` bench.
//! 2. **Checkpoint write overhead**
//!    ([`checkpoint_overhead_fraction`]): amortized per iteration,
//!    anchored to the measured healthy overhead in `BENCH_chaos.json`
//!    (≈0.66% over 480 iterations at cadence 240, i.e. ≈3.2
//!    iteration-times per snapshot — both the snapshot copy and the
//!    iteration sweep are `O(n²)`, so the cost in iteration-times is
//!    size-independent).
//! 3. **Environment windows** ([`blackout_delay`],
//!    [`storm_stretched_secs`]): a launch inside an NWS blackout waits
//!    out the (chained) windows; a load storm on one machine stretches
//!    the run by piecewise integration of the platform's capacity,
//!    crediting the weighted decomposition with rebalancing work away
//!    from the stormed machine.
//! 4. **Sensor-degradation spread widening** ([`spread_widening`]): a
//!    perturbed measurement stream thins the usable sample, so the
//!    stochastic interval widens by the usual `1/√(kept fraction)`.
//!
//! [`FaultModel::terms`] folds all four into the
//! [`DegradationTerms`](prodpred_structural::DegradationTerms) the
//! structural crate applies on top of a healthy prediction. Zero
//! intensity returns the exact identity terms, keeping the healthy
//! service path bit-identical.

use crate::supervisor::RetryPolicy;
use prodpred_simgrid::faults::{FaultConfig, IntensityError};
use prodpred_sor::CheckpointPolicy;
use prodpred_structural::DegradationTerms;
use serde::{Deserialize, Serialize};

/// Kill-count weights of `FaultSchedule::random_campaign`: the
/// probability a schedule carries 0..=4 worker deaths (thresholds 0.25 /
/// 0.65 / 0.85 / 0.95 on a uniform hash).
pub const CAMPAIGN_KILL_WEIGHTS: [f64; 5] = [0.25, 0.40, 0.20, 0.10, 0.05];

/// Measured healthy checkpoint overhead from `BENCH_chaos.json`: one
/// snapshot over 480 iterations cost ≈0.66% of the solve.
pub const ANCHOR_OVERHEAD: f64 = 0.0066;
/// Iterations of the overhead anchor measurement.
pub const ANCHOR_ITERATIONS: f64 = 480.0;
/// Snapshots taken in the anchor measurement (cadence 240 → 1).
pub const ANCHOR_CHECKPOINTS: f64 = 1.0;

/// Cost of writing one checkpoint, in iteration-times, from the anchor.
pub fn checkpoint_cost_iterations() -> f64 {
    ANCHOR_OVERHEAD * ANCHOR_ITERATIONS / ANCHOR_CHECKPOINTS
}

/// The kill-count distribution at fault `intensity`: healthy mass
/// interpolates from 1 down to the campaign's 25%, the faulty tail
/// scales linearly. `intensity` 1 is exactly the campaign distribution.
pub fn kill_distribution(intensity: f64) -> [f64; 5] {
    let mut dist = [0.0; 5];
    dist[0] = 1.0 - (1.0 - CAMPAIGN_KILL_WEIGHTS[0]) * intensity;
    for (k, w) in CAMPAIGN_KILL_WEIGHTS.iter().enumerate().skip(1) {
        dist[k] = intensity * w;
    }
    dist
}

/// Exact expectations of a checkpointed supervised solve under the
/// campaign's fault law. All means are per schedule, averaged over the
/// whole kill-count distribution (completed and abandoned alike).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignPrediction {
    /// Probability the supervisor delivers the solve within its retry
    /// budget.
    pub completion_rate: f64,
    /// Expected retries per schedule.
    pub mean_retries: f64,
    /// Expected backoff seconds per schedule (the deterministic jittered
    /// schedule of [`RetryPolicy::backoff_secs`], summed in expectation).
    pub mean_backoff_secs: f64,
    /// Expected iterations *not* recomputed per schedule because resume
    /// restarted from a checkpoint instead of iteration 0.
    pub mean_saved_iterations: f64,
    /// Expected iterations redone per schedule (work between the resume
    /// checkpoint and the kill, lost and recomputed).
    pub mean_recomputed_iterations: f64,
}

/// Predicts the supervised chaos campaign at `intensity` by exact
/// enumeration: for each kill count the DP walks the attempt sequence
/// over the uniform kill-position law, tracking the distribution of
/// resume points exactly as the supervisor does — a kill fires only if
/// its absolute half-iteration is not behind the resumed segment
/// (`kill_in_segment`), the resume point is the last segment boundary
/// before the kill, and a kill that lands behind the resume point is
/// consumed without firing (the attempt completes clean).
///
/// Ranks never enter: which worker dies does not change retry, backoff,
/// or checkpoint arithmetic.
pub fn predict_campaign(
    intensity: f64,
    retry: &RetryPolicy,
    checkpoint: CheckpointPolicy,
    iterations: usize,
) -> CampaignPrediction {
    let dist = kill_distribution(intensity);
    let mut out = CampaignPrediction {
        completion_rate: 0.0,
        mean_retries: 0.0,
        mean_backoff_secs: 0.0,
        mean_saved_iterations: 0.0,
        mean_recomputed_iterations: 0.0,
    };
    if iterations == 0 {
        out.completion_rate = 1.0;
        return out;
    }
    for (kills, &p_k) in dist.iter().enumerate() {
        // tidy:allow(PP004): exact-zero mass skip, not a tolerance check
        if p_k == 0.0 {
            continue;
        }
        let e = expect_for_kill_count(kills, retry, checkpoint, iterations);
        out.completion_rate += p_k * e.completion_rate;
        out.mean_retries += p_k * e.mean_retries;
        out.mean_backoff_secs += p_k * e.mean_backoff_secs;
        out.mean_saved_iterations += p_k * e.mean_saved_iterations;
        out.mean_recomputed_iterations += p_k * e.mean_recomputed_iterations;
    }
    out
}

/// The DP for one fixed kill count: a distribution over resume points
/// evolves attempt by attempt.
fn expect_for_kill_count(
    kills: usize,
    retry: &RetryPolicy,
    checkpoint: CheckpointPolicy,
    iterations: usize,
) -> CampaignPrediction {
    let total = iterations as f64;
    let mut out = CampaignPrediction {
        completion_rate: 0.0,
        mean_retries: 0.0,
        mean_backoff_secs: 0.0,
        mean_saved_iterations: 0.0,
        mean_recomputed_iterations: 0.0,
    };
    // states[s] = probability the current attempt resumes from iteration s.
    let mut states = vec![0.0f64; iterations + 1];
    states[0] = 1.0;
    for attempt in 0.. {
        if attempt >= kills {
            // No kill left for this attempt: every surviving path
            // completes clean.
            out.completion_rate += states.iter().sum::<f64>();
            break;
        }
        let mut next = vec![0.0f64; iterations + 1];
        let mut live = false;
        for (s, &p) in states.iter().enumerate().take(iterations) {
            // tidy:allow(PP004): exact-zero mass skip, not a tolerance check
            if p == 0.0 {
                continue;
            }
            // The kill's half-iteration is uniform over [0, 2·iterations);
            // halves before 2s are consumed without firing.
            out.completion_rate += p * s as f64 / total;
            // Fired kill at iteration `it` (probability p/total each).
            for it in s..iterations {
                let mass = p / total;
                if attempt as u32 >= retry.max_retries {
                    // Budget exhausted: abandoned (no completion mass).
                    continue;
                }
                out.mean_retries += mass;
                out.mean_backoff_secs += mass * retry.backoff_secs(attempt as u32);
                let resume = match checkpoint.every {
                    0 => 0,
                    k => s + ((it - s) / k) * k,
                };
                out.mean_saved_iterations += mass * resume as f64;
                // Mid-iteration death: each half of `it` equally likely,
                // so a quarter iteration of in-flight work on average.
                out.mean_recomputed_iterations += mass * (it as f64 + 0.25 - resume as f64);
                next[resume] += mass;
                live = true;
            }
        }
        states = next;
        if !live {
            break;
        }
    }
    out
}

/// Seconds a launch at `start` waits for NWS blackout windows to pass,
/// chaining through overlapping or adjacent windows.
pub fn blackout_delay(cfg: &FaultConfig, start: f64) -> f64 {
    let mut t = start;
    loop {
        let mut advanced = false;
        for &(lo, hi) in &cfg.blackouts {
            if t >= lo && t < hi {
                t = hi;
                advanced = true;
            }
        }
        if !advanced {
            return t - start;
        }
    }
}

/// Floor on the modelled platform capacity during storms, so a
/// pathological storm stack cannot divide by ~zero.
const MIN_CAPACITY: f64 = 0.05;

/// The platform's relative capacity at time `t` under `cfg`'s storms,
/// for a run decomposed over `procs` machines. The weighted
/// decomposition rebalances work away from a stormed machine, so one
/// machine at availability factor `f` costs the platform
/// `(1 − f)/procs` of its capacity, not `1 − f` of it.
fn capacity_at(cfg: &FaultConfig, procs: usize, t: f64) -> f64 {
    let p = procs.max(1) as f64;
    let mut lost = 0.0;
    for storm in &cfg.storms {
        if t >= storm.start && t < storm.start + storm.duration {
            lost += 1.0 - storm.availability_factor;
        }
    }
    ((p - lost) / p).max(MIN_CAPACITY)
}

/// Stretches a healthy `healthy_secs` run launched at `start` through
/// `cfg`'s load storms by piecewise integration: work proceeds at the
/// platform's capacity, which drops inside storm windows. Returns the
/// degraded wall-clock duration (≥ `healthy_secs`).
pub fn storm_stretched_secs(cfg: &FaultConfig, procs: usize, start: f64, healthy_secs: f64) -> f64 {
    if healthy_secs <= 0.0 || cfg.storms.is_empty() {
        return healthy_secs;
    }
    let mut boundaries: Vec<f64> = cfg
        .storms
        .iter()
        .flat_map(|s| [s.start, s.start + s.duration])
        .filter(|&b| b > start)
        .collect();
    boundaries.sort_by(f64::total_cmp);
    let mut t = start;
    let mut remaining = healthy_secs;
    for b in boundaries {
        let rate = capacity_at(cfg, procs, t);
        let can = (b - t) * rate;
        if can >= remaining {
            return t + remaining / rate - start;
        }
        remaining -= can;
        t = b;
    }
    t + remaining / capacity_at(cfg, procs, t) - start
}

/// Cap on the poll-loss fraction entering the widening term, so a fully
/// perturbed sensor stream widens the interval by at most `1/√0.1`.
const MAX_WIDENING_LOSS: f64 = 0.9;

/// Spread widening from sensor degradation: dropouts, spikes, and
/// corruption thin the usable measurement stream to a `1 − rate`
/// fraction, so the sample-driven interval widens by `1/√(1 − rate)`.
pub fn spread_widening(cfg: &FaultConfig) -> f64 {
    let lost = cfg.perturbation_rate().min(MAX_WIDENING_LOSS);
    1.0 / (1.0 - lost).sqrt()
}

/// Amortized checkpoint write overhead for a solve of `iterations`
/// iterations under `policy`, as a fraction of the healthy runtime.
pub fn checkpoint_overhead_fraction(policy: CheckpointPolicy, iterations: usize) -> f64 {
    if iterations == 0 {
        return 0.0;
    }
    checkpoint_cost_iterations() * policy.checkpoints_for(iterations) as f64 / iterations as f64
}

/// The full fault-aware prediction model: a fault environment plus the
/// recovery machinery a supervised run deploys against it. Construct it
/// with [`FaultModel::for_intensity`] (the service's canonical knob) or
/// directly from explicit parts; then [`FaultModel::terms`] yields the
/// degradation terms for any healthy prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    /// The fault environment.
    pub fault: FaultConfig,
    /// The supervisor's retry policy.
    pub retry: RetryPolicy,
    /// The checkpoint cadence supervised solves run under.
    pub checkpoint: CheckpointPolicy,
    /// Red+black iterations of the predicted solve.
    pub iterations: usize,
    /// Machines the solve is decomposed over.
    pub procs: usize,
    /// The intensity the model was built at (drives the kill law).
    pub intensity: f64,
}

impl FaultModel {
    /// The service's canonical model at `intensity`: the
    /// [`FaultConfig::try_with_intensity`] environment (seed 0 — the
    /// environment shape, not a replay), the default retry policy, and a
    /// five-segment checkpoint cadence.
    ///
    /// # Errors
    ///
    /// Rejects non-finite intensities and intensities outside `[0, 1]`.
    pub fn for_intensity(
        intensity: f64,
        iterations: usize,
        procs: usize,
    ) -> Result<Self, IntensityError> {
        let fault = FaultConfig::try_with_intensity(0, intensity)?;
        Ok(Self {
            fault,
            retry: RetryPolicy::default(),
            checkpoint: CheckpointPolicy::every((iterations / 5).max(1)),
            iterations,
            procs,
            intensity,
        })
    }

    /// The campaign expectations of this model's fault law.
    pub fn campaign(&self) -> CampaignPrediction {
        predict_campaign(
            self.intensity,
            &self.retry,
            self.checkpoint,
            self.iterations,
        )
    }

    /// The degradation terms for a healthy prediction of `healthy_secs`
    /// launched at platform time `start`. Zero intensity returns the
    /// exact identity ([`DegradationTerms::none`]), so the healthy path
    /// stays bit-identical; at positive intensity the supervision
    /// machinery (checkpoints, retries) is engaged and billed.
    pub fn terms(&self, healthy_secs: f64, start: f64) -> DegradationTerms {
        // tidy:allow(PP004): documented bit-exact identity gate at zero
        if self.intensity == 0.0 {
            return DegradationTerms::none();
        }
        let delay = blackout_delay(&self.fault, start);
        let launch = start + delay;
        let storm_slowdown = if healthy_secs > 0.0 {
            storm_stretched_secs(&self.fault, self.procs, launch, healthy_secs) / healthy_secs
        } else {
            1.0
        };
        let campaign = self.campaign();
        let recovery_overhead = if self.iterations > 0 {
            campaign.mean_recomputed_iterations / self.iterations as f64
        } else {
            0.0
        };
        let ckpt_overhead = checkpoint_overhead_fraction(self.checkpoint, self.iterations);
        DegradationTerms {
            slowdown: storm_slowdown * (1.0 + ckpt_overhead + recovery_overhead),
            delay_secs: campaign.mean_backoff_secs + delay,
            widening: spread_widening(&self.fault),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prodpred_simgrid::faults::LoadStorm;
    use prodpred_stochastic::StochasticValue;
    use prodpred_structural::{degrade, DegradationTerms};

    #[test]
    fn kill_distribution_interpolates_to_the_campaign_law() {
        let zero = kill_distribution(0.0);
        assert_eq!(zero, [1.0, 0.0, 0.0, 0.0, 0.0]);
        let full = kill_distribution(1.0);
        for (a, b) in full.iter().zip(&CAMPAIGN_KILL_WEIGHTS) {
            assert!((a - b).abs() < 1e-15);
        }
        for i in [0.0, 0.3, 0.7, 1.0] {
            assert!((kill_distribution(i).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn campaign_prediction_matches_hand_computed_expectations() {
        // The chaos-study configuration: 20 iterations, cadence 4,
        // default 3-retry policy.
        let retry = RetryPolicy {
            seed: 4242,
            ..RetryPolicy::default()
        };
        let p = predict_campaign(1.0, &retry, CheckpointPolicy::every(4), 20);
        // One kill always fires on a fresh attempt; the resume point is
        // uniform over {0, 4, 8, 12, 16}, so the second kill fires with
        // probability 0.6. Fold over the kill-count weights.
        assert!((0.9..=1.2).contains(&p.mean_retries), "{p:?}");
        // Completion only fails when four kills all fire.
        assert!(p.completion_rate > 0.99 && p.completion_rate < 1.0, "{p:?}");
        // A single resume saves 8 iterations in expectation.
        assert!(p.mean_saved_iterations > 3.0, "{p:?}");
        // Backoff per retry is ≈30–60 s under the default policy.
        assert!(
            p.mean_backoff_secs > 20.0 && p.mean_backoff_secs < 120.0,
            "{p:?}"
        );
    }

    #[test]
    fn campaign_prediction_is_monotone_in_intensity() {
        let retry = RetryPolicy::default();
        let cp = CheckpointPolicy::every(4);
        let mut last = predict_campaign(0.0, &retry, cp, 20);
        assert_eq!(last.mean_retries, 0.0);
        assert_eq!(last.completion_rate, 1.0);
        for i in [0.25, 0.5, 0.75, 1.0] {
            let p = predict_campaign(i, &retry, cp, 20);
            assert!(p.mean_retries > last.mean_retries);
            assert!(p.completion_rate <= last.completion_rate);
            assert!(p.mean_backoff_secs > last.mean_backoff_secs);
            last = p;
        }
    }

    #[test]
    fn no_retry_budget_means_no_backoff_and_lower_completion() {
        let none = RetryPolicy::none();
        let p = predict_campaign(1.0, &none, CheckpointPolicy::every(4), 20);
        assert_eq!(p.mean_retries, 0.0);
        assert_eq!(p.mean_backoff_secs, 0.0);
        assert_eq!(p.mean_saved_iterations, 0.0);
        // Any fired kill abandons the solve: completion = P(0 kills).
        assert!((p.completion_rate - 0.25).abs() < 1e-12, "{p:?}");
    }

    #[test]
    fn blackout_delay_chains_windows() {
        let mut cfg = FaultConfig::none(0);
        cfg.blackouts.push((100.0, 200.0));
        cfg.blackouts.push((200.0, 250.0));
        assert_eq!(blackout_delay(&cfg, 150.0), 100.0);
        assert_eq!(blackout_delay(&cfg, 99.0), 0.0);
        assert_eq!(blackout_delay(&cfg, 250.0), 0.0);
        assert_eq!(blackout_delay(&cfg, 210.0), 40.0);
    }

    #[test]
    fn storm_stretch_is_piecewise_and_bounded() {
        let mut cfg = FaultConfig::none(0);
        cfg.storms.push(LoadStorm {
            machine: 0,
            start: 100.0,
            duration: 50.0,
            availability_factor: 0.4,
        });
        // Entirely outside the storm: no stretch.
        assert_eq!(storm_stretched_secs(&cfg, 4, 200.0, 30.0), 30.0);
        // One machine of four at 0.4: capacity 3.4/4 = 0.85 inside the
        // window. A 17 s run fully inside stretches to 20 s.
        let inside = storm_stretched_secs(&cfg, 4, 100.0, 17.0);
        assert!((inside - 20.0).abs() < 1e-9, "{inside}");
        // A run crossing the window's end finishes the tail at rate 1.
        let crossing = storm_stretched_secs(&cfg, 4, 100.0, 60.0);
        // 50 s window delivers 42.5 s of work; remaining 17.5 at rate 1.
        assert!((crossing - 67.5).abs() < 1e-9, "{crossing}");
        // Single machine: full 1/0.4 stretch inside the window.
        let solo = storm_stretched_secs(&cfg, 1, 100.0, 10.0);
        assert!((solo - 25.0).abs() < 1e-9, "{solo}");
    }

    #[test]
    fn widening_grows_with_perturbation_and_is_capped() {
        let healthy = FaultConfig::none(0);
        assert_eq!(spread_widening(&healthy), 1.0);
        let light = FaultConfig::with_intensity(0, 0.5);
        let heavy = FaultConfig::with_intensity(0, 1.0);
        assert!(spread_widening(&light) > 1.0);
        assert!(spread_widening(&heavy) > spread_widening(&light));
        let mut saturated = FaultConfig::none(0);
        saturated.dropout = 1.0;
        saturated.corrupt = 1.0;
        assert!(spread_widening(&saturated) <= 1.0 / (1.0 - MAX_WIDENING_LOSS).sqrt() + 1e-12);
    }

    #[test]
    fn checkpoint_overhead_matches_the_anchor() {
        // The anchor configuration reproduces its own overhead.
        let f = checkpoint_overhead_fraction(CheckpointPolicy::every(240), 480);
        assert!((f - ANCHOR_OVERHEAD).abs() < 1e-12);
        assert_eq!(
            checkpoint_overhead_fraction(CheckpointPolicy::disabled(), 480),
            0.0
        );
        // Denser cadence costs proportionally more.
        let dense = checkpoint_overhead_fraction(CheckpointPolicy::every(4), 20);
        assert!(dense > f);
    }

    #[test]
    fn zero_intensity_terms_are_the_exact_identity() {
        let model = FaultModel::for_intensity(0.0, 50, 4).unwrap();
        let terms = model.terms(120.0, 500.0);
        assert!(terms.is_none());
        let v = StochasticValue::new(120.0, 6.0);
        let d = degrade(v, &terms);
        assert_eq!(d.mean().to_bits(), v.mean().to_bits());
        assert_eq!(d.half_width().to_bits(), v.half_width().to_bits());
    }

    #[test]
    fn terms_are_deterministic_and_monotone_in_intensity() {
        let mut last = DegradationTerms::none();
        for i in [0.25, 0.5, 0.75, 1.0] {
            let model = FaultModel::for_intensity(i, 50, 4).unwrap();
            let a = model.terms(120.0, 500.0);
            let b = model.terms(120.0, 500.0);
            assert_eq!(a.slowdown.to_bits(), b.slowdown.to_bits());
            assert_eq!(a.delay_secs.to_bits(), b.delay_secs.to_bits());
            assert_eq!(a.widening.to_bits(), b.widening.to_bits());
            assert!(a.slowdown >= last.slowdown, "{i}: {a:?} vs {last:?}");
            assert!(a.delay_secs > last.delay_secs, "{i}: {a:?} vs {last:?}");
            assert!(a.widening > last.widening, "{i}: {a:?} vs {last:?}");
            last = a;
        }
        // The degraded prediction is strictly worse than healthy.
        assert!(last.slowdown > 1.0);
    }

    #[test]
    fn bad_intensities_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, -0.5, 1.5] {
            assert!(FaultModel::for_intensity(bad, 50, 4).is_err(), "{bad}");
        }
    }
}
