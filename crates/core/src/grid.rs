//! Deterministic sharded simulation of many SOR tenants on a
//! [`GridPlatform`].
//!
//! This is the throughput layer of the 1000×-scale path: hundreds of
//! concurrent tenants, each a distributed SOR job on a block of grid
//! machines, processed by per-shard [`EventQueue`]s fanned over the work
//! pool and merged index-ordered.
//!
//! Determinism discipline (the same one as `monte_carlo_par`): the shard
//! count is **part of the configuration**, not the thread count. Tenant
//! `t` belongs to shard `t % shards`; a shard owns a contiguous machine
//! range and an arrival stream derived purely from `(seed, shard)`.
//! Every shard's computation is a pure function of its inputs, so
//! results — and the order-sensitive [`GridSimResult::digest`] — are
//! bit-identical at 1, 2, 4, or 8 pool threads.

use prodpred_simgrid::faults::{mix, unit};
use prodpred_simgrid::grid::GridPlatform;
use prodpred_simgrid::EventQueue;
use prodpred_sor::{partition_equal, simulate_with, DistSorConfig};
use serde::{Deserialize, Serialize};

/// The job every tenant runs: one distributed SOR solve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Grid dimension `N` (the problem is `N × N`).
    pub n: usize,
    /// Red+black iterations.
    pub iterations: usize,
    /// Machines per tenant job.
    pub procs: usize,
}

/// Configuration of one sharded grid simulation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GridSimConfig {
    /// Number of tenant jobs.
    pub tenants: usize,
    /// Number of shards — part of the *configuration*: changing it changes
    /// the (valid) realization, changing the thread count does not.
    pub shards: usize,
    /// The job every tenant runs.
    pub tenant: TenantSpec,
    /// Master seed for arrival streams and machine-block placement.
    pub seed: u64,
    /// Mean inter-arrival gap within a shard, seconds (exponential).
    pub mean_arrival_gap: f64,
}

/// Outcome of a sharded grid simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridSimResult {
    /// Arrival time of each tenant, indexed by tenant.
    pub tenant_start: Vec<f64>,
    /// Wall-clock duration of each tenant's job, indexed by tenant.
    pub tenant_secs: Vec<f64>,
    /// Simulation events processed: queue pops plus per-phase compute and
    /// transfer integrations — the numerator of the bench's events/s.
    pub events: u64,
    /// Latest tenant finish time.
    pub makespan: f64,
    /// Peak number of concurrently running tenants across the whole grid.
    pub peak_concurrency: usize,
    /// Order-sensitive digest of every tenant's `(start, secs)` bits —
    /// two runs agree on this iff they agree bit-for-bit.
    pub digest: u64,
}

/// What one shard reports back before the index-ordered merge.
struct ShardOut {
    /// Global tenant indices this shard owns, ascending.
    tenants: Vec<usize>,
    start: Vec<f64>,
    secs: Vec<f64>,
    events: u64,
}

/// Per-shard event payloads.
enum Ev {
    /// Local tenant index arrives.
    Arrive(usize),
    /// A tenant completes — popping it advances the clock and the event
    /// count; the result was recorded at arrival.
    Complete,
}

/// Runs `cfg.tenants` SOR jobs on `grid`, sharded `cfg.shards` ways and
/// fanned over `threads` pool workers (0 = auto). Bit-identical at any
/// thread count; see the module docs for the argument.
///
/// # Panics
///
/// Panics if there are no tenants or shards, the tenant job is degenerate
/// (`n < 3`, zero iterations or procs), the arrival gap is not positive,
/// or any shard's machine range is smaller than `tenant.procs`.
pub fn simulate_grid_sharded(
    grid: &GridPlatform,
    cfg: &GridSimConfig,
    threads: usize,
) -> GridSimResult {
    assert!(cfg.tenants > 0, "need at least one tenant");
    assert!(cfg.shards > 0, "need at least one shard");
    assert!(cfg.tenant.n >= 3, "SOR grid needs interior rows");
    assert!(cfg.tenant.iterations > 0, "tenant needs iterations");
    assert!(cfg.tenant.procs > 0, "tenant needs machines");
    assert!(cfg.mean_arrival_gap > 0.0, "arrival gap must be positive");
    let machines = grid.len();
    for s in 0..cfg.shards {
        let span = (s + 1) * machines / cfg.shards - s * machines / cfg.shards;
        assert!(
            span >= cfg.tenant.procs,
            "shard {s} has {span} machines, tenant needs {}",
            cfg.tenant.procs
        );
    }

    let shard_ids: Vec<usize> = (0..cfg.shards).collect();
    let outs = prodpred_pool::parallel_map(&shard_ids, threads, |_, &s| run_shard(grid, cfg, s));

    // Index-ordered merge: tenant vectors keyed by global tenant index.
    let mut tenant_start = vec![0.0f64; cfg.tenants];
    let mut tenant_secs = vec![0.0f64; cfg.tenants];
    let mut events = 0u64;
    for out in &outs {
        for (k, &t) in out.tenants.iter().enumerate() {
            tenant_start[t] = out.start[k];
            tenant_secs[t] = out.secs[k];
        }
        events += out.events;
    }

    let makespan = tenant_start
        .iter()
        .zip(&tenant_secs)
        .map(|(s, d)| s + d)
        .fold(f64::NEG_INFINITY, f64::max);

    // Global peak concurrency: sweep all arrival/finish edges in time
    // order, completions first on ties.
    let mut edges: Vec<(f64, i32)> = Vec::with_capacity(2 * cfg.tenants);
    for t in 0..cfg.tenants {
        edges.push((tenant_start[t], 1));
        edges.push((tenant_start[t] + tenant_secs[t], -1));
    }
    edges.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut live = 0i64;
    let mut peak = 0i64;
    for (_, d) in edges {
        live += i64::from(d);
        peak = peak.max(live);
    }

    let mut digest = mix(cfg.seed ^ 0x6772_6964_7369_6d21);
    for t in 0..cfg.tenants {
        digest = mix(digest ^ tenant_start[t].to_bits());
        digest = mix(digest ^ tenant_secs[t].to_bits());
    }

    GridSimResult {
        tenant_start,
        tenant_secs,
        events,
        makespan,
        peak_concurrency: peak.max(0) as usize,
        digest,
    }
}

/// Simulates one shard: a pure function of `(grid, cfg, shard)`.
fn run_shard(grid: &GridPlatform, cfg: &GridSimConfig, shard: usize) -> ShardOut {
    let machines = grid.len();
    let lo = shard * machines / cfg.shards;
    let hi = (shard + 1) * machines / cfg.shards;
    let span = hi - lo;
    let shard_seed = prodpred_pool::derive_seed(cfg.seed, shard as u64);
    let tenants: Vec<usize> = (0..cfg.tenants)
        .filter(|t| t % cfg.shards == shard)
        .collect();
    let strips = partition_equal(cfg.tenant.n - 2, cfg.tenant.procs);

    // Pure arrival stream: the k-th gap depends only on (shard seed, k).
    let mut queue = EventQueue::new();
    let mut t_arr = 0.0f64;
    for k in 0..tenants.len() {
        let u = unit(mix(shard_seed ^ mix(k as u64 + 1)));
        t_arr += -cfg.mean_arrival_gap * (1.0 - u).ln();
        queue.schedule(t_arr, Ev::Arrive(k));
    }

    let mut start = vec![0.0f64; tenants.len()];
    let mut secs = vec![0.0f64; tenants.len()];
    let mut events = 0u64;
    while let Some((now, ev)) = queue.pop() {
        events += 1;
        match ev {
            Ev::Arrive(k) => {
                // Machine block: contiguous `procs` machines inside the
                // shard's range, placed purely from (shard seed, k).
                let slots = span - cfg.tenant.procs + 1;
                let base = lo
                    + (mix(shard_seed ^ 0x626c_6f63_6b21 ^ mix(k as u64 + 1)) % slots as u64)
                        as usize;
                // Both closures tally into one counter; `Cell` lets the
                // borrow checker see them as shared captures.
                let work_events = std::cell::Cell::new(0u64);
                let r = simulate_with(
                    &strips,
                    DistSorConfig::new(cfg.tenant.n, cfg.tenant.iterations, now),
                    |i, strip, clock| {
                        work_events.set(work_events.get() + 1);
                        let elems = strip.elements(cfg.tenant.n) as f64 / 2.0;
                        grid.compute_secs(base + i, elems, clock)
                    },
                    |bytes, t| {
                        work_events.set(work_events.get() + 1);
                        grid.transfer_secs(bytes, t)
                    },
                );
                events += work_events.get();
                start[k] = now;
                secs[k] = r.total_secs;
                queue.schedule(now + r.total_secs, Ev::Complete);
            }
            Ev::Complete => {}
        }
    }

    ShardOut {
        tenants,
        start,
        secs,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (GridPlatform, GridSimConfig) {
        let grid = GridPlatform::production(64, 5, 600.0, 1);
        let cfg = GridSimConfig {
            tenants: 24,
            shards: 4,
            tenant: TenantSpec {
                n: 120,
                iterations: 4,
                procs: 3,
            },
            seed: 99,
            mean_arrival_gap: 10.0,
        };
        (grid, cfg)
    }

    #[test]
    fn sharded_simulation_is_bit_identical_across_thread_counts() {
        let (grid, cfg) = small();
        let one = simulate_grid_sharded(&grid, &cfg, 1);
        for threads in [2usize, 4, 8] {
            let many = simulate_grid_sharded(&grid, &cfg, threads);
            assert_eq!(one.digest, many.digest, "{threads} threads");
            assert_eq!(one.tenant_secs, many.tenant_secs);
            assert_eq!(one.tenant_start, many.tenant_start);
            assert_eq!(one.events, many.events);
            assert_eq!(one.peak_concurrency, many.peak_concurrency);
        }
    }

    #[test]
    fn every_tenant_runs_for_positive_time() {
        let (grid, cfg) = small();
        let r = simulate_grid_sharded(&grid, &cfg, 0);
        assert_eq!(r.tenant_secs.len(), 24);
        for (t, &d) in r.tenant_secs.iter().enumerate() {
            assert!(d > 0.0, "tenant {t} ran for {d}");
        }
        assert!(r.events > 24, "events {}", r.events);
        assert!(r.peak_concurrency >= 1);
        let slowest = r
            .tenant_start
            .iter()
            .zip(&r.tenant_secs)
            .map(|(s, d)| s + d)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(r.makespan, slowest);
    }

    #[test]
    fn shard_count_is_part_of_the_configuration() {
        // Different shard counts give different (both valid) realizations:
        // the digest is honest about what it pins.
        let (grid, cfg) = small();
        let mut cfg8 = cfg;
        cfg8.shards = 8;
        let a = simulate_grid_sharded(&grid, &cfg, 1);
        let b = simulate_grid_sharded(&grid, &cfg8, 1);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn seeds_change_the_realization() {
        let (grid, cfg) = small();
        let mut cfg2 = cfg;
        cfg2.seed = 100;
        let a = simulate_grid_sharded(&grid, &cfg, 1);
        let b = simulate_grid_sharded(&grid, &cfg2, 1);
        assert_ne!(a.digest, b.digest);
        assert_ne!(a.tenant_start, b.tenant_start);
    }

    #[test]
    #[should_panic(expected = "shard 0 has")]
    fn rejects_shards_smaller_than_a_tenant_job() {
        let grid = GridPlatform::production(16, 1, 300.0, 1);
        let cfg = GridSimConfig {
            tenants: 4,
            shards: 8,
            tenant: TenantSpec {
                n: 50,
                iterations: 2,
                procs: 4,
            },
            seed: 1,
            mean_arrival_gap: 5.0,
        };
        simulate_grid_sharded(&grid, &cfg, 1);
    }
}
