//! # prodpred-core
//!
//! Stochastic performance prediction in production environments — the
//! paper's end-to-end system, assembled from the substrate crates:
//!
//! * [`predictor`] — NWS measurements → stochastic parameters →
//!   structural SOR model → stochastic execution-time predictions, with
//!   the conventional point prediction as the baseline,
//! * [`scheduler`] — the variance-aware scheduling strategies of the
//!   paper's Section 1.2 (risk-averse vs. optimistic allocation, weighted
//!   strip decomposition),
//! * [`experiment`] — the Section-3 experiment harness: the dedicated
//!   2%-validation, the Platform-1 single-mode sweep (Figures 8–9), and
//!   the Platform-2 bursty repetition study (Figures 12–17),
//! * [`supervisor`] — bounded deterministic retry, per-resource circuit
//!   breakers, and checkpoint-resuming supervised SOR solves,
//! * [`faultmodel`] — fault-aware degradation terms for the structural
//!   model: expected retries/backoff, checkpoint overhead, blackout
//!   ride-through, storm stretch, and sensor spread widening, all pure
//!   functions of the fault configuration,
//! * [`report`] — text rendering of every table and figure,
//! * [`sweep`] — deterministic parallel fan-out of independent
//!   experiment replications (seeds, sizes, configurations) over the
//!   [`prodpred_pool`] work pool.
//!
//! ## Quickstart
//!
//! ```
//! use prodpred_core::experiment::{platform1_experiment, dedicated_check};
//!
//! // Dedicated validation: structural model within 2% of execution.
//! let checks = dedicated_check(&[600], 10);
//! assert!(checks[0].rel_error < 0.02);
//!
//! // Production: stochastic predictions bound the observed times.
//! let series = platform1_experiment(7, &[800, 1000]);
//! let report = series.accuracy().unwrap();
//! assert!(report.coverage > 0.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Public-facing code returns typed errors instead of unwrapping; tests
// may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod advisor;
pub mod ep;
pub mod experiment;
pub mod faultmodel;
pub mod grid;
pub mod predictor;
pub mod report;
pub mod scheduler;
pub mod supervisor;
pub mod sweep;

pub use advisor::{deadline_report, service_range, DeadlineReport, PredictionQuality};
pub use ep::{ep_policy_study, predict_ep, simulate_ep, EpJob, EpRun, EpStudyRow};
pub use faultmodel::{
    blackout_delay, checkpoint_overhead_fraction, kill_distribution, predict_campaign,
    spread_widening, storm_stretched_secs, CampaignPrediction, FaultModel,
};
pub use grid::{simulate_grid_sharded, GridSimConfig, GridSimResult, TenantSpec};

pub use experiment::{
    dedicated_check, platform1_experiment, platform1_experiment_with_faults, platform2_experiment,
    platform2_experiment_supervised, platform2_experiment_with_faults, run_series,
    run_series_faulted, run_series_supervised, DedicatedCheck, DegradationStats, ExperimentConfig,
    ExperimentSeries, FaultedSeries, RunRecord, SupervisedSeries,
};
pub use predictor::{
    predict_dedicated, LoadSource, LoadView, Prediction, PredictorConfig, PredictorError,
    SorPredictor,
};
pub use scheduler::{
    allocate_units, decompose, planned_completion, AllocationPolicy, DecompositionPolicy,
};
pub use supervisor::{
    solve_blocks_supervised, solve_strips_supervised, BreakerState, CircuitBreaker, RecoveryStats,
    RetryPolicy, SolveRecovery, Supervisor,
};
pub use sweep::{
    platform1_fault_sweep, platform1_seed_sweep, platform2_fault_sweep, platform2_seed_sweep,
    sweep_accuracy, FaultStudyRow, SweepSummary,
};
