//! The prediction pipeline: NWS measurements → stochastic parameters →
//! structural model → stochastic execution-time prediction.
//!
//! This is the end-to-end methodology of the paper's Section 3: "we use a
//! stochastic value to represent CPU load, a parameter to the application
//! structural performance model", with the load (and its variance)
//! supplied by the Network Weather Service at run time.

use prodpred_nws::{ForecastSnapshot, NwsService};
use prodpred_simgrid::Platform;
use prodpred_sor::Strip;
use prodpred_stochastic::{Dependence, MaxStrategy, StochasticValue};
use prodpred_structural::{
    Param, PhaseBreakdown, ProcessorInputs, PtToPtModel, SorModelInputs, SorStructuralModel,
};
use serde::{Deserialize, Serialize};

/// Where the load stochastic values come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadSource {
    /// The NWS's instantaneous stochastic value (forecast ± spread) — the
    /// paper's Section-3 methodology.
    Instantaneous,
    /// Run-horizon-scaled values (`NwsService::cpu_stochastic_for_horizon`
    /// at the run's own estimated duration, found by fixed point) — the
    /// Section-2.1.2 multi-modal-averaging idea made quantitative.
    RunHorizon,
    /// The paper's literal Section-2.1.2 prescription: the multi-modal
    /// weighted average `sum_i P_i (M_i ± SD_i)` over the detected modes
    /// of the load history.
    ModalAverage,
}

/// Predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Red+black iterations the application will run.
    pub iterations: usize,
    /// Strategy for the per-phase `Max` over processors.
    pub max_strategy: MaxStrategy,
    /// Dependence assumption between phase terms (shared machines and
    /// segment make `Related` the faithful default).
    pub phase_dependence: Dependence,
    /// Cap on the load's relative half-width fed to the model. Mode
    /// switches make raw window variance explode; the paper similarly
    /// summarizes per-mode. `None` feeds the NWS value through untouched.
    pub max_load_rel_width: Option<f64>,
    /// Load-value source.
    pub load_source: LoadSource,
    /// Draw instantaneous values through the NWS's fault-aware query path
    /// ([`NwsService::cpu_query`]): spreads widen with measurement
    /// staleness, and the forecast → window-stats → last-known fallback
    /// chain keeps predictions flowing through sensor dropout and
    /// blackouts. Off by default — the paper's healthy-substrate
    /// methodology. Applies to [`LoadSource::Instantaneous`] and to the
    /// bandwidth parameter; the horizon/modal sources keep their own
    /// estimators.
    pub staleness_aware: bool,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            iterations: 50,
            max_strategy: MaxStrategy::ByMean,
            phase_dependence: Dependence::Related,
            max_load_rel_width: None,
            load_source: LoadSource::Instantaneous,
            staleness_aware: false,
        }
    }
}

/// Typed failure of the prediction pipeline's fallible entry points —
/// what [`SorPredictor::try_new`] and [`SorPredictor::try_predict`]
/// return instead of panicking or collapsing every cause into `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorError {
    /// The NWS monitors a different machine count than the platform has.
    PlatformMismatch {
        /// Machines monitored by the NWS.
        nws: usize,
        /// Machines in the platform.
        platform: usize,
    },
    /// The decomposition names more strips than the platform has
    /// machines.
    TooManyStrips {
        /// Strips in the decomposition.
        strips: usize,
        /// Machines in the platform.
        machines: usize,
    },
    /// A required sensor had no usable data (its history is empty — a
    /// blackout from attach, or an outage outlasting retention).
    NoData {
        /// The machine whose load could not be obtained, or `None` for
        /// the shared network-bandwidth sensor.
        machine: Option<usize>,
    },
}

impl std::fmt::Display for PredictorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::PlatformMismatch { nws, platform } => {
                write!(f, "NWS monitors {nws} machines, platform has {platform}")
            }
            Self::TooManyStrips { strips, machines } => {
                write!(f, "{strips} strips over {machines} machines")
            }
            Self::NoData { machine: Some(i) } => write!(f, "no load data for machine {i}"),
            Self::NoData { machine: None } => write!(f, "no bandwidth data for the network"),
        }
    }
}

impl std::error::Error for PredictorError {}

/// A source of stochastic load and bandwidth values for the prediction
/// pipeline — the seam that lets one [`SorPredictor`] implementation run
/// against either the **live** [`NwsService`] (sensor locks, forecaster
/// tournament per query) or an **immutable** [`ForecastSnapshot`]
/// (epoch-published, lock-free, tournament already paid at publish).
///
/// Every method mirrors the corresponding `NwsService` query; the
/// snapshot implementation is pinned bit-identical to the live one, so a
/// prediction computed from a snapshot equals the prediction the live
/// service would have issued at the capture instant.
pub trait LoadView {
    /// Number of monitored machines.
    fn n_machines(&self) -> usize;
    /// Instantaneous stochastic CPU availability (the silent forecast
    /// path — [`NwsService::cpu_stochastic`]).
    fn cpu_stochastic(&self, i: usize) -> Option<StochasticValue>;
    /// Fault-aware instantaneous value ([`NwsService::cpu_query`]):
    /// staleness-widened, falling down the forecast → window-stats →
    /// last-known chain.
    fn cpu_query_value(&self, i: usize) -> Option<StochasticValue>;
    /// Multi-modal weighted average ([`NwsService::cpu_modal_stochastic`]).
    fn cpu_modal_stochastic(&self, i: usize) -> Option<StochasticValue>;
    /// Load averaged over a run of `horizon_secs`
    /// ([`NwsService::cpu_stochastic_for_horizon`]).
    fn cpu_stochastic_for_horizon(&self, i: usize, horizon_secs: f64) -> Option<StochasticValue>;
    /// Available-bandwidth fraction, silent path
    /// ([`NwsService::bandwidth_fraction_stochastic`]).
    fn bandwidth_fraction(&self) -> Option<StochasticValue>;
    /// Available-bandwidth fraction, fault-aware path
    /// ([`NwsService::bandwidth_fraction_query`]).
    fn bandwidth_fraction_query_value(&self) -> Option<StochasticValue>;
}

impl LoadView for NwsService {
    fn n_machines(&self) -> usize {
        NwsService::n_machines(self)
    }
    fn cpu_stochastic(&self, i: usize) -> Option<StochasticValue> {
        NwsService::cpu_stochastic(self, i)
    }
    fn cpu_query_value(&self, i: usize) -> Option<StochasticValue> {
        self.cpu_query(i).ok().map(|q| q.value)
    }
    fn cpu_modal_stochastic(&self, i: usize) -> Option<StochasticValue> {
        NwsService::cpu_modal_stochastic(self, i)
    }
    fn cpu_stochastic_for_horizon(&self, i: usize, horizon_secs: f64) -> Option<StochasticValue> {
        NwsService::cpu_stochastic_for_horizon(self, i, horizon_secs)
    }
    fn bandwidth_fraction(&self) -> Option<StochasticValue> {
        self.bandwidth_fraction_stochastic()
    }
    fn bandwidth_fraction_query_value(&self) -> Option<StochasticValue> {
        self.bandwidth_fraction_query().ok().map(|q| q.value)
    }
}

impl LoadView for ForecastSnapshot {
    fn n_machines(&self) -> usize {
        ForecastSnapshot::n_machines(self)
    }
    fn cpu_stochastic(&self, i: usize) -> Option<StochasticValue> {
        ForecastSnapshot::cpu_stochastic(self, i)
    }
    fn cpu_query_value(&self, i: usize) -> Option<StochasticValue> {
        self.machines[i].query.map(|q| q.value)
    }
    fn cpu_modal_stochastic(&self, i: usize) -> Option<StochasticValue> {
        ForecastSnapshot::cpu_modal_stochastic(self, i)
    }
    fn cpu_stochastic_for_horizon(&self, i: usize, horizon_secs: f64) -> Option<StochasticValue> {
        ForecastSnapshot::cpu_stochastic_for_horizon(self, i, horizon_secs)
    }
    fn bandwidth_fraction(&self) -> Option<StochasticValue> {
        self.bandwidth_fraction_stochastic()
    }
    fn bandwidth_fraction_query_value(&self) -> Option<StochasticValue> {
        self.bandwidth_query.map(|q| q.value)
    }
}

/// A prediction issued before a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prediction {
    /// The stochastic execution-time prediction.
    pub stochastic: StochasticValue,
    /// The conventional point prediction (all parameters at their means).
    pub point: f64,
    /// Per-phase maxima for diagnosis.
    pub breakdown: PhaseBreakdown,
    /// The per-processor load values fed to the model.
    pub loads: Vec<StochasticValue>,
}

/// Predicts SOR execution times on a platform from a [`LoadView`]: the
/// live NWS (the default) or an epoch-published [`ForecastSnapshot`].
pub struct SorPredictor<'a, V: LoadView = NwsService> {
    platform: &'a Platform,
    nws: &'a V,
    config: PredictorConfig,
}

impl<'a, V: LoadView> SorPredictor<'a, V> {
    /// Creates a predictor over a platform and its load view (live NWS
    /// or frozen snapshot).
    ///
    /// # Panics
    ///
    /// Panics if the view monitors a different platform — use
    /// [`SorPredictor::try_new`] to handle the mismatch as a typed error.
    pub fn new(platform: &'a Platform, nws: &'a V, config: PredictorConfig) -> Self {
        Self::try_new(platform, nws, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`SorPredictor::new`]: a platform/view mismatch surfaces
    /// as [`PredictorError::PlatformMismatch`] instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::PlatformMismatch`] when the view monitors
    /// a different platform than `platform`.
    pub fn try_new(
        platform: &'a Platform,
        nws: &'a V,
        config: PredictorConfig,
    ) -> Result<Self, PredictorError> {
        if nws.n_machines() != platform.machines.len() {
            return Err(PredictorError::PlatformMismatch {
                nws: nws.n_machines(),
                platform: platform.machines.len(),
            });
        }
        Ok(Self {
            platform,
            nws,
            config,
        })
    }

    /// The configuration.
    pub fn config(&self) -> PredictorConfig {
        self.config
    }

    fn build_inputs(
        &self,
        n: usize,
        strips: &[Strip],
        get_load: impl Fn(usize) -> Option<StochasticValue>,
    ) -> Result<SorModelInputs, PredictorError> {
        if strips.len() > self.platform.machines.len() {
            return Err(PredictorError::TooManyStrips {
                strips: strips.len(),
                machines: self.platform.machines.len(),
            });
        }
        let mut procs = Vec::with_capacity(strips.len());
        for (i, strip) in strips.iter().enumerate() {
            let machine = &self.platform.machines[i];
            let mut load = get_load(i).ok_or(PredictorError::NoData { machine: Some(i) })?;
            if let Some(cap) = self.config.max_load_rel_width {
                let rel = load.half_width() / load.mean().abs().max(1e-9);
                if rel > cap {
                    load = StochasticValue::new(load.mean(), load.mean().abs() * cap);
                }
            }
            procs.push(ProcessorInputs {
                elements: strip.elements(n) as f64,
                bm_secs_per_elt: Param::point(machine.spec.class.benchmark_secs_per_element()),
                load: Param::stochastic(load),
            });
        }
        let bw_avail = if self.config.staleness_aware {
            self.nws.bandwidth_fraction_query_value()
        } else {
            self.nws.bandwidth_fraction()
        }
        .ok_or(PredictorError::NoData { machine: None })?;
        Ok(SorModelInputs {
            n,
            iterations: self.config.iterations,
            procs,
            network: PtToPtModel {
                size_elt: prodpred_sor::distsim::BYTES_PER_ELEMENT,
                ded_bw: Param::point(self.platform.network.spec.dedicated_bw),
                bw_avail: Param::stochastic(bw_avail),
                latency: self.platform.network.spec.latency,
                dependence: Dependence::Related,
            },
            max_strategy: self.config.max_strategy,
            phase_dependence: self.config.phase_dependence,
        })
    }

    /// The instantaneous load value for machine `i`, through the
    /// fault-aware query path when the config asks for it.
    fn instantaneous_load(&self, i: usize) -> Option<StochasticValue> {
        if self.config.staleness_aware {
            self.nws.cpu_query_value(i)
        } else {
            self.nws.cpu_stochastic(i)
        }
    }

    /// Builds the structural-model inputs for a run of an `n x n` grid
    /// over `strips`, using current (instantaneous) NWS stochastic values.
    ///
    /// Returns `None` until the NWS has data for every machine in use.
    pub fn model_inputs(&self, n: usize, strips: &[Strip]) -> Option<SorModelInputs> {
        self.build_inputs(n, strips, |i| self.instantaneous_load(i))
            .ok()
    }

    fn prediction_from(&self, inputs: SorModelInputs) -> Prediction {
        let loads = inputs
            .procs
            .iter()
            .map(|p| p.load.value())
            .collect::<Vec<_>>();
        let model = SorStructuralModel::new(inputs);
        Prediction {
            stochastic: model.predict(),
            point: model.predict_point(),
            breakdown: model.phase_breakdown(),
            loads,
        }
    }

    /// Issues a prediction for a run of an `n x n` grid over `strips`.
    ///
    /// With [`LoadSource::RunHorizon`], the load values are scaled to the
    /// run's own duration by fixed point: an instantaneous pass estimates
    /// the duration, a second pass re-reads each machine's load averaged
    /// over that horizon.
    ///
    /// Returns `None` until the NWS has data for every machine in use —
    /// [`SorPredictor::try_predict`] reports *which* sensor is dry.
    pub fn predict(&self, n: usize, strips: &[Strip]) -> Option<Prediction> {
        self.try_predict(n, strips).ok()
    }

    /// Fallible [`SorPredictor::predict`]: every failure cause — too many
    /// strips, a dry CPU sensor, a dry bandwidth sensor — comes back as a
    /// distinct [`PredictorError`] so supervisors can decide whether a
    /// retry can possibly help.
    ///
    /// # Errors
    ///
    /// Returns a [`PredictorError`] when more strips than machines are
    /// requested or an NWS sensor cannot produce an estimate.
    pub fn try_predict(&self, n: usize, strips: &[Strip]) -> Result<Prediction, PredictorError> {
        let inputs = self.build_inputs(n, strips, |i| self.instantaneous_load(i))?;
        let instantaneous = self.prediction_from(inputs);
        match self.config.load_source {
            LoadSource::Instantaneous => Ok(instantaneous),
            LoadSource::ModalAverage => {
                let inputs = self.build_inputs(n, strips, |i| self.nws.cpu_modal_stochastic(i))?;
                Ok(self.prediction_from(inputs))
            }
            LoadSource::RunHorizon => {
                let mut horizon = instantaneous.stochastic.mean().max(1.0);
                let mut prediction = instantaneous;
                // Two refinement passes are ample: duration enters only
                // through the slowly varying averaging factor.
                for _ in 0..2 {
                    let inputs = self.build_inputs(n, strips, |i| {
                        self.nws.cpu_stochastic_for_horizon(i, horizon)
                    })?;
                    prediction = self.prediction_from(inputs);
                    horizon = prediction.stochastic.mean().max(1.0);
                }
                Ok(prediction)
            }
        }
    }
}

/// A dedicated-setting prediction with point parameters — the baseline
/// whose accuracy the paper quotes as "within 2%" of dedicated runs.
pub fn predict_dedicated(
    platform: &Platform,
    n: usize,
    strips: &[Strip],
    iterations: usize,
) -> StochasticValue {
    let procs = strips
        .iter()
        .enumerate()
        .map(|(i, s)| ProcessorInputs {
            elements: s.elements(n) as f64,
            bm_secs_per_elt: Param::point(
                platform.machines[i].spec.class.benchmark_secs_per_element(),
            ),
            load: Param::point(1.0),
        })
        .collect();
    let model = SorStructuralModel::new(SorModelInputs {
        n,
        iterations,
        procs,
        network: PtToPtModel {
            size_elt: prodpred_sor::distsim::BYTES_PER_ELEMENT,
            ded_bw: Param::point(platform.network.spec.dedicated_bw),
            bw_avail: Param::point(0.58),
            latency: platform.network.spec.latency,
            dependence: Dependence::Related,
        },
        max_strategy: MaxStrategy::ByMean,
        phase_dependence: Dependence::Related,
    });
    model.predict()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prodpred_nws::NwsConfig;
    use prodpred_simgrid::{MachineClass, Platform};
    use prodpred_sor::partition_equal;

    #[test]
    fn needs_nws_data() {
        let p = Platform::platform1(1, 600.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        let pred = SorPredictor::new(&p, &nws, PredictorConfig::default());
        let strips = partition_equal(998, 4);
        assert!(pred.predict(1000, &strips).is_none());
    }

    #[test]
    fn prediction_reflects_center_mode_load() {
        let p = Platform::platform1(2, 3600.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        nws.advance_to(&p, 600.0);
        let pred = SorPredictor::new(&p, &nws, PredictorConfig::default());
        let strips = partition_equal(998, 4);
        let out = pred.predict(1000, &strips).unwrap();
        assert!(!out.stochastic.is_point());
        // Point prediction sits at the stochastic mean.
        assert!((out.point - out.stochastic.mean()).abs() / out.point < 1e-6);
        // Sparc-2 at ~0.48 dominates: per phase 998*998/4/2*2e-6/0.48
        // = 0.52 s; 50 iters * 2 phases ~ 52 s plus ~5 s of comm.
        assert!(
            out.stochastic.mean() > 45.0 && out.stochastic.mean() < 80.0,
            "{}",
            out.stochastic
        );
        assert_eq!(out.loads.len(), 4);
    }

    #[test]
    fn dedicated_prediction_is_point_and_smaller() {
        let prod = Platform::platform1(3, 3600.0);
        let nws = NwsService::attach(&prod, NwsConfig::default());
        nws.advance_to(&prod, 600.0);
        let strips = partition_equal(998, 4);
        let stochastic = SorPredictor::new(&prod, &nws, PredictorConfig::default())
            .predict(1000, &strips)
            .unwrap();
        let ded = Platform::dedicated(
            &[
                MachineClass::Sparc2,
                MachineClass::Sparc2,
                MachineClass::Sparc5,
                MachineClass::Sparc10,
            ],
            3600.0,
        );
        let ded_pred = predict_dedicated(&ded, 1000, &strips, 50);
        assert!(ded_pred.is_point());
        assert!(ded_pred.mean() < stochastic.stochastic.mean());
    }

    #[test]
    fn load_width_cap_applies() {
        let p = Platform::platform2(4, 3600.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        nws.advance_to(&p, 1200.0);
        let strips = partition_equal(1598, 4);
        let uncapped = SorPredictor::new(&p, &nws, PredictorConfig::default())
            .predict(1600, &strips)
            .unwrap();
        let capped_cfg = PredictorConfig {
            max_load_rel_width: Some(0.10),
            ..Default::default()
        };
        let capped = SorPredictor::new(&p, &nws, capped_cfg)
            .predict(1600, &strips)
            .unwrap();
        assert!(capped.stochastic.half_width() <= uncapped.stochastic.half_width());
        for l in &capped.loads {
            assert!(l.half_width() / l.mean() <= 0.1 + 1e-9);
        }
    }

    #[test]
    fn staleness_aware_matches_legacy_on_healthy_data() {
        let p = Platform::platform1(6, 3600.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        nws.advance_to(&p, 900.0);
        let strips = partition_equal(998, 4);
        let legacy = SorPredictor::new(&p, &nws, PredictorConfig::default())
            .predict(1000, &strips)
            .unwrap();
        let aware_cfg = PredictorConfig {
            staleness_aware: true,
            ..Default::default()
        };
        let aware = SorPredictor::new(&p, &nws, aware_cfg)
            .predict(1000, &strips)
            .unwrap();
        // With fresh, plentiful data the fault-aware path is the same
        // forecast + spread — bit-identical predictions.
        assert_eq!(
            aware.stochastic.mean().to_bits(),
            legacy.stochastic.mean().to_bits()
        );
        assert_eq!(
            aware.stochastic.half_width().to_bits(),
            legacy.stochastic.half_width().to_bits()
        );
    }

    #[test]
    fn staleness_aware_survives_a_blackout_with_wider_spread() {
        use prodpred_simgrid::faults::{FaultConfig, FaultPlan};
        let p = Platform::platform1(7, 8000.0);
        let mut fault_cfg = FaultConfig::none(7);
        fault_cfg.blackouts.push((1000.0, 2500.0));
        let nws =
            NwsService::attach_with_faults(&p, NwsConfig::default(), FaultPlan::new(fault_cfg));
        nws.advance_to(&p, 995.0);
        let strips = partition_equal(998, 4);
        let cfg = PredictorConfig {
            staleness_aware: true,
            ..Default::default()
        };
        let fresh = SorPredictor::new(&p, &nws, cfg)
            .predict(1000, &strips)
            .unwrap();
        nws.advance_to(&p, 2400.0);
        let stale = SorPredictor::new(&p, &nws, cfg)
            .predict(1000, &strips)
            .unwrap();
        assert!(stale.stochastic.mean().is_finite());
        assert!(
            stale.stochastic.half_width() > fresh.stochastic.half_width() * 3.0,
            "blackout must widen the prediction: fresh {} vs stale {}",
            fresh.stochastic,
            stale.stochastic
        );
    }

    #[test]
    fn typed_errors_name_the_failure() {
        let p = Platform::platform1(9, 600.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        // Mismatched platform: the NWS watches 4 machines, this one has 2.
        let other = Platform::dedicated(&[MachineClass::Sparc2, MachineClass::Sparc5], 600.0);
        assert_eq!(
            SorPredictor::try_new(&other, &nws, PredictorConfig::default()).err(),
            Some(PredictorError::PlatformMismatch {
                nws: 4,
                platform: 2
            })
        );
        let pred = SorPredictor::try_new(&p, &nws, PredictorConfig::default()).unwrap();
        // No polls yet: the first CPU sensor is dry.
        assert_eq!(
            pred.try_predict(1000, &partition_equal(998, 4)).err(),
            Some(PredictorError::NoData { machine: Some(0) })
        );
        // More strips than machines is a structural error, not a panic.
        assert_eq!(
            pred.try_predict(1000, &partition_equal(998, 5)).err(),
            Some(PredictorError::TooManyStrips {
                strips: 5,
                machines: 4
            })
        );
    }

    #[test]
    fn fewer_strips_than_machines_allowed() {
        let p = Platform::platform1(5, 600.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        nws.advance_to(&p, 300.0);
        let pred = SorPredictor::new(&p, &nws, PredictorConfig::default());
        let strips = partition_equal(498, 2);
        assert!(pred.predict(500, &strips).is_some());
    }
}
