//! Plain-text rendering for the figure/table harness: aligned tables and
//! simple series plots, so every paper artifact regenerates as terminal
//! output.

/// Renders an aligned table. `rows` are stringified cells.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {:<w$} |", c, w = w));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    sep.push('\n');
    out.push_str(&sep);
    for r in rows {
        out.push_str(&fmt_row(r.iter().map(String::as_str).collect(), &widths));
    }
    out
}

/// Renders a time series as an ASCII strip chart: one row per point, value
/// marked within `[lo, hi]` scaled to `width` columns.
pub fn render_series(points: &[(f64, f64)], width: usize, label: &str) -> String {
    if points.is_empty() {
        return format!("{label}: (empty)\n");
    }
    let lo = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let hi = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let mut out = format!("{label}  [{lo:.3} .. {hi:.3}]\n");
    for &(t, v) in points {
        let col = ((v - lo) / span * (width.saturating_sub(1)) as f64).round() as usize;
        let mut bar = vec![b' '; width];
        bar[col.min(width - 1)] = b'*';
        out.push_str(&format!(
            "{:>10.1} |{}| {:.4}\n",
            t,
            String::from_utf8(bar).expect("ascii"), // tidy:allow(PP003): the bar buffer is built from ASCII bytes only
            v
        ));
    }
    out
}

/// Renders prediction intervals against actuals: per record, the interval
/// `[lo, hi]`, its mean, and the actual value, with an in/out marker —
/// the textual equivalent of Figures 9/12/14/16.
pub fn render_interval_chart(
    rows: &[(String, f64, f64, f64, f64)], // (label, lo, mean, hi, actual)
    width: usize,
) -> String {
    if rows.is_empty() {
        return String::from("(empty)\n");
    }
    let global_lo = rows
        .iter()
        .map(|r| r.1.min(r.4))
        .fold(f64::INFINITY, f64::min);
    let global_hi = rows
        .iter()
        .map(|r| r.3.max(r.4))
        .fold(f64::NEG_INFINITY, f64::max);
    let span = (global_hi - global_lo).max(1e-12);
    let scale = |v: f64| -> usize {
        (((v - global_lo) / span) * (width.saturating_sub(1)) as f64).round() as usize
    };
    let mut out = format!("scale [{global_lo:.2} .. {global_hi:.2}] seconds\n");
    for (label, lo, mean, hi, actual) in rows {
        let mut bar = vec![b' '; width];
        let (a, m, b, x) = (scale(*lo), scale(*mean), scale(*hi), scale(*actual));
        for cell in bar.iter_mut().take(b.min(width - 1) + 1).skip(a) {
            *cell = b'-';
        }
        bar[a] = b'[';
        bar[b.min(width - 1)] = b']';
        bar[m.min(width - 1)] = b'+';
        let marker = ' ';
        if x < bar.len() {
            bar[x] = b'A';
        }
        let inside = *actual >= *lo && *actual <= *hi;
        out.push_str(&format!(
            "{:>16} |{}|{}{}\n",
            label,
            String::from_utf8(bar).expect("ascii"), // tidy:allow(PP003): the bar buffer is built from ASCII bytes only
            marker,
            if inside { " in" } else { " OUT" }
        ));
    }
    out
}

/// Formats a float with fixed precision — helper for table rows.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("long-name"));
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn series_renders_rows() {
        let s = render_series(&[(0.0, 1.0), (5.0, 3.0), (10.0, 2.0)], 20, "load");
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains('*'));
    }

    #[test]
    fn empty_series() {
        assert!(render_series(&[], 10, "x").contains("empty"));
    }

    #[test]
    fn interval_chart_marks_in_and_out() {
        let rows = vec![
            ("r1".to_string(), 10.0, 12.0, 14.0, 13.0),
            ("r2".to_string(), 10.0, 12.0, 14.0, 20.0),
        ];
        let s = render_interval_chart(&rows, 40);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].ends_with("in"));
        assert!(lines[2].ends_with("OUT"));
        assert!(lines[1].contains('[') && lines[1].contains(']'));
    }

    #[test]
    fn float_helper() {
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
