//! Variance-aware scheduling — the paper's motivating application
//! (Section 1.2, Table 1).
//!
//! "With additional information about the distribution of application
//! behavior, we can develop a sophisticated scheduling strategy tuned to
//! the user's performance metric. If the accuracy of the prediction is a
//! priority ... more work could be assigned to the small variance machine.
//! If there is little penalty for poor predictions, we might
//! optimistically assign a greater portion of the work to the often faster
//! machine."

use prodpred_simgrid::Platform;
use prodpred_sor::{partition_rows, Strip};
use prodpred_stochastic::StochasticValue;
use serde::{Deserialize, Serialize};

/// How to weigh a machine's stochastic unit-work time when allocating.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Balance expected completion times: weight ∝ 1 / mean.
    /// The conventional choice — what a point-valued model would do.
    ByMean,
    /// Risk-averse: weight ∝ 1 / (mean + lambda * sd). Penalizes
    /// high-variance machines; `lambda = 2` plans against the
    /// two-standard-deviation worst case.
    RiskAverse {
        /// Standard deviations of padding.
        lambda: f64,
    },
    /// Optimistic: weight ∝ 1 / max(mean - lambda * sd, floor). Bets on
    /// the machine's good days ("little penalty for poor predictions").
    Optimistic {
        /// Standard deviations of optimism.
        lambda: f64,
    },
}

impl AllocationPolicy {
    /// The effective unit-work time this policy plans with.
    pub fn effective_time(&self, unit: StochasticValue) -> f64 {
        match *self {
            AllocationPolicy::ByMean => unit.mean(),
            AllocationPolicy::RiskAverse { lambda } => unit.mean() + lambda * unit.sd(),
            AllocationPolicy::Optimistic { lambda } => {
                (unit.mean() - lambda * unit.sd()).max(unit.mean() * 0.05)
            }
        }
    }
}

/// Allocates `units` indivisible work units across machines with the given
/// stochastic unit-work times, conserving the total exactly
/// (largest-remainder rounding).
///
/// ```
/// use prodpred_core::{allocate_units, AllocationPolicy};
/// use prodpred_stochastic::StochasticValue;
///
/// // Table 1's production machines: equal means, unequal spreads.
/// let times = [
///     StochasticValue::from_percent(12.0, 5.0),
///     StochasticValue::from_percent(12.0, 30.0),
/// ];
/// assert_eq!(allocate_units(100, &times, AllocationPolicy::ByMean), [50, 50]);
/// let risk = allocate_units(100, &times, AllocationPolicy::RiskAverse { lambda: 2.0 });
/// assert!(risk[0] > risk[1]); // the stable machine gets more
/// ```
///
/// # Panics
///
/// Panics if `times` is empty or any effective time is non-positive.
pub fn allocate_units(units: u64, times: &[StochasticValue], policy: AllocationPolicy) -> Vec<u64> {
    assert!(!times.is_empty(), "need at least one machine");
    let speeds: Vec<f64> = times
        .iter()
        .map(|&t| {
            let eff = policy.effective_time(t);
            assert!(eff > 0.0, "effective unit time must be positive");
            1.0 / eff
        })
        .collect();
    let total_speed: f64 = speeds.iter().sum();
    let mut alloc = vec![0u64; times.len()];
    let mut rema: Vec<(f64, usize)> = Vec::with_capacity(times.len());
    let mut assigned = 0u64;
    for (i, &s) in speeds.iter().enumerate() {
        let exact = units as f64 * s / total_speed;
        let fl = exact.floor() as u64;
        alloc[i] = fl;
        assigned += fl;
        rema.push((exact - fl as f64, i));
    }
    rema.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut left = units - assigned;
    for &(_, i) in rema.iter().cycle() {
        if left == 0 {
            break;
        }
        alloc[i] += 1;
        left -= 1;
    }
    alloc
}

/// The planned completion-time interval for an allocation: per machine,
/// `units_i * (unit time)`, maximized by mean across machines.
pub fn planned_completion(alloc: &[u64], times: &[StochasticValue]) -> StochasticValue {
    assert_eq!(alloc.len(), times.len());
    let per: Vec<StochasticValue> = alloc
        .iter()
        .zip(times)
        .map(|(&u, &t)| t.scale(u as f64))
        .collect();
    prodpred_stochastic::max_of(&per, prodpred_stochastic::MaxStrategy::ByMean)
}

/// Strip-decomposition policies for the SOR application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DecompositionPolicy {
    /// One equal strip per machine.
    Equal,
    /// Strips proportional to dedicated speed (1 / benchmark time) — the
    /// paper's footnote-2 "assign more work to processors with greater
    /// capacity".
    DedicatedSpeed,
    /// Strips proportional to *effective* speed: dedicated speed times a
    /// load estimate (stochastic, combined under the given policy).
    EffectiveSpeed {
        /// How to fold the load's spread into the weight.
        policy: AllocationPolicy,
    },
}

/// Computes strips for an `n x n` grid on `platform` under `policy`,
/// with `loads` being per-machine stochastic availability (ignored by the
/// load-blind policies; must be provided for `EffectiveSpeed`).
pub fn decompose(
    platform: &Platform,
    n: usize,
    policy: DecompositionPolicy,
    loads: Option<&[StochasticValue]>,
) -> Vec<Strip> {
    let p = platform.machines.len();
    let weights: Vec<f64> = match policy {
        DecompositionPolicy::Equal => vec![1.0; p],
        DecompositionPolicy::DedicatedSpeed => platform
            .machines
            .iter()
            .map(|m| 1.0 / m.spec.class.benchmark_secs_per_element())
            .collect(),
        DecompositionPolicy::EffectiveSpeed { policy } => {
            let loads = loads.expect("EffectiveSpeed needs load estimates"); // tidy:allow(PP003): documented API contract of EffectiveSpeed
            assert_eq!(loads.len(), p, "one load per machine");
            platform
                .machines
                .iter()
                .zip(loads)
                .map(|(m, &l)| {
                    let unit = StochasticValue::new(
                        m.spec.class.benchmark_secs_per_element() / l.mean(),
                        m.spec.class.benchmark_secs_per_element() * l.half_width()
                            / (l.mean() * l.mean()),
                    );
                    1.0 / policy.effective_time(unit)
                })
                .collect()
        }
    };
    partition_rows(n - 2, &weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prodpred_simgrid::MachineClass;

    /// The paper's Table-1 production machines: both average 12 s/unit,
    /// A at ± 5%, B at ± 30%.
    fn table1() -> [StochasticValue; 2] {
        [
            StochasticValue::from_percent(12.0, 5.0),
            StochasticValue::from_percent(12.0, 30.0),
        ]
    }

    #[test]
    fn by_mean_splits_equal_means_equally() {
        let alloc = allocate_units(100, &table1(), AllocationPolicy::ByMean);
        assert_eq!(alloc, vec![50, 50]);
    }

    #[test]
    fn risk_averse_prefers_the_stable_machine() {
        let alloc = allocate_units(100, &table1(), AllocationPolicy::RiskAverse { lambda: 2.0 });
        assert!(
            alloc[0] > alloc[1],
            "stable machine should get more: {alloc:?}"
        );
        assert_eq!(alloc[0] + alloc[1], 100);
    }

    #[test]
    fn optimistic_prefers_the_volatile_machine() {
        let alloc = allocate_units(100, &table1(), AllocationPolicy::Optimistic { lambda: 1.0 });
        assert!(
            alloc[1] > alloc[0],
            "volatile machine should get more: {alloc:?}"
        );
        assert_eq!(alloc[0] + alloc[1], 100);
    }

    #[test]
    fn dedicated_table1_ratio_two_to_one() {
        // Dedicated: A = 10 s, B = 5 s -> "machine B should receive twice
        // as much work as machine A".
        let times = [StochasticValue::point(10.0), StochasticValue::point(5.0)];
        let alloc = allocate_units(90, &times, AllocationPolicy::ByMean);
        assert_eq!(alloc, vec![30, 60]);
    }

    #[test]
    fn allocation_conserves_total() {
        let times = [
            StochasticValue::new(7.0, 1.0),
            StochasticValue::new(11.0, 2.0),
            StochasticValue::new(13.0, 0.5),
        ];
        for units in [1u64, 7, 100, 9999] {
            let alloc = allocate_units(units, &times, AllocationPolicy::ByMean);
            assert_eq!(alloc.iter().sum::<u64>(), units);
        }
    }

    #[test]
    fn planned_completion_reflects_width() {
        let times = table1();
        let by_mean = allocate_units(100, &times, AllocationPolicy::ByMean);
        let risk = allocate_units(100, &times, AllocationPolicy::RiskAverse { lambda: 2.0 });
        let c_mean = planned_completion(&by_mean, &times);
        let c_risk = planned_completion(&risk, &times);
        // The risk-averse plan's *upper bound* is lower: shifting work to
        // the stable machine shrinks the worst case.
        assert!(c_risk.hi() < c_mean.hi(), "{} vs {}", c_risk, c_mean);
    }

    #[test]
    fn decompose_dedicated_speed() {
        let p = Platform::dedicated(&[MachineClass::Sparc2, MachineClass::UltraSparc], 10.0);
        let strips = decompose(&p, 100, DecompositionPolicy::DedicatedSpeed, None);
        // UltraSparc is 2.0/0.35 ~ 5.7x faster: gets the lion's share.
        assert!(strips[1].n_rows() > strips[0].n_rows() * 4);
        let total: usize = strips.iter().map(|s| s.n_rows()).sum();
        assert_eq!(total, 98);
    }

    #[test]
    fn decompose_effective_speed_accounts_for_load() {
        let p = Platform::dedicated(&[MachineClass::Sparc10, MachineClass::Sparc10], 10.0);
        let loads = [
            StochasticValue::new(0.9, 0.02),
            StochasticValue::new(0.3, 0.02),
        ];
        let strips = decompose(
            &p,
            100,
            DecompositionPolicy::EffectiveSpeed {
                policy: AllocationPolicy::ByMean,
            },
            Some(&loads),
        );
        // Identical hardware, but the loaded machine gets ~1/3 the rows.
        assert!(strips[0].n_rows() > strips[1].n_rows() * 2);
    }

    #[test]
    fn equal_decomposition() {
        let p = Platform::platform1(1, 10.0);
        let strips = decompose(&p, 102, DecompositionPolicy::Equal, None);
        assert!(strips.iter().all(|s| s.n_rows() == 25));
    }

    #[test]
    #[should_panic]
    fn effective_speed_requires_loads() {
        let p = Platform::platform1(1, 10.0);
        decompose(
            &p,
            100,
            DecompositionPolicy::EffectiveSpeed {
                policy: AllocationPolicy::ByMean,
            },
            None,
        );
    }
}
