//! Supervised retry: bounded, deterministic recovery from transient
//! faults.
//!
//! Three pieces, all driven by the simulated clock (backoff is
//! *accounted*, never slept):
//!
//! * [`RetryPolicy`] — bounded attempts with deterministic exponential
//!   backoff; jitter comes from the SplitMix64 finalizer over
//!   `(seed, attempt)`, so two supervisors with the same seed back off
//!   identically on any thread count.
//! * [`CircuitBreaker`] — per-resource failure isolation: after
//!   `threshold` consecutive query failures the breaker opens and the
//!   predictor is routed straight to its staleness-aware fallback
//!   without touching the failing sensor until a cooldown elapses
//!   (half-open probe, then closed on success).
//! * [`Supervisor`] — composes the two and accumulates
//!   [`RecoveryStats`]; [`solve_strips_supervised`] and
//!   [`solve_blocks_supervised`] apply the same policy to a killed
//!   parallel SOR solve, resuming each retry from the last
//!   [`Checkpoint`](prodpred_sor::Checkpoint) instead of iteration 0.
//!
//! Fault semantics follow [`FaultSchedule`]: the schedule's `k`-th kill
//! applies to attempt `k` only (a consumed death does not re-fire on
//! retry — a transient fault), so a schedule with more kills than the
//! retry budget deterministically exhausts into a typed
//! [`SolveError`] — never a panic.

use prodpred_simgrid::faults::{mix, unit, FaultSchedule};
use prodpred_sor::{
    resume_blocks_from, resume_strips_from, try_solve_blocks_checkpointed,
    try_solve_strips_checkpointed, BlockLayout, CheckpointPolicy, CheckpointStore, ExchangePolicy,
    Grid, SolveError, SolveOptions, SorParams, Strip,
};
use serde::{Deserialize, Serialize};

/// Bounded-retry policy with deterministic exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Backoff before the first retry, in simulated seconds.
    pub base_backoff_secs: f64,
    /// Multiplier applied per retry (exponential backoff).
    pub backoff_factor: f64,
    /// Ceiling on a single backoff, applied before jitter.
    pub max_backoff_secs: f64,
    /// Symmetric jitter as a fraction of the backoff: the wait is scaled
    /// by `1 ± jitter_fraction`, deterministically from `(seed, attempt)`.
    pub jitter_fraction: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff_secs: 30.0,
            backoff_factor: 2.0,
            max_backoff_secs: 600.0,
            jitter_fraction: 0.1,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// No retries at all: fail on the first error.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            ..Default::default()
        }
    }

    /// The backoff charged before retry number `attempt + 1` (so
    /// `attempt` is the index of the attempt that just failed, starting
    /// at 0). Deterministic in `(self.seed, attempt)`.
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        let raw = self.base_backoff_secs * self.backoff_factor.powi(attempt as i32);
        let capped = raw.min(self.max_backoff_secs);
        let u = unit(mix(self.seed ^ mix(u64::from(attempt) + 1)));
        capped * (1.0 + self.jitter_fraction * (2.0 * u - 1.0))
    }
}

/// Where a [`CircuitBreaker`] currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: requests flow through.
    Closed,
    /// Tripped: requests are short-circuited until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe request is allowed through; success
    /// closes the breaker, failure re-opens it immediately.
    HalfOpen,
}

/// Per-resource circuit breaker over the simulated clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown_secs: f64,
    consecutive_failures: u32,
    state: BreakerState,
    open_until: f64,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker that trips after `threshold` consecutive
    /// failures and stays open for `cooldown_secs` of simulated time.
    pub fn new(threshold: u32, cooldown_secs: f64) -> Self {
        assert!(threshold > 0, "a zero-failure threshold never closes");
        Self {
            threshold,
            cooldown_secs,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            open_until: 0.0,
            trips: 0,
        }
    }

    /// Current state (an `Open` breaker reports itself as such until
    /// [`CircuitBreaker::allows`] observes the cooldown's end).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times this breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether a request at simulated time `t` may go through. An open
    /// breaker transitions to half-open once `t` passes its cooldown.
    pub fn allows(&mut self, t: f64) -> bool {
        if self.state == BreakerState::Open {
            if t >= self.open_until {
                self.state = BreakerState::HalfOpen;
            } else {
                return false;
            }
        }
        true
    }

    /// Records a successful request: the breaker closes and the failure
    /// streak resets.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Records a failed request at simulated time `t`. Returns `true`
    /// when this failure trips the breaker open (streak reached the
    /// threshold, or a half-open probe failed).
    pub fn record_failure(&mut self, t: f64) -> bool {
        self.consecutive_failures += 1;
        let tripped =
            self.state == BreakerState::HalfOpen || self.consecutive_failures >= self.threshold;
        if tripped {
            self.state = BreakerState::Open;
            self.open_until = t + self.cooldown_secs;
            self.trips += 1;
        }
        tripped
    }

    /// Forces the breaker open at simulated time `t` regardless of the
    /// failure streak — an external supervisor (e.g. a no-progress
    /// watchdog) declaring the resource unhealthy. Counts as a trip.
    pub fn trip(&mut self, t: f64) {
        self.state = BreakerState::Open;
        self.open_until = t + self.cooldown_secs;
        self.trips += 1;
    }

    /// The simulated time at which an open breaker's cooldown ends
    /// (meaningful only while [`CircuitBreaker::state`] is `Open`).
    pub fn open_until(&self) -> f64 {
        self.open_until
    }
}

/// Recovery accounting across a supervised workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Retries performed (attempts beyond each operation's first).
    pub retries: u64,
    /// Simulated seconds spent backing off before retries.
    pub backoff_secs: f64,
    /// Operations that failed at least once but eventually succeeded.
    pub recovered: u64,
    /// Operations abandoned with the retry budget exhausted.
    pub abandoned: u64,
    /// Iterations *not* recomputed because a retry resumed from a
    /// checkpoint instead of iteration 0, summed over all resumes.
    pub resumed_iterations_saved: u64,
    /// Checkpoints recorded by supervised solves.
    pub checkpoints_taken: u64,
    /// Circuit-breaker trips (closed/half-open → open transitions).
    pub breaker_trips: u64,
    /// Requests short-circuited by an open breaker.
    pub breaker_short_circuits: u64,
}

impl RecoveryStats {
    /// Folds `other` into `self` (sums every counter).
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.retries += other.retries;
        self.backoff_secs += other.backoff_secs;
        self.recovered += other.recovered;
        self.abandoned += other.abandoned;
        self.resumed_iterations_saved += other.resumed_iterations_saved;
        self.checkpoints_taken += other.checkpoints_taken;
        self.breaker_trips += other.breaker_trips;
        self.breaker_short_circuits += other.breaker_short_circuits;
    }
}

/// Supervises retryable operations: applies a [`RetryPolicy`] over the
/// simulated clock, short-circuits per-resource failures through
/// [`CircuitBreaker`]s, and accumulates [`RecoveryStats`].
#[derive(Debug, Clone)]
pub struct Supervisor {
    policy: RetryPolicy,
    breakers: Vec<CircuitBreaker>,
    stats: RecoveryStats,
}

impl Supervisor {
    /// A supervisor with no circuit breakers (every request allowed).
    pub fn new(policy: RetryPolicy) -> Self {
        Self {
            policy,
            breakers: Vec::new(),
            stats: RecoveryStats::default(),
        }
    }

    /// Attaches one breaker per resource `0..resources`, each tripping
    /// after `threshold` consecutive failures and cooling down for
    /// `cooldown_secs`.
    pub fn with_breakers(mut self, resources: usize, threshold: u32, cooldown_secs: f64) -> Self {
        self.breakers = vec![CircuitBreaker::new(threshold, cooldown_secs); resources];
        self
    }

    /// The retry policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Accumulated recovery statistics.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// The breaker guarding `resource`, if one was configured.
    pub fn breaker(&self, resource: usize) -> Option<&CircuitBreaker> {
        self.breakers.get(resource)
    }

    /// Whether a query against `resource` at simulated time `t` should
    /// be attempted. Resources without a configured breaker are always
    /// allowed; a short-circuit is counted in the stats.
    pub fn query_allowed(&mut self, resource: usize, t: f64) -> bool {
        let Some(b) = self.breakers.get_mut(resource) else {
            return true;
        };
        if b.allows(t) {
            return true;
        }
        self.stats.breaker_short_circuits += 1;
        false
    }

    /// Feeds a query outcome for `resource` at simulated time `t` into
    /// its breaker (no-op if none is configured).
    pub fn record_query_outcome(&mut self, resource: usize, t: f64, ok: bool) {
        if let Some(b) = self.breakers.get_mut(resource) {
            if ok {
                b.record_success();
            } else if b.record_failure(t) {
                self.stats.breaker_trips += 1;
            }
        }
    }

    /// Runs `op` under the retry policy, advancing `clock` by each
    /// backoff (simulated time — nothing sleeps). `op` receives the
    /// attempt index and the current clock; errors beyond the budget are
    /// returned as-is and counted as abandoned.
    ///
    /// # Errors
    ///
    /// Returns the last error from `op` once the retry budget is exhausted;
    /// the attempt is counted as abandoned.
    pub fn retry_timed<T, E>(
        &mut self,
        clock: &mut f64,
        mut op: impl FnMut(u32, f64) -> Result<T, E>,
    ) -> Result<T, E> {
        let mut attempt: u32 = 0;
        loop {
            match op(attempt, *clock) {
                Ok(v) => {
                    if attempt > 0 {
                        self.stats.recovered += 1;
                    }
                    return Ok(v);
                }
                Err(e) => {
                    if attempt >= self.policy.max_retries {
                        self.stats.abandoned += 1;
                        return Err(e);
                    }
                    let backoff = self.policy.backoff_secs(attempt);
                    *clock += backoff;
                    self.stats.retries += 1;
                    self.stats.backoff_secs += backoff;
                    attempt += 1;
                }
            }
        }
    }
}

/// Outcome of a supervised solve: the final result, the attempts spent,
/// and this solve's recovery accounting.
#[derive(Debug, Clone)]
pub struct SolveRecovery {
    /// `Ok(())` or the final attempt's typed error.
    pub result: Result<(), SolveError>,
    /// Attempts consumed (1 = no retry was needed).
    pub attempts: u32,
    /// Recovery accounting for this solve alone.
    pub stats: RecoveryStats,
}

impl SolveRecovery {
    /// Whether the solve ultimately completed.
    pub fn succeeded(&self) -> bool {
        self.result.is_ok()
    }
}

/// Shared attempt loop of the supervised solvers: attempt 0 runs the
/// checkpointed solve from the grid's current state; each retry resumes
/// from the latest checkpoint (or restarts if none was taken, the grid
/// being untouched in that case). Attempt `k` suffers the schedule's
/// `k`-th kill, if any.
fn supervise_solve(
    grid: &mut Grid,
    exchange: ExchangePolicy,
    schedule: &FaultSchedule,
    retry: &RetryPolicy,
    mut solve: impl FnMut(&mut Grid, &SolveOptions, &mut CheckpointStore) -> Result<(), SolveError>,
    mut resume: impl FnMut(
        &prodpred_sor::Checkpoint,
        &mut Grid,
        &SolveOptions,
        &mut CheckpointStore,
    ) -> Result<(), SolveError>,
) -> SolveRecovery {
    let mut store = CheckpointStore::new();
    let mut stats = RecoveryStats::default();
    let mut attempt: u32 = 0;
    loop {
        let options = SolveOptions {
            policy: exchange,
            kill: schedule.kill_for_attempt(attempt),
        };
        let outcome = match store.latest().cloned() {
            None => solve(grid, &options, &mut store),
            Some(cp) => {
                stats.resumed_iterations_saved += cp.iteration() as u64;
                resume(&cp, grid, &options, &mut store)
            }
        };
        stats.checkpoints_taken = store.taken() as u64;
        match outcome {
            Ok(()) => {
                if attempt > 0 {
                    stats.recovered += 1;
                }
                return SolveRecovery {
                    result: Ok(()),
                    attempts: attempt + 1,
                    stats,
                };
            }
            Err(e) => {
                if attempt >= retry.max_retries {
                    stats.abandoned += 1;
                    return SolveRecovery {
                        result: Err(e),
                        attempts: attempt + 1,
                        stats,
                    };
                }
                stats.retries += 1;
                stats.backoff_secs += retry.backoff_secs(attempt);
                attempt += 1;
            }
        }
    }
}

/// A strip solve under supervision: worker deaths from `schedule` are
/// retried per `retry`, each retry resuming from the last checkpoint
/// taken under `checkpoint`. A recovered solve is bit-identical to an
/// unfaulted one; an exhausted budget returns the last typed error.
pub fn solve_strips_supervised(
    grid: &mut Grid,
    params: SorParams,
    strips: &[Strip],
    exchange: ExchangePolicy,
    schedule: &FaultSchedule,
    retry: &RetryPolicy,
    checkpoint: CheckpointPolicy,
) -> SolveRecovery {
    supervise_solve(
        grid,
        exchange,
        schedule,
        retry,
        |g, o, s| try_solve_strips_checkpointed(g, params, strips, o, checkpoint, s),
        |cp, g, o, s| resume_strips_from(cp, g, params, strips, o, checkpoint, s),
    )
}

/// The 2D-block analogue of [`solve_strips_supervised`].
pub fn solve_blocks_supervised(
    grid: &mut Grid,
    params: SorParams,
    layout: BlockLayout,
    exchange: ExchangePolicy,
    schedule: &FaultSchedule,
    retry: &RetryPolicy,
    checkpoint: CheckpointPolicy,
) -> SolveRecovery {
    supervise_solve(
        grid,
        exchange,
        schedule,
        retry,
        |g, o, s| try_solve_blocks_checkpointed(g, params, layout, o, checkpoint, s),
        |cp, g, o, s| resume_blocks_from(cp, g, params, layout, o, checkpoint, s),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use prodpred_simgrid::faults::WorkerDeath;
    use prodpred_sor::{partition_equal, solve_seq};
    use std::time::Duration;

    fn snappy() -> ExchangePolicy {
        ExchangePolicy {
            timeout: Duration::from_millis(200),
            retries: 1,
        }
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_backoff_secs: 10.0,
            backoff_factor: 2.0,
            max_backoff_secs: 65.0,
            jitter_fraction: 0.1,
            seed: 7,
        };
        let a: Vec<f64> = (0..6).map(|k| policy.backoff_secs(k)).collect();
        let b: Vec<f64> = (0..6).map(|k| policy.backoff_secs(k)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        for (k, &w) in a.iter().enumerate() {
            let nominal = (10.0 * 2.0f64.powi(k as i32)).min(65.0);
            assert!(
                (w - nominal).abs() <= nominal * 0.1 + 1e-12,
                "attempt {k}: {w} vs nominal {nominal}"
            );
        }
        // The cap binds from attempt 3 on (80 > 65): jittered around 65.
        assert!(a[3] <= 65.0 * 1.1 && a[4] <= 65.0 * 1.1);
        // A different seed jitters differently but stays bounded.
        let other = RetryPolicy { seed: 8, ..policy };
        assert_ne!(policy.backoff_secs(0), other.backoff_secs(0));
    }

    #[test]
    fn zero_jitter_is_exactly_exponential() {
        let policy = RetryPolicy {
            jitter_fraction: 0.0,
            base_backoff_secs: 5.0,
            backoff_factor: 3.0,
            max_backoff_secs: 1e9,
            ..Default::default()
        };
        assert_eq!(policy.backoff_secs(0), 5.0);
        assert_eq!(policy.backoff_secs(1), 15.0);
        assert_eq!(policy.backoff_secs(2), 45.0);
    }

    mod backoff_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // The jittered wait never leaves the ±jitter_fraction band
            // around the capped exponential base.
            #[test]
            fn jitter_stays_within_the_configured_band(
                seed in 0u64..u64::MAX,
                attempt in 0u32..64,
                base in 0.1f64..100.0,
                factor in 1.0f64..4.0,
                cap in 1.0f64..10_000.0,
                jitter in 0.0f64..0.5,
            ) {
                let policy = RetryPolicy {
                    max_retries: 3,
                    base_backoff_secs: base,
                    backoff_factor: factor,
                    max_backoff_secs: cap,
                    jitter_fraction: jitter,
                    seed,
                };
                let nominal = (base * factor.powi(attempt as i32)).min(cap);
                let w = policy.backoff_secs(attempt);
                prop_assert!(w.is_finite());
                prop_assert!((w - nominal).abs() <= nominal * jitter + 1e-9,
                    "attempt {}: {} vs nominal {}", attempt, w, nominal);
            }

            // With jitter off, the capped base is monotone in the attempt
            // index: later retries never wait less.
            #[test]
            fn cap_is_monotone_without_jitter(
                base in 0.1f64..100.0,
                factor in 1.0f64..4.0,
                cap in 1.0f64..10_000.0,
                attempt in 0u32..63,
            ) {
                let policy = RetryPolicy {
                    jitter_fraction: 0.0,
                    base_backoff_secs: base,
                    backoff_factor: factor,
                    max_backoff_secs: cap,
                    ..Default::default()
                };
                let a = policy.backoff_secs(attempt);
                let b = policy.backoff_secs(attempt + 1);
                prop_assert!(b >= a, "attempt {}: {} then {}", attempt, a, b);
                prop_assert!(a <= cap && b <= cap);
            }

            // Huge attempt indices overflow `powi` to infinity (or, past
            // i32::MAX, wrap the exponent negative); the cap must still
            // bound the wait to a finite value either way.
            #[test]
            fn huge_attempts_stay_finite_and_capped(
                seed in 0u64..u64::MAX,
                pick in 0usize..5,
            ) {
                // Attempt indices where `powi` overflows to infinity
                // (around i32::MAX) or the `as i32` cast wraps negative.
                const HUGE: [u32; 5] =
                    [1_000, 100_000, i32::MAX as u32, i32::MAX as u32 + 1, u32::MAX];
                let attempt = HUGE[pick];
                let policy = RetryPolicy { seed, ..Default::default() };
                let w = policy.backoff_secs(attempt);
                prop_assert!(w.is_finite(), "attempt {}: {}", attempt, w);
                prop_assert!(
                    w <= policy.max_backoff_secs * (1.0 + policy.jitter_fraction),
                    "attempt {}: {} above the jittered cap", attempt, w
                );
                prop_assert!(w >= 0.0);
            }
        }
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_through_half_open() {
        let mut b = CircuitBreaker::new(3, 100.0);
        assert!(b.allows(0.0));
        assert!(!b.record_failure(0.0));
        assert!(!b.record_failure(1.0));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.record_failure(2.0), "third consecutive failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        // Short-circuited during the cooldown.
        assert!(!b.allows(50.0));
        // Cooldown over: half-open probe allowed.
        assert!(b.allows(102.0));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A failed probe re-opens immediately, without a fresh streak.
        assert!(b.record_failure(102.0));
        assert_eq!(b.trips(), 2);
        assert!(!b.allows(150.0));
        // A successful probe closes and resets the streak.
        assert!(b.allows(250.0));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.record_failure(251.0), "streak starts over");
    }

    #[test]
    fn forced_trip_opens_immediately_and_counts() {
        let mut b = CircuitBreaker::new(5, 60.0);
        assert!(!b.record_failure(0.0), "one failure is below threshold");
        b.trip(10.0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert_eq!(b.open_until(), 70.0);
        assert!(!b.allows(69.0));
        // Cooldown over: half-open probe, success closes as usual.
        assert!(b.allows(70.0));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(2, 10.0);
        assert!(!b.record_failure(0.0));
        b.record_success();
        assert!(!b.record_failure(1.0), "streak was reset");
        assert!(b.record_failure(2.0));
    }

    #[test]
    fn retry_timed_advances_the_clock_and_counts() {
        let mut sup = Supervisor::new(RetryPolicy {
            max_retries: 3,
            base_backoff_secs: 10.0,
            backoff_factor: 2.0,
            max_backoff_secs: 1e9,
            jitter_fraction: 0.0,
            seed: 0,
        });
        let mut t = 100.0;
        // Succeeds on the third attempt (index 2).
        let out: Result<u32, &str> = sup.retry_timed(&mut t, |attempt, _| {
            if attempt < 2 {
                Err("down")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out, Ok(2));
        assert_eq!(t, 100.0 + 10.0 + 20.0);
        let stats = sup.stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.abandoned, 0);
        assert_eq!(stats.backoff_secs, 30.0);

        // Exhausts the budget: 3 retries, then the error comes back.
        let out: Result<u32, &str> = sup.retry_timed(&mut t, |_, _| Err("still down"));
        assert_eq!(out, Err("still down"));
        assert_eq!(sup.stats().abandoned, 1);
        assert_eq!(sup.stats().retries, 5);
    }

    #[test]
    fn supervisor_short_circuits_through_open_breakers() {
        let mut sup = Supervisor::new(RetryPolicy::default()).with_breakers(2, 2, 100.0);
        assert!(sup.query_allowed(0, 0.0));
        sup.record_query_outcome(0, 0.0, false);
        sup.record_query_outcome(0, 1.0, false);
        assert_eq!(sup.stats().breaker_trips, 1);
        assert!(!sup.query_allowed(0, 2.0), "resource 0 is open");
        assert!(sup.query_allowed(1, 2.0), "resource 1 untouched");
        assert!(sup.query_allowed(2, 2.0), "no breaker configured");
        assert_eq!(sup.stats().breaker_short_circuits, 1);
        // Cooldown over: probe goes through and a success closes it.
        assert!(sup.query_allowed(0, 150.0));
        sup.record_query_outcome(0, 150.0, true);
        assert_eq!(sup.breaker(0).unwrap().state(), BreakerState::Closed);
    }

    #[test]
    fn supervised_solve_recovers_bit_identically() {
        let n = 33;
        let iters = 24;
        let params = SorParams::for_grid(n, iters);
        let strips = partition_equal(n - 2, 4);
        let mut reference = Grid::laplace_problem(n);
        solve_seq(&mut reference, params);

        let schedule = FaultSchedule {
            id: 1,
            kills: vec![WorkerDeath {
                rank: 2,
                at_half_iteration: 27,
            }],
        };
        let mut g = Grid::laplace_problem(n);
        let recovery = solve_strips_supervised(
            &mut g,
            params,
            &strips,
            snappy(),
            &schedule,
            &RetryPolicy::default(),
            CheckpointPolicy::every(5),
        );
        assert!(recovery.succeeded());
        assert_eq!(recovery.attempts, 2);
        assert_eq!(recovery.stats.retries, 1);
        assert_eq!(recovery.stats.recovered, 1);
        // The kill hit iteration 13; the retry resumed from iteration 10.
        assert_eq!(recovery.stats.resumed_iterations_saved, 10);
        assert!(recovery.stats.backoff_secs > 0.0);
        assert_eq!(g.max_diff(&reference), 0.0, "recovery must be exact");
    }

    #[test]
    fn schedule_outlasting_the_budget_exhausts_into_a_typed_error() {
        let n = 21;
        let params = SorParams::for_grid(n, 12);
        let strips = partition_equal(n - 2, 3);
        // Four kills against a one-retry budget: attempts 0 and 1 both
        // die; the supervisor must give up with the typed error.
        let schedule = FaultSchedule {
            id: 2,
            kills: (0..4)
                .map(|k| WorkerDeath {
                    rank: k % 3,
                    at_half_iteration: 5 + 2 * k,
                })
                .collect(),
        };
        let retry = RetryPolicy {
            max_retries: 1,
            ..Default::default()
        };
        let mut g = Grid::laplace_problem(n);
        let recovery = solve_strips_supervised(
            &mut g,
            params,
            &strips,
            snappy(),
            &schedule,
            &retry,
            CheckpointPolicy::every(3),
        );
        assert_eq!(recovery.attempts, 2);
        assert_eq!(recovery.stats.abandoned, 1);
        assert!(matches!(
            recovery.result,
            Err(SolveError::WorkerDied { rank: 1 })
        ));
    }

    #[test]
    fn supervised_blocks_recover_bit_identically() {
        let n = 26;
        let iters = 18;
        let params = SorParams::for_grid(n, iters);
        let mut reference = Grid::laplace_problem(n);
        solve_seq(&mut reference, params);

        let schedule = FaultSchedule {
            id: 3,
            kills: vec![WorkerDeath {
                rank: 3,
                at_half_iteration: 21,
            }],
        };
        let mut g = Grid::laplace_problem(n);
        let recovery = solve_blocks_supervised(
            &mut g,
            params,
            BlockLayout::new(2, 2),
            snappy(),
            &schedule,
            &RetryPolicy::default(),
            CheckpointPolicy::every(4),
        );
        assert!(recovery.succeeded());
        assert_eq!(recovery.stats.resumed_iterations_saved, 8);
        assert_eq!(g.max_diff(&reference), 0.0);
    }

    #[test]
    fn healthy_schedule_costs_no_retries() {
        let n = 17;
        let params = SorParams::for_grid(n, 8);
        let strips = partition_equal(n - 2, 2);
        let mut g = Grid::laplace_problem(n);
        let recovery = solve_strips_supervised(
            &mut g,
            params,
            &strips,
            snappy(),
            &FaultSchedule::healthy(0),
            &RetryPolicy::default(),
            CheckpointPolicy::every(3),
        );
        assert!(recovery.succeeded());
        assert_eq!(recovery.attempts, 1);
        assert_eq!(
            recovery.stats,
            RecoveryStats {
                checkpoints_taken: 2,
                ..RecoveryStats::default()
            }
        );
    }
}
