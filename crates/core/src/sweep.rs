//! Parallel experiment sweeps: the paper's repeated-runs methodology,
//! fanned across cores without giving up bit-reproducibility.
//!
//! Every production figure (8–17) is a *series* of runs sharing one
//! platform clock and NWS history, so a single [`ExperimentSeries`] must
//! stay sequential. What parallelizes is the layer above: independent
//! seeds (replications of a figure), independent problem sizes, and
//! independent configurations (the ablation grids). Each sweep task
//! builds its own platform from its own seed, so tasks share nothing,
//! and [`prodpred_pool::parallel_map`] merges results in input order —
//! the sweep output is bit-identical to the sequential loop at any
//! thread count (including under the `PRODPRED_THREADS` override).

use crate::experiment::{platform1_experiment, platform2_experiment, ExperimentSeries};
use prodpred_pool::parallel_map;
use prodpred_stochastic::AccuracyReport;

/// Replicates the Platform-1 size sweep (Figures 8–9) across independent
/// seeds, one full series per seed, fanned over `threads` workers
/// (0 = auto). Results are in `seeds` order.
pub fn platform1_seed_sweep(
    seeds: &[u64],
    sizes: &[usize],
    threads: usize,
) -> Vec<ExperimentSeries> {
    parallel_map(seeds, threads, |_, &seed| platform1_experiment(seed, sizes))
}

/// Replicates the Platform-2 repeated-run study (Figures 12–17) across
/// independent seeds, fanned over `threads` workers (0 = auto). Results
/// are in `seeds` order.
pub fn platform2_seed_sweep(
    seeds: &[u64],
    n: usize,
    runs: usize,
    threads: usize,
) -> Vec<ExperimentSeries> {
    parallel_map(seeds, threads, |_, &seed| {
        platform2_experiment(seed, n, runs)
    })
}

/// Per-seed accuracy of a sweep, in sweep order. Series with no runs are
/// skipped.
pub fn sweep_accuracy(sweep: &[ExperimentSeries]) -> Vec<AccuracyReport> {
    sweep
        .iter()
        .filter_map(ExperimentSeries::accuracy)
        .collect()
}

/// Aggregate view of a multi-seed replication: how stable the headline
/// claim (coverage, range error) is across reseeded replays.
#[derive(Debug, Clone, Copy)]
pub struct SweepSummary {
    /// Number of replications aggregated.
    pub replications: usize,
    /// Mean coverage across replications.
    pub mean_coverage: f64,
    /// Worst (lowest) coverage across replications.
    pub min_coverage: f64,
    /// Worst maximum range error across replications.
    pub worst_range_error: f64,
    /// Worst maximum mean-point error across replications.
    pub worst_mean_error: f64,
}

impl SweepSummary {
    /// Aggregates per-seed accuracy reports. `None` if `sweep` has no
    /// series with runs.
    pub fn from_sweep(sweep: &[ExperimentSeries]) -> Option<Self> {
        let reports = sweep_accuracy(sweep);
        if reports.is_empty() {
            return None;
        }
        Some(Self {
            replications: reports.len(),
            mean_coverage: reports.iter().map(|r| r.coverage).sum::<f64>() / reports.len() as f64,
            min_coverage: reports
                .iter()
                .map(|r| r.coverage)
                .fold(f64::INFINITY, f64::min),
            worst_range_error: reports
                .iter()
                .map(|r| r.max_range_error)
                .fold(0.0, f64::max),
            worst_mean_error: reports.iter().map(|r| r.max_mean_error).fold(0.0, f64::max),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_sequential_loop_bitwise() {
        let seeds = [3u64, 5, 9, 21];
        let sequential: Vec<ExperimentSeries> = seeds
            .iter()
            .map(|&s| platform2_experiment(s, 1000, 3))
            .collect();
        for threads in [1usize, 2, 4] {
            let sweep = platform2_seed_sweep(&seeds, 1000, 3, threads);
            assert_eq!(sweep.len(), sequential.len());
            for (a, b) in sweep.iter().zip(&sequential) {
                for (ra, rb) in a.records.iter().zip(&b.records) {
                    assert_eq!(ra.actual_secs.to_bits(), rb.actual_secs.to_bits());
                    assert_eq!(
                        ra.prediction.stochastic.mean().to_bits(),
                        rb.prediction.stochastic.mean().to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn summary_aggregates_each_replication() {
        let sweep = platform2_seed_sweep(&[1, 2, 3], 1000, 4, 0);
        let summary = SweepSummary::from_sweep(&sweep).unwrap();
        assert_eq!(summary.replications, 3);
        assert!(summary.min_coverage <= summary.mean_coverage);
        assert!((0.0..=1.0).contains(&summary.mean_coverage));
        assert!(summary.worst_range_error <= summary.worst_mean_error + 1e-12);
        assert!(SweepSummary::from_sweep(&[]).is_none());
    }
}
