//! Parallel experiment sweeps: the paper's repeated-runs methodology,
//! fanned across cores without giving up bit-reproducibility.
//!
//! Every production figure (8–17) is a *series* of runs sharing one
//! platform clock and NWS history, so a single [`ExperimentSeries`] must
//! stay sequential. What parallelizes is the layer above: independent
//! seeds (replications of a figure), independent problem sizes, and
//! independent configurations (the ablation grids). Each sweep task
//! builds its own platform from its own seed, so tasks share nothing,
//! and [`prodpred_pool::parallel_map`] merges results in input order —
//! the sweep output is bit-identical to the sequential loop at any
//! thread count (including under the `PRODPRED_THREADS` override).

use crate::experiment::{
    platform1_experiment, platform1_experiment_with_faults, platform2_experiment,
    platform2_experiment_with_faults, ExperimentSeries, FaultedSeries,
};
use prodpred_pool::parallel_map;
use prodpred_simgrid::faults::FaultConfig;
use prodpred_stochastic::AccuracyReport;

/// Replicates the Platform-1 size sweep (Figures 8–9) across independent
/// seeds, one full series per seed, fanned over `threads` workers
/// (0 = auto). Results are in `seeds` order.
pub fn platform1_seed_sweep(
    seeds: &[u64],
    sizes: &[usize],
    threads: usize,
) -> Vec<ExperimentSeries> {
    parallel_map(seeds, threads, |_, &seed| platform1_experiment(seed, sizes))
}

/// Replicates the Platform-2 repeated-run study (Figures 12–17) across
/// independent seeds, fanned over `threads` workers (0 = auto). Results
/// are in `seeds` order.
pub fn platform2_seed_sweep(
    seeds: &[u64],
    n: usize,
    runs: usize,
    threads: usize,
) -> Vec<ExperimentSeries> {
    parallel_map(seeds, threads, |_, &seed| {
        platform2_experiment(seed, n, runs)
    })
}

/// Per-seed accuracy of a sweep, in sweep order. Series with no runs are
/// skipped.
pub fn sweep_accuracy(sweep: &[ExperimentSeries]) -> Vec<AccuracyReport> {
    sweep
        .iter()
        .filter_map(ExperimentSeries::accuracy)
        .collect()
}

/// Aggregate view of a multi-seed replication: how stable the headline
/// claim (coverage, range error) is across reseeded replays.
#[derive(Debug, Clone, Copy)]
pub struct SweepSummary {
    /// Number of replications aggregated.
    pub replications: usize,
    /// Mean coverage across replications.
    pub mean_coverage: f64,
    /// Worst (lowest) coverage across replications.
    pub min_coverage: f64,
    /// Worst maximum range error across replications.
    pub worst_range_error: f64,
    /// Worst maximum mean-point error across replications.
    pub worst_mean_error: f64,
}

impl SweepSummary {
    /// Aggregates per-seed accuracy reports. `None` if `sweep` has no
    /// series with runs.
    pub fn from_sweep(sweep: &[ExperimentSeries]) -> Option<Self> {
        let reports = sweep_accuracy(sweep);
        if reports.is_empty() {
            return None;
        }
        Some(Self {
            replications: reports.len(),
            mean_coverage: reports.iter().map(|r| r.coverage).sum::<f64>() / reports.len() as f64,
            min_coverage: reports
                .iter()
                .map(|r| r.coverage)
                .fold(f64::INFINITY, f64::min),
            worst_range_error: reports
                .iter()
                .map(|r| r.max_range_error)
                .fold(0.0, f64::max),
            worst_mean_error: reports.iter().map(|r| r.max_mean_error).fold(0.0, f64::max),
        })
    }
}

/// One line of the fault study: how prediction quality and sensor health
/// degrade at a given fault intensity, aggregated over the seed
/// replications of that intensity.
#[derive(Debug, Clone, Copy)]
pub struct FaultStudyRow {
    /// Fault intensity in `[0, 1]` (the [`FaultConfig::with_intensity`]
    /// knob).
    pub intensity: f64,
    /// Seed replications aggregated into this row.
    pub replications: usize,
    /// Completed runs across all replications.
    pub runs: usize,
    /// Runs skipped because the degraded NWS could not support a
    /// prediction at launch time.
    pub skipped_runs: usize,
    /// Mean ±2σ coverage across replications that completed any runs.
    pub mean_coverage: f64,
    /// Worst (lowest) coverage across those replications.
    pub min_coverage: f64,
    /// Mean relative error of the stochastic mean over every completed
    /// run: `|predicted_mean − actual| / actual`.
    pub mean_abs_error: f64,
    /// Mean actual wall-clock seconds per completed run — the measured
    /// side of the fault model's degraded-runtime prediction.
    pub mean_actual_secs: f64,
    /// Mean launch time of the completed runs, for evaluating the fault
    /// model's window terms (storms, blackouts) at the row's epoch.
    pub mean_start_secs: f64,
    /// Mean predicted ±2σ half-width per completed run — the measured
    /// side of the fault model's spread-widening prediction.
    pub mean_half_width_secs: f64,
    /// Worst per-replication maximum mean-point error.
    pub worst_mean_error: f64,
    /// Fraction of predictor queries answered off the degraded path
    /// (fallback mode, stale data, or partial window).
    pub degraded_fraction: f64,
    /// Worst staleness (in sensor cadences) any answered query leaned on.
    pub max_stale_intervals: f64,
    /// Sensor polls lost to dropout or blackout, summed over machines.
    pub missed_polls: u64,
    /// Sensor measurements rejected as corrupt, summed over machines.
    pub corrupt_polls: u64,
}

/// Collapses the per-seed faulted series of each intensity into one
/// [`FaultStudyRow`] per intensity. `results` is the flat
/// intensity-major grid produced by the fault sweeps.
fn fault_rows(
    intensities: &[f64],
    per_intensity: usize,
    results: &[FaultedSeries],
) -> Vec<FaultStudyRow> {
    assert_eq!(results.len(), intensities.len() * per_intensity);
    intensities
        .iter()
        .zip(results.chunks(per_intensity))
        .map(|(&intensity, chunk)| {
            let reports: Vec<AccuracyReport> =
                chunk.iter().filter_map(|f| f.series.accuracy()).collect();
            let runs: usize = chunk.iter().map(|f| f.series.records.len()).sum();
            let mut abs_err_sum = 0.0;
            let mut actual_sum = 0.0;
            let mut start_sum = 0.0;
            let mut half_width_sum = 0.0;
            for f in chunk {
                for r in &f.series.records {
                    abs_err_sum +=
                        (r.prediction.stochastic.mean() - r.actual_secs).abs() / r.actual_secs;
                    actual_sum += r.actual_secs;
                    start_sum += r.start;
                    half_width_sum += r.prediction.stochastic.half_width();
                }
            }
            let per_run = |sum: f64| if runs == 0 { 0.0 } else { sum / runs as f64 };
            let queries: usize = chunk.iter().map(|f| f.stats.queries).sum();
            let degraded: usize = chunk.iter().map(|f| f.stats.degraded_queries).sum();
            FaultStudyRow {
                intensity,
                replications: chunk.len(),
                runs,
                skipped_runs: chunk.iter().map(|f| f.stats.skipped_runs).sum(),
                mean_coverage: if reports.is_empty() {
                    0.0
                } else {
                    reports.iter().map(|r| r.coverage).sum::<f64>() / reports.len() as f64
                },
                min_coverage: reports
                    .iter()
                    .map(|r| r.coverage)
                    .fold(f64::INFINITY, f64::min)
                    .min(1.0),
                mean_abs_error: per_run(abs_err_sum),
                mean_actual_secs: per_run(actual_sum),
                mean_start_secs: per_run(start_sum),
                mean_half_width_secs: per_run(half_width_sum),
                worst_mean_error: reports.iter().map(|r| r.max_mean_error).fold(0.0, f64::max),
                degraded_fraction: if queries == 0 {
                    0.0
                } else {
                    degraded as f64 / queries as f64
                },
                max_stale_intervals: chunk
                    .iter()
                    .map(|f| f.stats.max_stale_intervals)
                    .fold(0.0, f64::max),
                missed_polls: chunk.iter().map(|f| f.stats.missed_polls).sum(),
                corrupt_polls: chunk.iter().map(|f| f.stats.corrupt_polls).sum(),
            }
        })
        .collect()
}

/// Sweeps the Platform-1 experiment across fault intensities, replicating
/// each intensity over `seeds` and fanning the full (intensity × seed)
/// grid over `threads` workers (0 = auto). Rows are in `intensities`
/// order; the whole sweep is bit-deterministic at any thread count.
pub fn platform1_fault_sweep(
    seeds: &[u64],
    sizes: &[usize],
    intensities: &[f64],
    threads: usize,
) -> Vec<FaultStudyRow> {
    let tasks: Vec<(f64, u64)> = intensities
        .iter()
        .flat_map(|&i| seeds.iter().map(move |&s| (i, s)))
        .collect();
    let results = parallel_map(&tasks, threads, |_, &(intensity, seed)| {
        let faults = FaultConfig::with_intensity(seed, intensity);
        platform1_experiment_with_faults(seed, sizes, &faults)
    });
    fault_rows(intensities, seeds.len(), &results)
}

/// Sweeps the Platform-2 repeated-run experiment across fault
/// intensities; see [`platform1_fault_sweep`].
pub fn platform2_fault_sweep(
    seeds: &[u64],
    n: usize,
    runs: usize,
    intensities: &[f64],
    threads: usize,
) -> Vec<FaultStudyRow> {
    let tasks: Vec<(f64, u64)> = intensities
        .iter()
        .flat_map(|&i| seeds.iter().map(move |&s| (i, s)))
        .collect();
    let results = parallel_map(&tasks, threads, |_, &(intensity, seed)| {
        let faults = FaultConfig::with_intensity(seed, intensity);
        platform2_experiment_with_faults(seed, n, runs, &faults)
    });
    fault_rows(intensities, seeds.len(), &results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_sequential_loop_bitwise() {
        let seeds = [3u64, 5, 9, 21];
        let sequential: Vec<ExperimentSeries> = seeds
            .iter()
            .map(|&s| platform2_experiment(s, 1000, 3))
            .collect();
        for threads in [1usize, 2, 4] {
            let sweep = platform2_seed_sweep(&seeds, 1000, 3, threads);
            assert_eq!(sweep.len(), sequential.len());
            for (a, b) in sweep.iter().zip(&sequential) {
                for (ra, rb) in a.records.iter().zip(&b.records) {
                    assert_eq!(ra.actual_secs.to_bits(), rb.actual_secs.to_bits());
                    assert_eq!(
                        ra.prediction.stochastic.mean().to_bits(),
                        rb.prediction.stochastic.mean().to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn fault_sweep_is_deterministic_across_thread_counts() {
        let seeds = [11u64, 13];
        let intensities = [0.0, 0.6];
        let reference = platform2_fault_sweep(&seeds, 1000, 3, &intensities, 1);
        for threads in [2usize, 4] {
            let sweep = platform2_fault_sweep(&seeds, 1000, 3, &intensities, threads);
            assert_eq!(sweep.len(), reference.len());
            for (a, b) in sweep.iter().zip(&reference) {
                assert_eq!(a.mean_abs_error.to_bits(), b.mean_abs_error.to_bits());
                assert_eq!(a.mean_coverage.to_bits(), b.mean_coverage.to_bits());
                assert_eq!(a.mean_actual_secs.to_bits(), b.mean_actual_secs.to_bits());
                assert_eq!(
                    a.mean_half_width_secs.to_bits(),
                    b.mean_half_width_secs.to_bits()
                );
                assert_eq!(a.missed_polls, b.missed_polls);
                assert_eq!(a.corrupt_polls, b.corrupt_polls);
                assert_eq!(a.skipped_runs, b.skipped_runs);
            }
        }
    }

    #[test]
    fn zero_intensity_row_matches_the_healthy_experiment() {
        let rows = platform2_fault_sweep(&[7], 1000, 4, &[0.0], 0);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.skipped_runs, 0);
        assert_eq!(row.missed_polls, 0);
        assert_eq!(row.corrupt_polls, 0);
        assert_eq!(row.runs, 4);
        assert!(row.mean_coverage > 0.0);
        assert!(row.mean_actual_secs > 0.0);
        assert!(row.mean_half_width_secs > 0.0);
        assert!(row.mean_start_secs > 0.0);
    }

    #[test]
    fn faults_degrade_sensor_health_monotonically_in_expectation() {
        let rows = platform2_fault_sweep(&[3, 9], 1000, 4, &[0.0, 1.0], 0);
        assert!(rows[1].missed_polls > rows[0].missed_polls);
        assert!(rows[1].degraded_fraction > rows[0].degraded_fraction);
    }

    #[test]
    fn summary_aggregates_each_replication() {
        let sweep = platform2_seed_sweep(&[1, 2, 3], 1000, 4, 0);
        let summary = SweepSummary::from_sweep(&sweep).unwrap();
        assert_eq!(summary.replications, 3);
        assert!(summary.min_coverage <= summary.mean_coverage);
        assert!((0.0..=1.0).contains(&summary.mean_coverage));
        assert!(summary.worst_range_error <= summary.worst_mean_error + 1e-12);
        assert!(SweepSummary::from_sweep(&[]).is_none());
    }
}
