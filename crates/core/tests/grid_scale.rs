//! Tier-1 pins for the 1000×-scale grid path: sharded simulation must be
//! bit-identical at 1/2/4/8 pool threads, and the columnar store's
//! [`prodpred_simgrid::store::TraceRef`] views must agree with the
//! materialized `*_reference` oracles to ≤ 1e-9.

use prodpred_core::{simulate_grid_sharded, GridSimConfig, TenantSpec};
use prodpred_simgrid::store::MachineSlot;
use prodpred_simgrid::GridPlatform;

fn grid() -> GridPlatform {
    GridPlatform::production(96, 4242, 900.0, 1)
}

fn cfg() -> GridSimConfig {
    GridSimConfig {
        tenants: 32,
        shards: 6,
        tenant: TenantSpec {
            n: 150,
            iterations: 5,
            procs: 4,
        },
        seed: 77,
        mean_arrival_gap: 8.0,
    }
}

#[test]
fn sharded_grid_simulation_bit_identical_at_1_2_4_8_threads() {
    let g = grid();
    let c = cfg();
    let baseline = simulate_grid_sharded(&g, &c, 1);
    for threads in [2usize, 4, 8] {
        let run = simulate_grid_sharded(&g, &c, threads);
        assert_eq!(baseline.digest, run.digest, "digest at {threads} threads");
        for t in 0..c.tenants {
            assert_eq!(
                baseline.tenant_secs[t].to_bits(),
                run.tenant_secs[t].to_bits(),
                "tenant {t} secs at {threads} threads"
            );
            assert_eq!(
                baseline.tenant_start[t].to_bits(),
                run.tenant_start[t].to_bits(),
                "tenant {t} start at {threads} threads"
            );
        }
        assert_eq!(baseline.events, run.events, "events at {threads} threads");
        assert_eq!(
            baseline.makespan.to_bits(),
            run.makespan.to_bits(),
            "makespan at {threads} threads"
        );
    }
}

#[test]
fn grid_generation_bit_identical_across_thread_counts() {
    let one = grid();
    let eight = GridPlatform::production(96, 4242, 900.0, 8);
    assert_eq!(one.len(), eight.len());
    for i in 0..one.len() {
        assert_eq!(one.slot(i), eight.slot(i), "slot {i}");
    }
    // Spot-check full trace content, not just slots.
    for i in [0usize, 31, 95] {
        assert_eq!(one.trace(i).materialize(), eight.trace(i).materialize());
    }
}

#[test]
fn trace_ref_agrees_with_reference_oracles() {
    let g = grid();
    for i in [0usize, 17, 50, 95] {
        let view = g.trace(i);
        let full = view.materialize();
        let (lo, hi) = (view.t0() - 10.0, view.t_end() + 10.0);
        let points: Vec<f64> = (0..=40).map(|k| lo + (hi - lo) * k as f64 / 40.0).collect();
        for (pi, &a) in points.iter().enumerate() {
            for &b in &points[pi..] {
                let fast = view.integral(a, b);
                let slow = full.integral_reference(a, b);
                assert!(
                    (fast - slow).abs() <= 1e-9,
                    "machine {i} integral([{a}, {b}]): {fast} vs {slow}"
                );
            }
        }
        for &start in &[0.0, 123.4, 880.0] {
            for &work in &[0.05, 2.0, 60.0, 2000.0] {
                let fast = view.time_to_complete(start, work);
                let slow = full.time_to_complete_reference(start, work);
                assert!(
                    (fast - slow).abs() <= 1e-9,
                    "machine {i} ttc({start}, {work}): {fast} vs {slow}"
                );
            }
        }
    }
}

#[test]
fn slots_are_pure_functions_of_seed_and_index() {
    let a = MachineSlot::derive(4242, 12, 0, 8, 256);
    let b = MachineSlot::derive(4242, 12, 0, 8, 256);
    assert_eq!(a, b);
}
