//! Property-based tests for scheduling and the prediction plumbing.

use prodpred_core::{allocate_units, planned_completion, AllocationPolicy};
use prodpred_stochastic::StochasticValue;
use proptest::prelude::*;

fn unit_times() -> impl Strategy<Value = Vec<StochasticValue>> {
    proptest::collection::vec(
        (1.0f64..100.0, 0.0f64..0.4).prop_map(|(m, rel)| StochasticValue::new(m, m * rel)),
        1..8,
    )
}

proptest! {
    #[test]
    fn allocation_conserves_units(times in unit_times(), units in 0u64..10_000) {
        for policy in [
            AllocationPolicy::ByMean,
            AllocationPolicy::RiskAverse { lambda: 2.0 },
            AllocationPolicy::Optimistic { lambda: 1.0 },
        ] {
            let alloc = allocate_units(units, &times, policy);
            prop_assert_eq!(alloc.iter().sum::<u64>(), units);
            prop_assert_eq!(alloc.len(), times.len());
        }
    }

    #[test]
    fn faster_machine_never_gets_fewer_units_by_mean(
        m_fast in 1.0f64..50.0,
        extra in 0.1f64..50.0,
        units in 10u64..10_000,
    ) {
        let times = [
            StochasticValue::point(m_fast),
            StochasticValue::point(m_fast + extra),
        ];
        let alloc = allocate_units(units, &times, AllocationPolicy::ByMean);
        prop_assert!(alloc[0] >= alloc[1], "{alloc:?}");
    }

    #[test]
    fn risk_aversion_shifts_toward_stability(
        mean in 5.0f64..50.0,
        rel_low in 0.0f64..0.1,
        rel_high in 0.2f64..0.5,
        units in 100u64..10_000,
    ) {
        // Equal means, different spreads: the stable machine's share under
        // risk aversion is at least its by-mean share.
        let times = [
            StochasticValue::new(mean, mean * rel_low),
            StochasticValue::new(mean, mean * rel_high),
        ];
        let by_mean = allocate_units(units, &times, AllocationPolicy::ByMean);
        let risk = allocate_units(units, &times, AllocationPolicy::RiskAverse { lambda: 2.0 });
        prop_assert!(risk[0] >= by_mean[0], "risk {risk:?} vs mean {by_mean:?}");
    }

    #[test]
    fn stronger_risk_aversion_is_monotone(
        mean in 5.0f64..50.0,
        rel_high in 0.2f64..0.5,
        units in 100u64..10_000,
    ) {
        let times = [
            StochasticValue::new(mean, mean * 0.02),
            StochasticValue::new(mean, mean * rel_high),
        ];
        let mut prev_stable_share = 0u64;
        for lambda in [0.0, 0.5, 1.0, 2.0, 4.0] {
            let alloc = allocate_units(units, &times, AllocationPolicy::RiskAverse { lambda });
            prop_assert!(alloc[0] >= prev_stable_share, "lambda {lambda}: {alloc:?}");
            prev_stable_share = alloc[0];
        }
    }

    #[test]
    fn planned_completion_dominates_each_share(times in unit_times(), units in 1u64..5000) {
        let alloc = allocate_units(units, &times, AllocationPolicy::ByMean);
        let plan = planned_completion(&alloc, &times);
        for (u, t) in alloc.iter().zip(&times) {
            prop_assert!(plan.mean() >= *u as f64 * t.mean() - 1e-9);
        }
    }

    #[test]
    fn zero_units_zero_plan(times in unit_times()) {
        let alloc = allocate_units(0, &times, AllocationPolicy::ByMean);
        prop_assert!(alloc.iter().all(|&u| u == 0));
        let plan = planned_completion(&alloc, &times);
        prop_assert_eq!(plan.mean(), 0.0);
    }
}
