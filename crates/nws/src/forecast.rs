//! Forecasting strategies, after Wolski's Network Weather Service.
//!
//! The NWS runs a family of simple predictors over each resource history
//! and, for every forecast, reports the prediction of whichever strategy
//! has the lowest accumulated error so far — so the service adapts to the
//! character of each resource without per-resource tuning
//! ([Wol96, Wol97, WSP97] in the paper's bibliography).

use crate::series::TimeSeries;
use prodpred_stochastic::stats;

/// A one-step-ahead forecasting strategy over a measurement history.
pub trait Forecaster {
    /// Strategy name, for reports.
    fn name(&self) -> &'static str;

    /// Forecast of the next value given the history (oldest-first).
    /// `None` when the history is too short.
    fn forecast(&self, history: &[f64]) -> Option<f64>;
}

/// Predicts the last observed value (martingale / persistence).
#[derive(Debug, Clone, Copy, Default)]
pub struct LastValue;

impl Forecaster for LastValue {
    fn name(&self) -> &'static str {
        "last-value"
    }
    fn forecast(&self, history: &[f64]) -> Option<f64> {
        history.last().copied()
    }
}

/// Predicts the mean of the whole history.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningMean;

impl Forecaster for RunningMean {
    fn name(&self) -> &'static str {
        "running-mean"
    }
    fn forecast(&self, history: &[f64]) -> Option<f64> {
        if history.is_empty() {
            None
        } else {
            Some(history.iter().sum::<f64>() / history.len() as f64)
        }
    }
}

/// Predicts the mean of the last `window` values.
#[derive(Debug, Clone, Copy)]
pub struct SlidingMean {
    /// Window length.
    pub window: usize,
}

impl Forecaster for SlidingMean {
    fn name(&self) -> &'static str {
        "sliding-mean"
    }
    fn forecast(&self, history: &[f64]) -> Option<f64> {
        if history.is_empty() {
            return None;
        }
        let start = history.len().saturating_sub(self.window.max(1));
        let w = &history[start..];
        Some(w.iter().sum::<f64>() / w.len() as f64)
    }
}

/// Predicts the median of the last `window` values — robust to the
/// occasional burst.
#[derive(Debug, Clone, Copy)]
pub struct SlidingMedian {
    /// Window length.
    pub window: usize,
}

impl Forecaster for SlidingMedian {
    fn name(&self) -> &'static str {
        "sliding-median"
    }
    fn forecast(&self, history: &[f64]) -> Option<f64> {
        if history.is_empty() {
            return None;
        }
        let start = history.len().saturating_sub(self.window.max(1));
        stats::median(&history[start..])
    }
}

/// Exponential smoothing with gain `alpha`.
#[derive(Debug, Clone, Copy)]
pub struct ExpSmoothing {
    /// Smoothing gain in `(0, 1]`; higher tracks faster.
    pub alpha: f64,
}

impl Forecaster for ExpSmoothing {
    fn name(&self) -> &'static str {
        "exp-smoothing"
    }
    fn forecast(&self, history: &[f64]) -> Option<f64> {
        assert!(self.alpha > 0.0 && self.alpha <= 1.0, "alpha in (0,1]");
        let (&first, rest) = history.split_first()?;
        let mut s = first;
        for &x in rest {
            s += self.alpha * (x - s);
        }
        Some(s)
    }
}

/// Predicts the trimmed mean of the last `window` values: the mean of
/// what remains after dropping the `trim` smallest and `trim` largest —
/// the NWS's compromise between mean (efficient) and median (robust).
#[derive(Debug, Clone, Copy)]
pub struct TrimmedMean {
    /// Window length.
    pub window: usize,
    /// Observations dropped from each end.
    pub trim: usize,
}

impl Forecaster for TrimmedMean {
    fn name(&self) -> &'static str {
        "trimmed-mean"
    }
    fn forecast(&self, history: &[f64]) -> Option<f64> {
        if history.is_empty() {
            return None;
        }
        let start = history.len().saturating_sub(self.window.max(1));
        let mut w: Vec<f64> = history[start..].to_vec();
        w.sort_by(f64::total_cmp);
        let t = self.trim.min((w.len().saturating_sub(1)) / 2);
        let kept = &w[t..w.len() - t];
        Some(kept.iter().sum::<f64>() / kept.len() as f64)
    }
}

/// Adaptive-window mean: picks, per forecast, the sliding-mean window
/// from `candidates` with the lowest postcast MSE over the history —
/// Wolski's adaptive-window technique in miniature.
#[derive(Debug, Clone)]
pub struct AdaptiveWindowMean {
    /// Candidate window lengths.
    pub candidates: Vec<usize>,
}

impl Default for AdaptiveWindowMean {
    fn default() -> Self {
        Self {
            candidates: vec![3, 6, 12, 24, 48],
        }
    }
}

impl Forecaster for AdaptiveWindowMean {
    fn name(&self) -> &'static str {
        "adaptive-window-mean"
    }
    fn forecast(&self, history: &[f64]) -> Option<f64> {
        if history.is_empty() {
            return None;
        }
        let mut best: Option<(f64, usize)> = None;
        for &w in &self.candidates {
            let f = SlidingMean { window: w };
            if let Some(mse) = postcast_mse(&f, history) {
                match best {
                    Some((b, _)) if mse >= b => {}
                    _ => best = Some((mse, w)),
                }
            }
        }
        let window = best.map(|(_, w)| w).unwrap_or(1);
        SlidingMean { window }.forecast(history)
    }
}

/// One-step-ahead *postcast* evaluation: runs the strategy over every
/// prefix of the history and returns the mean squared error of its
/// predictions against what actually came next.
pub fn postcast_mse(f: &dyn Forecaster, history: &[f64]) -> Option<f64> {
    if history.len() < 2 {
        return None;
    }
    let mut se = 0.0;
    let mut n = 0usize;
    for split in 1..history.len() {
        if let Some(p) = f.forecast(&history[..split]) {
            let e = p - history[split];
            se += e * e;
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(se / n as f64)
    }
}

/// A forecast with an accompanying error estimate.
#[derive(Debug, Clone, Copy)]
pub struct Forecast {
    /// Predicted next value.
    pub value: f64,
    /// Root-mean-squared one-step error of the winning strategy over the
    /// history — the NWS's accuracy estimate.
    pub rmse: f64,
    /// Index of the winning strategy in the ensemble.
    pub winner: usize,
}

/// The NWS-style adaptive forecaster: an ensemble of strategies, each
/// forecast served by the one with the lowest postcast MSE so far.
pub struct AdaptiveForecaster {
    strategies: Vec<Box<dyn Forecaster + Send + Sync>>,
}

impl Default for AdaptiveForecaster {
    fn default() -> Self {
        Self::standard()
    }
}

impl AdaptiveForecaster {
    /// The standard ensemble: persistence, running mean, sliding
    /// means/medians at two windows, trimmed mean, and exponential
    /// smoothing at three gains.
    pub fn standard() -> Self {
        Self {
            strategies: vec![
                Box::new(LastValue),
                Box::new(RunningMean),
                Box::new(SlidingMean { window: 6 }),
                Box::new(SlidingMean { window: 24 }),
                Box::new(SlidingMedian { window: 6 }),
                Box::new(SlidingMedian { window: 24 }),
                Box::new(TrimmedMean {
                    window: 12,
                    trim: 2,
                }),
                Box::new(ExpSmoothing { alpha: 0.1 }),
                Box::new(ExpSmoothing { alpha: 0.3 }),
                Box::new(ExpSmoothing { alpha: 0.7 }),
            ],
        }
    }

    /// An ensemble with explicit strategies.
    pub fn with_strategies(strategies: Vec<Box<dyn Forecaster + Send + Sync>>) -> Self {
        assert!(!strategies.is_empty(), "ensemble needs strategies");
        Self { strategies }
    }

    /// Strategy names in ensemble order.
    pub fn names(&self) -> Vec<&'static str> {
        self.strategies.iter().map(|s| s.name()).collect()
    }

    /// Forecasts the next value of `series`, choosing the strategy with
    /// the lowest postcast MSE. `None` until two measurements exist.
    pub fn forecast(&self, series: &TimeSeries) -> Option<Forecast> {
        let history = series.values();
        if history.len() < 2 {
            // Fall back to persistence once a single sample exists.
            return history.last().map(|&v| Forecast {
                value: v,
                rmse: 0.0,
                winner: 0,
            });
        }
        let mut best: Option<(usize, f64)> = None;
        for (i, s) in self.strategies.iter().enumerate() {
            if let Some(mse) = postcast_mse(s.as_ref(), &history) {
                match best {
                    Some((_, b)) if mse >= b => {}
                    _ => best = Some((i, mse)),
                }
            }
        }
        let (winner, mse) = best?;
        let value = self.strategies[winner].forecast(&history)?;
        Some(Forecast {
            value,
            rmse: mse.sqrt(),
            winner,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_of(values: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new(1024);
        for (i, &v) in values.iter().enumerate() {
            s.push(i as f64 * 5.0, v);
        }
        s
    }

    #[test]
    fn last_value_persistence() {
        assert_eq!(LastValue.forecast(&[1.0, 2.0, 3.0]), Some(3.0));
        assert_eq!(LastValue.forecast(&[]), None);
    }

    #[test]
    fn running_mean() {
        assert_eq!(RunningMean.forecast(&[1.0, 2.0, 3.0]), Some(2.0));
    }

    #[test]
    fn sliding_mean_and_median() {
        let h = [10.0, 10.0, 1.0, 2.0, 3.0];
        assert_eq!(SlidingMean { window: 3 }.forecast(&h), Some(2.0));
        assert_eq!(SlidingMedian { window: 3 }.forecast(&h), Some(2.0));
        // Median shrugs off a burst, mean doesn't.
        let burst = [1.0, 1.0, 1.0, 100.0, 1.0];
        assert_eq!(SlidingMedian { window: 5 }.forecast(&burst), Some(1.0));
        assert!(SlidingMean { window: 5 }.forecast(&burst).unwrap() > 10.0);
    }

    #[test]
    fn exp_smoothing_tracks() {
        let f = ExpSmoothing { alpha: 1.0 };
        assert_eq!(f.forecast(&[5.0, 7.0]), Some(7.0)); // alpha=1 == persistence
        let slow = ExpSmoothing { alpha: 0.1 };
        let v = slow.forecast(&[0.0, 10.0]).unwrap();
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn postcast_mse_of_perfect_constant() {
        let h = [4.0; 10];
        assert_eq!(postcast_mse(&LastValue, &h), Some(0.0));
        assert!(postcast_mse(&LastValue, &[1.0]).is_none());
    }

    #[test]
    fn trimmed_mean_shrugs_off_bursts_but_uses_more_data_than_median() {
        let h = [
            0.5, 0.5, 0.52, 0.48, 0.5, 5.0, 0.5, 0.49, 0.51, 0.5, 0.5, 0.5,
        ];
        let v = TrimmedMean {
            window: 12,
            trim: 2,
        }
        .forecast(&h)
        .unwrap();
        assert!(
            (v - 0.5).abs() < 0.02,
            "burst leaked into trimmed mean: {v}"
        );
        // Untrimmed mean is dragged by the burst.
        let m = SlidingMean { window: 12 }.forecast(&h).unwrap();
        assert!(m > 0.8);
    }

    #[test]
    fn trimmed_mean_degenerates_gracefully() {
        // Window smaller than 2*trim+1: trim clamps, result stays defined.
        let v = TrimmedMean { window: 3, trim: 5 }
            .forecast(&[1.0, 2.0, 3.0])
            .unwrap();
        assert!((v - 2.0).abs() < 1e-12);
        assert!(TrimmedMean { window: 4, trim: 1 }.forecast(&[]).is_none());
    }

    #[test]
    fn adaptive_window_prefers_short_windows_for_bursty_series() {
        // A regime-switching series: short windows adapt faster, so the
        // adaptive-window mean must beat the longest candidate.
        let mut h = Vec::new();
        for block in 0..10 {
            let level = if block % 2 == 0 { 0.2 } else { 0.8 };
            for _ in 0..12 {
                h.push(level);
            }
        }
        let adaptive = AdaptiveWindowMean::default();
        let mse_adaptive = postcast_mse(&adaptive, &h).unwrap();
        let mse_long = postcast_mse(&SlidingMean { window: 48 }, &h).unwrap();
        assert!(
            mse_adaptive < mse_long,
            "adaptive {mse_adaptive} vs long-window {mse_long}"
        );
    }

    #[test]
    fn adaptive_picks_persistence_for_random_walk() {
        // A slow drifting series: persistence beats the global mean.
        let values: Vec<f64> = (0..60).map(|i| (i as f64 * 0.05).sin()).collect();
        let s = series_of(&values);
        let fc = AdaptiveForecaster::standard().forecast(&s).unwrap();
        // Winner must not be the running mean (index 1): the series drifts.
        assert_ne!(
            fc.winner, 1,
            "running mean should lose on a drifting series"
        );
        // Forecast should be near the last value.
        assert!((fc.value - values[59]).abs() < 0.15, "value {}", fc.value);
    }

    #[test]
    fn adaptive_picks_mean_like_for_noisy_stationary() {
        // White noise around 0.5: averaging strategies beat persistence.
        let values: Vec<f64> = (0..80)
            .map(|i| 0.5 + 0.1 * ((i * 2654435761u64 % 1000) as f64 / 1000.0 - 0.5))
            .collect();
        let s = series_of(&values);
        let ens = AdaptiveForecaster::standard();
        let fc = ens.forecast(&s).unwrap();
        assert_ne!(ens.names()[fc.winner], "last-value");
        assert!((fc.value - 0.5).abs() < 0.05);
    }

    #[test]
    fn adaptive_single_sample_falls_back() {
        let s = series_of(&[0.7]);
        let fc = AdaptiveForecaster::standard().forecast(&s).unwrap();
        assert_eq!(fc.value, 0.7);
        assert_eq!(fc.rmse, 0.0);
    }

    #[test]
    fn adaptive_empty_series_none() {
        let s = TimeSeries::new(8);
        assert!(AdaptiveForecaster::standard().forecast(&s).is_none());
    }

    #[test]
    fn rmse_reflects_noise_level() {
        let quiet: Vec<f64> = (0..50).map(|_| 0.5).collect();
        let noisy: Vec<f64> = (0..50)
            .map(|i| 0.5 + if i % 2 == 0 { 0.2 } else { -0.2 })
            .collect();
        let ens = AdaptiveForecaster::standard();
        let fq = ens.forecast(&series_of(&quiet)).unwrap();
        let fnz = ens.forecast(&series_of(&noisy)).unwrap();
        assert!(fq.rmse < 1e-12);
        assert!(fnz.rmse > 0.05);
    }
}
