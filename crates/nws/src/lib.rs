//! # prodpred-nws
//!
//! A from-scratch clone of the Network Weather Service (Wolski et al.),
//! the dynamic-information substrate the paper's experiments depend on:
//! "The dynamic load data needed for our experiments was supplied by the
//! Network Weather Service ... accurate run-time information about the CPU
//! load on our machines as well as the variance of those values at
//! 5 second intervals."
//!
//! Components:
//!
//! * [`sensor::Sensor`] — periodic samplers of simulated resource traces,
//! * [`series::TimeSeries`] — bounded per-resource measurement history,
//! * [`forecast`] — the NWS's strategy ensemble (persistence, means,
//!   medians, exponential smoothing) with adaptive best-of-MSE selection,
//! * [`service::NwsService`] — the facade that turns sensor histories into
//!   `mean ± 2σ` stochastic values for CPU availability and bandwidth,
//!   with fault-aware queries ([`service::QuerySummary`]) that degrade
//!   gracefully (forecast → window statistics → last-known value,
//!   spreads widened with measurement staleness) instead of failing,
//! * [`snapshot::ForecastSnapshot`] — the full query surface frozen at
//!   one instant, bit-identical to the live service, for epoch-published
//!   prediction serving (ingest runs the forecaster tournament once per
//!   epoch; readers never touch a sensor lock).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Public-facing code returns typed errors instead of unwrapping; tests
// may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod forecast;
pub mod sensor;
pub mod series;
pub mod service;
pub mod snapshot;

pub use forecast::{AdaptiveForecaster, Forecast, Forecaster};
pub use sensor::Sensor;
pub use series::TimeSeries;
pub use service::{NwsConfig, NwsService, QueryError, QueryMode, QuerySummary, SpreadPolicy};
pub use snapshot::{ForecastSnapshot, HorizonBasis, MachineSnapshot};
