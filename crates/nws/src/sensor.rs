//! Resource sensors: periodic samplers of simulated resource traces.
//!
//! The real NWS runs sensor processes on each host, measuring CPU
//! availability and point-to-point bandwidth on a fixed cadence. Here a
//! sensor polls a [`Trace`] — the simulated ground truth — every
//! `interval` seconds and retains the history in a [`TimeSeries`].

use crate::series::TimeSeries;
use prodpred_simgrid::Trace;
use serde::{Deserialize, Serialize};

/// A periodic sampler of one resource.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sensor {
    /// Resource label, e.g. `"cpu:sparc2-a"`.
    pub name: String,
    interval: f64,
    next_poll: f64,
    series: TimeSeries,
}

impl Sensor {
    /// Creates a sensor polling every `interval` seconds, retaining up to
    /// `capacity` measurements, starting at time `start`.
    pub fn new(name: impl Into<String>, interval: f64, capacity: usize, start: f64) -> Self {
        assert!(interval > 0.0, "sensor interval must be positive");
        Self {
            name: name.into(),
            interval,
            next_poll: start,
            series: TimeSeries::new(capacity),
        }
    }

    /// Polls `trace` at every due cadence point up to and including `until`.
    pub fn poll_until(&mut self, trace: &Trace, until: f64) {
        while self.next_poll <= until {
            self.series.push(self.next_poll, trace.at(self.next_poll));
            self.next_poll += self.interval;
        }
    }

    /// The sampling cadence.
    pub fn interval(&self) -> f64 {
        self.interval
    }

    /// The retained history.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Time of the next scheduled poll.
    pub fn next_poll(&self) -> f64 {
        self.next_poll
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polls_on_cadence() {
        let trace = Trace::from_fn(0.0, 1.0, 100, |t| t);
        let mut s = Sensor::new("cpu:x", 5.0, 64, 0.0);
        s.poll_until(&trace, 20.0);
        assert_eq!(s.series().len(), 5); // t = 0,5,10,15,20
        assert_eq!(s.series().times(), vec![0.0, 5.0, 10.0, 15.0, 20.0]);
        assert_eq!(s.series().values(), vec![0.0, 5.0, 10.0, 15.0, 20.0]);
    }

    #[test]
    fn incremental_polling_does_not_duplicate() {
        let trace = Trace::constant(0.0, 1.0, 0.5, 100);
        let mut s = Sensor::new("cpu:x", 5.0, 64, 0.0);
        s.poll_until(&trace, 9.9);
        assert_eq!(s.series().len(), 2);
        s.poll_until(&trace, 9.9); // no-op
        assert_eq!(s.series().len(), 2);
        s.poll_until(&trace, 30.0);
        assert_eq!(s.series().len(), 7);
    }

    #[test]
    fn capacity_bounds_history() {
        let trace = Trace::constant(0.0, 1.0, 1.0, 1000);
        let mut s = Sensor::new("cpu:x", 1.0, 10, 0.0);
        s.poll_until(&trace, 500.0);
        assert_eq!(s.series().len(), 10);
        assert_eq!(s.series().last().unwrap().0, 500.0);
    }

    #[test]
    fn start_offset_respected() {
        let trace = Trace::constant(0.0, 1.0, 1.0, 100);
        let mut s = Sensor::new("cpu:x", 5.0, 16, 2.5);
        s.poll_until(&trace, 12.5);
        assert_eq!(s.series().times(), vec![2.5, 7.5, 12.5]);
    }
}
