//! Resource sensors: periodic samplers of simulated resource traces.
//!
//! The real NWS runs sensor processes on each host, measuring CPU
//! availability and point-to-point bandwidth on a fixed cadence. Here a
//! sensor polls a [`Trace`] — the simulated ground truth — every
//! `interval` seconds and retains the history in a [`TimeSeries`].
//!
//! Sensors are fault-aware: [`Sensor::poll_until_with`] routes every
//! scheduled poll through an optional
//! [`prodpred_simgrid::faults::SensorFaults`] view, which may drop the
//! poll, deliver a stale (delayed) value, spike it, or corrupt it.
//! Non-finite measurements — whatever their origin — are discarded and
//! counted rather than pushed, so a corrupted reading can never poison
//! the history or panic the service.

use crate::series::TimeSeries;
use prodpred_simgrid::faults::{PollOutcome, SensorFaults};
use prodpred_simgrid::Trace;
use serde::{Deserialize, Serialize};

/// A periodic sampler of one resource.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sensor {
    /// Resource label, e.g. `"cpu:sparc2-a"`.
    pub name: String,
    interval: f64,
    next_poll: f64,
    series: TimeSeries,
    /// Index of the next scheduled poll (monotone, counts *scheduled*
    /// polls — missed ones included — so fault decisions are a pure
    /// function of the schedule).
    poll_index: u64,
    /// Scheduled polls that delivered nothing (dropout or blackout).
    missed_polls: u64,
    /// Measurements discarded because they arrived non-finite.
    corrupt_polls: u64,
}

impl Sensor {
    /// Creates a sensor polling every `interval` seconds, retaining up to
    /// `capacity` measurements, starting at time `start`.
    pub fn new(name: impl Into<String>, interval: f64, capacity: usize, start: f64) -> Self {
        assert!(interval > 0.0, "sensor interval must be positive");
        Self {
            name: name.into(),
            interval,
            next_poll: start,
            series: TimeSeries::new(capacity),
            poll_index: 0,
            missed_polls: 0,
            corrupt_polls: 0,
        }
    }

    /// Polls `trace` at every due cadence point up to and including `until`.
    ///
    /// An `until` earlier than the next scheduled poll is a no-op (the
    /// schedule never runs backwards, and nothing is recorded).
    pub fn poll_until(&mut self, trace: &Trace, until: f64) {
        self.poll_until_with(trace, until, None);
    }

    /// Polls like [`Sensor::poll_until`], with each scheduled poll routed
    /// through `faults` when present:
    ///
    /// * `Drop` — the poll is missed; the schedule still advances,
    /// * `Stale { intervals }` — the value measured `intervals` cadences
    ///   earlier arrives now (recorded at the delivery time, so the
    ///   history stays monotone while its *content* runs late),
    /// * `Spike { factor }` — the measured value is scaled by `factor`,
    /// * `Corrupt` — the measurement arrives non-finite and is discarded.
    ///
    /// Regardless of faults, any non-finite value is discarded and
    /// counted in [`Sensor::corrupt_polls`] instead of being pushed.
    pub fn poll_until_with(&mut self, trace: &Trace, until: f64, faults: Option<&SensorFaults>) {
        while self.next_poll <= until {
            let t = self.next_poll;
            let outcome = match faults {
                Some(f) => f.outcome(t, self.poll_index),
                None => PollOutcome::Deliver,
            };
            let measured = match outcome {
                PollOutcome::Deliver => Some(trace.at(t)),
                PollOutcome::Drop => {
                    self.missed_polls += 1;
                    None
                }
                PollOutcome::Stale { intervals } => {
                    let t_meas = (t - intervals as f64 * self.interval).max(trace.t0());
                    Some(trace.at(t_meas))
                }
                PollOutcome::Spike { factor } => Some(trace.at(t) * factor),
                PollOutcome::Corrupt => Some(f64::NAN),
            };
            if let Some(v) = measured {
                if v.is_finite() {
                    self.series.push(t, v);
                } else {
                    self.corrupt_polls += 1;
                }
            }
            self.next_poll += self.interval;
            self.poll_index += 1;
        }
    }

    /// The sampling cadence.
    pub fn interval(&self) -> f64 {
        self.interval
    }

    /// The retained history.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Time of the next scheduled poll.
    pub fn next_poll(&self) -> f64 {
        self.next_poll
    }

    /// Scheduled polls that delivered nothing (dropout or blackout).
    pub fn missed_polls(&self) -> u64 {
        self.missed_polls
    }

    /// Measurements discarded because they arrived non-finite.
    pub fn corrupt_polls(&self) -> u64 {
        self.corrupt_polls
    }

    /// Age of the freshest retained measurement at time `now`, in
    /// seconds. Infinite while the history is empty — with dropout or a
    /// blackout the freshest data can be arbitrarily old, and queries
    /// widen their spread accordingly.
    pub fn age_at(&self, now: f64) -> f64 {
        match self.series.last() {
            Some((t, _)) => (now - t).max(0.0),
            None => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prodpred_simgrid::faults::{FaultConfig, FaultPlan};

    #[test]
    fn polls_on_cadence() {
        let trace = Trace::from_fn(0.0, 1.0, 100, |t| t);
        let mut s = Sensor::new("cpu:x", 5.0, 64, 0.0);
        s.poll_until(&trace, 20.0);
        assert_eq!(s.series().len(), 5); // t = 0,5,10,15,20
        assert_eq!(s.series().times(), vec![0.0, 5.0, 10.0, 15.0, 20.0]);
        assert_eq!(s.series().values(), vec![0.0, 5.0, 10.0, 15.0, 20.0]);
    }

    #[test]
    fn incremental_polling_does_not_duplicate() {
        let trace = Trace::constant(0.0, 1.0, 0.5, 100);
        let mut s = Sensor::new("cpu:x", 5.0, 64, 0.0);
        s.poll_until(&trace, 9.9);
        assert_eq!(s.series().len(), 2);
        s.poll_until(&trace, 9.9); // no-op
        assert_eq!(s.series().len(), 2);
        s.poll_until(&trace, 30.0);
        assert_eq!(s.series().len(), 7);
    }

    #[test]
    fn capacity_bounds_history() {
        let trace = Trace::constant(0.0, 1.0, 1.0, 1000);
        let mut s = Sensor::new("cpu:x", 1.0, 10, 0.0);
        s.poll_until(&trace, 500.0);
        assert_eq!(s.series().len(), 10);
        assert_eq!(s.series().last().unwrap().0, 500.0);
    }

    #[test]
    fn start_offset_respected() {
        let trace = Trace::constant(0.0, 1.0, 1.0, 100);
        let mut s = Sensor::new("cpu:x", 5.0, 16, 2.5);
        s.poll_until(&trace, 12.5);
        assert_eq!(s.series().times(), vec![2.5, 7.5, 12.5]);
    }

    #[test]
    fn until_before_next_poll_is_a_noop() {
        let trace = Trace::constant(0.0, 1.0, 0.5, 100);
        let mut s = Sensor::new("cpu:x", 5.0, 16, 0.0);
        s.poll_until(&trace, 20.0);
        let polled = s.series().len();
        let next = s.next_poll();
        // Asking for a time already covered — even far in the past —
        // must not regress the schedule or record anything.
        s.poll_until(&trace, 3.0);
        s.poll_until(&trace, -100.0);
        assert_eq!(s.series().len(), polled);
        assert_eq!(s.next_poll(), next);
    }

    #[test]
    fn negative_trace_values_are_recorded_not_fatal() {
        // A (nonsensical but finite) negative availability flows through:
        // the sensor records ground truth, the service's queries stay
        // finite on top of it.
        let trace = Trace::from_fn(0.0, 1.0, 50, |t| if t < 10.0 { 0.5 } else { -0.25 });
        let mut s = Sensor::new("cpu:x", 5.0, 32, 0.0);
        s.poll_until(&trace, 45.0);
        assert_eq!(s.series().len(), 10);
        assert!(s.series().values().iter().all(|v| v.is_finite()));
        assert_eq!(s.series().last().unwrap().1, -0.25);
        assert_eq!(s.corrupt_polls(), 0);
    }

    #[test]
    fn corrupted_measurements_are_dropped_and_counted() {
        let trace = Trace::constant(0.0, 1.0, 0.5, 10_000);
        let mut cfg = FaultConfig::none(17);
        cfg.corrupt = 1.0; // every measurement arrives as NaN
        let plan = FaultPlan::new(cfg);
        let mut s = Sensor::new("cpu:x", 5.0, 64, 0.0);
        s.poll_until_with(&trace, 500.0, Some(&plan.sensor(0)));
        assert_eq!(s.series().len(), 0, "NaN must never enter the history");
        assert_eq!(s.corrupt_polls(), 101);
        assert_eq!(s.missed_polls(), 0);
        // The schedule still advanced past the corruption.
        assert_eq!(s.next_poll(), 505.0);
    }

    #[test]
    fn dropout_gap_then_catch_up_polling() {
        let trace = Trace::from_fn(0.0, 1.0, 2000, |t| t);
        let mut cfg = FaultConfig::none(3);
        cfg.blackouts.push((100.0, 300.0));
        let plan = FaultPlan::new(cfg);
        let view = plan.sensor(0);
        let mut s = Sensor::new("cpu:x", 5.0, 256, 0.0);
        s.poll_until_with(&trace, 90.0, Some(&view));
        assert_eq!(s.series().len(), 19);
        // The whole gap is missed...
        s.poll_until_with(&trace, 290.0, Some(&view));
        assert_eq!(s.age_at(290.0), 195.0);
        assert!(s.missed_polls() > 0);
        // ...and one catch-up call after the blackout resumes cleanly at
        // the cadence, with timestamps still monotone.
        s.poll_until_with(&trace, 400.0, Some(&view));
        assert_eq!(s.series().last().unwrap(), (400.0, 400.0));
        let times = s.series().times();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert!(s.age_at(400.0) < 5.0 + 1e-9);
        // No measurement inside the blackout window exists.
        assert!(!times.iter().any(|&t| (100.0..300.0).contains(&t)));
    }

    #[test]
    fn stale_delivery_records_old_values_at_new_times() {
        let trace = Trace::from_fn(0.0, 1.0, 1000, |t| t);
        let mut cfg = FaultConfig::none(5);
        cfg.delay = 1.0;
        cfg.max_delay_intervals = 3;
        let plan = FaultPlan::new(cfg);
        let mut s = Sensor::new("cpu:x", 5.0, 64, 0.0);
        s.poll_until_with(&trace, 200.0, Some(&plan.sensor(0)));
        // Every poll delivered, but late: the recorded value lags the
        // timestamp by 1..=3 cadences (clamped at the trace start).
        for (t, v) in s.series().times().into_iter().zip(s.series().values()) {
            let lag = t - v;
            assert!(
                (0.0..=15.0).contains(&lag),
                "t={t} v={v}: lag {lag} outside delay bound"
            );
        }
        let times = s.series().times();
        assert!(
            times.windows(2).all(|w| w[0] < w[1]),
            "history stays monotone"
        );
    }

    #[test]
    fn age_is_infinite_before_first_measurement() {
        let s = Sensor::new("cpu:x", 5.0, 8, 0.0);
        assert!(s.age_at(100.0).is_infinite());
    }
}
