//! Bounded time series of resource measurements.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A bounded series of `(timestamp, value)` measurements, oldest first.
///
/// The NWS keeps a sliding history per resource; when the bound is reached
/// the oldest measurement is dropped.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    capacity: usize,
    times: VecDeque<f64>,
    values: VecDeque<f64>,
}

impl TimeSeries {
    /// An empty series holding at most `capacity` measurements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "time series capacity must be positive");
        Self {
            capacity,
            times: VecDeque::with_capacity(capacity),
            values: VecDeque::with_capacity(capacity),
        }
    }

    /// Appends a measurement. Timestamps must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics on a time regression or non-finite input.
    pub fn push(&mut self, t: f64, v: f64) {
        assert!(t.is_finite() && v.is_finite(), "measurement must be finite");
        if let Some(&last) = self.times.back() {
            assert!(t >= last, "time regression: {t} < {last}");
        }
        if self.times.len() == self.capacity {
            self.times.pop_front();
            self.values.pop_front();
        }
        self.times.push_back(t);
        self.values.push_back(v);
    }

    /// Number of retained measurements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The most recent measurement.
    pub fn last(&self) -> Option<(f64, f64)> {
        match (self.times.back(), self.values.back()) {
            (Some(&t), Some(&v)) => Some((t, v)),
            _ => None,
        }
    }

    /// Values oldest-first as a contiguous vector.
    pub fn values(&self) -> Vec<f64> {
        self.values.iter().copied().collect()
    }

    /// The most recent `n` values, oldest-first (fewer if not available).
    pub fn recent(&self, n: usize) -> Vec<f64> {
        let start = self.values.len().saturating_sub(n);
        self.values.iter().skip(start).copied().collect()
    }

    /// Timestamps oldest-first.
    pub fn times(&self) -> Vec<f64> {
        self.times.iter().copied().collect()
    }

    /// Value at index `i` (0 = oldest).
    pub fn value_at(&self, i: usize) -> f64 {
        self.values[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new(10);
        assert!(s.is_empty());
        s.push(0.0, 1.0);
        s.push(5.0, 2.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some((5.0, 2.0)));
        assert_eq!(s.values(), vec![1.0, 2.0]);
        assert_eq!(s.times(), vec![0.0, 5.0]);
    }

    #[test]
    fn bounded_retention_drops_oldest() {
        let mut s = TimeSeries::new(3);
        for i in 0..5 {
            s.push(i as f64, i as f64 * 10.0);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.values(), vec![20.0, 30.0, 40.0]);
    }

    #[test]
    fn recent_window() {
        let mut s = TimeSeries::new(10);
        for i in 0..6 {
            s.push(i as f64, i as f64);
        }
        assert_eq!(s.recent(3), vec![3.0, 4.0, 5.0]);
        assert_eq!(s.recent(100).len(), 6);
    }

    #[test]
    fn equal_timestamps_allowed() {
        let mut s = TimeSeries::new(4);
        s.push(1.0, 1.0);
        s.push(1.0, 2.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic]
    fn rejects_time_regression() {
        let mut s = TimeSeries::new(4);
        s.push(2.0, 1.0);
        s.push(1.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_capacity() {
        TimeSeries::new(0);
    }
}
