//! The NWS facade: per-resource sensors plus adaptive forecasting, queried
//! for stochastic values.
//!
//! "The Network Weather Service supplied us with accurate run-time
//! information about the CPU load on our machines as well as the variance
//! of those values at 5 second intervals." A query combines the adaptive
//! forecast (the mean) with the recent measurement variance and the
//! forecaster's own error estimate (the spread), yielding the
//! `mean ± 2σ` stochastic values the prediction models consume.

use crate::forecast::AdaptiveForecaster;
use crate::sensor::Sensor;
use prodpred_simgrid::faults::{FaultPlan, BANDWIDTH_RESOURCE};
use prodpred_simgrid::Platform;
use prodpred_stochastic::{StochasticValue, Summary};
use serde::{Deserialize, Serialize};
use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks a sensor for reading, recovering from poisoning: a panic in
/// some other thread mid-read cannot have torn the sensor state (all
/// writes go through `poll_until_with`, which restores invariants), so
/// continuing with the inner value is sound and keeps the service
/// answering during partial failures.
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write analogue of [`read_lock`], with the same poison-recovery
/// rationale.
fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Which estimator produced a [`QuerySummary`]. The service falls down
/// this chain as the retained history thins out: the forecaster needs a
/// few samples to postcast, window statistics need two, and a single
/// measurement can still be reported as a point value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryMode {
    /// Full service: adaptive forecast mean + configured spread policy.
    Forecast,
    /// Degraded: mean ± sd of whatever window samples exist (2–3).
    WindowStats,
    /// Heavily degraded: the one retained measurement, zero spread.
    LastKnown,
}

/// A fault-aware query result: the stochastic value plus everything a
/// caller needs to judge how much to trust it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuerySummary {
    /// The reported `mean ± 2σ`, already staleness-widened.
    pub value: StochasticValue,
    /// Which estimator in the fallback chain produced the value.
    pub mode: QueryMode,
    /// Age of the freshest measurement at query time, in seconds.
    pub age_secs: f64,
    /// Measurements retained for this resource.
    pub samples: usize,
    /// True when fewer than `variance_window` samples back the spread
    /// estimate — the window statistics are computed over whatever
    /// exists, which is normal at startup but a degradation signal once
    /// the service has been running longer than the window.
    pub partial_window: bool,
    /// Whole sensor cadences by which the freshest measurement lags the
    /// query time (0 when data is fresh). The spread is widened by
    /// `sqrt(1 + stale_intervals)` — variance grows linearly with the
    /// unobserved gap, as for a random walk.
    pub stale_intervals: f64,
    /// True when the result should be treated with suspicion: the
    /// estimator is below [`QueryMode::Forecast`] or the data is stale.
    pub degraded: bool,
}

/// Why a query could not produce a value at all. Queries degrade before
/// they fail — this only surfaces when there is literally nothing to
/// report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The resource has no retained measurements (sensor never ran, or a
    /// blackout/dropout has outlived the retention window).
    NoData {
        /// The resource label, e.g. `"cpu:sparc2-a"`.
        resource: String,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoData { resource } => {
                write!(f, "no measurements retained for {resource}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// How the spread (the `± 2σ`) of a reported stochastic value is derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpreadPolicy {
    /// σ = the winning forecaster's one-step RMSE — the real NWS's
    /// accuracy estimate, and the default. On bursty resources this
    /// reflects how badly the next measurement can jump; on stable ones
    /// it collapses to the measurement noise.
    ForecastRmse,
    /// σ = the recent window's sample standard deviation. On multi-modal
    /// resources this includes the between-mode variance and is very
    /// conservative.
    WindowVariance,
    /// σ = sqrt(window variance + RMSE²): both failure modes combined,
    /// the most conservative option.
    Combined,
}

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct NwsConfig {
    /// Sensor cadence in seconds (the paper's NWS reported every 5 s).
    pub interval: f64,
    /// Measurements retained per resource.
    pub capacity: usize,
    /// Window (in samples) used for the variance estimate.
    pub variance_window: usize,
    /// Spread derivation.
    pub spread: SpreadPolicy,
}

impl Default for NwsConfig {
    fn default() -> Self {
        Self {
            interval: 5.0,
            capacity: 4096,
            variance_window: 24, // two minutes of 5-second samples
            spread: SpreadPolicy::ForecastRmse,
        }
    }
}

/// The Network Weather Service for one platform: one CPU sensor per
/// machine plus a bandwidth sensor on the shared segment.
///
/// Queries are `&self` (sensors live behind [`RwLock`]s) so a scheduler
/// thread can read while the monitoring thread advances.
///
/// ```
/// use prodpred_nws::{NwsConfig, NwsService};
/// use prodpred_simgrid::Platform;
///
/// let platform = Platform::platform1(7, 3600.0);
/// let nws = NwsService::attach(&platform, NwsConfig::default());
/// nws.advance_to(&platform, 600.0); // ten minutes of 5 s samples
/// let load = nws.cpu_stochastic(0).unwrap();
/// assert!((load.mean() - 0.48).abs() < 0.05, "{load}");
/// ```
pub struct NwsService {
    config: NwsConfig,
    cpu: Vec<RwLock<Sensor>>,
    bandwidth: RwLock<Sensor>,
    forecaster: AdaptiveForecaster,
    faults: Option<FaultPlan>,
    /// The furthest time the sensors have been advanced to — the "now"
    /// against which measurement staleness is judged.
    now: RwLock<f64>,
}

impl NwsService {
    /// Attaches a service to `platform`, with sensors starting at t = 0.
    pub fn attach(platform: &Platform, config: NwsConfig) -> Self {
        Self::attach_inner(platform, config, None)
    }

    /// Like [`NwsService::attach`], but every sensor poll is routed
    /// through `plan`: CPU sensor `i` uses fault stream `i`, the
    /// bandwidth sensor uses [`BANDWIDTH_RESOURCE`]. The perturbations
    /// are a pure function of the plan's seed and each poll's index, so
    /// the same plan always yields bit-identical histories.
    pub fn attach_with_faults(platform: &Platform, config: NwsConfig, plan: FaultPlan) -> Self {
        Self::attach_inner(platform, config, Some(plan))
    }

    fn attach_inner(platform: &Platform, config: NwsConfig, faults: Option<FaultPlan>) -> Self {
        let cpu = platform
            .machines
            .iter()
            .map(|m| {
                RwLock::new(Sensor::new(
                    format!("cpu:{}", m.spec.name),
                    config.interval,
                    config.capacity,
                    0.0,
                ))
            })
            .collect();
        let bandwidth = RwLock::new(Sensor::new(
            "bandwidth:segment",
            config.interval,
            config.capacity,
            0.0,
        ));
        Self {
            config,
            cpu,
            bandwidth,
            forecaster: AdaptiveForecaster::standard(),
            faults,
            now: RwLock::new(0.0),
        }
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The active configuration.
    pub fn config(&self) -> NwsConfig {
        self.config
    }

    /// Number of monitored machines.
    pub fn n_machines(&self) -> usize {
        self.cpu.len()
    }

    /// Advances every sensor to time `t`, polling the platform's traces on
    /// the configured cadence. With an attached fault plan, each poll may
    /// be dropped, delayed, spiked, or corrupted (see
    /// [`crate::sensor::Sensor::poll_until_with`]).
    pub fn advance_to(&self, platform: &Platform, t: f64) {
        for (i, (sensor, machine)) in self.cpu.iter().zip(&platform.machines).enumerate() {
            let view = self.faults.as_ref().map(|p| p.sensor(i as u64));
            write_lock(sensor).poll_until_with(&machine.load, t, view.as_ref());
        }
        let view = self.faults.as_ref().map(|p| p.sensor(BANDWIDTH_RESOURCE));
        write_lock(&self.bandwidth).poll_until_with(&platform.network.avail, t, view.as_ref());
        let mut now = write_lock(&self.now);
        *now = now.max(t);
    }

    /// The furthest time the sensors have been advanced to.
    pub fn now(&self) -> f64 {
        *read_lock(&self.now)
    }

    fn stochastic_from(&self, sensor: &RwLock<Sensor>) -> Option<StochasticValue> {
        let guard = read_lock(sensor);
        let series = guard.series();
        let forecast = self.forecaster.forecast(series)?;
        let window_sd = || {
            let recent = series.recent(self.config.variance_window);
            if recent.len() >= 2 {
                Summary::from_slice(&recent).sd()
            } else {
                0.0
            }
        };
        let sigma = match self.config.spread {
            SpreadPolicy::ForecastRmse => forecast.rmse,
            SpreadPolicy::WindowVariance => window_sd(),
            SpreadPolicy::Combined => {
                let sd = window_sd();
                (sd * sd + forecast.rmse * forecast.rmse).sqrt()
            }
        };
        Some(StochasticValue::from_mean_sd(forecast.value, sigma))
    }

    fn query_from(&self, sensor: &RwLock<Sensor>) -> Result<QuerySummary, QueryError> {
        let guard = read_lock(sensor);
        let series = guard.series();
        let samples = series.len();
        let Some((_, last_value)) = series.last() else {
            return Err(QueryError::NoData {
                resource: guard.name.clone(),
            });
        };
        let now = self.now();
        let age_secs = guard.age_at(now);
        // Fresh data lags "now" by less than one cadence; every whole
        // extra cadence of silence is one unobserved interval.
        let stale_intervals = (age_secs / guard.interval() - 1.0).max(0.0).floor();
        let window_sd = || {
            let recent = series.recent(self.config.variance_window);
            Summary::from_slice(&recent).sd()
        };
        // The fallback chain is genuinely a chain: a forecaster that
        // declines (however many samples exist) drops to window
        // statistics, and a window too thin for statistics drops to the
        // last known value, which the emptiness check above guarantees.
        let forecast = if samples >= 4 {
            self.forecaster.forecast(series)
        } else {
            None
        };
        let (base, mode) = if let Some(forecast) = forecast {
            let sigma = match self.config.spread {
                SpreadPolicy::ForecastRmse => forecast.rmse,
                SpreadPolicy::WindowVariance => window_sd(),
                SpreadPolicy::Combined => {
                    let sd = window_sd();
                    (sd * sd + forecast.rmse * forecast.rmse).sqrt()
                }
            };
            (
                StochasticValue::from_mean_sd(forecast.value, sigma),
                QueryMode::Forecast,
            )
        } else if samples >= 2 {
            let recent = series.recent(self.config.variance_window);
            let s = Summary::from_slice(&recent);
            (
                StochasticValue::from_mean_sd(s.mean(), s.sd()),
                QueryMode::WindowStats,
            )
        } else {
            (
                StochasticValue::from_mean_sd(last_value, 0.0),
                QueryMode::LastKnown,
            )
        };
        drop(guard);
        let value = base.widen((1.0 + stale_intervals).sqrt());
        let partial_window = samples < self.config.variance_window;
        Ok(QuerySummary {
            value,
            mode,
            age_secs,
            samples,
            partial_window,
            stale_intervals,
            degraded: mode != QueryMode::Forecast || stale_intervals > 0.0,
        })
    }

    /// Fault-aware CPU availability query for machine `i`.
    ///
    /// Unlike [`NwsService::cpu_stochastic`] this never degrades
    /// silently: the summary reports which estimator produced the value
    /// (the chain is forecast → window statistics → last-known value),
    /// how old the freshest measurement is, whether the variance window
    /// is only partially filled, and the spread is widened by
    /// `sqrt(1 + stale_intervals)` so confidence decays with sensor
    /// silence. Only an empty history is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`QueryError`] only when the series holds no measurement
    /// history at all.
    pub fn cpu_query(&self, i: usize) -> Result<QuerySummary, QueryError> {
        self.query_from(&self.cpu[i])
    }

    /// Fault-aware available-bandwidth-fraction query; see
    /// [`NwsService::cpu_query`] for the degradation contract.
    ///
    /// # Errors
    ///
    /// Returns a [`QueryError`] only when the series holds no measurement
    /// history at all.
    pub fn bandwidth_fraction_query(&self) -> Result<QuerySummary, QueryError> {
        self.query_from(&self.bandwidth)
    }

    /// Fault-aware available-bandwidth query in bytes/second.
    ///
    /// # Errors
    ///
    /// Returns a [`QueryError`] only when the series holds no measurement
    /// history at all.
    pub fn bandwidth_query(&self, platform: &Platform) -> Result<QuerySummary, QueryError> {
        self.bandwidth_fraction_query().map(|mut q| {
            q.value = q.value.scale(platform.network.spec.dedicated_bw);
            q
        })
    }

    /// Scheduled polls machine `i`'s sensor missed (dropout/blackout),
    /// and measurements it discarded as corrupt.
    pub fn cpu_sensor_health(&self, i: usize) -> (u64, u64) {
        let guard = read_lock(&self.cpu[i]);
        (guard.missed_polls(), guard.corrupt_polls())
    }

    /// Stochastic CPU availability for machine `i` at the current horizon.
    /// `None` until the first measurement arrives.
    ///
    /// Degrades *silently*: with fewer than `variance_window` samples the
    /// spread is computed over whatever window exists (and reads 0.0
    /// below two samples) with no indication in the return value. Use
    /// [`NwsService::cpu_query`] when that distinction matters.
    pub fn cpu_stochastic(&self, i: usize) -> Option<StochasticValue> {
        self.stochastic_from(&self.cpu[i])
    }

    /// Stochastic available-bandwidth *fraction* of the shared segment.
    pub fn bandwidth_fraction_stochastic(&self) -> Option<StochasticValue> {
        self.stochastic_from(&self.bandwidth)
    }

    /// Stochastic available bandwidth in bytes/second.
    pub fn bandwidth_stochastic(&self, platform: &Platform) -> Option<StochasticValue> {
        self.bandwidth_fraction_stochastic()
            .map(|f| f.scale(platform.network.spec.dedicated_bw))
    }

    /// Estimated autocorrelation time of machine `i`'s load, in seconds:
    /// `tau = -interval / ln(rho1)` from the lag-1 autocorrelation of the
    /// retained history. `None` until enough data (>= 8 samples) or when
    /// the series is constant.
    pub fn cpu_autocorrelation_time(&self, i: usize) -> Option<f64> {
        let v = {
            let guard = read_lock(&self.cpu[i]);
            guard.series().values()
        };
        if v.len() < 8 {
            return None;
        }
        let rho = prodpred_stochastic::stats::autocorrelation(&v, 1)?.clamp(-0.999, 0.999);
        if rho <= 0.0 {
            // Effectively uncorrelated at the sensor cadence.
            return Some(self.config.interval * 0.1);
        }
        Some(-self.config.interval / rho.ln())
    }

    /// The stochastic value of machine `i`'s load *averaged over a run of
    /// `horizon_secs`* — the paper's Section-2.1.2 observation made
    /// quantitative: "if the data changes modes frequently or
    /// unpredictably, or if the application is long-running, assuming that
    /// the data remains within a single mode is not sufficient."
    ///
    /// Mean: the current forecast regressed toward the long-run mean by
    /// the OU time-average factor `(tau/D)(1 - e^(-D/tau))`. Spread: the
    /// stationary variance of the OU time-average,
    /// `sigma^2 (2 tau/D)(1 - (tau/D)(1 - e^(-D/tau)))`, where `sigma` is
    /// the full history's standard deviation (between-mode spread
    /// included) — shrinking exactly as much as a run of that length
    /// averages over bursts.
    pub fn cpu_stochastic_for_horizon(
        &self,
        i: usize,
        horizon_secs: f64,
    ) -> Option<StochasticValue> {
        assert!(horizon_secs > 0.0, "horizon must be positive");
        let current = self.cpu_stochastic(i)?;
        let guard = read_lock(&self.cpu[i]);
        let v = guard.series().values();
        drop(guard);
        if v.len() < 8 {
            return Some(current);
        }
        let s = Summary::from_slice(&v);
        let tau = self.cpu_autocorrelation_time(i)?;
        let d = horizon_secs;
        let r = tau / d;
        let decay = 1.0 - (-d / tau).exp();
        let mean = s.mean() + (current.mean() - s.mean()) * r * decay;
        let var_avg = (s.variance() * (2.0 * r) * (1.0 - r * decay)).max(0.0);
        // The time-average variance cannot exceed the per-sample variance.
        let sigma = var_avg.min(s.variance()).sqrt();
        Some(StochasticValue::from_mean_sd(mean, sigma))
    }

    /// The paper's Section-2.1.2 multi-modal stochastic value for machine
    /// `i`: detect the modes of the retained history, weight each mode's
    /// `M_i ± SD_i` by its occupancy `P_i`, and return
    /// `sum_i P_i (M_i ± SD_i)`. Falls back to the plain stochastic value
    /// when the history is too short for mode detection.
    pub fn cpu_modal_stochastic(&self, i: usize) -> Option<StochasticValue> {
        let history = {
            let guard = read_lock(&self.cpu[i]);
            guard.series().values()
        };
        match prodpred_stochastic::fit::detect_modes(&history, Default::default()) {
            Some(model) => Some(model.weighted_average()),
            None => self.cpu_stochastic(i),
        }
    }

    /// The resource label of machine `i`'s CPU sensor, e.g.
    /// `"cpu:sparc2-a"`.
    pub fn cpu_resource_name(&self, i: usize) -> String {
        read_lock(&self.cpu[i]).name.clone()
    }

    /// The latest raw CPU measurement for machine `i`.
    pub fn cpu_last(&self, i: usize) -> Option<(f64, f64)> {
        read_lock(&self.cpu[i]).series().last()
    }

    /// The latest raw bandwidth measurement.
    pub fn bandwidth_last(&self) -> Option<(f64, f64)> {
        read_lock(&self.bandwidth).series().last()
    }

    /// A copy of machine `i`'s retained CPU history values.
    pub fn cpu_history(&self, i: usize) -> Vec<f64> {
        read_lock(&self.cpu[i]).series().values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prodpred_simgrid::Platform;

    #[test]
    fn attaches_one_sensor_per_machine() {
        let p = Platform::platform1(1, 600.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        assert_eq!(nws.n_machines(), 4);
        assert!(nws.cpu_stochastic(0).is_none(), "no data before advance");
    }

    #[test]
    fn tracks_platform1_center_mode() {
        let p = Platform::platform1(13, 1800.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        nws.advance_to(&p, 1200.0);
        // Sparc-2s sit in the 0.48 ± 0.05 mode.
        for i in 0..2 {
            let sv = nws.cpu_stochastic(i).unwrap();
            assert!((sv.mean() - 0.48).abs() < 0.04, "machine {i}: {sv}");
            assert!(sv.half_width() < 0.12, "machine {i}: {sv}");
        }
        // Fast machines near the top mode.
        for i in 2..4 {
            let sv = nws.cpu_stochastic(i).unwrap();
            assert!(sv.mean() > 0.85, "machine {i}: {sv}");
        }
    }

    #[test]
    fn actual_load_falls_in_stochastic_range() {
        let p = Platform::platform1(3, 1800.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        nws.advance_to(&p, 600.0);
        let sv = nws.cpu_stochastic(0).unwrap();
        // The availability over the next minute should sit inside (or very
        // near) the reported range in the single-mode regime.
        let future = p.machines[0].load.mean_over(600.0, 660.0);
        assert!(
            sv.widen(1.5).contains(future),
            "future {future} vs predicted {sv}"
        );
    }

    #[test]
    fn bandwidth_query_scales_to_bytes() {
        let p = Platform::platform1(4, 600.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        nws.advance_to(&p, 300.0);
        let frac = nws.bandwidth_fraction_stochastic().unwrap();
        let bytes = nws.bandwidth_stochastic(&p).unwrap();
        assert!((bytes.mean() - frac.mean() * 1.25e6).abs() < 1e-6);
        assert!(frac.mean() > 0.2 && frac.mean() < 0.6, "{frac}");
    }

    #[test]
    fn incremental_advance_is_idempotent() {
        let p = Platform::platform1(5, 600.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        nws.advance_to(&p, 100.0);
        let a = nws.cpu_stochastic(0).unwrap();
        nws.advance_to(&p, 100.0);
        let b = nws.cpu_stochastic(0).unwrap();
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.half_width(), b.half_width());
    }

    #[test]
    fn modal_stochastic_matches_configured_modes() {
        let p2 = Platform::platform2(11, 40_000.0);
        let nws = NwsService::attach(&p2, NwsConfig::default());
        nws.advance_to(&p2, 35_000.0);
        let sv = nws.cpu_modal_stochastic(0).unwrap();
        // Mean near the long-run weighted mode mean (~0.62), width from
        // within-mode sds only (narrow).
        assert!((sv.mean() - 0.62).abs() < 0.1, "{sv}");
        assert!(sv.half_width() < 0.25, "{sv}");
        // Much narrower than the window-variance view of the same data.
        let wv = NwsService::attach(
            &p2,
            NwsConfig {
                spread: SpreadPolicy::WindowVariance,
                ..Default::default()
            },
        );
        wv.advance_to(&p2, 35_000.0);
        assert!(sv.half_width() < wv.cpu_stochastic(0).unwrap().half_width());
    }

    #[test]
    fn modal_stochastic_falls_back_on_short_history() {
        let p = Platform::platform1(12, 600.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        nws.advance_to(&p, 30.0); // 7 samples: too short for modes
        let modal = nws.cpu_modal_stochastic(0).unwrap();
        let plain = nws.cpu_stochastic(0).unwrap();
        assert_eq!(modal.mean(), plain.mean());
    }

    #[test]
    fn autocorrelation_time_reflects_dwell() {
        // Bursty platform: dwell ~25 s -> tau in the tens of seconds.
        let p2 = Platform::platform2(7, 20_000.0);
        let nws = NwsService::attach(&p2, NwsConfig::default());
        nws.advance_to(&p2, 15_000.0);
        let tau = nws.cpu_autocorrelation_time(0).unwrap();
        assert!(tau > 5.0 && tau < 200.0, "tau {tau}");
    }

    #[test]
    fn horizon_scaling_shrinks_width_and_regresses_mean() {
        let p2 = Platform::platform2(8, 30_000.0);
        let nws = NwsService::attach(
            &p2,
            NwsConfig {
                spread: SpreadPolicy::WindowVariance,
                ..Default::default()
            },
        );
        nws.advance_to(&p2, 20_000.0);
        let short = nws.cpu_stochastic_for_horizon(0, 10.0).unwrap();
        let long = nws.cpu_stochastic_for_horizon(0, 2_000.0).unwrap();
        // A long run averages over bursts: its load estimate is tighter.
        assert!(
            long.half_width() < short.half_width(),
            "short {short}, long {long}"
        );
        // And its mean regresses toward the long-run mean.
        let guard_mean = {
            let v = nws.cpu_history(0);
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            (long.mean() - guard_mean).abs() <= (short.mean() - guard_mean).abs() + 1e-9,
            "long {long} should sit nearer the long-run mean {guard_mean} than short {short}"
        );
    }

    #[test]
    fn horizon_average_brackets_realized_run_average() {
        // The point of the extension: the horizon-scaled value should
        // bracket what a run of that length actually experiences.
        let p2 = Platform::platform2(9, 40_000.0);
        let nws = NwsService::attach(&p2, NwsConfig::default());
        let mut hits = 0;
        let mut total = 0;
        for k in 0..40 {
            let t = 2_000.0 + 600.0 * k as f64;
            nws.advance_to(&p2, t);
            let d = 60.0;
            let sv = nws.cpu_stochastic_for_horizon(0, d).unwrap();
            let realized = p2.machines[0].load.mean_over(t, t + d);
            total += 1;
            if sv.contains(realized) {
                hits += 1;
            }
        }
        let cov = hits as f64 / total as f64;
        assert!(cov > 0.7, "horizon coverage {cov}");
    }

    #[test]
    fn query_on_empty_history_is_typed_error() {
        let p = Platform::platform1(1, 600.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        let err = nws.cpu_query(0).unwrap_err();
        assert!(matches!(err, QueryError::NoData { .. }));
        assert!(err.to_string().contains("cpu:"));
    }

    #[test]
    fn query_fallback_chain_by_sample_count() {
        let p = Platform::platform1(2, 600.0);
        // 1 sample -> LastKnown.
        let nws = NwsService::attach(&p, NwsConfig::default());
        nws.advance_to(&p, 0.0);
        let q = nws.cpu_query(0).unwrap();
        assert_eq!(q.mode, QueryMode::LastKnown);
        assert_eq!(q.samples, 1);
        assert!(q.degraded);
        assert!(q.partial_window);
        // 3 samples -> WindowStats.
        nws.advance_to(&p, 10.0);
        let q = nws.cpu_query(0).unwrap();
        assert_eq!(q.mode, QueryMode::WindowStats);
        assert!(q.degraded);
        // Plenty of samples -> full forecast service, not degraded.
        nws.advance_to(&p, 600.0);
        let q = nws.cpu_query(0).unwrap();
        assert_eq!(q.mode, QueryMode::Forecast);
        assert!(!q.degraded);
        assert!(!q.partial_window);
        assert_eq!(q.stale_intervals, 0.0);
        // The healthy query agrees with the legacy silent path.
        let legacy = nws.cpu_stochastic(0).unwrap();
        assert_eq!(q.value.mean(), legacy.mean());
        assert_eq!(q.value.half_width(), legacy.half_width());
    }

    #[test]
    fn partial_window_is_surfaced_not_silent() {
        let p = Platform::platform1(9, 600.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        // 10 samples: enough to forecast, fewer than variance_window (24).
        nws.advance_to(&p, 45.0);
        let q = nws.cpu_query(0).unwrap();
        assert_eq!(q.samples, 10);
        assert_eq!(q.mode, QueryMode::Forecast);
        assert!(q.partial_window, "window only partially filled");
        nws.advance_to(&p, 600.0);
        assert!(!nws.cpu_query(0).unwrap().partial_window);
    }

    #[test]
    fn staleness_widens_the_spread() {
        use prodpred_simgrid::faults::{FaultConfig, FaultPlan};
        let p = Platform::platform1(4, 4000.0);
        let mut cfg = FaultConfig::none(21);
        cfg.blackouts.push((1000.0, 2000.0));
        let nws = NwsService::attach_with_faults(&p, NwsConfig::default(), FaultPlan::new(cfg));
        nws.advance_to(&p, 995.0);
        let fresh = nws.cpu_query(0).unwrap();
        assert_eq!(fresh.stale_intervals, 0.0);
        assert!(!fresh.degraded);
        // Deep in the blackout the freshest data (t = 995) is 495 s old:
        // 98 silent cadences, so the spread widens by sqrt(99) ≈ 10x.
        // The blackout delivers nothing, so the history is unchanged.
        nws.advance_to(&p, 1490.0);
        let stale = nws.cpu_query(0).unwrap();
        assert_eq!(stale.age_secs, 495.0);
        assert_eq!(stale.stale_intervals, 98.0);
        assert!(stale.degraded);
        assert!(
            (stale.value.half_width() - fresh.value.half_width() * 99.0_f64.sqrt()).abs()
                < 1e-9 * fresh.value.half_width().max(1.0),
            "fresh {fresh:?} vs stale {stale:?}"
        );
        // The mean itself is unchanged by staleness.
        assert_eq!(stale.value.mean(), fresh.value.mean());
    }

    #[test]
    fn blackout_from_attach_yields_no_data() {
        use prodpred_simgrid::faults::{FaultConfig, FaultPlan};
        // The blackout opens before the first scheduled poll, so the
        // whole query lives inside it: no sensor ever delivers, and
        // every query is the typed empty-history error — for CPU and
        // bandwidth alike — rather than a panic or a fabricated value.
        let p = Platform::platform1(3, 600.0);
        let mut cfg = FaultConfig::none(7);
        cfg.blackouts.push((0.0, 1e9));
        let nws = NwsService::attach_with_faults(&p, NwsConfig::default(), FaultPlan::new(cfg));
        nws.advance_to(&p, 500.0);
        for i in 0..nws.n_machines() {
            assert!(matches!(nws.cpu_query(i), Err(QueryError::NoData { .. })));
            assert!(nws.cpu_stochastic(i).is_none());
        }
        assert!(matches!(
            nws.bandwidth_fraction_query(),
            Err(QueryError::NoData { .. })
        ));
        let (missed, _) = nws.cpu_sensor_health(0);
        assert!(missed > 0, "the silence is accounted, not invisible");
    }

    #[test]
    fn spread_widening_is_monotone_in_silence() {
        use prodpred_simgrid::faults::{FaultConfig, FaultPlan};
        // Warm up on live data, then open a long blackout and query at
        // ever-later times: each extra silent cadence must widen the
        // spread (sqrt(1 + stale_intervals) is strictly increasing), and
        // the mean must stay pinned at the last pre-blackout forecast.
        let p = Platform::platform1(11, 4000.0);
        let mut cfg = FaultConfig::none(5);
        cfg.blackouts.push((600.0, 1e9));
        let nws = NwsService::attach_with_faults(&p, NwsConfig::default(), FaultPlan::new(cfg));
        nws.advance_to(&p, 595.0);
        let baseline = nws.cpu_query(1).unwrap();
        assert_eq!(baseline.stale_intervals, 0.0);
        let mut prev = baseline;
        // One cadence (5 s) deeper into the blackout per step. Data
        // that lags by no more than one cadence still counts as fresh,
        // so the first silent poll widens nothing and every later one
        // widens strictly.
        for step in 1..=20 {
            nws.advance_to(&p, 595.0 + 5.0 * step as f64);
            let q = nws.cpu_query(1).unwrap();
            assert_eq!(q.stale_intervals, (step - 1) as f64);
            if step >= 2 {
                assert!(q.degraded);
                assert!(
                    q.value.half_width() > prev.value.half_width(),
                    "step {step}: {q:?} not wider than {prev:?}"
                );
            } else {
                assert_eq!(q.value.half_width(), baseline.value.half_width());
            }
            assert_eq!(q.value.mean(), baseline.value.mean());
            prev = q;
        }
        // And the widening matches the contract exactly.
        assert!(
            (prev.value.half_width() - baseline.value.half_width() * 20.0_f64.sqrt()).abs()
                < 1e-9 * baseline.value.half_width().max(1.0)
        );
    }

    #[test]
    fn faulty_service_is_deterministic() {
        use prodpred_simgrid::faults::{FaultConfig, FaultPlan};
        let run = || {
            let p = Platform::platform1(8, 3000.0);
            let plan = FaultPlan::new(FaultConfig::with_intensity(42, 0.8));
            let nws = NwsService::attach_with_faults(&p, NwsConfig::default(), plan);
            nws.advance_to(&p, 2500.0);
            let q = nws.cpu_query(0).unwrap();
            (
                nws.cpu_history(0),
                q.value.mean().to_bits(),
                q.value.half_width().to_bits(),
                nws.cpu_sensor_health(0),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bandwidth_query_scales_like_stochastic() {
        let p = Platform::platform1(4, 600.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        nws.advance_to(&p, 300.0);
        let frac = nws.bandwidth_fraction_query().unwrap();
        let bytes = nws.bandwidth_query(&p).unwrap();
        assert!((bytes.value.mean() - frac.value.mean() * 1.25e6).abs() < 1e-6);
        assert_eq!(bytes.mode, QueryMode::Forecast);
    }

    #[test]
    fn history_accumulates_at_cadence() {
        let p = Platform::platform1(6, 600.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        nws.advance_to(&p, 60.0);
        // t = 0..60 at 5 s: 13 samples.
        assert_eq!(nws.cpu_history(0).len(), 13);
        assert_eq!(nws.cpu_last(0).unwrap().0, 60.0);
    }
}
