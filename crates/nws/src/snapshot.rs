//! Immutable forecast snapshots: the NWS query surface frozen at one
//! instant, for epoch-published prediction serving.
//!
//! A long-lived prediction service splits *ingest* (advancing sensors,
//! running the forecaster tournament) from *query* (turning frozen
//! stochastic values into execution-time predictions). The seam between
//! the two is [`ForecastSnapshot`]: everything a predictor can ask the
//! live [`NwsService`] — instantaneous stochastic values, fault-aware
//! query summaries, modal averages, horizon-scaled values, bandwidth —
//! captured once per publish epoch into a plain immutable value. The
//! ingest thread pays the forecaster-tournament cost once per epoch;
//! thousands of concurrent readers then answer from the snapshot without
//! touching a sensor lock.
//!
//! Every accessor is pinned **bit-identical** to the live method it
//! mirrors (`crates/tests/service_core.rs`): a snapshot taken at sensor
//! time `t` answers exactly what the live service would have answered at
//! `t`, for every machine, load source, and staleness mode.

use crate::service::{NwsService, QueryError, QuerySummary};
use prodpred_stochastic::{StochasticValue, Summary};
use serde::{Deserialize, Serialize};

/// The per-machine statistics backing horizon-scaled queries
/// ([`ForecastSnapshot::cpu_stochastic_for_horizon`]): the retained
/// history summarized once at capture time, so the Ornstein–Uhlenbeck
/// time-average formula can be replayed for any run length without the
/// history itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HorizonBasis {
    /// Retained samples at capture time.
    pub samples: usize,
    /// Full-history mean (between-mode spread included).
    pub mean: f64,
    /// Full-history variance.
    pub variance: f64,
    /// Estimated autocorrelation time in seconds
    /// ([`NwsService::cpu_autocorrelation_time`]); `None` below 8 samples
    /// or on a constant series.
    pub tau: Option<f64>,
}

/// One machine's frozen query surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSnapshot {
    /// The sensor's resource label, e.g. `"cpu:sparc2-a"` — carried so
    /// [`QueryError::NoData`] from a snapshot names the same resource the
    /// live service would.
    pub resource: String,
    /// [`NwsService::cpu_stochastic`] at capture (the silent forecast
    /// path); `None` before the first measurement.
    pub stochastic: Option<StochasticValue>,
    /// [`NwsService::cpu_query`] at capture (the fault-aware path, with
    /// staleness widening baked in); `None` on an empty history.
    pub query: Option<QuerySummary>,
    /// [`NwsService::cpu_modal_stochastic`] at capture.
    pub modal: Option<StochasticValue>,
    /// History statistics for horizon-scaled replays.
    pub horizon: HorizonBasis,
}

/// The NWS query surface frozen at one publish epoch: a pure value, safe
/// to share immutably across any number of reader threads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForecastSnapshot {
    /// Publish epoch (assigned by the publisher; the NWS itself is
    /// epoch-agnostic).
    pub epoch: u64,
    /// Sensor clock at capture ([`NwsService::now`]).
    pub captured_at: f64,
    /// Per-machine frozen views, indexed like the platform's machines.
    pub machines: Vec<MachineSnapshot>,
    /// [`NwsService::bandwidth_fraction_stochastic`] at capture.
    pub bandwidth_stochastic: Option<StochasticValue>,
    /// [`NwsService::bandwidth_fraction_query`] at capture.
    pub bandwidth_query: Option<QuerySummary>,
}

impl NwsService {
    /// Freezes the full query surface into an immutable
    /// [`ForecastSnapshot`] labelled `epoch`.
    ///
    /// This is the once-per-epoch cost of the prediction service's
    /// ingest side: it runs the forecaster tournament and mode detection
    /// for every machine, so queries against the snapshot never do.
    pub fn snapshot(&self, epoch: u64) -> ForecastSnapshot {
        let machines = (0..self.n_machines())
            .map(|i| {
                let history = self.cpu_history(i);
                let (mean, variance) = if history.len() >= 2 {
                    let s = Summary::from_slice(&history);
                    (s.mean(), s.variance())
                } else {
                    (history.first().copied().unwrap_or(0.0), 0.0)
                };
                MachineSnapshot {
                    resource: self.cpu_resource_name(i),
                    stochastic: self.cpu_stochastic(i),
                    query: self.cpu_query(i).ok(),
                    modal: self.cpu_modal_stochastic(i),
                    horizon: HorizonBasis {
                        samples: history.len(),
                        mean,
                        variance,
                        tau: self.cpu_autocorrelation_time(i),
                    },
                }
            })
            .collect();
        ForecastSnapshot {
            epoch,
            captured_at: self.now(),
            machines,
            bandwidth_stochastic: self.bandwidth_fraction_stochastic(),
            bandwidth_query: self.bandwidth_fraction_query().ok(),
        }
    }
}

impl ForecastSnapshot {
    /// Number of machines captured.
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// Frozen [`NwsService::cpu_stochastic`].
    pub fn cpu_stochastic(&self, i: usize) -> Option<StochasticValue> {
        self.machines[i].stochastic
    }

    /// Frozen [`NwsService::cpu_query`].
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::NoData`] exactly when the live query at
    /// capture time did: the machine's history was empty.
    pub fn cpu_query(&self, i: usize) -> Result<QuerySummary, QueryError> {
        self.machines[i].query.ok_or_else(|| QueryError::NoData {
            resource: self.machines[i].resource.clone(),
        })
    }

    /// Frozen [`NwsService::cpu_modal_stochastic`].
    pub fn cpu_modal_stochastic(&self, i: usize) -> Option<StochasticValue> {
        self.machines[i].modal
    }

    /// Frozen [`NwsService::cpu_stochastic_for_horizon`]: the same
    /// Ornstein–Uhlenbeck time-average formula replayed from the
    /// captured [`HorizonBasis`], bit-identical to the live path for any
    /// `horizon_secs`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon_secs` is not positive (the live contract).
    pub fn cpu_stochastic_for_horizon(
        &self,
        i: usize,
        horizon_secs: f64,
    ) -> Option<StochasticValue> {
        assert!(horizon_secs > 0.0, "horizon must be positive");
        let current = self.cpu_stochastic(i)?;
        let basis = &self.machines[i].horizon;
        if basis.samples < 8 {
            return Some(current);
        }
        let tau = basis.tau?;
        let d = horizon_secs;
        let r = tau / d;
        let decay = 1.0 - (-d / tau).exp();
        let mean = basis.mean + (current.mean() - basis.mean) * r * decay;
        let var_avg = (basis.variance * (2.0 * r) * (1.0 - r * decay)).max(0.0);
        // The time-average variance cannot exceed the per-sample variance.
        let sigma = var_avg.min(basis.variance).sqrt();
        Some(StochasticValue::from_mean_sd(mean, sigma))
    }

    /// Frozen [`NwsService::bandwidth_fraction_stochastic`].
    pub fn bandwidth_fraction_stochastic(&self) -> Option<StochasticValue> {
        self.bandwidth_stochastic
    }

    /// Frozen [`NwsService::bandwidth_fraction_query`].
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::NoData`] exactly when the live query at
    /// capture time did: the bandwidth sensor's history was empty.
    pub fn bandwidth_fraction_query(&self) -> Result<QuerySummary, QueryError> {
        self.bandwidth_query.ok_or_else(|| QueryError::NoData {
            resource: "bandwidth:segment".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::NwsConfig;
    use prodpred_simgrid::Platform;

    fn bits(v: StochasticValue) -> (u64, u64) {
        (v.mean().to_bits(), v.half_width().to_bits())
    }

    #[test]
    fn snapshot_mirrors_live_queries_bitwise() {
        let p = Platform::platform2(17, 30_000.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        nws.advance_to(&p, 20_000.0);
        let snap = nws.snapshot(3);
        assert_eq!(snap.epoch, 3);
        assert_eq!(snap.captured_at, nws.now());
        assert_eq!(snap.n_machines(), nws.n_machines());
        for i in 0..nws.n_machines() {
            assert_eq!(
                snap.cpu_stochastic(i).map(bits),
                nws.cpu_stochastic(i).map(bits)
            );
            assert_eq!(
                snap.cpu_query(i).unwrap().value.mean().to_bits(),
                nws.cpu_query(i).unwrap().value.mean().to_bits()
            );
            assert_eq!(
                snap.cpu_modal_stochastic(i).map(bits),
                nws.cpu_modal_stochastic(i).map(bits)
            );
            for d in [1.0, 60.0, 600.0, 5000.0] {
                assert_eq!(
                    snap.cpu_stochastic_for_horizon(i, d).map(bits),
                    nws.cpu_stochastic_for_horizon(i, d).map(bits),
                    "machine {i}, horizon {d}"
                );
            }
        }
        assert_eq!(
            snap.bandwidth_fraction_stochastic().map(bits),
            nws.bandwidth_fraction_stochastic().map(bits)
        );
    }

    #[test]
    fn snapshot_is_immutable_under_further_ingest() {
        let p = Platform::platform1(5, 3600.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        nws.advance_to(&p, 600.0);
        let snap = nws.snapshot(1);
        let before = snap.cpu_stochastic(0).map(bits);
        nws.advance_to(&p, 1800.0);
        // The live service moved on; the snapshot did not.
        assert_eq!(snap.cpu_stochastic(0).map(bits), before);
        assert_ne!(
            nws.snapshot(2).cpu_stochastic(0).map(bits),
            before,
            "fresh data should move the live forecast"
        );
    }

    #[test]
    fn empty_history_snapshot_yields_typed_no_data() {
        let p = Platform::platform1(1, 600.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        let snap = nws.snapshot(0);
        let err = snap.cpu_query(0).unwrap_err();
        assert!(matches!(err, QueryError::NoData { .. }));
        assert!(err.to_string().contains("cpu:"));
        assert!(snap.cpu_stochastic(0).is_none());
        assert!(matches!(
            snap.bandwidth_fraction_query(),
            Err(QueryError::NoData { .. })
        ));
    }

    #[test]
    fn short_history_horizon_falls_back_to_current() {
        let p = Platform::platform1(2, 600.0);
        let nws = NwsService::attach(&p, NwsConfig::default());
        nws.advance_to(&p, 25.0); // 6 samples: below the 8-sample floor
        let snap = nws.snapshot(0);
        assert_eq!(
            snap.cpu_stochastic_for_horizon(0, 100.0).map(bits),
            snap.cpu_stochastic(0).map(bits)
        );
    }
}
