//! Property-based tests for the NWS: forecaster sanity over arbitrary
//! histories and series retention invariants.

use prodpred_nws::forecast::{
    postcast_mse, AdaptiveForecaster, ExpSmoothing, Forecaster, LastValue, RunningMean,
    SlidingMean, SlidingMedian,
};
use prodpred_nws::TimeSeries;
use proptest::prelude::*;

fn history() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1.0, 2..120)
}

proptest! {
    #[test]
    fn averaging_forecasters_stay_in_convex_hull(h in history()) {
        let lo = h.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = h.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let forecasters: Vec<Box<dyn Forecaster>> = vec![
            Box::new(LastValue),
            Box::new(RunningMean),
            Box::new(SlidingMean { window: 8 }),
            Box::new(SlidingMedian { window: 8 }),
            Box::new(ExpSmoothing { alpha: 0.4 }),
        ];
        for f in &forecasters {
            let v = f.forecast(&h).unwrap();
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "{} gave {v} outside [{lo},{hi}]", f.name());
        }
    }

    #[test]
    fn postcast_mse_nonnegative_and_zero_for_constant(h in history(), c in 0.0f64..10.0) {
        let m = postcast_mse(&LastValue, &h).unwrap();
        prop_assert!(m >= 0.0);
        let constant = vec![c; h.len().max(2)];
        prop_assert_eq!(postcast_mse(&LastValue, &constant), Some(0.0));
    }

    #[test]
    fn adaptive_never_beaten_by_every_member(h in history()) {
        // The adaptive pick minimizes postcast MSE among members, so its
        // winner's MSE is <= each member's.
        let mut series = TimeSeries::new(h.len());
        for (i, &v) in h.iter().enumerate() {
            series.push(i as f64, v);
        }
        let ens = AdaptiveForecaster::standard();
        let fc = ens.forecast(&series).unwrap();
        let winner_mse = fc.rmse * fc.rmse;
        for f in [
            &LastValue as &dyn Forecaster,
            &RunningMean,
            &SlidingMean { window: 6 },
            &SlidingMedian { window: 6 },
        ] {
            if let Some(m) = postcast_mse(f, &h) {
                prop_assert!(winner_mse <= m + 1e-12, "{} beat the adaptive pick", f.name());
            }
        }
    }

    #[test]
    fn series_retains_most_recent(capacity in 1usize..64, n in 1usize..200) {
        let mut s = TimeSeries::new(capacity);
        for i in 0..n {
            s.push(i as f64, i as f64);
        }
        prop_assert_eq!(s.len(), n.min(capacity));
        let vals = s.values();
        // The newest value is always present; the oldest retained is
        // n - len.
        prop_assert_eq!(*vals.last().unwrap() as usize, n - 1);
        prop_assert_eq!(vals[0] as usize, n - s.len());
    }

    #[test]
    fn recent_is_suffix(h in history(), k in 1usize..40) {
        let mut s = TimeSeries::new(h.len());
        for (i, &v) in h.iter().enumerate() {
            s.push(i as f64, v);
        }
        let recent = s.recent(k);
        let expect: Vec<f64> = h[h.len().saturating_sub(k)..].to_vec();
        prop_assert_eq!(recent, expect);
    }
}
