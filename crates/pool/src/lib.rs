//! # prodpred-pool
//!
//! A deterministic, std-only work pool for the evaluation harness.
//!
//! The paper's methodology is *repetition*: the same experiment replayed
//! across seeds, problem sizes, and configurations (Figures 8–17), and
//! Monte-Carlo validation of the stochastic arithmetic with up to
//! hundreds of thousands of samples. Those repeats are independent, so
//! they should use every core — but the harness's contract is that every
//! figure replays bit-for-bit from its seed. This crate provides the
//! primitives that keep both properties at once:
//!
//! * [`parallel_map`] — fan a slice of tasks over a scoped thread pool
//!   (self-scheduling over an atomic cursor, so uneven tasks balance)
//!   and merge the results **in index order**. Each task sees only its
//!   index and input; as long as the task function is a pure function of
//!   those, the output is bit-identical to the sequential map at any
//!   thread count.
//! * [`derive_seed`] — SplitMix64-based derivation of a per-task RNG
//!   seed from `(master_seed, task_index)`. Tasks never share an RNG
//!   stream, so the thread schedule cannot leak into the numbers.
//! * [`chunk_lengths`] — fixed-size chunking for sample loops (the
//!   Monte-Carlo validators), so the *chunk structure* — and therefore
//!   the floating-point merge order — is a function of the sample count
//!   alone, never of the thread count.
//! * [`num_threads`] — worker count: the `PRODPRED_THREADS` environment
//!   override, else the machine's available parallelism.
//!
//! The build container vendors all dependencies offline, so there is no
//! rayon here: just `std::thread::scope` and atomics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use: the `PRODPRED_THREADS` environment
/// variable (clamped to at least 1) when set and parseable, otherwise
/// [`std::thread::available_parallelism`] (1 if unknown).
pub fn num_threads() -> usize {
    match std::env::var("PRODPRED_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => available(),
        },
        Err(_) => available(),
    }
}

fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a caller-supplied thread count: `0` means "auto"
/// ([`num_threads`]), anything else is used as given.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        num_threads()
    } else {
        threads
    }
}

/// Derives an RNG seed for task `index` from `master`, via two SplitMix64
/// steps over well-separated state.
///
/// Nearby `(master, index)` pairs yield unrelated streams (SplitMix64 is
/// an equidistributed bijection), and the derivation depends only on the
/// pair — never on thread identity or schedule — so a parallel sweep
/// draws exactly the numbers its sequential replay would.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    // Offset the index stream by the golden ratio so (m, i+1) and
    // (m+1, i) do not collide.
    let mut state = master ^ (index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut z = splitmix64(&mut state);
    z ^= splitmix64(&mut state);
    z
}

/// One SplitMix64 step (the xoshiro authors' recommended seeder).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Splits `total` items into fixed-size chunks of `chunk` (the last chunk
/// may be short), returning each chunk's length in order.
///
/// The chunk structure depends only on `(total, chunk)`, which is what
/// makes chunked Monte-Carlo reductions thread-count-invariant: each
/// chunk has its own derived seed and its own partial accumulator, and
/// the partials are merged in chunk order.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn chunk_lengths(total: usize, chunk: usize) -> Vec<usize> {
    assert!(chunk > 0, "chunk size must be positive");
    let mut out = Vec::with_capacity(total.div_ceil(chunk));
    let mut remaining = total;
    while remaining > 0 {
        let len = remaining.min(chunk);
        out.push(len);
        remaining -= len;
    }
    out
}

/// Maps `f` over `items` on `threads` workers (0 = auto), returning the
/// results **in input order**.
///
/// Scheduling is dynamic — workers pull the next unclaimed index from a
/// shared cursor, so a long task does not stall the queue behind it —
/// but the result merge is by index, so scheduling never reorders
/// output. If `f(i, &items[i])` is a pure function of `(i, items[i])`
/// (derive any randomness with [`derive_seed`]), the returned vector is
/// bit-identical to `items.iter().enumerate().map(...)` at every thread
/// count.
///
/// When the resolved thread count is 1 (or there is at most one item),
/// the map runs **inline on the caller thread** — no spawn, no scope, no
/// channel — so single-core hosts (`PRODPRED_THREADS=1`) pay zero
/// parallelism overhead. The inline path is the literal sequential map,
/// so it is bit-identical to the threaded one by construction.
///
/// # Panics
///
/// Propagates a panic from any task.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // A worker's output: the (index, result) pairs it claimed, or the
    // panic payload to re-raise on the caller.
    type Bucket<R> = Vec<(usize, R)>;
    type JoinOutcome<R> = Result<Bucket<R>, Box<dyn std::any::Any + Send>>;

    let cursor = AtomicUsize::new(0);
    let buckets: Vec<JoinOutcome<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });

    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    for bucket in buckets {
        match bucket {
            Ok(pairs) => {
                for (i, r) in pairs {
                    slots[i] = Some(r);
                }
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index was claimed exactly once")) // tidy:allow(PP003): pool indices partition 0..n; each slot filled once
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = parallel_map(&items, 4, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        // A float reduction whose value depends on its derived seed: any
        // schedule leak or reorder would change the bits.
        let items: Vec<u64> = (0..100).collect();
        let task = |i: usize, &m: &u64| -> f64 {
            let mut state = derive_seed(m, i as u64);
            let mut acc = 0.0f64;
            for _ in 0..1000 {
                acc += (splitmix_for_test(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            }
            acc
        };
        let reference: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, m)| task(i, m).to_bits())
            .collect();
        for threads in [1usize, 2, 3, 4, 8] {
            let got: Vec<u64> = parallel_map(&items, threads, task)
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    fn splitmix_for_test(state: &mut u64) -> u64 {
        splitmix64(state)
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[5u32], 8, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn zero_threads_means_auto() {
        let items = [1u32, 2, 3];
        assert_eq!(parallel_map(&items, 0, |_, &x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn single_thread_runs_inline_on_the_caller() {
        // The satellite fix for BENCH_baseline's 0.98x single-core
        // "speedup": at threads=1 there must be no spawn at all. Every
        // task must observe the caller's own thread id.
        let caller = std::thread::current().id();
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 1, |i, &m| {
            assert_eq!(
                std::thread::current().id(),
                caller,
                "task {i} ran off the caller thread"
            );
            derive_seed(m, i as u64)
        });
        // ...and the inline result is bit-identical to the threaded one.
        let threaded = parallel_map(&items, 4, |i, &m| derive_seed(m, i as u64));
        assert_eq!(out, threaded);
    }

    #[test]
    #[should_panic(expected = "task 7 failed")]
    fn task_panic_propagates() {
        let items: Vec<usize> = (0..16).collect();
        parallel_map(&items, 4, |i, _| {
            if i == 7 {
                panic!("task 7 failed");
            }
            i
        });
    }

    #[test]
    fn derive_seed_separates_nearby_pairs() {
        // No collisions across a grid of nearby (master, index) pairs.
        let mut seen = std::collections::HashSet::new();
        for master in 0..64u64 {
            for index in 0..64u64 {
                assert!(
                    seen.insert(derive_seed(master, index)),
                    "collision at ({master}, {index})"
                );
            }
        }
        // (m, i+1) and (m+1, i) must not collide by construction.
        assert_ne!(derive_seed(3, 4), derive_seed(4, 3));
    }

    #[test]
    fn derive_seed_is_stable() {
        // Golden values: the scheme is part of the reproducibility
        // contract (committed figures replay from it), so a silent
        // change must fail a test.
        assert_eq!(derive_seed(0, 0), 0x68bc_c372_21b0_20bb);
        assert_eq!(derive_seed(42, 7), 0xf42e_fea7_d218_2cc3);
    }

    #[test]
    fn chunk_lengths_cover_and_order() {
        assert_eq!(chunk_lengths(10, 4), vec![4, 4, 2]);
        assert_eq!(chunk_lengths(8, 4), vec![4, 4]);
        assert_eq!(chunk_lengths(3, 10), vec![3]);
        assert!(chunk_lengths(0, 5).is_empty());
        let sum: usize = chunk_lengths(100_001, 4096).iter().sum();
        assert_eq!(sum, 100_001);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_panics() {
        chunk_lengths(10, 0);
    }

    #[test]
    fn env_override_wins() {
        // Only this test touches the variable; set, check, restore.
        std::env::set_var("PRODPRED_THREADS", "3");
        assert_eq!(num_threads(), 3);
        std::env::set_var("PRODPRED_THREADS", "0");
        assert_eq!(num_threads(), 1, "override clamps to at least one");
        std::env::set_var("PRODPRED_THREADS", "not-a-number");
        assert!(num_threads() >= 1, "garbage falls back to autodetect");
        std::env::remove_var("PRODPRED_THREADS");
        assert!(num_threads() >= 1);
        assert_eq!(resolve_threads(5), 5);
        assert!(resolve_threads(0) >= 1);
    }
}
