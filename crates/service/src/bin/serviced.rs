//! `serviced` — the prediction daemon.
//!
//! Default mode binds the HTTP shell and serves until killed:
//!
//! ```text
//! serviced --host 127.0.0.1 --port 8017 --seed 42
//! curl 'http://127.0.0.1:8017/predict?platform=2&n=1600&procs=4'
//! ```
//!
//! `--smoke N` instead boots on an ephemeral loopback port, replays `N`
//! seeded requests over real sockets, requires every one to come back
//! `200 OK`, prints a latency report, and exits non-zero on any error —
//! the CI `service-smoke` job runs exactly this. With `--gate FILE` the
//! smoke run also compares its socket-path p99 against the committed
//! in-process benchmark report (`BENCH_service.json`), scaled by
//! `--margin` and a floor that absorbs loopback + shared-runner noise.

use prodpred_core::supervisor::RetryPolicy;
use prodpred_service::replay::{percentile_us, request_path, ReplayReport};
use prodpred_service::{
    serve, ResilienceConfig, ServiceConfig, ServiceCore, ServiceStats, ShellConfig,
};
use prodpred_simgrid::faults::FaultConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    host: String,
    port: u16,
    seed: u64,
    workers: usize,
    tick_millis: u64,
    smoke: Option<u64>,
    gate: Option<String>,
    margin: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        host: "127.0.0.1".to_string(),
        port: 8017,
        seed: 42,
        workers: 0,
        tick_millis: 250,
        smoke: None,
        gate: None,
        margin: 20.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--host" => args.host = value("--host")?,
            "--port" => args.port = parse(&value("--port")?, "--port")?,
            "--seed" => args.seed = parse(&value("--seed")?, "--seed")?,
            "--workers" => args.workers = parse(&value("--workers")?, "--workers")?,
            "--tick-ms" => args.tick_millis = parse(&value("--tick-ms")?, "--tick-ms")?,
            "--smoke" => args.smoke = Some(parse(&value("--smoke")?, "--smoke")?),
            "--gate" => args.gate = Some(value("--gate")?),
            "--margin" => args.margin = parse(&value("--margin")?, "--margin")?,
            "--help" | "-h" => {
                println!(
                    "serviced [--host H] [--port P] [--seed S] [--workers W] [--tick-ms T]\n\
                     \x20        [--smoke N [--gate BENCH_service.json] [--margin M]]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad value for {flag}: {s}"))
}

/// One blocking HTTP GET over a fresh connection; returns `(status,
/// body)`.
fn get(addr: SocketAddr, target: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(stream, "GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn smoke(core: Arc<ServiceCore>, args: &Args, requests: u64) -> Result<ReplayReport, String> {
    let shell = ShellConfig {
        addr: format!("{}:0", args.host),
        workers: args.workers,
        tick_millis: args.tick_millis,
    };
    let mut handle = serve(core.clone(), &shell).map_err(|e| format!("bind failed: {e}"))?;
    let addr = handle.addr();
    eprintln!("smoke: daemon on {addr}, replaying {requests} requests");

    let epoch_before = core.epoch();
    let mut latencies = Vec::with_capacity(requests as usize);
    let started = Instant::now();
    let mut errors = 0u64;
    for i in 0..requests {
        let target = request_path(args.seed, i);
        let t0 = Instant::now();
        match get(addr, &target) {
            Ok((200, _)) => latencies.push(t0.elapsed().as_micros() as u64),
            Ok((status, body)) => {
                errors += 1;
                eprintln!("smoke: request {i} {target} -> {status}: {body}");
            }
            Err(e) => {
                errors += 1;
                eprintln!("smoke: request {i} {target} -> {e}");
            }
        }
    }
    let elapsed_us = started.elapsed().as_micros() as u64;
    let stats = core.stats();
    let hits_denominator = (stats.cache.hits + stats.cache.misses).max(1);
    let report = ReplayReport {
        seed: args.seed,
        requests,
        threads: 1,
        ticks: core.epoch() - epoch_before,
        elapsed_us,
        qps: requests as f64 / (elapsed_us.max(1) as f64 / 1e6),
        p50_us: percentile_us(&mut latencies.clone(), 0.50),
        p99_us: percentile_us(&mut latencies, 0.99),
        max_us: latencies.iter().copied().max().unwrap_or(0),
        cache_hit_rate: stats.cache.hits as f64 / hits_denominator as f64,
        errors,
    };
    handle.shutdown();
    if errors > 0 {
        return Err(format!("{errors} of {requests} requests failed"));
    }
    Ok(report)
}

/// Second smoke phase: boot a core whose sensors black out permanently
/// right after warmup (ingest fails every tick, the snapshot just ages)
/// and drive it over a real socket until the degraded path shows —
/// responses marked `degraded: true` and failure counters visible in
/// `/metrics` — so CI's socket job covers non-Healthy serving states.
fn degraded_smoke(args: &Args) -> Result<(), String> {
    let mut fault = FaultConfig::none(args.seed);
    fault.blackouts.push((600.0, f64::MAX)); // from warmup, forever
    let core = Arc::new(ServiceCore::new(ServiceConfig {
        seed: args.seed,
        fault: Some(fault),
        resilience: ResilienceConfig {
            // Keep serving (widened) forever: no retries to ride the
            // permanent blackout, no breaker/watchdog escalation, and an
            // unbounded stale band so the state settles Degraded→Stale
            // instead of 503ing.
            retry: RetryPolicy::none(),
            breaker_threshold: u32::MAX,
            watchdog_ticks: u64::MAX,
            stale_age_ticks: u64::MAX,
            ..ResilienceConfig::default()
        },
        ..ServiceConfig::default()
    }));
    let shell = ShellConfig {
        addr: format!("{}:0", args.host),
        workers: args.workers,
        // Tick fast so the snapshot ages past the healthy band quickly.
        tick_millis: 25,
    };
    let mut handle = serve(core, &shell).map_err(|e| format!("bind failed: {e}"))?;
    let addr = handle.addr();
    eprintln!("smoke: degraded-path daemon on {addr}");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (status, body) = get(addr, "/predict?platform=1&n=600&procs=2")
            .map_err(|e| format!("degraded probe failed: {e}"))?;
        if status == 200 && body.contains("\"degraded\":true") {
            break;
        }
        if Instant::now() > deadline {
            handle.shutdown();
            return Err(format!(
                "no degraded response within 20s (last: {status} {body})"
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let (status, body) = get(addr, "/metrics").map_err(|e| format!("metrics probe failed: {e}"))?;
    handle.shutdown();
    if status != 200 {
        return Err(format!("metrics -> {status}: {body}"));
    }
    let stats: ServiceStats =
        serde_json::from_str(&body).map_err(|e| format!("bad metrics body: {e}"))?;
    if stats.ingest.failures == 0 {
        return Err(format!("expected ingest failures in metrics: {body}"));
    }
    if stats.degraded_served == 0 {
        return Err(format!("expected degraded_served > 0 in metrics: {body}"));
    }
    eprintln!(
        "smoke: degraded path verified ({} failed ticks, {} degraded answers)",
        stats.ingest.failures, stats.degraded_served
    );
    Ok(())
}

/// p99 gate: smoke (socket path, shared runner) vs committed in-process
/// bench, with a multiplicative margin and an absolute floor.
fn gate(report: &ReplayReport, path: &str, margin: f64) -> Result<(), String> {
    let committed =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read gate file {path}: {e}"))?;
    let committed: ReplayReport = serde_json::from_str(&committed)
        .map_err(|e| format!("cannot parse gate file {path}: {e}"))?;
    let floor_us = 50_000.0; // loopback + scheduler noise on a busy runner
    let budget = (committed.p99_us as f64 * margin).max(floor_us);
    if (report.p99_us as f64) > budget {
        return Err(format!(
            "p99 {}us exceeds budget {:.0}us (committed {}us x margin {margin})",
            report.p99_us, budget, committed.p99_us
        ));
    }
    eprintln!(
        "gate: p99 {}us within budget {:.0}us (committed {}us x margin {margin})",
        report.p99_us, budget, committed.p99_us
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(why) => {
            eprintln!("serviced: {why}");
            return ExitCode::FAILURE;
        }
    };
    let core = Arc::new(ServiceCore::new(ServiceConfig {
        seed: args.seed,
        ..ServiceConfig::default()
    }));

    if let Some(requests) = args.smoke {
        let report = match smoke(core, &args, requests) {
            Ok(report) => report,
            Err(why) => {
                eprintln!("serviced: smoke failed: {why}");
                return ExitCode::FAILURE;
            }
        };
        match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("serviced: cannot render report: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Some(path) = &args.gate {
            if let Err(why) = gate(&report, path, args.margin) {
                eprintln!("serviced: gate failed: {why}");
                return ExitCode::FAILURE;
            }
        }
        if let Err(why) = degraded_smoke(&args) {
            eprintln!("serviced: degraded-path smoke failed: {why}");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let shell = ShellConfig {
        addr: format!("{}:{}", args.host, args.port),
        workers: args.workers,
        tick_millis: args.tick_millis,
    };
    match serve(core, &shell) {
        Ok(handle) => {
            eprintln!("serviced: listening on {}", handle.addr());
            // Serve until killed (CI wraps this in `timeout`).
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Err(e) => {
            eprintln!("serviced: {e}");
            ExitCode::FAILURE
        }
    }
}
