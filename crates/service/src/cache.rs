//! The prediction cache: sharded, bounded, keyed by `(query
//! configuration, snapshot epoch)`, and invalidated wholesale on every
//! epoch bump.
//!
//! A published snapshot is immutable, and the structural-model algebra
//! is a pure function of `(snapshot, query configuration)` — so a
//! prediction computed once under epoch `e` answers every later
//! identical query under `e` bit-for-bit. The cache exploits exactly
//! that window and nothing more: the moment the ingest thread publishes
//! epoch `e + 1`, every entry is dropped (stale forecasts must never be
//! served), and the first query per configuration repopulates from the
//! fresh snapshot.
//!
//! Determinism rules:
//!
//! * Shard selection is an FNV-1a fingerprint of the key's canonical
//!   words — never `RandomState` — so the same replay schedule populates
//!   the same shards in every run.
//! * Eviction is strict FIFO per shard by first-insertion order, so a
//!   bounded cache drops the same keys in the same order in every run.
//! * A hit returns a shared handle to the identical value the miss
//!   inserted, so cached and uncached paths are bit-identical trivially.

use prodpred_core::PredictorConfig;
use prodpred_stochastic::MaxStrategy;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Canonical cache key: the full query configuration flattened into
/// fixed words (floats by bit pattern), so equality is exact and
/// hashing is stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryKey([u64; 11]);

impl QueryKey {
    /// Builds the key for a `(platform, n, procs, config,
    /// fault_intensity)` query.
    pub fn new(
        platform: u8,
        n: usize,
        procs: usize,
        config: &PredictorConfig,
        fault_intensity: Option<f64>,
    ) -> Self {
        let (max_tag, max_a, max_b) = match config.max_strategy {
            MaxStrategy::ByMean => (0u64, 0u64, 0u64),
            MaxStrategy::ByUpperBound => (1, 0, 0),
            MaxStrategy::ByLowerBound => (2, 0, 0),
            MaxStrategy::Clark => (3, 0, 0),
            MaxStrategy::MonteCarlo { samples, seed } => (4, samples as u64, seed),
        };
        let dep = match config.phase_dependence {
            prodpred_stochastic::Dependence::Related => 0u64,
            prodpred_stochastic::Dependence::Unrelated => 1,
        };
        // `u64::MAX` is a NaN bit pattern, which no sane cap carries, so
        // it is free to mean "no cap".
        let cap = config.max_load_rel_width.map_or(u64::MAX, f64::to_bits);
        let source = match config.load_source {
            prodpred_core::LoadSource::Instantaneous => 0u64,
            prodpred_core::LoadSource::RunHorizon => 1,
            prodpred_core::LoadSource::ModalAverage => 2,
        };
        // Same trick as the cap word: `u64::MAX` is a NaN bit pattern no
        // validated intensity carries, so it is free to mean "healthy".
        let fault = fault_intensity.map_or(u64::MAX, f64::to_bits);
        Self([
            u64::from(platform),
            n as u64,
            procs as u64,
            config.iterations as u64,
            max_tag,
            max_a,
            max_b,
            dep,
            cap,
            (source << 1) | u64::from(config.staleness_aware),
            fault,
        ])
    }

    /// Deterministic FNV-1a fingerprint of the canonical words — the
    /// shard selector (process-stable, unlike `RandomState`).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for word in self.0 {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

/// Cache sizing.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total entries across all shards (0 disables caching).
    pub capacity: usize,
    /// Shard count (clamped to at least 1); more shards, less writer
    /// contention between concurrent miss-fills.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 4096,
            shards: 16,
        }
    }
}

/// Counters for the service's `/metrics` endpoint and the replay bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the structural-model algebra.
    pub misses: u64,
    /// Entries dropped by epoch bumps (wholesale invalidation).
    pub invalidated: u64,
    /// Entries dropped by FIFO capacity eviction.
    pub evicted: u64,
    /// Live entries right now.
    pub entries: u64,
}

struct Shard<V> {
    /// The epoch this shard's entries were computed from. Checked under
    /// the shard lock by `get`/`insert`, advanced under the same lock by
    /// `bump_to` — so a lookup can never observe "new epoch" while the
    /// shard still holds old-epoch entries, and a stale insert can never
    /// land behind the clear (no check-then-lock window).
    epoch: u64,
    map: HashMap<QueryKey, Arc<V>>,
    /// First-insertion order for deterministic FIFO eviction.
    order: VecDeque<QueryKey>,
}

/// A sharded, bounded, epoch-invalidated map from [`QueryKey`] to an
/// immutable cached value.
pub struct EpochCache<V> {
    epoch: AtomicU64,
    shards: Box<[Mutex<Shard<V>>]>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    evicted: AtomicU64,
}

impl<V> EpochCache<V> {
    /// An empty cache pinned to epoch 0 (nothing published yet).
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        let per_shard_capacity = config.capacity.div_ceil(shards);
        let shards = (0..shards)
            .map(|_| {
                Mutex::new(Shard {
                    epoch: 0,
                    map: HashMap::new(),
                    order: VecDeque::new(),
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            epoch: AtomicU64::new(0),
            shards,
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// The epoch the cache currently serves.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn shard(&self, key: &QueryKey) -> &Mutex<Shard<V>> {
        &self.shards[self.shard_index(key)]
    }

    /// The shard `key` routes to — deterministic (FNV-1a), exposed so
    /// the model-checking conformance harness can pick one key per
    /// shard.
    pub fn shard_index(&self, key: &QueryKey) -> usize {
        (key.fingerprint() % self.shards.len() as u64) as usize
    }

    /// How many shards this cache was built with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Advances the cache to `epoch`, dropping **every** entry: a new
    /// snapshot invalidates all predictions computed from the old one.
    /// Idempotent for the current epoch; ignores regressions even under
    /// concurrent callers (`fetch_max` keeps the stored epoch monotone,
    /// and the per-shard epoch only ever advances under its lock).
    pub fn bump_to(&self, epoch: u64) {
        if !self.bump_word(epoch) {
            return;
        }
        for i in 0..self.shards.len() {
            self.sweep_shard(i, epoch);
        }
    }

    /// The fetch_max half of [`Self::bump_to`]: advances the cache-wide
    /// epoch word and reports whether this caller won the advance (and
    /// so must sweep the shards). A `false` return means an equal or
    /// newer bump already owns the sweep. This is the conformance seam
    /// the `prodpred-analysis::svc` model replays.
    pub fn bump_word(&self, epoch: u64) -> bool {
        self.epoch.fetch_max(epoch, Ordering::AcqRel) < epoch
    }

    /// The per-shard half of [`Self::bump_to`]: under shard `i`'s lock,
    /// drops its entries and advances its epoch if it is still behind
    /// `epoch`. Idempotent; out-of-order sweeps from racing bumps are
    /// ignored by the same comparison.
    pub fn sweep_shard(&self, i: usize, epoch: u64) {
        let mut guard = self.shards[i]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if guard.epoch < epoch {
            self.invalidated
                .fetch_add(guard.map.len() as u64, Ordering::Relaxed);
            guard.map.clear();
            guard.order.clear();
            guard.epoch = epoch;
        }
    }

    /// Looks up `key` as of `epoch`. A lookup against any epoch other
    /// than the shard's current one is a guaranteed miss (the caller's
    /// snapshot is stale, or a concurrent bump has not reached this
    /// shard yet). The epoch comparison happens under the shard lock, so
    /// a hit is always an entry computed from the caller's own epoch.
    pub fn get(&self, epoch: u64, key: &QueryKey) -> Option<Arc<V>> {
        let guard = self
            .shard(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if epoch != guard.epoch {
            drop(guard);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        match guard.map.get(key) {
            Some(v) => {
                let v = Arc::clone(v);
                drop(guard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                drop(guard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a value computed from the `epoch` snapshot, evicting the
    /// shard's oldest entry (FIFO by first insertion) at capacity. An
    /// insert for a non-current epoch is silently dropped — its snapshot
    /// is already obsolete. Returns the shared handle serving that key
    /// (an earlier racing insert wins, keeping hits bit-identical).
    pub fn insert(&self, epoch: u64, key: QueryKey, value: V) -> Arc<V> {
        let value = Arc::new(value);
        if self.per_shard_capacity == 0 {
            return value;
        }
        let mut guard = self
            .shard(&key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // Epoch check under the shard lock: a concurrent `bump_to` that
        // has already swept this shard advanced `guard.epoch` under this
        // same lock, so the stale insert is dropped here — it can never
        // land behind the clear and be served as a fresh-epoch hit.
        if epoch != guard.epoch {
            return value;
        }
        if let Some(existing) = guard.map.get(&key) {
            return Arc::clone(existing);
        }
        if guard.order.len() == self.per_shard_capacity {
            if let Some(oldest) = guard.order.pop_front() {
                guard.map.remove(&oldest);
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
        guard.order.push_back(key);
        guard.map.insert(key, Arc::clone(&value));
        value
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).map.len() as u64)
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: usize) -> QueryKey {
        QueryKey::new(1, n, 4, &PredictorConfig::default(), None)
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let cache: EpochCache<u64> = EpochCache::new(CacheConfig::default());
        cache.bump_to(1);
        assert!(cache.get(1, &key(100)).is_none());
        cache.insert(1, key(100), 42);
        assert_eq!(*cache.get(1, &key(100)).unwrap(), 42);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn epoch_bump_drops_everything() {
        let cache: EpochCache<u64> = EpochCache::new(CacheConfig::default());
        cache.bump_to(1);
        for n in 0..100 {
            cache.insert(1, key(n), n as u64);
        }
        assert_eq!(cache.stats().entries, 100);
        cache.bump_to(2);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().invalidated, 100);
        for n in 0..100 {
            assert!(cache.get(2, &key(n)).is_none(), "stale entry served");
        }
    }

    #[test]
    fn stale_epoch_lookups_and_inserts_are_inert() {
        let cache: EpochCache<u64> = EpochCache::new(CacheConfig::default());
        cache.bump_to(5);
        cache.insert(4, key(1), 99); // computed from an old snapshot
        assert!(cache.get(5, &key(1)).is_none());
        assert!(cache.get(4, &key(1)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn fifo_eviction_is_deterministic() {
        // One shard, capacity 4: inserting 6 keys must evict the first
        // two in insertion order, every run.
        let cache: EpochCache<u64> = EpochCache::new(CacheConfig {
            capacity: 4,
            shards: 1,
        });
        cache.bump_to(1);
        for n in 0..6 {
            cache.insert(1, key(n), n as u64);
        }
        let s = cache.stats();
        assert_eq!((s.entries, s.evicted), (4, 2));
        assert!(cache.get(1, &key(0)).is_none());
        assert!(cache.get(1, &key(1)).is_none());
        for n in 2..6 {
            assert_eq!(*cache.get(1, &key(n)).unwrap(), n as u64);
        }
    }

    #[test]
    fn reinserting_a_key_keeps_the_first_value() {
        let cache: EpochCache<u64> = EpochCache::new(CacheConfig::default());
        cache.bump_to(1);
        let first = cache.insert(1, key(7), 1);
        let second = cache.insert(1, key(7), 2);
        assert_eq!((*first, *second), (1, 1), "first insert wins the key");
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn distinct_configs_get_distinct_keys() {
        let base = PredictorConfig::default();
        let a = QueryKey::new(1, 1000, 4, &base, None);
        assert_eq!(a, QueryKey::new(1, 1000, 4, &base, None));
        assert_ne!(a, QueryKey::new(2, 1000, 4, &base, None));
        assert_ne!(a, QueryKey::new(1, 1001, 4, &base, None));
        assert_ne!(a, QueryKey::new(1, 1000, 2, &base, None));
        let mut cfg = base;
        cfg.staleness_aware = true;
        assert_ne!(a, QueryKey::new(1, 1000, 4, &cfg, None));
        let mut cfg = base;
        cfg.max_load_rel_width = Some(0.25);
        assert_ne!(a, QueryKey::new(1, 1000, 4, &cfg, None));
        let mut cfg = base;
        cfg.load_source = prodpred_core::LoadSource::ModalAverage;
        assert_ne!(a, QueryKey::new(1, 1000, 4, &cfg, None));
    }

    #[test]
    fn fault_intensity_is_part_of_the_key() {
        // A faulted query must never hit a healthy entry (or vice
        // versa), and distinct intensities must not collide. `Some(0.0)`
        // and `None` answer the same bits by construction, but they are
        // still distinct keys — correct, just one redundant entry.
        let base = PredictorConfig::default();
        let healthy = QueryKey::new(1, 1000, 4, &base, None);
        let zero = QueryKey::new(1, 1000, 4, &base, Some(0.0));
        let half = QueryKey::new(1, 1000, 4, &base, Some(0.5));
        assert_ne!(healthy, zero);
        assert_ne!(healthy, half);
        assert_ne!(zero, half);
        assert_eq!(half, QueryKey::new(1, 1000, 4, &base, Some(0.5)));
    }

    #[test]
    fn bump_regressions_are_ignored_in_any_order() {
        // A lower bump arriving after a higher one (the interleaving two
        // racing callers can produce) must not regress the epoch or drop
        // the newer epoch's entries.
        let cache: EpochCache<u64> = EpochCache::new(CacheConfig::default());
        cache.bump_to(3);
        cache.insert(3, key(1), 7);
        cache.bump_to(2);
        assert_eq!(cache.epoch(), 3);
        assert_eq!(*cache.get(3, &key(1)).unwrap(), 7);
        cache.bump_to(3); // idempotent for the current epoch
        assert_eq!(*cache.get(3, &key(1)).unwrap(), 7);
    }

    #[test]
    fn bumps_racing_inserts_never_serve_cross_epoch_values() {
        // Writers insert values tagged with their epoch while a bumper
        // advances the cache; any hit must carry the reader's own epoch.
        // This is the TOCTOU shape: an insert that passes a pre-lock
        // epoch check, loses the race to a bump, and lands anyway would
        // surface here as a hit whose value names the wrong epoch.
        use std::sync::atomic::AtomicBool;
        let cache: Arc<EpochCache<u64>> = Arc::new(EpochCache::new(CacheConfig {
            capacity: 256,
            shards: 4,
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let bumper = {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for epoch in 2..300 {
                    cache.bump_to(epoch);
                    std::thread::yield_now();
                }
                stop.store(true, Ordering::Release);
            })
        };
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        let epoch = cache.epoch();
                        for n in 0..16 {
                            if let Some(v) = cache.get(epoch, &key(n)) {
                                assert_eq!(*v, epoch, "cross-epoch value served");
                            } else {
                                cache.insert(epoch, key(n), epoch);
                            }
                        }
                    }
                })
            })
            .collect();
        bumper.join().unwrap();
        for w in workers {
            w.join().unwrap();
        }
        // Whatever survived belongs to the final epoch only.
        for n in 0..16 {
            if let Some(v) = cache.get(cache.epoch(), &key(n)) {
                assert_eq!(*v, cache.epoch());
            }
        }
    }

    #[test]
    fn fingerprint_is_process_stable() {
        // Shard routing is part of the determinism contract: pin golden
        // values so a hasher change cannot silently reshuffle shards.
        assert_eq!(
            key(1000).fingerprint(),
            QueryKey::new(1, 1000, 4, &PredictorConfig::default(), None).fingerprint()
        );
        // Golden value: FNV-1a over eleven zero words (88 zero bytes).
        let zeros = QueryKey([0; 11]);
        let mut expect: u64 = 0xcbf2_9ce4_8422_2325;
        for _ in 0..88 {
            expect = expect.wrapping_mul(0x0000_0100_0000_01b3);
        }
        assert_eq!(zeros.fingerprint(), expect);
        assert_ne!(key(400).fingerprint(), key(401).fingerprint());
    }
}
