//! The pure service core: simulated platforms, NWS ingest, epoch
//! publication, and the cached query path — everything the daemon does,
//! minus the sockets.
//!
//! The core is a pure function of `(seed, tick count, query stream)`:
//! no wall clock, no I/O. The ingest side advances the simulated
//! sensors one `publish_interval` per [`ServiceCore::ingest_tick`],
//! freezes an immutable [`ForecastSnapshot`], publishes it through the
//! epoch swap, and bumps the prediction cache. The query side loads the
//! latest snapshot without locking against the writer, consults the
//! cache, and only on a miss runs the structural-model algebra against
//! the frozen snapshot. Tier-1 tests drive all of it end to end with
//! zero real I/O; the `std::net` shell in [`crate::shell`] is a veneer.

use crate::cache::{CacheConfig, CacheStats, EpochCache, QueryKey};
use crate::resilience::{
    widening_factor, Admission, IngestOutcome, IngestStats, ResilienceConfig, ServingCounters,
    ServingState, TickMirror,
};
use crate::swap::EpochSwap;
use prodpred_core::supervisor::{BreakerState, CircuitBreaker};
use prodpred_core::{FaultModel, Prediction, PredictorConfig, PredictorError, SorPredictor};
use prodpred_nws::snapshot::ForecastSnapshot;
use prodpred_nws::{NwsConfig, NwsService};
use prodpred_simgrid::faults::{FaultConfig, FaultPlan};
use prodpred_simgrid::Platform;
use prodpred_sor::decomp::partition_equal;
use prodpred_stochastic::MaxStrategy;
use prodpred_structural::{degrade, degrade_point};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// Service-wide tunables. Everything downstream — traces, sensor
/// histories, snapshots, predictions — is a deterministic function of
/// these.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Seed for both simulated platforms' load traces.
    pub seed: u64,
    /// Simulated-trace horizon in seconds; ticking past it clamps.
    pub horizon: f64,
    /// Sensor history accumulated before the first snapshot publishes,
    /// so forecasters start with a warm window.
    pub warmup: f64,
    /// Simulated seconds advanced per ingest tick (one snapshot per
    /// tick; the paper's NWS polled every 5 s).
    pub publish_interval: f64,
    /// Prediction-cache sizing.
    pub cache: CacheConfig,
    /// Sensor-level fault injection for the ingest path. `None` keeps
    /// ingest infallible (every tick publishes, exactly the pre-fault
    /// behavior); `Some` routes every NWS poll through a
    /// [`FaultPlan`], making ticks fallible and the resilience layer
    /// load-bearing.
    pub fault: Option<FaultConfig>,
    /// Retry/breaker/staleness/admission knobs (see
    /// [`ResilienceConfig`]). The defaults are inert without faults.
    pub resilience: ResilienceConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            horizon: 4.0 * 3600.0,
            warmup: 600.0,
            publish_interval: 5.0,
            cache: CacheConfig::default(),
            fault: None,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// One query against the service: which testbed, what problem, which
/// predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Testbed: 1 (four Sparc IPC-class) or 2 (four Sparc 5/10-class).
    pub platform: u8,
    /// SOR grid size (n × n, interior n − 2).
    pub n: usize,
    /// Processors the grid is partitioned across.
    pub procs: usize,
    /// Structural-model configuration.
    pub config: PredictorConfig,
    /// Optional what-if fault intensity in `[0, 1]`: when set and
    /// positive, the fault-aware degradation terms
    /// ([`prodpred_core::FaultModel`]) are applied on top of the healthy
    /// prediction. `None` and `Some(0.0)` both answer the healthy
    /// prediction (bit-identically), but cache under distinct keys.
    /// Serialized as `null` when absent (the vendored serde has no
    /// field-skipping attributes).
    pub fault_intensity: Option<f64>,
}

/// The service's answer, tagged with the snapshot epoch that produced
/// it so clients can correlate answers across the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictResponse {
    /// Echo of the requested testbed.
    pub platform: u8,
    /// Echo of the requested grid size.
    pub n: usize,
    /// Echo of the requested processor count.
    pub procs: usize,
    /// Snapshot epoch the prediction was computed from.
    pub epoch: u64,
    /// Simulated time at which that snapshot froze its sensors.
    pub captured_at: f64,
    /// Whether this answer came from the prediction cache.
    pub cache_hit: bool,
    /// Predicted execution time, mean (seconds).
    pub mean: f64,
    /// Lower edge of the stochastic prediction interval.
    pub lo: f64,
    /// Upper edge of the stochastic prediction interval.
    pub hi: f64,
    /// Conventional point prediction (all parameters at their means).
    pub point: f64,
    /// Echo of the requested fault intensity, when one was supplied;
    /// `null` on the wire for healthy queries.
    pub fault_intensity: Option<f64>,
    /// The serving state the answer was produced under.
    pub serving: ServingState,
    /// `true` when the answer was served in any non-Healthy state: the
    /// interval has been widened by snapshot age and clients should
    /// treat it as best-effort.
    pub degraded: bool,
    /// Ingest ticks elapsed since the served snapshot published (0 when
    /// fresh).
    pub snapshot_age_ticks: u64,
}

/// Liveness counters for `/metrics` and the replay bench.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Snapshots published so far (== the current epoch).
    pub epochs_published: u64,
    /// Queries answered, hits and misses both.
    pub queries: u64,
    /// Queries rejected before reaching the model.
    pub rejected: u64,
    /// Queries refused with [`ServiceError::Unavailable`] (503s; a
    /// subset of `rejected`).
    pub unavailable: u64,
    /// Cache-missing queries shed by admission control (429s; a subset
    /// of `rejected`).
    pub shed: u64,
    /// Queries answered in a non-Healthy state (`degraded: true`).
    pub degraded_served: u64,
    /// Current serving state of platform 1.
    pub serving_platform1: ServingState,
    /// Current serving state of platform 2.
    pub serving_platform2: ServingState,
    /// Supervised-ingest accounting, merged across platforms.
    pub ingest: IngestStats,
    /// Combined cache counters across both platforms.
    pub cache: CacheStats,
}

/// Everything that can go wrong answering a query.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The request was malformed (bad parameter value or combination).
    BadRequest(String),
    /// The request named a platform the service does not host.
    UnknownPlatform(u8),
    /// No snapshot has been published yet for the platform.
    NotReady {
        /// The platform still warming up.
        platform: u8,
    },
    /// The platform's snapshot is too old to answer from (serving state
    /// [`ServingState::Unavailable`]): a 503 with a Retry-After hint.
    Unavailable {
        /// The platform whose ingest has wedged.
        platform: u8,
        /// Ingest ticks since the last publish.
        age_ticks: u64,
        /// Suggested client wait before retrying, in (simulated-clock)
        /// seconds — the breaker's remaining cooldown, or one publish
        /// interval.
        retry_after_secs: u64,
    },
    /// Admission control shed the query under overload: a 429 with a
    /// Retry-After hint (the miss budget refills at the next tick).
    Overloaded {
        /// Suggested client wait before retrying, in seconds.
        retry_after_secs: u64,
    },
    /// The structural model itself refused the inputs.
    Predictor(PredictorError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadRequest(why) => write!(f, "bad request: {why}"),
            Self::UnknownPlatform(p) => write!(f, "unknown platform {p} (have 1 and 2)"),
            Self::NotReady { platform } => {
                write!(f, "platform {platform} has not published a snapshot yet")
            }
            Self::Unavailable {
                platform,
                age_ticks,
                retry_after_secs,
            } => write!(
                f,
                "platform {platform} unavailable: snapshot is {age_ticks} ticks old \
                 (retry in {retry_after_secs} s)"
            ),
            Self::Overloaded { retry_after_secs } => write!(
                f,
                "overloaded: miss budget exhausted (retry in {retry_after_secs} s)"
            ),
            Self::Predictor(e) => write!(f, "prediction failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Predictor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PredictorError> for ServiceError {
    fn from(e: PredictorError) -> Self {
        Self::Predictor(e)
    }
}

/// A published snapshot stamped with the ingest tick that produced it,
/// so the query path can judge staleness in ticks without touching the
/// ingest lock.
struct PublishedSnapshot {
    /// The ingest tick (1-based, warmup included) that published this.
    tick: u64,
    snapshot: ForecastSnapshot,
}

/// Mutable ingest state, held only for the duration of a tick (which
/// also serializes writers; the query path never touches it).
struct IngestState {
    /// Simulated "now" in seconds.
    clock: f64,
    /// Per-platform ingest circuit breaker over the simulated clock.
    breaker: CircuitBreaker,
    /// The tick of the most recent publish (watchdog reference point).
    last_publish_tick: u64,
    /// Supervised-ingest accounting for this platform.
    stats: IngestStats,
}

/// One hosted testbed: its simulated platform, live NWS, epoch-published
/// snapshots, prediction cache, and supervised-ingest state.
struct PlatformState {
    platform: Platform,
    nws: NwsService,
    published: EpochSwap<PublishedSnapshot>,
    cache: EpochCache<PredictResponse>,
    ingest: Mutex<IngestState>,
    /// Lock-free mirrors of the tick clock, breaker state, and
    /// Retry-After hint — the query path's view of ingest, refreshed at
    /// every tick without the ingest lock.
    mirror: TickMirror,
}

impl PlatformState {
    fn new(id: u8, config: &ServiceConfig) -> Self {
        let mut platform = match id {
            1 => Platform::platform1(config.seed, config.horizon),
            _ => Platform::platform2(config.seed, config.horizon),
        };
        let nws = match &config.fault {
            None => NwsService::attach(&platform, NwsConfig::default()),
            Some(fault) => {
                let plan = FaultPlan::new(fault.clone());
                plan.apply_storms(&mut platform);
                NwsService::attach_with_faults(&platform, NwsConfig::default(), plan)
            }
        };
        let res = &config.resilience;
        Self {
            platform,
            nws,
            published: EpochSwap::new(),
            cache: EpochCache::new(config.cache),
            ingest: Mutex::new(IngestState {
                clock: 0.0,
                breaker: CircuitBreaker::new(
                    res.breaker_threshold.max(1),
                    res.breaker_cooldown_secs,
                ),
                last_publish_tick: 0,
                stats: IngestStats::default(),
            }),
            mirror: TickMirror::new(config.publish_interval.ceil().max(1.0) as u64),
        }
    }

    /// One supervised ingest tick: advance the sensors by `dt` (clamped
    /// to the horizon), publish a snapshot if any sensor delivered fresh
    /// data, retry with deterministic backoff otherwise, and keep the
    /// breaker/watchdog honest. Without a configured fault the legacy
    /// infallible path runs — bit-identical to the pre-resilience
    /// service.
    fn try_tick(&self, dt: f64, config: &ServiceConfig) -> IngestOutcome {
        let mut ing = self.ingest.lock().unwrap_or_else(PoisonError::into_inner);
        let tick_no = self.mirror.next_tick();
        ing.stats.attempts += 1;
        let outcome = if config.fault.is_none() {
            ing.clock = (ing.clock + dt).min(config.horizon);
            self.nws.advance_to(&self.platform, ing.clock);
            let epoch = self.publish(&mut ing, tick_no);
            ing.stats.publishes += 1;
            IngestOutcome::Published {
                epoch,
                partial: false,
                retries: 0,
            }
        } else {
            self.supervised_tick(&mut ing, tick_no, dt, config)
        };
        // Refresh the query path's lock-free mirrors.
        let state = ing.breaker.state();
        self.mirror.set_breaker(state);
        let hint = if state == BreakerState::Open {
            (ing.breaker.open_until() - ing.clock).max(0.0).ceil() as u64
        } else {
            0
        };
        self.mirror
            .set_retry_hint(hint.max(config.publish_interval.ceil().max(1.0) as u64));
        outcome
    }

    /// Freezes and publishes the next snapshot; bumps the cache epoch.
    fn publish(&self, ing: &mut IngestState, tick_no: u64) -> u64 {
        let snapshot = self.nws.snapshot(self.published.epoch() + 1);
        let epoch = self.published.publish(PublishedSnapshot {
            tick: tick_no,
            snapshot,
        });
        self.cache.bump_to(epoch);
        ing.last_publish_tick = tick_no;
        epoch
    }

    /// The fault-exposed tick: breaker gate, then a freshness-checked
    /// poll with bounded, clock-advancing retries.
    fn supervised_tick(
        &self,
        ing: &mut IngestState,
        tick_no: u64,
        dt: f64,
        config: &ServiceConfig,
    ) -> IngestOutcome {
        let res = &config.resilience;
        if !ing.breaker.allows(ing.clock) {
            // Open and cooling down: skip the poll entirely, but let the
            // simulated deadline pass so the cooldown can elapse.
            ing.clock = (ing.clock + dt).min(config.horizon);
            ing.stats.breaker_short_circuits += 1;
            return IngestOutcome::ShortCircuited;
        }
        let total_sensors = self.platform.machines.len() + 1;
        let mut attempt: u32 = 0;
        let mut advance = dt;
        loop {
            let prev = ing.clock;
            ing.clock = (prev + advance).min(config.horizon);
            self.nws.advance_to(&self.platform, ing.clock);
            let fresh = self.fresh_sensors(prev);
            if fresh > 0 {
                let epoch = self.publish(ing, tick_no);
                ing.breaker.record_success();
                ing.stats.publishes += 1;
                let partial = fresh < total_sensors;
                if partial {
                    ing.stats.partial_publishes += 1;
                }
                if attempt > 0 {
                    ing.stats.recovered += 1;
                }
                return IngestOutcome::Published {
                    epoch,
                    partial,
                    retries: attempt,
                };
            }
            if attempt >= res.retry.max_retries {
                break;
            }
            // Backoff advances the *simulated* clock: the retry polls
            // further into the future, which is how a blackout is ridden
            // through inside one tick.
            advance = res.retry.backoff_secs(attempt);
            ing.stats.retries += 1;
            ing.stats.backoff_secs += advance;
            attempt += 1;
        }
        ing.stats.failures += 1;
        if ing.breaker.record_failure(ing.clock) {
            ing.stats.breaker_trips += 1;
        } else if ing.breaker.state() == BreakerState::Closed
            && res.watchdog_ticks != u64::MAX
            && tick_no - ing.last_publish_tick >= res.watchdog_ticks
        {
            // Wedged epoch: failures keep landing below the streak
            // threshold (or the streak resets on partial recoveries) yet
            // nothing has published for `watchdog_ticks` — force the
            // breaker open.
            ing.breaker.trip(ing.clock);
            ing.stats.breaker_trips += 1;
            ing.stats.watchdog_trips += 1;
        }
        IngestOutcome::Failed {
            attempts: attempt + 1,
        }
    }

    /// How many sensors hold a measurement recorded strictly after
    /// `prev` (i.e. delivered by the advance that just ran).
    fn fresh_sensors(&self, prev: f64) -> usize {
        let mut fresh = 0;
        for i in 0..self.nws.n_machines() {
            if matches!(self.nws.cpu_last(i), Some((t, _)) if t > prev) {
                fresh += 1;
            }
        }
        if matches!(self.nws.bandwidth_last(), Some((t, _)) if t > prev) {
            fresh += 1;
        }
        fresh
    }

    /// Snapshot age in ticks plus whether the breaker is non-closed —
    /// the two inputs of [`ServingState::derive`] — for the snapshot
    /// published at `published_tick`. Lock-free.
    fn age_and_breaker(&self, published_tick: u64) -> (u64, bool) {
        let age = self.mirror.ticks().saturating_sub(published_tick);
        (age, self.mirror.breaker_open())
    }
}

/// The daemon's heart: both testbeds plus the counters, behind a pure
/// tick/query API.
pub struct ServiceCore {
    config: ServiceConfig,
    platforms: [PlatformState; 2],
    admission: Admission,
    counters: ServingCounters,
}

impl ServiceCore {
    /// Builds the service and warms it up: sensors advanced to
    /// `config.warmup`, epoch 1 published for both platforms (fault
    /// schedules permitting), cache empty. Deterministic in `config`.
    pub fn new(config: ServiceConfig) -> Self {
        let platforms = [
            PlatformState::new(1, &config),
            PlatformState::new(2, &config),
        ];
        let admission = Admission::new(config.resilience.admission);
        let core = Self {
            config,
            platforms,
            admission,
            counters: ServingCounters::new(),
        };
        for p in &core.platforms {
            p.try_tick(core.config.warmup, &core.config);
        }
        core
    }

    /// The configuration the core was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// One ingest step: advances both platforms' sensors by
    /// `publish_interval` simulated seconds, publishes fresh snapshots,
    /// and invalidates both caches. Concurrent callers serialize; the
    /// query path is never blocked. Returns the latest shared epoch
    /// (unchanged for a platform whose tick failed — the previous
    /// snapshot stays published and ages instead).
    pub fn ingest_tick(&self) -> u64 {
        self.ingest_tick_report();
        self.epoch()
    }

    /// Like [`ServiceCore::ingest_tick`], reporting what each platform's
    /// tick did (index 0 = platform 1). The admission miss budget
    /// refills on every tick, publishing or not — the deadline passes
    /// regardless.
    pub fn ingest_tick_report(&self) -> [IngestOutcome; 2] {
        self.admission.refill();
        let a = self.platforms[0].try_tick(self.config.publish_interval, &self.config);
        let b = self.platforms[1].try_tick(self.config.publish_interval, &self.config);
        [a, b]
    }

    /// The serving state platform `id` would answer under right now.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownPlatform`] for platforms other than 1/2.
    pub fn serving(&self, id: u8) -> Result<ServingState, ServiceError> {
        let state = self.platform_state(id)?;
        Ok(match state.published.load() {
            None => ServingState::Unavailable,
            Some((_, published)) => {
                let (age, open) = state.age_and_breaker(published.tick);
                ServingState::derive(age, open, &self.config.resilience)
            }
        })
    }

    fn platform_state(&self, id: u8) -> Result<&PlatformState, ServiceError> {
        match id {
            1 => Ok(&self.platforms[0]),
            2 => Ok(&self.platforms[1]),
            other => Err(ServiceError::UnknownPlatform(other)),
        }
    }

    fn validate(req: &PredictRequest) -> Result<(), ServiceError> {
        if req.n < 16 || req.n > 20_000 {
            return Err(ServiceError::BadRequest(format!(
                "n = {} out of range [16, 20000]",
                req.n
            )));
        }
        if req.procs == 0 || req.procs > req.n - 2 {
            return Err(ServiceError::BadRequest(format!(
                "procs = {} must be in [1, n - 2]",
                req.procs
            )));
        }
        if req.config.iterations == 0 {
            return Err(ServiceError::BadRequest(
                "iterations must be at least 1".to_string(),
            ));
        }
        if let MaxStrategy::MonteCarlo { samples, .. } = req.config.max_strategy {
            if samples == 0 || samples > 1_000_000 {
                return Err(ServiceError::BadRequest(format!(
                    "mc samples = {samples} out of range [1, 1000000]"
                )));
            }
        }
        if let Some(cap) = req.config.max_load_rel_width {
            if !cap.is_finite() || cap <= 0.0 {
                return Err(ServiceError::BadRequest(format!(
                    "cap = {cap} must be finite and positive"
                )));
            }
        }
        if let Some(intensity) = req.fault_intensity {
            // The typed constructor is the only validation path: NaN,
            // infinities, and out-of-range values are all rejected here,
            // so the panicking `with_intensity` is never reachable from
            // untrusted input.
            if let Err(e) = FaultConfig::try_with_intensity(0, intensity) {
                return Err(ServiceError::BadRequest(e.to_string()));
            }
        }
        Ok(())
    }

    /// Answers one query against the latest published snapshot.
    ///
    /// The fast path is entirely lock-free with respect to the ingest
    /// writer: an epoch-swap load plus one sharded cache probe. Misses
    /// run the structural model against the frozen snapshot — whose
    /// arithmetic is bit-identical to the live service at capture time —
    /// and populate the cache for the rest of the epoch.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadRequest`] on out-of-range parameters,
    /// [`ServiceError::UnknownPlatform`] for platforms other than 1/2,
    /// [`ServiceError::NotReady`] before the first publish,
    /// [`ServiceError::Unavailable`] when the snapshot has aged out of
    /// the serving bands (503 + Retry-After),
    /// [`ServiceError::Overloaded`] when admission control sheds a
    /// cache miss (429 + Retry-After), and
    /// [`ServiceError::Predictor`] when the model rejects the inputs
    /// (e.g. a dry sensor under fault injection).
    pub fn query(&self, req: &PredictRequest) -> Result<PredictResponse, ServiceError> {
        let outcome = self.query_inner(req);
        match &outcome {
            Ok(r) => self.counters.record_served(r.degraded),
            Err(_) => self.counters.record_rejected(),
        }
        outcome
    }

    fn query_inner(&self, req: &PredictRequest) -> Result<PredictResponse, ServiceError> {
        let state = self.platform_state(req.platform)?;
        Self::validate(req)?;
        let (epoch, published) = state.published.load().ok_or(ServiceError::NotReady {
            platform: req.platform,
        })?;
        let (age, breaker_open) = state.age_and_breaker(published.tick);
        let serving = ServingState::derive(age, breaker_open, &self.config.resilience);
        if serving == ServingState::Unavailable {
            self.counters.record_unavailable();
            return Err(ServiceError::Unavailable {
                platform: req.platform,
                age_ticks: age,
                retry_after_secs: state.mirror.retry_hint(),
            });
        }
        let key = QueryKey::new(
            req.platform,
            req.n,
            req.procs,
            &req.config,
            req.fault_intensity,
        );
        // Cache hits are admitted unconditionally: they cost no model
        // work, so shedding them would only lose availability.
        if let Some(cached) = state.cache.get(epoch, &key) {
            let mut response = (*cached).clone();
            response.cache_hit = true;
            return Ok(self.finalize(response, serving, age));
        }
        let _permit = self
            .admission
            .try_admit_miss()
            .ok_or_else(|| ServiceError::Overloaded {
                retry_after_secs: self.config.publish_interval.ceil().max(1.0) as u64,
            })?;
        let response = Self::answer(&state.platform, &published.snapshot, req, epoch)?;
        let stored = state.cache.insert(epoch, key, response);
        Ok(self.finalize((*stored).clone(), serving, age))
    }

    /// Stamps a base (healthy-bits) response with the serving state it
    /// is leaving under: degradation flags, snapshot age, and the
    /// age-driven `sqrt(1 + extra)` interval widening. Inside the
    /// healthy age band the numeric fields pass through untouched, so a
    /// healthy answer is bit-identical to the pre-resilience service.
    fn finalize(&self, mut r: PredictResponse, serving: ServingState, age: u64) -> PredictResponse {
        r.serving = serving;
        r.degraded = serving != ServingState::Healthy;
        r.snapshot_age_ticks = age;
        let factor = widening_factor(age, self.config.resilience.healthy_age_ticks);
        // tidy:allow(PP004): bit-exact by contract — widening_factor returns exactly 1.0 in the healthy band, keeping healthy answers bit-identical
        if factor != 1.0 {
            let half = 0.5 * (r.hi - r.lo) * factor;
            r.lo = r.mean - half;
            r.hi = r.mean + half;
        }
        r
    }

    fn predict(
        platform: &Platform,
        snapshot: &ForecastSnapshot,
        req: &PredictRequest,
    ) -> Result<Prediction, ServiceError> {
        let predictor = SorPredictor::try_new(platform, snapshot, req.config)?;
        let strips = partition_equal(req.n - 2, req.procs);
        Ok(predictor.try_predict(req.n, &strips)?)
    }

    /// The single response-construction path shared by the cached-miss
    /// and uncached routes, so the two stay bit-identical by
    /// construction: healthy structural prediction, then — only when a
    /// positive `fault_intensity` was requested — the deterministic
    /// fault-degradation terms on top. Zero intensity applies the exact
    /// identity terms, so `fault_intensity=0` and no intensity answer
    /// the same bits.
    fn answer(
        platform: &Platform,
        snapshot: &ForecastSnapshot,
        req: &PredictRequest,
        epoch: u64,
    ) -> Result<PredictResponse, ServiceError> {
        let prediction = Self::predict(platform, snapshot, req)?;
        let mut stochastic = prediction.stochastic;
        let mut point = prediction.point;
        if let Some(intensity) = req.fault_intensity {
            let model = FaultModel::for_intensity(intensity, req.config.iterations, req.procs)
                .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
            let terms = model.terms(stochastic.mean(), snapshot.captured_at);
            stochastic = degrade(stochastic, &terms);
            point = degrade_point(point, &terms);
        }
        Ok(PredictResponse {
            platform: req.platform,
            n: req.n,
            procs: req.procs,
            epoch,
            captured_at: snapshot.captured_at,
            cache_hit: false,
            mean: stochastic.mean(),
            lo: stochastic.lo(),
            hi: stochastic.hi(),
            point,
            fault_intensity: req.fault_intensity,
            // Placeholders: `finalize` stamps the real serving state and
            // age-driven widening at answer time, so the cached base
            // entry stays state-free.
            serving: ServingState::Healthy,
            degraded: false,
            snapshot_age_ticks: 0,
        })
    }

    /// Answers the same query with the cache (and admission control)
    /// bypassed — the reference path tests pin the cached path against,
    /// bit for bit, including under degraded serving states.
    ///
    /// # Errors
    ///
    /// Same as [`ServiceCore::query`], minus
    /// [`ServiceError::Overloaded`].
    pub fn query_uncached(&self, req: &PredictRequest) -> Result<PredictResponse, ServiceError> {
        let state = self.platform_state(req.platform)?;
        Self::validate(req)?;
        let (epoch, published) = state.published.load().ok_or(ServiceError::NotReady {
            platform: req.platform,
        })?;
        let (age, breaker_open) = state.age_and_breaker(published.tick);
        let serving = ServingState::derive(age, breaker_open, &self.config.resilience);
        if serving == ServingState::Unavailable {
            return Err(ServiceError::Unavailable {
                platform: req.platform,
                age_ticks: age,
                retry_after_secs: state.mirror.retry_hint(),
            });
        }
        let response = Self::answer(&state.platform, &published.snapshot, req, epoch)?;
        Ok(self.finalize(response, serving, age))
    }

    /// The latest published epoch across both platforms. They publish in
    /// lockstep, but mid-`ingest_tick` platform 1 is briefly one ahead —
    /// taking the max keeps `/health` and [`ServiceStats`] consistent
    /// with the epoch any concurrent [`PredictResponse`] can carry.
    pub fn epoch(&self) -> u64 {
        self.platforms
            .iter()
            .map(|p| p.published.epoch())
            .max()
            .unwrap_or(0)
    }

    /// Point-in-time service counters.
    pub fn stats(&self) -> ServiceStats {
        let mut cache = CacheStats::default();
        let mut ingest = IngestStats::default();
        for p in &self.platforms {
            let s = p.cache.stats();
            cache.hits += s.hits;
            cache.misses += s.misses;
            cache.invalidated += s.invalidated;
            cache.evicted += s.evicted;
            cache.entries += s.entries;
            let ing = p.ingest.lock().unwrap_or_else(PoisonError::into_inner);
            ingest.merge(&ing.stats);
        }
        ServiceStats {
            epochs_published: self.epoch(),
            queries: self.counters.queries(),
            rejected: self.counters.rejected(),
            unavailable: self.counters.unavailable(),
            shed: self.admission.shed(),
            degraded_served: self.counters.degraded_served(),
            serving_platform1: self.serving(1).unwrap_or(ServingState::Unavailable),
            serving_platform2: self.serving(2).unwrap_or(ServingState::Unavailable),
            ingest,
            cache,
        }
    }
}

/// A convenience handle for sharing a core across threads.
pub type SharedCore = Arc<ServiceCore>;

#[cfg(test)]
mod tests {
    use super::*;
    use prodpred_core::LoadSource;

    fn small_core() -> ServiceCore {
        ServiceCore::new(ServiceConfig {
            seed: 7,
            horizon: 2000.0,
            warmup: 300.0,
            publish_interval: 5.0,
            ..ServiceConfig::default()
        })
    }

    fn req(platform: u8, n: usize) -> PredictRequest {
        PredictRequest {
            platform,
            n,
            procs: 4,
            config: PredictorConfig::default(),
            fault_intensity: None,
        }
    }

    #[test]
    fn warm_core_answers_immediately() {
        let core = small_core();
        assert_eq!(core.epoch(), 1);
        let r = core.query(&req(2, 600)).unwrap();
        assert_eq!((r.platform, r.n, r.epoch, r.cache_hit), (2, 600, 1, false));
        assert!(r.mean > 0.0 && r.lo <= r.mean && r.mean <= r.hi);
    }

    #[test]
    fn second_identical_query_is_a_cache_hit_and_bit_identical() {
        let core = small_core();
        let miss = core.query(&req(1, 800)).unwrap();
        let hit = core.query(&req(1, 800)).unwrap();
        assert!(!miss.cache_hit && hit.cache_hit);
        assert_eq!(
            (
                miss.mean.to_bits(),
                miss.lo.to_bits(),
                miss.hi.to_bits(),
                miss.point.to_bits()
            ),
            (
                hit.mean.to_bits(),
                hit.lo.to_bits(),
                hit.hi.to_bits(),
                hit.point.to_bits()
            ),
        );
    }

    #[test]
    fn cached_equals_uncached_bitwise() {
        let core = small_core();
        let r = req(2, 1000);
        let uncached = core.query_uncached(&r).unwrap();
        core.query(&r).unwrap(); // populate
        let cached = core.query(&r).unwrap();
        assert!(cached.cache_hit);
        assert_eq!(uncached.mean.to_bits(), cached.mean.to_bits());
        assert_eq!(uncached.lo.to_bits(), cached.lo.to_bits());
        assert_eq!(uncached.hi.to_bits(), cached.hi.to_bits());
        assert_eq!(uncached.point.to_bits(), cached.point.to_bits());
    }

    #[test]
    fn ingest_tick_bumps_epoch_and_invalidates() {
        let core = small_core();
        core.query(&req(1, 600)).unwrap();
        assert_eq!(core.stats().cache.entries, 1);
        assert_eq!(core.ingest_tick(), 2);
        assert_eq!(core.stats().cache.entries, 0);
        let r = core.query(&req(1, 600)).unwrap();
        assert_eq!((r.epoch, r.cache_hit), (2, false));
    }

    #[test]
    fn same_seed_same_answers_across_cores() {
        let a = small_core().query(&req(2, 1600)).unwrap();
        let b = small_core().query(&req(2, 1600)).unwrap();
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.captured_at.to_bits(), b.captured_at.to_bits());
    }

    #[test]
    fn bad_requests_are_rejected_with_typed_errors() {
        let core = small_core();
        assert!(matches!(
            core.query(&req(3, 600)),
            Err(ServiceError::UnknownPlatform(3))
        ));
        assert!(matches!(
            core.query(&req(1, 4)),
            Err(ServiceError::BadRequest(_))
        ));
        let mut r = req(1, 600);
        r.procs = 0;
        assert!(matches!(core.query(&r), Err(ServiceError::BadRequest(_))));
        let mut r = req(1, 600);
        r.config.iterations = 0;
        assert!(matches!(core.query(&r), Err(ServiceError::BadRequest(_))));
        assert_eq!(core.stats().rejected, 4);
    }

    #[test]
    fn unbounded_monte_carlo_samples_are_rejected() {
        let core = small_core();
        let mut r = req(1, 600);
        r.config.max_strategy = MaxStrategy::MonteCarlo {
            samples: 9_999_999_999,
            seed: 1,
        };
        assert!(matches!(core.query(&r), Err(ServiceError::BadRequest(_))));
        r.config.max_strategy = MaxStrategy::MonteCarlo {
            samples: 0,
            seed: 1,
        };
        assert!(matches!(core.query(&r), Err(ServiceError::BadRequest(_))));
        r.config.max_strategy = MaxStrategy::MonteCarlo {
            samples: 1_000_000,
            seed: 1,
        };
        assert!(core.query(&r).is_ok(), "cap boundary must stay accepted");
    }

    #[test]
    fn non_finite_and_non_positive_caps_are_rejected() {
        let core = small_core();
        for cap in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.25] {
            let mut r = req(1, 600);
            r.config.max_load_rel_width = Some(cap);
            assert!(
                matches!(core.query(&r), Err(ServiceError::BadRequest(_))),
                "cap = {cap} must be rejected"
            );
        }
        let mut r = req(1, 600);
        r.config.max_load_rel_width = Some(0.25);
        assert!(core.query(&r).is_ok());
    }

    #[test]
    fn bad_fault_intensities_are_rejected_with_typed_errors() {
        let core = small_core();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.1, 1.01] {
            let mut r = req(1, 600);
            r.fault_intensity = Some(bad);
            assert!(
                matches!(core.query(&r), Err(ServiceError::BadRequest(_))),
                "fault_intensity = {bad} must be rejected"
            );
        }
        for good in [0.0, 0.5, 1.0] {
            let mut r = req(1, 600);
            r.fault_intensity = Some(good);
            assert!(core.query(&r).is_ok(), "fault_intensity = {good}");
        }
    }

    #[test]
    fn zero_intensity_answers_the_healthy_bits() {
        let core = small_core();
        let healthy = core.query(&req(2, 800)).unwrap();
        let mut r = req(2, 800);
        r.fault_intensity = Some(0.0);
        let zero = core.query(&r).unwrap();
        assert!(
            !zero.cache_hit,
            "distinct key must not hit the healthy entry"
        );
        assert_eq!(zero.mean.to_bits(), healthy.mean.to_bits());
        assert_eq!(zero.lo.to_bits(), healthy.lo.to_bits());
        assert_eq!(zero.hi.to_bits(), healthy.hi.to_bits());
        assert_eq!(zero.point.to_bits(), healthy.point.to_bits());
        assert_eq!(zero.fault_intensity, Some(0.0));
        assert_eq!(healthy.fault_intensity, None);
    }

    #[test]
    fn degraded_predictions_are_monotone_in_intensity() {
        let core = small_core();
        let mut last = core.query(&req(2, 800)).unwrap();
        for intensity in [0.25, 0.5, 0.75, 1.0] {
            let mut r = req(2, 800);
            r.fault_intensity = Some(intensity);
            let degraded = core.query(&r).unwrap();
            assert!(
                degraded.mean > last.mean,
                "intensity {intensity}: {} not above {}",
                degraded.mean,
                last.mean
            );
            assert!(
                degraded.hi - degraded.lo > last.hi - last.lo,
                "intensity {intensity}: interval must widen"
            );
            assert!(degraded.point > last.point);
            last = degraded;
        }
    }

    #[test]
    fn faulted_cached_equals_uncached_bitwise() {
        let core = small_core();
        for intensity in [0.0, 0.3, 1.0] {
            let mut r = req(2, 1000);
            r.fault_intensity = Some(intensity);
            let uncached = core.query_uncached(&r).unwrap();
            core.query(&r).unwrap(); // populate
            let cached = core.query(&r).unwrap();
            assert!(cached.cache_hit, "intensity {intensity}");
            assert_eq!(uncached.mean.to_bits(), cached.mean.to_bits());
            assert_eq!(uncached.lo.to_bits(), cached.lo.to_bits());
            assert_eq!(uncached.hi.to_bits(), cached.hi.to_bits());
            assert_eq!(uncached.point.to_bits(), cached.point.to_bits());
            assert_eq!(cached.fault_intensity, Some(intensity));
        }
    }

    #[test]
    fn service_error_display_and_source() {
        use std::error::Error as _;
        let e = ServiceError::NotReady { platform: 1 };
        assert!(e.to_string().contains("platform 1"));
        assert!(e.source().is_none());
        let e = ServiceError::Predictor(PredictorError::NoData { machine: Some(0) });
        assert!(e.to_string().contains("prediction failed"));
        assert!(e.source().unwrap().to_string().contains("machine 0"));
    }

    #[test]
    fn load_source_variants_all_answer() {
        let core = small_core();
        for source in [
            LoadSource::Instantaneous,
            LoadSource::RunHorizon,
            LoadSource::ModalAverage,
        ] {
            let mut r = req(2, 600);
            r.config.load_source = source;
            let resp = core.query(&r).unwrap();
            assert!(resp.mean > 0.0, "{source:?} produced no prediction");
        }
    }

    #[test]
    fn healthy_answers_carry_healthy_serving_state() {
        let core = small_core();
        let r = core.query(&req(1, 600)).unwrap();
        assert_eq!(r.serving, ServingState::Healthy);
        assert!(!r.degraded);
        assert_eq!(r.snapshot_age_ticks, 0);
        assert_eq!(core.serving(1).unwrap(), ServingState::Healthy);
        assert!(matches!(
            core.serving(9),
            Err(ServiceError::UnknownPlatform(9))
        ));
    }

    /// A 120 s sensor blackout opening right as the first post-warmup
    /// tick polls: `(warmup + publish_interval, …)`.
    fn blackout_config(resilience: ResilienceConfig) -> ServiceConfig {
        let mut fault = FaultConfig::none(7);
        fault.blackouts.push((305.0, 425.0));
        ServiceConfig {
            seed: 7,
            horizon: 4000.0,
            warmup: 300.0,
            publish_interval: 5.0,
            fault: Some(fault),
            resilience,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn supervised_ingest_rides_through_a_blackout() {
        let core = ServiceCore::new(blackout_config(ResilienceConfig::default()));
        assert_eq!(core.epoch(), 1, "warmup published");
        // The default retry budget backs the clock across the whole
        // 120 s window inside the first tick: every tick publishes.
        for tick in 0..10 {
            let report = core.ingest_tick_report();
            assert!(
                report.iter().all(IngestOutcome::published),
                "tick {tick}: {report:?}"
            );
        }
        assert_eq!(core.epoch(), 11);
        let stats = core.stats().ingest;
        assert!(stats.retries > 0, "{stats:?}");
        assert_eq!(stats.recovered, 2, "one recovery per platform");
        assert_eq!(stats.failures, 0);
        assert_eq!(core.serving(1).unwrap(), ServingState::Healthy);
        let r = core.query(&req(1, 600)).unwrap();
        assert!(!r.degraded);
    }

    /// Failing-but-serving setup: no retries, breaker and watchdog held
    /// off, so ticks inside the blackout fail and the snapshot just ages.
    fn aging_resilience() -> ResilienceConfig {
        ResilienceConfig {
            retry: prodpred_core::supervisor::RetryPolicy::none(),
            breaker_threshold: u32::MAX,
            watchdog_ticks: u64::MAX,
            ..ResilienceConfig::default()
        }
    }

    #[test]
    fn aging_snapshot_degrades_widens_and_stays_bit_consistent() {
        let core = ServiceCore::new(blackout_config(aging_resilience()));
        let healthy = core.query(&req(1, 800)).unwrap();
        for _ in 0..3 {
            let report = core.ingest_tick_report();
            assert!(report.iter().all(|o| !o.published()), "{report:?}");
        }
        assert_eq!(core.serving(1).unwrap(), ServingState::Degraded);
        // The pre-blackout cache entry is served, degraded and widened.
        let degraded = core.query(&req(1, 800)).unwrap();
        assert!(degraded.cache_hit, "entry survives failed ticks");
        assert!(degraded.degraded);
        assert_eq!(degraded.serving, ServingState::Degraded);
        assert_eq!(degraded.snapshot_age_ticks, 3);
        assert_eq!(degraded.epoch, healthy.epoch, "no publish happened");
        assert_eq!(degraded.mean.to_bits(), healthy.mean.to_bits());
        let widen = 3.0f64.sqrt(); // sqrt(1 + (3 - healthy_age 1))
        let expect_half = 0.5 * (healthy.hi - healthy.lo) * widen;
        assert_eq!(
            degraded.lo.to_bits(),
            (degraded.mean - expect_half).to_bits()
        );
        assert_eq!(
            degraded.hi.to_bits(),
            (degraded.mean + expect_half).to_bits()
        );
        // The uncached reference path agrees bit for bit while degraded.
        let uncached = core.query_uncached(&req(1, 800)).unwrap();
        assert_eq!(uncached.lo.to_bits(), degraded.lo.to_bits());
        assert_eq!(uncached.hi.to_bits(), degraded.hi.to_bits());
        assert_eq!(uncached.mean.to_bits(), degraded.mean.to_bits());
        assert!(uncached.degraded);
        // Only the counted query path bumps the counter (the uncached
        // reference path leaves the serving counters untouched).
        assert_eq!(core.stats().degraded_served, 1);
    }

    #[test]
    fn unsupervised_core_goes_unavailable_inside_the_blackout() {
        let core = ServiceCore::new(blackout_config(ResilienceConfig::unsupervised()));
        core.ingest_tick(); // age 1: still within the fresh band
        assert!(core.query(&req(1, 600)).is_ok());
        core.ingest_tick(); // age 2: past the fresh-only policy
        assert_eq!(core.serving(1).unwrap(), ServingState::Unavailable);
        let err = core.query(&req(1, 600)).unwrap_err();
        match err {
            ServiceError::Unavailable {
                platform,
                age_ticks,
                retry_after_secs,
            } => {
                assert_eq!(platform, 1);
                assert_eq!(age_ticks, 2);
                assert!(retry_after_secs >= 1);
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }
        let stats = core.stats();
        assert_eq!(stats.unavailable, 1);
        assert_eq!(stats.serving_platform1, ServingState::Unavailable);
        assert_eq!(stats.serving_platform2, ServingState::Unavailable);
        assert!(matches!(
            core.query_uncached(&req(1, 600)),
            Err(ServiceError::Unavailable { .. })
        ));
    }

    #[test]
    fn watchdog_trips_the_breaker_on_a_wedged_epoch() {
        let res = ResilienceConfig {
            retry: prodpred_core::supervisor::RetryPolicy::none(),
            breaker_threshold: u32::MAX, // the streak alone never trips
            watchdog_ticks: 3,
            ..ResilienceConfig::default()
        };
        let core = ServiceCore::new(blackout_config(res));
        for _ in 0..3 {
            core.ingest_tick();
        }
        let stats = core.stats().ingest;
        assert_eq!(stats.watchdog_trips, 2, "one per platform: {stats:?}");
        assert_eq!(stats.breaker_trips, 2);
        // With the breaker open, the next ticks short-circuit (no poll).
        let report = core.ingest_tick_report();
        assert_eq!(report, [IngestOutcome::ShortCircuited; 2]);
        assert!(core.stats().ingest.breaker_short_circuits >= 2);
        // An open breaker escalates the serving state one level.
        assert_eq!(core.serving(1).unwrap(), ServingState::Stale);
    }

    #[test]
    fn admission_sheds_misses_but_never_hits() {
        let config = ServiceConfig {
            seed: 7,
            horizon: 2000.0,
            warmup: 300.0,
            resilience: ResilienceConfig {
                admission: crate::resilience::AdmissionConfig {
                    max_inflight_misses: u64::MAX,
                    miss_tokens_per_tick: 1,
                },
                ..ResilienceConfig::default()
            },
            ..ServiceConfig::default()
        };
        let core = ServiceCore::new(config);
        assert!(core.query(&req(1, 600)).is_ok(), "first miss admitted");
        let err = core.query(&req(1, 800)).unwrap_err();
        assert!(
            matches!(err, ServiceError::Overloaded { retry_after_secs } if retry_after_secs >= 1),
            "{err:?}"
        );
        // The hit path is never shed, even with the budget exhausted.
        let hit = core.query(&req(1, 600)).unwrap();
        assert!(hit.cache_hit);
        // Uncached reference path bypasses admission entirely.
        assert!(core.query_uncached(&req(1, 800)).is_ok());
        let stats = core.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.rejected, 1);
        // The next tick refills the budget.
        core.ingest_tick();
        assert!(core.query(&req(1, 800)).is_ok());
    }
}
