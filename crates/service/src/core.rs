//! The pure service core: simulated platforms, NWS ingest, epoch
//! publication, and the cached query path — everything the daemon does,
//! minus the sockets.
//!
//! The core is a pure function of `(seed, tick count, query stream)`:
//! no wall clock, no I/O. The ingest side advances the simulated
//! sensors one `publish_interval` per [`ServiceCore::ingest_tick`],
//! freezes an immutable [`ForecastSnapshot`], publishes it through the
//! epoch swap, and bumps the prediction cache. The query side loads the
//! latest snapshot without locking against the writer, consults the
//! cache, and only on a miss runs the structural-model algebra against
//! the frozen snapshot. Tier-1 tests drive all of it end to end with
//! zero real I/O; the `std::net` shell in [`crate::shell`] is a veneer.

use crate::cache::{CacheConfig, CacheStats, EpochCache, QueryKey};
use crate::swap::EpochSwap;
use prodpred_core::{FaultModel, Prediction, PredictorConfig, PredictorError, SorPredictor};
use prodpred_nws::snapshot::ForecastSnapshot;
use prodpred_nws::{NwsConfig, NwsService};
use prodpred_simgrid::faults::FaultConfig;
use prodpred_simgrid::Platform;
use prodpred_sor::decomp::partition_equal;
use prodpred_stochastic::MaxStrategy;
use prodpred_structural::{degrade, degrade_point};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Service-wide tunables. Everything downstream — traces, sensor
/// histories, snapshots, predictions — is a deterministic function of
/// these.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Seed for both simulated platforms' load traces.
    pub seed: u64,
    /// Simulated-trace horizon in seconds; ticking past it clamps.
    pub horizon: f64,
    /// Sensor history accumulated before the first snapshot publishes,
    /// so forecasters start with a warm window.
    pub warmup: f64,
    /// Simulated seconds advanced per ingest tick (one snapshot per
    /// tick; the paper's NWS polled every 5 s).
    pub publish_interval: f64,
    /// Prediction-cache sizing.
    pub cache: CacheConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            horizon: 4.0 * 3600.0,
            warmup: 600.0,
            publish_interval: 5.0,
            cache: CacheConfig::default(),
        }
    }
}

/// One query against the service: which testbed, what problem, which
/// predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Testbed: 1 (four Sparc IPC-class) or 2 (four Sparc 5/10-class).
    pub platform: u8,
    /// SOR grid size (n × n, interior n − 2).
    pub n: usize,
    /// Processors the grid is partitioned across.
    pub procs: usize,
    /// Structural-model configuration.
    pub config: PredictorConfig,
    /// Optional what-if fault intensity in `[0, 1]`: when set and
    /// positive, the fault-aware degradation terms
    /// ([`prodpred_core::FaultModel`]) are applied on top of the healthy
    /// prediction. `None` and `Some(0.0)` both answer the healthy
    /// prediction (bit-identically), but cache under distinct keys.
    /// Serialized as `null` when absent (the vendored serde has no
    /// field-skipping attributes).
    pub fault_intensity: Option<f64>,
}

/// The service's answer, tagged with the snapshot epoch that produced
/// it so clients can correlate answers across the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictResponse {
    /// Echo of the requested testbed.
    pub platform: u8,
    /// Echo of the requested grid size.
    pub n: usize,
    /// Echo of the requested processor count.
    pub procs: usize,
    /// Snapshot epoch the prediction was computed from.
    pub epoch: u64,
    /// Simulated time at which that snapshot froze its sensors.
    pub captured_at: f64,
    /// Whether this answer came from the prediction cache.
    pub cache_hit: bool,
    /// Predicted execution time, mean (seconds).
    pub mean: f64,
    /// Lower edge of the stochastic prediction interval.
    pub lo: f64,
    /// Upper edge of the stochastic prediction interval.
    pub hi: f64,
    /// Conventional point prediction (all parameters at their means).
    pub point: f64,
    /// Echo of the requested fault intensity, when one was supplied;
    /// `null` on the wire for healthy queries.
    pub fault_intensity: Option<f64>,
}

/// Liveness counters for `/metrics` and the replay bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Snapshots published so far (== the current epoch).
    pub epochs_published: u64,
    /// Queries answered, hits and misses both.
    pub queries: u64,
    /// Queries rejected before reaching the model.
    pub rejected: u64,
    /// Combined cache counters across both platforms.
    pub cache: CacheStats,
}

/// Everything that can go wrong answering a query.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The request was malformed (bad parameter value or combination).
    BadRequest(String),
    /// The request named a platform the service does not host.
    UnknownPlatform(u8),
    /// No snapshot has been published yet for the platform.
    NotReady {
        /// The platform still warming up.
        platform: u8,
    },
    /// The structural model itself refused the inputs.
    Predictor(PredictorError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadRequest(why) => write!(f, "bad request: {why}"),
            Self::UnknownPlatform(p) => write!(f, "unknown platform {p} (have 1 and 2)"),
            Self::NotReady { platform } => {
                write!(f, "platform {platform} has not published a snapshot yet")
            }
            Self::Predictor(e) => write!(f, "prediction failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Predictor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PredictorError> for ServiceError {
    fn from(e: PredictorError) -> Self {
        Self::Predictor(e)
    }
}

/// One hosted testbed: its simulated platform, live NWS, epoch-published
/// snapshots, and prediction cache.
struct PlatformState {
    platform: Platform,
    nws: NwsService,
    published: EpochSwap<ForecastSnapshot>,
    cache: EpochCache<PredictResponse>,
    /// Simulated "now" in seconds. Held for the whole ingest tick, which
    /// also serializes writers; the query path never touches it.
    clock: Mutex<f64>,
}

impl PlatformState {
    fn new(id: u8, config: &ServiceConfig) -> Self {
        let platform = match id {
            1 => Platform::platform1(config.seed, config.horizon),
            _ => Platform::platform2(config.seed, config.horizon),
        };
        let nws = NwsService::attach(&platform, NwsConfig::default());
        Self {
            platform,
            nws,
            published: EpochSwap::new(),
            cache: EpochCache::new(config.cache),
            clock: Mutex::new(0.0),
        }
    }

    /// Advances sensors by `dt` (clamped to `horizon`) and publishes the
    /// next snapshot. Returns the new epoch.
    fn tick(&self, dt: f64, horizon: f64) -> u64 {
        let mut clock = self.clock.lock().unwrap_or_else(PoisonError::into_inner);
        *clock = (*clock + dt).min(horizon);
        self.nws.advance_to(&self.platform, *clock);
        let snapshot = self.nws.snapshot(self.published.epoch() + 1);
        let epoch = self.published.publish(snapshot);
        self.cache.bump_to(epoch);
        epoch
    }
}

/// The daemon's heart: both testbeds plus the counters, behind a pure
/// tick/query API.
pub struct ServiceCore {
    config: ServiceConfig,
    platforms: [PlatformState; 2],
    queries: AtomicU64,
    rejected: AtomicU64,
}

impl ServiceCore {
    /// Builds the service and warms it up: sensors advanced to
    /// `config.warmup`, epoch 1 published for both platforms, cache
    /// empty. Deterministic in `config`.
    pub fn new(config: ServiceConfig) -> Self {
        let platforms = [
            PlatformState::new(1, &config),
            PlatformState::new(2, &config),
        ];
        let core = Self {
            config,
            platforms,
            queries: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        };
        for p in &core.platforms {
            p.tick(core.config.warmup, core.config.horizon);
        }
        core
    }

    /// The configuration the core was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// One ingest step: advances both platforms' sensors by
    /// `publish_interval` simulated seconds, publishes fresh snapshots,
    /// and invalidates both caches. Concurrent callers serialize; the
    /// query path is never blocked. Returns the new shared epoch.
    pub fn ingest_tick(&self) -> u64 {
        let mut epoch = 0;
        for p in &self.platforms {
            epoch = p.tick(self.config.publish_interval, self.config.horizon);
        }
        epoch
    }

    fn platform_state(&self, id: u8) -> Result<&PlatformState, ServiceError> {
        match id {
            1 => Ok(&self.platforms[0]),
            2 => Ok(&self.platforms[1]),
            other => Err(ServiceError::UnknownPlatform(other)),
        }
    }

    fn validate(req: &PredictRequest) -> Result<(), ServiceError> {
        if req.n < 16 || req.n > 20_000 {
            return Err(ServiceError::BadRequest(format!(
                "n = {} out of range [16, 20000]",
                req.n
            )));
        }
        if req.procs == 0 || req.procs > req.n - 2 {
            return Err(ServiceError::BadRequest(format!(
                "procs = {} must be in [1, n - 2]",
                req.procs
            )));
        }
        if req.config.iterations == 0 {
            return Err(ServiceError::BadRequest(
                "iterations must be at least 1".to_string(),
            ));
        }
        if let MaxStrategy::MonteCarlo { samples, .. } = req.config.max_strategy {
            if samples == 0 || samples > 1_000_000 {
                return Err(ServiceError::BadRequest(format!(
                    "mc samples = {samples} out of range [1, 1000000]"
                )));
            }
        }
        if let Some(cap) = req.config.max_load_rel_width {
            if !cap.is_finite() || cap <= 0.0 {
                return Err(ServiceError::BadRequest(format!(
                    "cap = {cap} must be finite and positive"
                )));
            }
        }
        if let Some(intensity) = req.fault_intensity {
            // The typed constructor is the only validation path: NaN,
            // infinities, and out-of-range values are all rejected here,
            // so the panicking `with_intensity` is never reachable from
            // untrusted input.
            if let Err(e) = FaultConfig::try_with_intensity(0, intensity) {
                return Err(ServiceError::BadRequest(e.to_string()));
            }
        }
        Ok(())
    }

    /// Answers one query against the latest published snapshot.
    ///
    /// The fast path is entirely lock-free with respect to the ingest
    /// writer: an epoch-swap load plus one sharded cache probe. Misses
    /// run the structural model against the frozen snapshot — whose
    /// arithmetic is bit-identical to the live service at capture time —
    /// and populate the cache for the rest of the epoch.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadRequest`] on out-of-range parameters,
    /// [`ServiceError::UnknownPlatform`] for platforms other than 1/2,
    /// [`ServiceError::NotReady`] before the first publish, and
    /// [`ServiceError::Predictor`] when the model rejects the inputs
    /// (e.g. a dry sensor under fault injection).
    pub fn query(&self, req: &PredictRequest) -> Result<PredictResponse, ServiceError> {
        let outcome = self.query_inner(req);
        match outcome {
            Ok(_) => {
                self.queries.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    fn query_inner(&self, req: &PredictRequest) -> Result<PredictResponse, ServiceError> {
        let state = self.platform_state(req.platform)?;
        Self::validate(req)?;
        let (epoch, snapshot) = state.published.load().ok_or(ServiceError::NotReady {
            platform: req.platform,
        })?;
        let key = QueryKey::new(
            req.platform,
            req.n,
            req.procs,
            &req.config,
            req.fault_intensity,
        );
        if let Some(cached) = state.cache.get(epoch, &key) {
            let mut response = (*cached).clone();
            response.cache_hit = true;
            return Ok(response);
        }
        let response = Self::answer(&state.platform, &snapshot, req, epoch)?;
        let stored = state.cache.insert(epoch, key, response);
        Ok((*stored).clone())
    }

    fn predict(
        platform: &Platform,
        snapshot: &ForecastSnapshot,
        req: &PredictRequest,
    ) -> Result<Prediction, ServiceError> {
        let predictor = SorPredictor::try_new(platform, snapshot, req.config)?;
        let strips = partition_equal(req.n - 2, req.procs);
        Ok(predictor.try_predict(req.n, &strips)?)
    }

    /// The single response-construction path shared by the cached-miss
    /// and uncached routes, so the two stay bit-identical by
    /// construction: healthy structural prediction, then — only when a
    /// positive `fault_intensity` was requested — the deterministic
    /// fault-degradation terms on top. Zero intensity applies the exact
    /// identity terms, so `fault_intensity=0` and no intensity answer
    /// the same bits.
    fn answer(
        platform: &Platform,
        snapshot: &ForecastSnapshot,
        req: &PredictRequest,
        epoch: u64,
    ) -> Result<PredictResponse, ServiceError> {
        let prediction = Self::predict(platform, snapshot, req)?;
        let mut stochastic = prediction.stochastic;
        let mut point = prediction.point;
        if let Some(intensity) = req.fault_intensity {
            let model = FaultModel::for_intensity(intensity, req.config.iterations, req.procs)
                .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
            let terms = model.terms(stochastic.mean(), snapshot.captured_at);
            stochastic = degrade(stochastic, &terms);
            point = degrade_point(point, &terms);
        }
        Ok(PredictResponse {
            platform: req.platform,
            n: req.n,
            procs: req.procs,
            epoch,
            captured_at: snapshot.captured_at,
            cache_hit: false,
            mean: stochastic.mean(),
            lo: stochastic.lo(),
            hi: stochastic.hi(),
            point,
            fault_intensity: req.fault_intensity,
        })
    }

    /// Answers the same query with the cache bypassed — the reference
    /// path tests pin the cached path against, bit for bit.
    ///
    /// # Errors
    ///
    /// Same as [`ServiceCore::query`].
    pub fn query_uncached(&self, req: &PredictRequest) -> Result<PredictResponse, ServiceError> {
        let state = self.platform_state(req.platform)?;
        Self::validate(req)?;
        let (epoch, snapshot) = state.published.load().ok_or(ServiceError::NotReady {
            platform: req.platform,
        })?;
        Self::answer(&state.platform, &snapshot, req, epoch)
    }

    /// The latest published epoch across both platforms. They publish in
    /// lockstep, but mid-`ingest_tick` platform 1 is briefly one ahead —
    /// taking the max keeps `/health` and [`ServiceStats`] consistent
    /// with the epoch any concurrent [`PredictResponse`] can carry.
    pub fn epoch(&self) -> u64 {
        self.platforms
            .iter()
            .map(|p| p.published.epoch())
            .max()
            .unwrap_or(0)
    }

    /// Point-in-time service counters.
    pub fn stats(&self) -> ServiceStats {
        let mut cache = CacheStats::default();
        for p in &self.platforms {
            let s = p.cache.stats();
            cache.hits += s.hits;
            cache.misses += s.misses;
            cache.invalidated += s.invalidated;
            cache.evicted += s.evicted;
            cache.entries += s.entries;
        }
        ServiceStats {
            epochs_published: self.epoch(),
            queries: self.queries.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            cache,
        }
    }
}

/// A convenience handle for sharing a core across threads.
pub type SharedCore = Arc<ServiceCore>;

#[cfg(test)]
mod tests {
    use super::*;
    use prodpred_core::LoadSource;

    fn small_core() -> ServiceCore {
        ServiceCore::new(ServiceConfig {
            seed: 7,
            horizon: 2000.0,
            warmup: 300.0,
            publish_interval: 5.0,
            ..ServiceConfig::default()
        })
    }

    fn req(platform: u8, n: usize) -> PredictRequest {
        PredictRequest {
            platform,
            n,
            procs: 4,
            config: PredictorConfig::default(),
            fault_intensity: None,
        }
    }

    #[test]
    fn warm_core_answers_immediately() {
        let core = small_core();
        assert_eq!(core.epoch(), 1);
        let r = core.query(&req(2, 600)).unwrap();
        assert_eq!((r.platform, r.n, r.epoch, r.cache_hit), (2, 600, 1, false));
        assert!(r.mean > 0.0 && r.lo <= r.mean && r.mean <= r.hi);
    }

    #[test]
    fn second_identical_query_is_a_cache_hit_and_bit_identical() {
        let core = small_core();
        let miss = core.query(&req(1, 800)).unwrap();
        let hit = core.query(&req(1, 800)).unwrap();
        assert!(!miss.cache_hit && hit.cache_hit);
        assert_eq!(
            (
                miss.mean.to_bits(),
                miss.lo.to_bits(),
                miss.hi.to_bits(),
                miss.point.to_bits()
            ),
            (
                hit.mean.to_bits(),
                hit.lo.to_bits(),
                hit.hi.to_bits(),
                hit.point.to_bits()
            ),
        );
    }

    #[test]
    fn cached_equals_uncached_bitwise() {
        let core = small_core();
        let r = req(2, 1000);
        let uncached = core.query_uncached(&r).unwrap();
        core.query(&r).unwrap(); // populate
        let cached = core.query(&r).unwrap();
        assert!(cached.cache_hit);
        assert_eq!(uncached.mean.to_bits(), cached.mean.to_bits());
        assert_eq!(uncached.lo.to_bits(), cached.lo.to_bits());
        assert_eq!(uncached.hi.to_bits(), cached.hi.to_bits());
        assert_eq!(uncached.point.to_bits(), cached.point.to_bits());
    }

    #[test]
    fn ingest_tick_bumps_epoch_and_invalidates() {
        let core = small_core();
        core.query(&req(1, 600)).unwrap();
        assert_eq!(core.stats().cache.entries, 1);
        assert_eq!(core.ingest_tick(), 2);
        assert_eq!(core.stats().cache.entries, 0);
        let r = core.query(&req(1, 600)).unwrap();
        assert_eq!((r.epoch, r.cache_hit), (2, false));
    }

    #[test]
    fn same_seed_same_answers_across_cores() {
        let a = small_core().query(&req(2, 1600)).unwrap();
        let b = small_core().query(&req(2, 1600)).unwrap();
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.captured_at.to_bits(), b.captured_at.to_bits());
    }

    #[test]
    fn bad_requests_are_rejected_with_typed_errors() {
        let core = small_core();
        assert!(matches!(
            core.query(&req(3, 600)),
            Err(ServiceError::UnknownPlatform(3))
        ));
        assert!(matches!(
            core.query(&req(1, 4)),
            Err(ServiceError::BadRequest(_))
        ));
        let mut r = req(1, 600);
        r.procs = 0;
        assert!(matches!(core.query(&r), Err(ServiceError::BadRequest(_))));
        let mut r = req(1, 600);
        r.config.iterations = 0;
        assert!(matches!(core.query(&r), Err(ServiceError::BadRequest(_))));
        assert_eq!(core.stats().rejected, 4);
    }

    #[test]
    fn unbounded_monte_carlo_samples_are_rejected() {
        let core = small_core();
        let mut r = req(1, 600);
        r.config.max_strategy = MaxStrategy::MonteCarlo {
            samples: 9_999_999_999,
            seed: 1,
        };
        assert!(matches!(core.query(&r), Err(ServiceError::BadRequest(_))));
        r.config.max_strategy = MaxStrategy::MonteCarlo {
            samples: 0,
            seed: 1,
        };
        assert!(matches!(core.query(&r), Err(ServiceError::BadRequest(_))));
        r.config.max_strategy = MaxStrategy::MonteCarlo {
            samples: 1_000_000,
            seed: 1,
        };
        assert!(core.query(&r).is_ok(), "cap boundary must stay accepted");
    }

    #[test]
    fn non_finite_and_non_positive_caps_are_rejected() {
        let core = small_core();
        for cap in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.25] {
            let mut r = req(1, 600);
            r.config.max_load_rel_width = Some(cap);
            assert!(
                matches!(core.query(&r), Err(ServiceError::BadRequest(_))),
                "cap = {cap} must be rejected"
            );
        }
        let mut r = req(1, 600);
        r.config.max_load_rel_width = Some(0.25);
        assert!(core.query(&r).is_ok());
    }

    #[test]
    fn bad_fault_intensities_are_rejected_with_typed_errors() {
        let core = small_core();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.1, 1.01] {
            let mut r = req(1, 600);
            r.fault_intensity = Some(bad);
            assert!(
                matches!(core.query(&r), Err(ServiceError::BadRequest(_))),
                "fault_intensity = {bad} must be rejected"
            );
        }
        for good in [0.0, 0.5, 1.0] {
            let mut r = req(1, 600);
            r.fault_intensity = Some(good);
            assert!(core.query(&r).is_ok(), "fault_intensity = {good}");
        }
    }

    #[test]
    fn zero_intensity_answers_the_healthy_bits() {
        let core = small_core();
        let healthy = core.query(&req(2, 800)).unwrap();
        let mut r = req(2, 800);
        r.fault_intensity = Some(0.0);
        let zero = core.query(&r).unwrap();
        assert!(
            !zero.cache_hit,
            "distinct key must not hit the healthy entry"
        );
        assert_eq!(zero.mean.to_bits(), healthy.mean.to_bits());
        assert_eq!(zero.lo.to_bits(), healthy.lo.to_bits());
        assert_eq!(zero.hi.to_bits(), healthy.hi.to_bits());
        assert_eq!(zero.point.to_bits(), healthy.point.to_bits());
        assert_eq!(zero.fault_intensity, Some(0.0));
        assert_eq!(healthy.fault_intensity, None);
    }

    #[test]
    fn degraded_predictions_are_monotone_in_intensity() {
        let core = small_core();
        let mut last = core.query(&req(2, 800)).unwrap();
        for intensity in [0.25, 0.5, 0.75, 1.0] {
            let mut r = req(2, 800);
            r.fault_intensity = Some(intensity);
            let degraded = core.query(&r).unwrap();
            assert!(
                degraded.mean > last.mean,
                "intensity {intensity}: {} not above {}",
                degraded.mean,
                last.mean
            );
            assert!(
                degraded.hi - degraded.lo > last.hi - last.lo,
                "intensity {intensity}: interval must widen"
            );
            assert!(degraded.point > last.point);
            last = degraded;
        }
    }

    #[test]
    fn faulted_cached_equals_uncached_bitwise() {
        let core = small_core();
        for intensity in [0.0, 0.3, 1.0] {
            let mut r = req(2, 1000);
            r.fault_intensity = Some(intensity);
            let uncached = core.query_uncached(&r).unwrap();
            core.query(&r).unwrap(); // populate
            let cached = core.query(&r).unwrap();
            assert!(cached.cache_hit, "intensity {intensity}");
            assert_eq!(uncached.mean.to_bits(), cached.mean.to_bits());
            assert_eq!(uncached.lo.to_bits(), cached.lo.to_bits());
            assert_eq!(uncached.hi.to_bits(), cached.hi.to_bits());
            assert_eq!(uncached.point.to_bits(), cached.point.to_bits());
            assert_eq!(cached.fault_intensity, Some(intensity));
        }
    }

    #[test]
    fn service_error_display_and_source() {
        use std::error::Error as _;
        let e = ServiceError::NotReady { platform: 1 };
        assert!(e.to_string().contains("platform 1"));
        assert!(e.source().is_none());
        let e = ServiceError::Predictor(PredictorError::NoData { machine: Some(0) });
        assert!(e.to_string().contains("prediction failed"));
        assert!(e.source().unwrap().to_string().contains("machine 0"));
    }

    #[test]
    fn load_source_variants_all_answer() {
        let core = small_core();
        for source in [
            LoadSource::Instantaneous,
            LoadSource::RunHorizon,
            LoadSource::ModalAverage,
        ] {
            let mut r = req(2, 600);
            r.config.load_source = source;
            let resp = core.query(&r).unwrap();
            assert!(resp.mean > 0.0, "{source:?} produced no prediction");
        }
    }
}
