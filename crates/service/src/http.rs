//! Socket-free HTTP/1.1 request handling: parse a request target, route
//! it through [`ServiceCore`], and render a response.
//!
//! Everything here is pure string-in, string-out, so tier-1 tests can
//! drive the full daemon surface — routing, parameter parsing, error
//! mapping, JSON rendering — without opening a socket. The `std::net`
//! veneer in [`crate::shell`] only reads bytes, calls [`handle`], and
//! writes bytes back.

use crate::core::{PredictRequest, ServiceCore, ServiceError};
use prodpred_core::{LoadSource, PredictorConfig};
use prodpred_stochastic::MaxStrategy;

/// A rendered-to-be HTTP response: status line plus JSON body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code (200, 400, 404, 429, 503).
    pub status: u16,
    /// Reason phrase matching `status`.
    pub reason: &'static str,
    /// Retry-After header value in seconds, when the error is
    /// transient (503 Unavailable, 429 Overloaded).
    pub retry_after: Option<u64>,
    /// JSON body.
    pub body: String,
}

impl HttpResponse {
    fn ok(body: String) -> Self {
        Self {
            status: 200,
            reason: "OK",
            retry_after: None,
            body,
        }
    }

    fn error(status: u16, reason: &'static str, message: &str) -> Self {
        Self {
            status,
            reason,
            retry_after: None,
            body: format!("{{\"error\":{}}}", json_string(message)),
        }
    }

    fn error_with_retry(
        status: u16,
        reason: &'static str,
        message: &str,
        retry_after_secs: u64,
    ) -> Self {
        Self {
            retry_after: Some(retry_after_secs),
            ..Self::error(status, reason, message)
        }
    }

    /// Renders the full HTTP/1.1 wire form (headers + body).
    pub fn render(&self) -> String {
        let retry_after = match self.retry_after {
            None => String::new(),
            Some(secs) => format!("Retry-After: {secs}\r\n"),
        };
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n{}",
            self.status,
            self.reason,
            self.body.len(),
            retry_after,
            self.body
        )
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Splits a request target into `(path, query pairs)`.
fn split_target(target: &str) -> (&str, Vec<(&str, &str)>) {
    match target.split_once('?') {
        None => (target, Vec::new()),
        Some((path, query)) => {
            let pairs = query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| p.split_once('=').unwrap_or((p, "")))
                .collect();
            (path, pairs)
        }
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("parameter {key}={value} is not a valid number"))
}

/// Builds a [`PredictRequest`] from `/predict` query parameters.
///
/// Required: `platform`, `n`, `procs`. Optional (defaulting to
/// [`PredictorConfig::default`]): `iters`, `source`
/// (`inst`/`horizon`/`modal`), `staleness` (`0`/`1`), `max`
/// (`mean`/`upper`/`lower`/`clark`/`mc:<samples>:<seed>`), `cap`
/// (relative half-width cap, or `none`), `fault_intensity` (what-if
/// fault intensity in `[0, 1]`; omit for the healthy prediction).
///
/// # Errors
///
/// A human-readable message naming the offending parameter.
pub fn parse_predict(pairs: &[(&str, &str)]) -> Result<PredictRequest, String> {
    let mut platform: Option<u8> = None;
    let mut n: Option<usize> = None;
    let mut procs: Option<usize> = None;
    let mut fault_intensity: Option<f64> = None;
    let mut config = PredictorConfig::default();
    for &(key, value) in pairs {
        match key {
            "platform" => platform = Some(parse_num(key, value)?),
            "n" => n = Some(parse_num(key, value)?),
            "procs" => procs = Some(parse_num(key, value)?),
            "iters" => config.iterations = parse_num(key, value)?,
            "source" => {
                config.load_source = match value {
                    "inst" => LoadSource::Instantaneous,
                    "horizon" => LoadSource::RunHorizon,
                    "modal" => LoadSource::ModalAverage,
                    other => return Err(format!("unknown source {other:?} (inst/horizon/modal)")),
                }
            }
            "staleness" => {
                config.staleness_aware = match value {
                    "0" => false,
                    "1" => true,
                    other => return Err(format!("staleness={other} must be 0 or 1")),
                }
            }
            "max" => {
                config.max_strategy = match value {
                    "mean" => MaxStrategy::ByMean,
                    "upper" => MaxStrategy::ByUpperBound,
                    "lower" => MaxStrategy::ByLowerBound,
                    "clark" => MaxStrategy::Clark,
                    mc => {
                        let mut parts = mc.split(':');
                        match (parts.next(), parts.next(), parts.next(), parts.next()) {
                            (Some("mc"), Some(samples), Some(seed), None) => {
                                MaxStrategy::MonteCarlo {
                                    samples: parse_num("max samples", samples)?,
                                    seed: parse_num("max seed", seed)?,
                                }
                            }
                            _ => {
                                return Err(format!(
                                "unknown max {mc:?} (mean/upper/lower/clark/mc:<samples>:<seed>)"
                            ))
                            }
                        }
                    }
                }
            }
            "cap" => {
                config.max_load_rel_width = if value == "none" {
                    None
                } else {
                    Some(parse_num(key, value)?)
                }
            }
            // Range/finiteness checks live in `ServiceCore::validate`
            // (via `FaultConfig::try_with_intensity`), which turns bad
            // values into typed 400s — never a panic.
            "fault_intensity" => fault_intensity = Some(parse_num(key, value)?),
            other => return Err(format!("unknown parameter {other:?}")),
        }
    }
    Ok(PredictRequest {
        platform: platform.ok_or("missing required parameter: platform")?,
        n: n.ok_or("missing required parameter: n")?,
        procs: procs.ok_or("missing required parameter: procs")?,
        config,
        fault_intensity,
    })
}

fn error_response(e: &ServiceError) -> HttpResponse {
    use prodpred_core::PredictorError;
    match e {
        ServiceError::BadRequest(_) => HttpResponse::error(400, "Bad Request", &e.to_string()),
        ServiceError::UnknownPlatform(_) => HttpResponse::error(404, "Not Found", &e.to_string()),
        ServiceError::NotReady { .. } => {
            HttpResponse::error(503, "Service Unavailable", &e.to_string())
        }
        // The degraded-mode state machine refused the query: the
        // snapshot is too old to answer from. Transient by definition —
        // advertise when the breaker cooldown (or next publish) is due.
        ServiceError::Unavailable {
            retry_after_secs, ..
        } => HttpResponse::error_with_retry(
            503,
            "Service Unavailable",
            &e.to_string(),
            *retry_after_secs,
        ),
        // Admission control shed a cache miss under overload; the miss
        // budget refills at the next ingest tick.
        ServiceError::Overloaded { retry_after_secs } => HttpResponse::error_with_retry(
            429,
            "Too Many Requests",
            &e.to_string(),
            *retry_after_secs,
        ),
        // A dry sensor is transient (more polls may fill it); structural
        // rejections are the client's fault.
        ServiceError::Predictor(PredictorError::NoData { .. }) => {
            HttpResponse::error(503, "Service Unavailable", &e.to_string())
        }
        ServiceError::Predictor(_) => HttpResponse::error(400, "Bad Request", &e.to_string()),
    }
}

fn to_json<T: serde::Serialize>(value: &T) -> HttpResponse {
    match serde_json::to_string(value) {
        Ok(body) => HttpResponse::ok(body),
        Err(e) => HttpResponse::error(500, "Internal Server Error", &e.to_string()),
    }
}

/// Routes one request target (e.g. `/predict?platform=2&n=1600&procs=4`)
/// through the core and renders the response. The daemon's entire
/// routing table lives here, socket-free.
pub fn handle(core: &ServiceCore, target: &str) -> HttpResponse {
    let (path, pairs) = split_target(target);
    match path {
        "/predict" => match parse_predict(&pairs) {
            Err(why) => HttpResponse::error(400, "Bad Request", &why),
            Ok(req) => match core.query(&req) {
                Ok(response) => to_json(&response),
                Err(e) => error_response(&e),
            },
        },
        "/health" => {
            if core.epoch() == 0 {
                HttpResponse::error(503, "Service Unavailable", "no snapshot published yet")
            } else {
                HttpResponse::ok(format!("{{\"status\":\"ok\",\"epoch\":{}}}", core.epoch()))
            }
        }
        "/metrics" => to_json(&core.stats()),
        _ => HttpResponse::error(404, "Not Found", &format!("no route for {path}")),
    }
}

/// Parses the request line of an HTTP/1.1 request head and returns the
/// target, rejecting anything but `GET`.
///
/// # Errors
///
/// A ready-to-send [`HttpResponse`] (400 or 405) describing the defect.
pub fn request_target(head: &str) -> Result<&str, HttpResponse> {
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some("GET"), Some(target), Some(version)) if version.starts_with("HTTP/1.") => Ok(target),
        (Some("GET"), _, _) => Err(HttpResponse::error(
            400,
            "Bad Request",
            "malformed request line",
        )),
        (Some(method), _, _) => Err(HttpResponse::error(
            405,
            "Method Not Allowed",
            &format!("method {method} not supported (GET only)"),
        )),
        _ => Err(HttpResponse::error(400, "Bad Request", "empty request")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{ServiceConfig, ServiceCore};

    fn core() -> ServiceCore {
        ServiceCore::new(ServiceConfig {
            seed: 7,
            horizon: 2000.0,
            warmup: 300.0,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn predict_round_trips_through_json() {
        let core = core();
        let r = handle(&core, "/predict?platform=2&n=1600&procs=4");
        assert_eq!(r.status, 200, "{}", r.body);
        let parsed: crate::core::PredictResponse = serde_json::from_str(&r.body).unwrap();
        assert_eq!((parsed.platform, parsed.n, parsed.procs), (2, 1600, 4));
        assert!(parsed.mean > 0.0);
    }

    #[test]
    fn full_parameter_surface_parses() {
        let pairs = [
            ("platform", "1"),
            ("n", "600"),
            ("procs", "2"),
            ("iters", "40"),
            ("source", "modal"),
            ("staleness", "1"),
            ("max", "mc:500:9"),
            ("cap", "0.25"),
            ("fault_intensity", "0.5"),
        ];
        let req = parse_predict(&pairs).unwrap();
        assert_eq!((req.platform, req.n, req.procs), (1, 600, 2));
        assert_eq!(req.fault_intensity, Some(0.5));
        assert_eq!(req.config.iterations, 40);
        assert_eq!(req.config.load_source, LoadSource::ModalAverage);
        assert!(req.config.staleness_aware);
        assert_eq!(
            req.config.max_strategy,
            MaxStrategy::MonteCarlo {
                samples: 500,
                seed: 9
            }
        );
        assert_eq!(req.config.max_load_rel_width, Some(0.25));
    }

    #[test]
    fn errors_map_to_http_statuses() {
        let core = core();
        assert_eq!(handle(&core, "/predict?platform=1&n=600").status, 400);
        // f64::from_str accepts these; validation must still reject them.
        for cap in ["NaN", "inf", "-1", "0"] {
            assert_eq!(
                handle(
                    &core,
                    &format!("/predict?platform=1&n=600&procs=2&cap={cap}")
                )
                .status,
                400,
                "cap={cap} must not reach the model"
            );
        }
        assert_eq!(
            handle(
                &core,
                "/predict?platform=1&n=600&procs=2&max=mc:9999999999:1"
            )
            .status,
            400
        );
        assert_eq!(
            handle(&core, "/predict?platform=9&n=600&procs=2").status,
            404
        );
        assert_eq!(
            handle(&core, "/predict?platform=1&n=600&procs=2&source=x").status,
            400
        );
        // f64::from_str accepts NaN/inf and negatives; validation turns
        // every one into a typed 400, never a panic in the daemon.
        for bad in ["NaN", "inf", "-inf", "-0.1", "1.01", "x"] {
            let target = format!("/predict?platform=1&n=600&procs=2&fault_intensity={bad}");
            assert_eq!(
                handle(&core, &target).status,
                400,
                "fault_intensity={bad} must not reach the model"
            );
        }
        assert_eq!(handle(&core, "/nope").status, 404);
        assert_eq!(handle(&core, "/health").status, 200);
        assert_eq!(handle(&core, "/metrics").status, 200);
    }

    #[test]
    fn faulted_predict_round_trips_and_degrades() {
        let core = core();
        let healthy = handle(&core, "/predict?platform=2&n=1600&procs=4");
        assert_eq!(healthy.status, 200, "{}", healthy.body);
        let healthy: crate::core::PredictResponse = serde_json::from_str(&healthy.body).unwrap();
        assert_eq!(healthy.fault_intensity, None);
        let faulted = handle(
            &core,
            "/predict?platform=2&n=1600&procs=4&fault_intensity=0.5",
        );
        assert_eq!(faulted.status, 200, "{}", faulted.body);
        let faulted: crate::core::PredictResponse = serde_json::from_str(&faulted.body).unwrap();
        assert_eq!(faulted.fault_intensity, Some(0.5));
        assert!(
            faulted.mean > healthy.mean,
            "degraded mean {} must exceed healthy {}",
            faulted.mean,
            healthy.mean
        );
    }

    #[test]
    fn request_line_parsing() {
        assert_eq!(
            request_target("GET /health HTTP/1.1\r\nHost: x\r\n\r\n").unwrap(),
            "/health"
        );
        assert_eq!(
            request_target("POST /health HTTP/1.1").unwrap_err().status,
            405
        );
        assert_eq!(request_target("").unwrap_err().status, 400);
        assert_eq!(request_target("GET /health").unwrap_err().status, 400);
    }

    #[test]
    fn render_carries_content_length() {
        let r = HttpResponse::ok("{\"a\":1}".to_string());
        let wire = r.render();
        assert!(wire.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(wire.contains("Content-Length: 7\r\n"));
        assert!(wire.ends_with("\r\n\r\n{\"a\":1}"));
    }

    #[test]
    fn render_carries_retry_after_when_set() {
        let r = HttpResponse::error_with_retry(503, "Service Unavailable", "stale", 42);
        let wire = r.render();
        assert!(wire.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(wire.contains("\r\nRetry-After: 42\r\n"), "{wire}");
        // And the header is absent when no hint applies.
        assert!(!HttpResponse::ok("{}".into())
            .render()
            .contains("Retry-After"));
    }

    /// A core whose ingest fails every post-warmup tick (permanent
    /// blackout) under a fresh-only serving policy — two ticks in, every
    /// query must map to 503 + Retry-After.
    fn blacked_out_core(resilience: crate::resilience::ResilienceConfig) -> ServiceCore {
        let mut fault = prodpred_simgrid::faults::FaultConfig::none(7);
        fault.blackouts.push((300.0, f64::MAX));
        ServiceCore::new(ServiceConfig {
            seed: 7,
            horizon: 1e7,
            warmup: 300.0,
            fault: Some(fault),
            resilience,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn unavailable_maps_to_503_with_retry_after() {
        let core = blacked_out_core(crate::resilience::ResilienceConfig::unsupervised());
        core.ingest_tick();
        core.ingest_tick();
        let r = handle(&core, "/predict?platform=1&n=600&procs=2");
        assert_eq!(r.status, 503, "{}", r.body);
        assert!(r.retry_after.is_some_and(|s| s >= 1), "{r:?}");
        assert!(r.body.contains("unavailable"), "{}", r.body);
    }

    #[test]
    fn degraded_predict_is_marked_on_the_wire() {
        // Failing ingest, but thresholds wide enough to keep serving.
        let core = blacked_out_core(crate::resilience::ResilienceConfig {
            retry: prodpred_core::supervisor::RetryPolicy::none(),
            breaker_threshold: u32::MAX,
            watchdog_ticks: u64::MAX,
            ..crate::resilience::ResilienceConfig::default()
        });
        core.ingest_tick();
        core.ingest_tick();
        let r = handle(&core, "/predict?platform=1&n=600&procs=2");
        assert_eq!(r.status, 200, "{}", r.body);
        let parsed: crate::core::PredictResponse = serde_json::from_str(&r.body).unwrap();
        assert!(parsed.degraded);
        assert_eq!(parsed.serving, crate::resilience::ServingState::Degraded);
        assert_eq!(parsed.snapshot_age_ticks, 2);
    }

    #[test]
    fn overloaded_maps_to_429_with_retry_after() {
        let core = ServiceCore::new(ServiceConfig {
            seed: 7,
            horizon: 2000.0,
            warmup: 300.0,
            resilience: crate::resilience::ResilienceConfig {
                admission: crate::resilience::AdmissionConfig {
                    max_inflight_misses: u64::MAX,
                    miss_tokens_per_tick: 1,
                },
                ..crate::resilience::ResilienceConfig::default()
            },
            ..ServiceConfig::default()
        });
        assert_eq!(
            handle(&core, "/predict?platform=1&n=600&procs=2").status,
            200
        );
        let shed = handle(&core, "/predict?platform=1&n=800&procs=2");
        assert_eq!(shed.status, 429, "{}", shed.body);
        assert!(shed.retry_after.is_some_and(|s| s >= 1));
        // The hit is still admitted with the budget exhausted.
        assert_eq!(
            handle(&core, "/predict?platform=1&n=600&procs=2").status,
            200
        );
    }

    #[test]
    fn metrics_expose_resilience_counters_end_to_end() {
        let core = blacked_out_core(crate::resilience::ResilienceConfig {
            retry: prodpred_core::supervisor::RetryPolicy::none(),
            breaker_threshold: u32::MAX,
            watchdog_ticks: u64::MAX,
            ..crate::resilience::ResilienceConfig::default()
        });
        core.ingest_tick();
        core.ingest_tick();
        assert_eq!(
            handle(&core, "/predict?platform=1&n=600&procs=2").status,
            200
        );
        let r = handle(&core, "/metrics");
        assert_eq!(r.status, 200);
        let stats: crate::core::ServiceStats = serde_json::from_str(&r.body).unwrap();
        assert_eq!(stats.ingest.failures, 4, "2 ticks x 2 platforms");
        assert_eq!(stats.degraded_served, 1);
        assert_eq!(
            stats.serving_platform1,
            crate::resilience::ServingState::Degraded
        );
        assert_eq!(
            stats.serving_platform2,
            crate::resilience::ServingState::Degraded
        );
        // The raw JSON names the counters for scrape-side consumers.
        for key in [
            "\"shed\"",
            "\"degraded_served\"",
            "\"ingest\"",
            "\"serving_platform1\"",
            "\"unavailable\"",
        ] {
            assert!(r.body.contains(key), "missing {key} in {}", r.body);
        }
    }

    #[test]
    fn json_error_bodies_escape_quotes() {
        let core = core();
        let r = handle(&core, "/predict?platform=1&n=600&procs=2&source=bad");
        assert_eq!(r.status, 400);
        assert!(r.body.contains("\\\"bad\\\""), "{}", r.body);
        #[derive(serde::Deserialize)]
        struct ErrBody {
            error: String,
        }
        let parsed: ErrBody = serde_json::from_str(&r.body).unwrap();
        assert!(parsed.error.contains("\"bad\""));
    }
}
