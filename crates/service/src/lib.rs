//! Prediction-as-a-service: the paper's structural predictor behind a
//! daemon with epoch-published forecast snapshots and a lock-free query
//! path.
//!
//! The paper's predictor answers "how long will this SOR run take right
//! now?" — a question whose answer decays as fast as the load does. This
//! crate packages it as a continuously-refreshing service:
//!
//! * [`swap`] — `EpochSwap`, single-writer epoch publication of
//!   immutable values with reader loads that never wait on the writer;
//! * [`cache`] — the sharded, bounded, deterministic prediction cache,
//!   keyed by `(query configuration, snapshot epoch)` and invalidated
//!   wholesale on every epoch bump;
//! * [`core`] — the pure service core: simulated platforms, NWS ingest
//!   ticks, snapshot publication, the cached query path. A pure function
//!   of `(seed, ticks, queries)` — no wall clock, no I/O;
//! * [`http`] — socket-free request parsing, routing, and response
//!   rendering;
//! * [`replay`] — the seeded request stream shared by the latency bench,
//!   the CI smoke test, and the tier-1 tests;
//! * [`resilience`] — the degraded-mode serving state machine
//!   (Healthy → Degraded → Stale → Unavailable), deterministic admission
//!   control, supervised-ingest accounting, and the availability
//!   predictor the chaos bench gates against;
//! * [`shell`] — the thin `std::net` veneer (the only socket code in the
//!   workspace, fenced by tidy lint PP008).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cache;
pub mod core;
pub mod http;
pub mod replay;
pub mod resilience;
pub mod shell;
pub mod swap;

pub use cache::{CacheConfig, CacheStats, EpochCache, QueryKey};
pub use core::{
    PredictRequest, PredictResponse, ServiceConfig, ServiceCore, ServiceError, ServiceStats,
    SharedCore,
};
pub use http::{handle, HttpResponse};
pub use replay::{percentile_us, request_for, request_path, ReplayReport};
pub use resilience::{
    predict_availability, AdmissionConfig, AvailabilityPrediction, ChaosArm, ChaosReport,
    IngestOutcome, IngestStats, ResilienceConfig, ServingState,
};
pub use shell::{serve, ShellConfig, ShellHandle};
pub use swap::EpochSwap;
