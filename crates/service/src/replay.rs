//! Seeded traffic replay: a deterministic stream of [`PredictRequest`]s
//! that the latency bench, the CI smoke test, and the tier-1 tests all
//! share, so "the workload" means the same bytes everywhere.
//!
//! Request `i` of a replay is a pure function of `(master_seed, i)` via
//! the pool's [`prodpred_pool::derive_seed`] splitmix: independent
//! bit fields pick the platform, problem size, processor count, and
//! predictor configuration. The space is deliberately coarse — 192
//! distinct configurations — so a realistic request volume revisits keys
//! often enough to exercise the prediction cache, while epoch bumps
//! keep forcing fresh misses.

use crate::core::PredictRequest;
use prodpred_core::{LoadSource, PredictorConfig};
use prodpred_pool::derive_seed;

/// Grid sizes the replay draws from (the paper's Figure 4–7 range).
pub const SIZES: [usize; 4] = [400, 600, 1000, 1600];
/// Processor counts the replay draws from.
pub const PROCS: [usize; 2] = [2, 4];
/// Iteration counts the replay draws from.
pub const ITERATIONS: [usize; 2] = [10, 40];

/// Number of distinct request configurations [`request_for`] can emit:
/// 2 platforms × 4 sizes × 2 procs × 2 iterations × 3 load sources × 2
/// staleness flags.
pub const DISTINCT_REQUESTS: usize = 2 * SIZES.len() * PROCS.len() * ITERATIONS.len() * 3 * 2;

/// The `i`-th request of the replay seeded by `master_seed`.
pub fn request_for(master_seed: u64, index: u64) -> PredictRequest {
    let bits = derive_seed(master_seed, index);
    let platform = 1 + (bits & 1) as u8;
    let n = SIZES[((bits >> 1) & 0x3) as usize];
    let procs = PROCS[((bits >> 3) & 0x1) as usize];
    let config = PredictorConfig {
        iterations: ITERATIONS[((bits >> 4) & 0x1) as usize],
        load_source: match (bits >> 5) % 3 {
            0 => LoadSource::Instantaneous,
            1 => LoadSource::RunHorizon,
            _ => LoadSource::ModalAverage,
        },
        staleness_aware: (bits >> 7) & 0x1 == 1,
        ..PredictorConfig::default()
    };
    PredictRequest {
        platform,
        n,
        procs,
        config,
        // The replay workload stays healthy-only so the committed
        // latency baselines keep measuring the same code path; the
        // fault surface has its own bench (`faultpred_study`).
        fault_intensity: None,
    }
}

/// The `/predict` target string for replay request `i` — what the load
/// generator and the smoke test put on the wire.
pub fn request_path(master_seed: u64, index: u64) -> String {
    let req = request_for(master_seed, index);
    let source = match req.config.load_source {
        LoadSource::Instantaneous => "inst",
        LoadSource::RunHorizon => "horizon",
        LoadSource::ModalAverage => "modal",
    };
    format!(
        "/predict?platform={}&n={}&procs={}&iters={}&source={}&staleness={}",
        req.platform,
        req.n,
        req.procs,
        req.config.iterations,
        source,
        u8::from(req.config.staleness_aware),
    )
}

/// What one replay run measures. The latency bench commits this as
/// `BENCH_service.json`; the CI smoke test reads the committed copy back
/// and gates its own p99 against it (with a generous margin, since the
/// smoke run crosses real loopback sockets on a shared runner).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReplayReport {
    /// Master seed the request stream was derived from.
    pub seed: u64,
    /// Requests replayed (after warmup).
    pub requests: u64,
    /// Concurrent client threads.
    pub threads: usize,
    /// Ingest ticks (epoch bumps) interleaved with the replay.
    pub ticks: u64,
    /// Wall-clock for the measured portion, microseconds.
    pub elapsed_us: u64,
    /// Throughput over the measured portion, queries per second.
    pub qps: f64,
    /// Median query latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile query latency, microseconds.
    pub p99_us: u64,
    /// Worst query latency, microseconds.
    pub max_us: u64,
    /// Fraction of queries answered from the prediction cache.
    pub cache_hit_rate: f64,
    /// Queries that failed (must be 0 for a valid run).
    pub errors: u64,
}

/// The `q`-quantile (0 ≤ q ≤ 1) of an unsorted sample by the
/// nearest-rank method. Returns 0 on an empty sample.
pub fn percentile_us(samples: &mut [u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn replay_is_deterministic() {
        for i in 0..100 {
            assert_eq!(request_for(17, i), request_for(17, i));
            assert_eq!(request_path(17, i), request_path(17, i));
        }
    }

    #[test]
    fn replay_covers_a_bounded_space_densely() {
        let keys: HashSet<String> = (0..4000).map(|i| request_path(99, i)).collect();
        assert!(keys.len() <= DISTINCT_REQUESTS);
        // The splitmix stream should visit most of the 96-per-platform
        // space within a few thousand draws.
        assert!(
            keys.len() > DISTINCT_REQUESTS / 2,
            "only {} of {} configs visited",
            keys.len(),
            DISTINCT_REQUESTS
        );
    }

    #[test]
    fn percentiles_by_nearest_rank() {
        let mut v: Vec<u64> = (1..=100).rev().collect();
        assert_eq!(percentile_us(&mut v, 0.50), 50);
        assert_eq!(percentile_us(&mut v, 0.99), 99);
        assert_eq!(percentile_us(&mut v, 1.0), 100);
        assert_eq!(percentile_us(&mut [], 0.5), 0);
        assert_eq!(percentile_us(&mut [7], 0.99), 7);
    }

    #[test]
    fn paths_reparse_to_the_same_request() {
        for i in 0..200 {
            let req = request_for(5, i);
            let path = request_path(5, i);
            let query = path.split_once('?').unwrap().1;
            let pairs: Vec<(&str, &str)> = query
                .split('&')
                .map(|p| p.split_once('=').unwrap())
                .collect();
            let reparsed = crate::http::parse_predict(&pairs).unwrap();
            assert_eq!(req, reparsed, "request {i} mangled by its own path");
        }
    }
}
