//! The service's resilience layer: staleness-aware serving states,
//! deterministic admission control, supervised-ingest accounting, and
//! the availability predictor the chaos bench gates against.
//!
//! Everything here is a pure function of `(configuration, tick clock)`:
//! no wall clock (tidy lint PP009), no randomness beyond the seeded
//! jitter already inside [`RetryPolicy`]. The state machine is
//!
//! ```text
//! Healthy ──age──▶ Degraded ──age──▶ Stale ──age──▶ Unavailable
//! ```
//!
//! driven by *snapshot age in ingest ticks* (how many ticks since the
//! served snapshot was published) with an open circuit breaker
//! escalating the severity one level. Degraded and Stale answers keep
//! flowing — with spreads widened by the same `sqrt(1 + staleness)`
//! discipline the NWS applies per-sensor — while Unavailable maps to a
//! typed 503 with a Retry-After hint.

use prodpred_core::supervisor::{BreakerState, CircuitBreaker, RetryPolicy};
use prodpred_simgrid::faults::FaultConfig;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Per-platform serving state, derived purely from the age of the
/// published snapshot (in ingest ticks) and the ingest circuit
/// breaker's state. Ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServingState {
    /// The snapshot is fresh: answers are served unmodified.
    Healthy,
    /// The snapshot missed at least one publish: answers are served with
    /// widened spreads and marked `degraded`.
    Degraded,
    /// The snapshot is old enough that even a widened interval is a
    /// stretch; answers still flow, maximally widened and degraded.
    Stale,
    /// The snapshot is too old to answer from (or none exists): queries
    /// get a typed 503 with a Retry-After hint.
    Unavailable,
}

impl Default for ServingState {
    /// The state before anything has been published.
    fn default() -> Self {
        Self::Unavailable
    }
}

impl ServingState {
    /// One level worse (saturating at [`ServingState::Unavailable`]).
    pub fn escalate(self) -> Self {
        match self {
            Self::Healthy => Self::Degraded,
            Self::Degraded => Self::Stale,
            Self::Stale | Self::Unavailable => Self::Unavailable,
        }
    }

    /// Derives the serving state from snapshot age (ticks since the
    /// served snapshot published) and whether the ingest breaker is in a
    /// non-closed state. Pure; the thresholds come from `res`.
    pub fn derive(age_ticks: u64, breaker_open: bool, res: &ResilienceConfig) -> Self {
        // Successive maxes keep the bands sane even if a caller supplies
        // non-monotone thresholds.
        let degraded_after = res.degraded_age_ticks.max(res.healthy_age_ticks);
        let stale_after = res.stale_age_ticks.max(degraded_after);
        let base = if age_ticks <= res.healthy_age_ticks {
            Self::Healthy
        } else if age_ticks <= degraded_after {
            Self::Degraded
        } else if age_ticks <= stale_after {
            Self::Stale
        } else {
            Self::Unavailable
        };
        if breaker_open {
            base.escalate()
        } else {
            base
        }
    }
}

/// The factor by which a served prediction interval is widened at
/// `age_ticks` of snapshot age: `sqrt(1 + ticks beyond the healthy
/// band)` — the NWS per-sensor staleness discipline lifted to the
/// service level. Exactly `1.0` inside the healthy band (a healthy
/// answer's bits are never touched), monotone non-decreasing in age.
pub fn widening_factor(age_ticks: u64, healthy_age_ticks: u64) -> f64 {
    let extra = age_ticks.saturating_sub(healthy_age_ticks);
    if extra == 0 {
        1.0
    } else {
        (1.0 + extra as f64).sqrt()
    }
}

/// Load-shedding budget for the query path. The miss budget is a
/// *deadline* budget: misses run the structural model, and only
/// `miss_tokens_per_tick` of those fit between two publish deadlines;
/// the in-flight cap bounds concurrent model runs. Cache hits are never
/// shed — they cost no model work, so admitting them preferentially is
/// free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Concurrent cache-missing queries allowed to run the model.
    pub max_inflight_misses: u64,
    /// Cache-missing queries admitted per ingest tick (the per-deadline
    /// model-work budget). Refilled at every tick, successful or not —
    /// the deadline passes regardless.
    pub miss_tokens_per_tick: u64,
}

impl AdmissionConfig {
    /// No shedding at all (the default: PR 7 behavior).
    pub fn unbounded() -> Self {
        Self {
            max_inflight_misses: u64::MAX,
            miss_tokens_per_tick: u64::MAX,
        }
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// Runtime admission state: a token bucket refilled per ingest tick
/// plus an in-flight gauge. Deterministic for a deterministic query
/// order: the `k`-th miss between two ticks is admitted iff
/// `k <= miss_tokens_per_tick` and at most `max_inflight_misses` are in
/// flight.
#[derive(Debug)]
pub struct Admission {
    config: AdmissionConfig,
    tokens: AtomicU64,
    inflight: AtomicU64,
    shed: AtomicU64,
}

impl Admission {
    /// A fresh gauge with one tick's worth of tokens.
    pub fn new(config: AdmissionConfig) -> Self {
        Self {
            config,
            tokens: AtomicU64::new(config.miss_tokens_per_tick),
            inflight: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Refills the per-tick miss budget (called by every ingest tick,
    /// successful or not).
    pub fn refill(&self) {
        self.tokens
            .store(self.config.miss_tokens_per_tick, Ordering::Relaxed);
    }

    /// Tries to admit one cache-missing query. `None` means shed (the
    /// caller answers a typed 429); `Some` holds the in-flight slot
    /// until dropped.
    pub fn try_admit_miss(&self) -> Option<MissPermit<'_>> {
        if !self.take_token() {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if !self.enter_inflight() {
            self.exit_inflight();
            self.shed.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(MissPermit { admission: self })
    }

    /// The token half of [`Self::try_admit_miss`]: takes one miss token
    /// from the per-tick bucket (CAS loop), `false` when the bucket is
    /// dry. Exposed as a conformance seam for the
    /// `prodpred-analysis::svc` model; callers outside the replay
    /// harness should use [`Self::try_admit_miss`], which also keeps the
    /// shed counter.
    pub fn take_token(&self) -> bool {
        let mut tokens = self.tokens.load(Ordering::Relaxed);
        loop {
            if tokens == 0 {
                return false;
            }
            // u64::MAX means "unbounded": don't burn the bucket down.
            if tokens == u64::MAX {
                return true;
            }
            match self.tokens.compare_exchange_weak(
                tokens,
                tokens - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => tokens = now,
            }
        }
    }

    /// The gauge half of [`Self::try_admit_miss`]: enters the in-flight
    /// gauge and reports whether the entry stayed within the cap. An
    /// over-cap entry **must** be undone with [`Self::exit_inflight`] —
    /// the fetch_add has already happened (that rollback ordering is
    /// exactly what the `svc` model's `NoInflightRollback` negative
    /// control checks).
    pub fn enter_inflight(&self) -> bool {
        let inflight = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        inflight <= self.config.max_inflight_misses
    }

    /// Leaves the in-flight gauge: a permit release or an over-cap
    /// rollback.
    pub fn exit_inflight(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Queries shed so far (429s).
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

/// RAII in-flight slot for one admitted cache miss.
#[derive(Debug)]
pub struct MissPermit<'a> {
    admission: &'a Admission,
}

impl Drop for MissPermit<'_> {
    fn drop(&mut self) {
        self.admission.exit_inflight();
    }
}

/// Lock-free mirrors of the supervised-ingest state for the query path:
/// the tick clock, the breaker state, and the Retry-After hint. The
/// ingest path refreshes them after every tick (under its own lock);
/// queries read them without ever touching that lock. Every access is
/// `Relaxed` — each word is an independent gauge and the query path only
/// needs a recent-enough value, never an ordering between them.
#[derive(Debug)]
pub struct TickMirror {
    /// Ingest ticks attempted so far (warmup included).
    ticks: AtomicU64,
    /// Breaker state: 0 = Closed, 1 = Open, 2 = HalfOpen.
    breaker: AtomicU8,
    /// Retry-After hint in whole seconds.
    retry_hint: AtomicU64,
}

impl TickMirror {
    /// A fresh mirror: zero ticks, breaker closed, `initial_hint`
    /// seconds of Retry-After.
    pub fn new(initial_hint: u64) -> Self {
        Self {
            ticks: AtomicU64::new(0),
            breaker: AtomicU8::new(0),
            retry_hint: AtomicU64::new(initial_hint),
        }
    }

    /// Advances the tick clock and returns the new tick number (1-based).
    pub fn next_tick(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Ticks attempted so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Publishes the breaker state for lock-free readers.
    pub fn set_breaker(&self, state: BreakerState) {
        self.breaker.store(
            match state {
                BreakerState::Closed => 0,
                BreakerState::Open => 1,
                BreakerState::HalfOpen => 2,
            },
            Ordering::Relaxed,
        );
    }

    /// Whether the mirrored breaker is in any non-closed state.
    pub fn breaker_open(&self) -> bool {
        self.breaker.load(Ordering::Relaxed) != 0
    }

    /// Publishes the Retry-After hint (whole seconds).
    pub fn set_retry_hint(&self, secs: u64) {
        self.retry_hint.store(secs, Ordering::Relaxed);
    }

    /// The current Retry-After hint (whole seconds).
    pub fn retry_hint(&self) -> u64 {
        self.retry_hint.load(Ordering::Relaxed)
    }
}

/// Query-path outcome counters for [`ServiceStats`]-style snapshots.
/// All `Relaxed`: each counter is an independent tally and readers take
/// a point-in-time snapshot, not a consistent cut.
///
/// [`ServiceStats`]: crate::core::ServiceStats
#[derive(Debug, Default)]
pub struct ServingCounters {
    queries: AtomicU64,
    rejected: AtomicU64,
    unavailable: AtomicU64,
    degraded_served: AtomicU64,
}

impl ServingCounters {
    /// All counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// One query answered 200; `degraded` when it was served in a
    /// non-Healthy state.
    pub fn record_served(&self, degraded: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if degraded {
            self.degraded_served.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One query rejected (any typed error).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// One query refused 503 (Unavailable).
    pub fn record_unavailable(&self) {
        self.unavailable.fetch_add(1, Ordering::Relaxed);
    }

    /// Queries answered 200 so far.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Queries rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Queries refused 503 so far.
    pub fn unavailable(&self) -> u64 {
        self.unavailable.load(Ordering::Relaxed)
    }

    /// Degraded 200s so far.
    pub fn degraded_served(&self) -> u64 {
        self.degraded_served.load(Ordering::Relaxed)
    }
}

/// Knobs for the resilience layer. The defaults keep a fault-free
/// service exactly on its PR 7 behavior (every tick publishes, age
/// never leaves the healthy band, nothing is shed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Retry policy for a failed ingest tick. Backoff advances the
    /// *simulated* clock — a retry polls the sensors further into the
    /// future, which is how the supervisor rides through blackouts.
    pub retry: RetryPolicy,
    /// Consecutive failed ticks before the ingest breaker opens.
    pub breaker_threshold: u32,
    /// Simulated seconds an open breaker short-circuits ingest before a
    /// half-open probe tick.
    pub breaker_cooldown_secs: f64,
    /// Watchdog: ticks without a publish before the breaker is tripped
    /// open even though the failure streak has not reached
    /// `breaker_threshold` (a wedged epoch). `u64::MAX` disables it.
    pub watchdog_ticks: u64,
    /// Snapshot age (ticks) still considered fresh.
    pub healthy_age_ticks: u64,
    /// Age beyond which answers are Degraded (widened, marked).
    pub degraded_age_ticks: u64,
    /// Age beyond which answers are Stale; older is Unavailable (503).
    pub stale_age_ticks: u64,
    /// Load-shedding budget for the query path.
    pub admission: AdmissionConfig,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            retry: RetryPolicy::default(),
            breaker_threshold: 6,
            breaker_cooldown_secs: 120.0,
            watchdog_ticks: 4,
            healthy_age_ticks: 1,
            degraded_age_ticks: 8,
            stale_age_ticks: 40,
            admission: AdmissionConfig::unbounded(),
        }
    }
}

impl ResilienceConfig {
    /// The fault-blind baseline the chaos bench compares against: no
    /// retry ride-through, no breaker, no watchdog, and a fresh-only
    /// serving policy (anything older than one tick is refused — without
    /// the widening state machine, serving stale data would be unsound).
    pub fn unsupervised() -> Self {
        Self {
            retry: RetryPolicy::none(),
            breaker_threshold: u32::MAX,
            breaker_cooldown_secs: 0.0,
            watchdog_ticks: u64::MAX,
            healthy_age_ticks: 1,
            degraded_age_ticks: 1,
            stale_age_ticks: 1,
            admission: AdmissionConfig::unbounded(),
        }
    }
}

/// Supervised-ingest accounting, merged across platforms for
/// `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IngestStats {
    /// Ingest ticks attempted (including short-circuited ones).
    pub attempts: u64,
    /// Ticks that published a snapshot.
    pub publishes: u64,
    /// Publishes where some (but not all) sensors delivered fresh data.
    pub partial_publishes: u64,
    /// Ticks that exhausted the retry budget without fresh data.
    pub failures: u64,
    /// Retry attempts consumed across all ticks.
    pub retries: u64,
    /// Simulated seconds spent in retry backoff.
    pub backoff_secs: f64,
    /// Ticks that recovered (published after at least one retry).
    pub recovered: u64,
    /// Breaker trips from the failure streak or a failed half-open probe.
    pub breaker_trips: u64,
    /// Ticks short-circuited by an open breaker.
    pub breaker_short_circuits: u64,
    /// Breaker trips forced by the no-publish watchdog.
    pub watchdog_trips: u64,
}

impl IngestStats {
    /// Folds `other` into `self` (sums every counter).
    pub fn merge(&mut self, other: &IngestStats) {
        self.attempts += other.attempts;
        self.publishes += other.publishes;
        self.partial_publishes += other.partial_publishes;
        self.failures += other.failures;
        self.retries += other.retries;
        self.backoff_secs += other.backoff_secs;
        self.recovered += other.recovered;
        self.breaker_trips += other.breaker_trips;
        self.breaker_short_circuits += other.breaker_short_circuits;
        self.watchdog_trips += other.watchdog_trips;
    }
}

/// What one ingest tick did to one platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// A snapshot published; `partial` when some sensors stayed silent.
    Published {
        /// The new epoch.
        epoch: u64,
        /// Whether any sensor delivered nothing this tick.
        partial: bool,
        /// Retries consumed before fresh data arrived.
        retries: u32,
    },
    /// The retry budget exhausted without any fresh measurement; the
    /// previous snapshot stays published.
    Failed {
        /// Attempts consumed (1 + retries).
        attempts: u32,
    },
    /// An open breaker skipped the tick entirely (no polling).
    ShortCircuited,
}

impl IngestOutcome {
    /// Whether this tick published a snapshot.
    pub fn published(&self) -> bool {
        matches!(self, Self::Published { .. })
    }
}

/// What the retry/breaker DP predicts for a chaos campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityPrediction {
    /// Predicted fraction of queries answered (non-503).
    pub availability: f64,
    /// Predicted fraction of queries served in a non-Healthy state.
    pub degraded_fraction: f64,
    /// Ticks predicted to publish.
    pub published_ticks: u64,
    /// Ticks predicted to exhaust their retry budget.
    pub failed_ticks: u64,
    /// Ticks predicted to be short-circuited by the breaker.
    pub short_circuited_ticks: u64,
    /// Ticks predicted to serve Unavailable (503).
    pub unavailable_ticks: u64,
}

/// Predicts a chaos campaign's availability without running the
/// service: the same tick/retry/breaker/watchdog recurrence as
/// `ServiceCore::ingest_tick`, with "fresh data arrived" replaced by
/// its deterministic dominant term — *some sensor poll falls outside
/// every blackout window* — mirroring how `faultpred_study` predicts
/// runtimes from the fault DP before measuring them. Random per-poll
/// dropout is ignored: with several sensors per platform the
/// probability that every poll of a tick drops is negligible, and the
/// gate bound absorbs it.
///
/// `ticks` counts post-warmup campaign ticks; queries are assumed
/// uniform per tick, so fractions are tick fractions.
pub fn predict_availability(
    fault: &FaultConfig,
    res: &ResilienceConfig,
    publish_interval: f64,
    poll_interval: f64,
    warmup: f64,
    horizon: f64,
    ticks: u64,
) -> AvailabilityPrediction {
    let mut clock = 0.0f64;
    let mut breaker = CircuitBreaker::new(res.breaker_threshold.max(1), res.breaker_cooldown_secs);
    let mut tick_no = 0u64;
    let mut last_publish = 0u64;
    let mut out = AvailabilityPrediction {
        availability: 0.0,
        degraded_fraction: 0.0,
        published_ticks: 0,
        failed_ticks: 0,
        short_circuited_ticks: 0,
        unavailable_ticks: 0,
    };

    // Per-tick outcome, mirroring `IngestStats` accounting: 0 published,
    // 1 short-circuited (the breaker refused the poll), 2 failed (the
    // retry budget ran dry — including a failed half-open probe).
    let step = |dt: f64,
                clock: &mut f64,
                breaker: &mut CircuitBreaker,
                tick_no: &mut u64,
                last_publish: &mut u64|
     -> u8 {
        *tick_no += 1;
        if !breaker.allows(*clock) {
            *clock = (*clock + dt).min(horizon);
            return 1;
        }
        let mut attempt = 0u32;
        let mut advance = dt;
        loop {
            let prev = *clock;
            *clock = (prev + advance).min(horizon);
            if any_poll_delivers(fault, poll_interval, prev, *clock) {
                *last_publish = *tick_no;
                breaker.record_success();
                return 0;
            }
            if attempt >= res.retry.max_retries {
                break;
            }
            advance = res.retry.backoff_secs(attempt);
            attempt += 1;
        }
        if !breaker.record_failure(*clock)
            && breaker.state() == prodpred_core::supervisor::BreakerState::Closed
            && res.watchdog_ticks != u64::MAX
            && *tick_no - *last_publish >= res.watchdog_ticks
        {
            breaker.trip(*clock);
        }
        2
    };

    // Warmup tick (epoch 1) — not part of the campaign accounting.
    step(
        warmup,
        &mut clock,
        &mut breaker,
        &mut tick_no,
        &mut last_publish,
    );

    for _ in 0..ticks {
        let outcome = step(
            publish_interval,
            &mut clock,
            &mut breaker,
            &mut tick_no,
            &mut last_publish,
        );
        match outcome {
            0 => out.published_ticks += 1,
            1 => out.short_circuited_ticks += 1,
            _ => out.failed_ticks += 1,
        }
        let age = tick_no - last_publish;
        let open = breaker.state() != prodpred_core::supervisor::BreakerState::Closed;
        let state = ServingState::derive(age, open, res);
        if state == ServingState::Unavailable {
            out.unavailable_ticks += 1;
        }
        if state != ServingState::Healthy {
            out.degraded_fraction += 1.0;
        }
    }
    let total = ticks.max(1) as f64;
    out.availability = 1.0 - out.unavailable_ticks as f64 / total;
    out.degraded_fraction /= total;
    out
}

/// Whether any sensor poll scheduled in `(prev, now]` lands outside
/// every blackout window (polls fire on the global `interval` grid).
fn any_poll_delivers(fault: &FaultConfig, interval: f64, prev: f64, now: f64) -> bool {
    if interval <= 0.0 || now <= prev {
        return false;
    }
    let mut k = (prev / interval).floor() as u64;
    loop {
        let t = k as f64 * interval;
        if t > now {
            return false;
        }
        if t > prev && !fault.in_blackout(t) {
            return true;
        }
        k += 1;
    }
}

/// One arm (supervised or unsupervised) of the chaos campaign, as
/// committed in `BENCH_servicechaos.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosArm {
    /// Queries issued.
    pub requests: u64,
    /// Queries answered 200 (healthy or degraded).
    pub ok: u64,
    /// 200s marked `degraded: true`.
    pub degraded: u64,
    /// Queries shed with 429.
    pub shed: u64,
    /// Queries refused with 503 (Unavailable).
    pub unavailable: u64,
    /// Non-503 fraction (the paper-facing availability number).
    pub availability: f64,
    /// Degraded fraction of the answered queries.
    pub degraded_fraction: f64,
    /// 429 fraction of all queries.
    pub shed_rate: f64,
    /// 99th-percentile query latency under fault, microseconds.
    pub p99_us: u64,
    /// Snapshots published during the campaign.
    pub epochs_published: u64,
    /// Ingest ticks that failed outright.
    pub ingest_failures: u64,
    /// Ingest retries consumed.
    pub ingest_retries: u64,
    /// Breaker trips (streak or failed probe).
    pub breaker_trips: u64,
    /// Watchdog-forced trips.
    pub watchdog_trips: u64,
}

/// The committed chaos-campaign record: both arms plus the
/// predicted-vs-measured availability gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Master seed for platforms, faults, and the request stream.
    pub seed: u64,
    /// Campaign ticks per arm (after the warmup publish).
    pub ticks: u64,
    /// Queries replayed between consecutive ticks.
    pub queries_per_tick: u64,
    /// Distinct request configs whose cached/uncached/degraded answers
    /// were verified bit-identical before measuring.
    pub soundness_checked_configs: u64,
    /// The resilient service under chaos.
    pub supervised: ChaosArm,
    /// The fault-blind, fresh-data-only baseline under the same chaos.
    pub unsupervised: ChaosArm,
    /// Availability predicted by the retry/breaker DP for the
    /// supervised arm.
    pub predicted_availability: f64,
    /// `|predicted - measured|` for the supervised arm (gated).
    pub availability_error: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_state_orders_by_severity_and_escalates() {
        assert!(ServingState::Healthy < ServingState::Degraded);
        assert!(ServingState::Degraded < ServingState::Stale);
        assert!(ServingState::Stale < ServingState::Unavailable);
        assert_eq!(ServingState::Healthy.escalate(), ServingState::Degraded);
        assert_eq!(ServingState::Stale.escalate(), ServingState::Unavailable);
        assert_eq!(
            ServingState::Unavailable.escalate(),
            ServingState::Unavailable
        );
        assert_eq!(ServingState::default(), ServingState::Unavailable);
    }

    #[test]
    fn derive_walks_the_bands_and_breaker_escalates() {
        let res = ResilienceConfig {
            healthy_age_ticks: 1,
            degraded_age_ticks: 3,
            stale_age_ticks: 5,
            ..ResilienceConfig::default()
        };
        let walk: Vec<ServingState> = (0..7)
            .map(|age| ServingState::derive(age, false, &res))
            .collect();
        use ServingState::*;
        assert_eq!(
            walk,
            [
                Healthy,
                Healthy,
                Degraded,
                Degraded,
                Stale,
                Stale,
                Unavailable
            ]
        );
        assert_eq!(ServingState::derive(0, true, &res), Degraded);
        assert_eq!(ServingState::derive(4, true, &res), Unavailable);
    }

    #[test]
    fn widening_is_identity_in_the_healthy_band() {
        assert_eq!(widening_factor(0, 1), 1.0);
        assert_eq!(widening_factor(1, 1), 1.0);
        assert_eq!(widening_factor(2, 1), 2.0f64.sqrt());
        assert_eq!(widening_factor(5, 1), 5.0f64.sqrt());
    }

    #[test]
    fn admission_sheds_past_the_token_budget_and_refills() {
        let adm = Admission::new(AdmissionConfig {
            max_inflight_misses: u64::MAX,
            miss_tokens_per_tick: 2,
        });
        let a = adm.try_admit_miss();
        let b = adm.try_admit_miss();
        assert!(a.is_some() && b.is_some());
        assert!(adm.try_admit_miss().is_none(), "third miss must shed");
        assert_eq!(adm.shed(), 1);
        adm.refill();
        assert!(adm.try_admit_miss().is_some(), "refill restores budget");
    }

    #[test]
    fn admission_caps_inflight_and_permits_release_slots() {
        let adm = Admission::new(AdmissionConfig {
            max_inflight_misses: 1,
            miss_tokens_per_tick: u64::MAX,
        });
        let held = adm.try_admit_miss().expect("first slot");
        assert!(adm.try_admit_miss().is_none(), "second concurrent sheds");
        drop(held);
        assert!(adm.try_admit_miss().is_some(), "slot freed on drop");
        assert_eq!(adm.shed(), 1);
    }

    #[test]
    fn unbounded_admission_never_sheds_or_drains() {
        let adm = Admission::new(AdmissionConfig::unbounded());
        for _ in 0..10_000 {
            assert!(adm.try_admit_miss().is_some());
        }
        assert_eq!(adm.shed(), 0);
    }

    #[test]
    fn predictor_is_all_healthy_without_faults() {
        let fault = FaultConfig::none(1);
        let res = ResilienceConfig::default();
        let p = predict_availability(&fault, &res, 5.0, 5.0, 600.0, 1e9, 200);
        assert_eq!(p.published_ticks, 200);
        assert_eq!(p.failed_ticks + p.short_circuited_ticks, 0);
        assert_eq!(p.availability, 1.0);
        assert_eq!(p.degraded_fraction, 0.0);
    }

    #[test]
    fn predictor_rides_through_a_short_blackout_with_retries() {
        let mut fault = FaultConfig::none(1);
        // One 120 s blackout shortly after warmup.
        fault.blackouts.push((650.0, 770.0));
        let res = ResilienceConfig::default();
        let p = predict_availability(&fault, &res, 5.0, 5.0, 600.0, 1e9, 100);
        // The default retry budget (30+60+120 s of backoff) crosses the
        // window inside a single tick: nothing fails, nothing is 503.
        assert_eq!(p.failed_ticks, 0, "{p:?}");
        assert_eq!(p.unavailable_ticks, 0);
        assert_eq!(p.availability, 1.0);
    }

    #[test]
    fn predictor_unsupervised_fails_through_the_same_blackout() {
        let mut fault = FaultConfig::none(1);
        fault.blackouts.push((650.0, 770.0));
        let res = ResilienceConfig::unsupervised();
        let p = predict_availability(&fault, &res, 5.0, 5.0, 600.0, 1e9, 100);
        // 120 s / 5 s-per-tick = 24 failed ticks, unavailable from age 2.
        assert_eq!(p.failed_ticks, 24, "{p:?}");
        assert!(p.unavailable_ticks >= 20, "{p:?}");
        assert!(p.availability < 0.85, "{p:?}");
    }

    #[test]
    fn poll_oracle_respects_blackouts_and_window_edges() {
        let mut fault = FaultConfig::none(0);
        fault.blackouts.push((10.0, 20.0));
        // Poll at 15 is blacked out; window (10, 15] has no delivery.
        assert!(!any_poll_delivers(&fault, 5.0, 10.0, 15.0));
        // Poll at 20 is outside (`t < hi` is exclusive at the end).
        assert!(any_poll_delivers(&fault, 5.0, 15.0, 20.0));
        // Poll at 5 sits outside the window.
        assert!(any_poll_delivers(&fault, 5.0, 0.0, 5.0));
        // Empty or reversed window: nothing fires.
        assert!(!any_poll_delivers(&fault, 5.0, 5.0, 5.0));
        // A poll at exactly `prev` belongs to the previous advance.
        assert!(!any_poll_delivers(&fault, 5.0, 5.0, 9.0));
    }

    mod widening_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // The service-level widening factor is monotone in snapshot
            // age and never shrinks an interval.
            #[test]
            fn widening_monotone_and_never_below_one(
                age in 0u64..10_000,
                healthy in 0u64..64,
            ) {
                let f = widening_factor(age, healthy);
                let g = widening_factor(age + 1, healthy);
                prop_assert!(f >= 1.0);
                prop_assert!(g >= f, "age {age}: {g} < {f}");
            }

            // Applying the factor around the mean preserves the mean and
            // only ever grows the half-width; inside the healthy band
            // the interval is untouched exactly.
            #[test]
            fn widened_intervals_never_shrink(
                mean in 0.1f64..1e6,
                half in 0.0f64..1e5,
                age in 0u64..512,
                healthy in 0u64..16,
            ) {
                let (lo, hi) = (mean - half, mean + half);
                let f = widening_factor(age, healthy);
                let (wlo, whi) = (mean - half * f, mean + half * f);
                prop_assert!(whi - wlo >= (hi - lo) - 1e-12);
                if age <= healthy {
                    prop_assert_eq!(wlo.to_bits(), lo.to_bits());
                    prop_assert_eq!(whi.to_bits(), hi.to_bits());
                }
            }
        }
    }
}
