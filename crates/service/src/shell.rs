//! The `std::net` veneer: the only module in the workspace (enforced by
//! tidy lint PP008) that touches real sockets.
//!
//! Everything interesting — routing, parsing, prediction, caching,
//! epoch publication — lives in the pure [`crate::core`] and
//! [`crate::http`] layers and is tested without a socket. This module
//! only: accepts connections, reads a request head, calls
//! [`crate::http::handle`], and writes the rendered bytes back. One
//! background ingest thread ticks the core on a fixed cadence; a small
//! worker pool (sized like [`prodpred_pool::num_threads`]) serves
//! connections, demonstrating that concurrent readers never contend
//! with the ingest writer.

use crate::core::ServiceCore;
use crate::http;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
// tidy:allow(PP010): shutdown latch only — a monotone boolean, no data is published through it
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Shell tunables.
#[derive(Debug, Clone)]
pub struct ShellConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port.
    pub addr: String,
    /// Connection-serving worker threads (0 means
    /// [`prodpred_pool::num_threads`]).
    pub workers: usize,
    /// Wall-clock milliseconds between ingest ticks (each tick advances
    /// the simulation by the core's `publish_interval`).
    pub tick_millis: u64,
}

impl Default for ShellConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            tick_millis: 250,
        }
    }
}

/// A running daemon: its bound address plus a shutdown switch.
pub struct ShellHandle {
    addr: SocketAddr,
    // tidy:allow(PP010): shutdown latch only — a monotone boolean, no data is published through it
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ShellHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop, the ingest thread, and the workers, then
    /// joins them. Idempotent.
    pub fn shutdown(&mut self) {
        // tidy:allow(PP010): shutdown latch only — a monotone boolean, no data is published through it
        self.shutdown.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ShellHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Maximum request-head bytes read before giving up on a client.
const MAX_HEAD: usize = 8 * 1024;

/// Serves one accepted connection: read the head, route, respond.
fn serve_connection(core: &ServiceCore, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    let response = loop {
        match stream.read(&mut buf) {
            Ok(0) => break None,
            Ok(k) => {
                head.extend_from_slice(&buf[..k]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") {
                    let text = String::from_utf8_lossy(&head);
                    break Some(match http::request_target(&text) {
                        Ok(target) => http::handle(core, target),
                        Err(error) => error,
                    });
                }
                if head.len() > MAX_HEAD {
                    break None;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break None, // timeout or reset: drop the client
        }
    };
    if let Some(response) = response {
        let _ = stream.write_all(response.render().as_bytes());
        let _ = stream.flush();
    }
}

/// Boots the daemon: binds `config.addr`, spawns the ingest ticker and
/// the worker pool, and returns a handle owning all of it. The returned
/// handle's [`ShellHandle::shutdown`] (or drop) stops everything.
///
/// # Errors
///
/// Propagates the listener `bind` failure (address in use, permission).
pub fn serve(core: Arc<ServiceCore>, config: &ShellConfig) -> std::io::Result<ShellHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    // tidy:allow(PP010): shutdown latch only — a monotone boolean, no data is published through it
    let shutdown = Arc::new(AtomicBool::new(false));
    let workers = if config.workers == 0 {
        prodpred_pool::num_threads()
    } else {
        config.workers
    };

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let mut threads = Vec::with_capacity(workers + 2);

    for _ in 0..workers {
        let core = Arc::clone(&core);
        let rx = Arc::clone(&rx);
        threads.push(std::thread::spawn(move || loop {
            let next = rx
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .recv_timeout(Duration::from_millis(100));
            match next {
                Ok(stream) => serve_connection(&core, stream),
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        }));
    }

    {
        let core = Arc::clone(&core);
        let shutdown = Arc::clone(&shutdown);
        let tick = Duration::from_millis(config.tick_millis.max(1));
        threads.push(std::thread::spawn(move || {
            // tidy:allow(PP010): shutdown latch only — a monotone boolean, no data is published through it
            while !shutdown.load(Ordering::Acquire) {
                std::thread::sleep(tick);
                core.ingest_tick();
            }
        }));
    }

    {
        let shutdown = Arc::clone(&shutdown);
        threads.push(std::thread::spawn(move || {
            // tidy:allow(PP010): shutdown latch only — a monotone boolean, no data is published through it
            while !shutdown.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if tx.send(stream).is_err() {
                            return; // workers gone; nothing to serve with
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            }
            // Dropping `tx` here disconnects the channel; workers drain
            // what was accepted and exit on Disconnected.
        }));
    }

    Ok(ShellHandle {
        addr,
        shutdown,
        threads,
    })
}

// Worker threads exit via channel disconnect rather than the shutdown
// flag: the accept thread owns the sender and drops it when told to
// stop, so no request accepted before shutdown is ever dropped.
