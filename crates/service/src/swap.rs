//! Epoch-pointer publication: a hand-rolled, std-only arc-swap that lets
//! one ingest thread publish immutable snapshots while any number of
//! reader threads load the latest one without ever waiting on the
//! writer.
//!
//! ## The protocol
//!
//! [`EpochSwap`] keeps a small ring of slots, each holding `(epoch,
//! Arc<T>)`, plus a single `AtomicU64` naming the latest published
//! epoch. Publication writes the *next* ring slot — one the last `N-1`
//! epochs of readers cannot be looking at — and only then bumps the
//! epoch counter with `Release` ordering. A read loads the epoch
//! (`Acquire`), indexes its slot, clones the `Arc`, and validates that
//! the slot still carries the expected epoch; a reader that slept so
//! long the writer lapped the whole ring simply observes the mismatch
//! and retries against the now-newer epoch.
//!
//! ## Why this is "lock-free reads" without unsafe code
//!
//! The read path takes no `Mutex` and never blocks on the writer in
//! steady state: the writer only ever write-locks the slot `N-1` epochs
//! ahead of the one current readers index, so a reader's slot
//! acquisition is always uncontended (an atomic refcount bump, no
//! waiting). The only way a reader meets the writer on a slot is being
//! delayed for `N-1` full publish intervals — seconds, against a
//! nanosecond read — and even then it waits only for one pointer store
//! before detecting the epoch mismatch and retrying. The classic
//! `AtomicPtr`-of-`Arc` formulation buys the same property with unsafe
//! deferred reclamation; the ring buys it with slot validation and keeps
//! the crate `forbid(unsafe_code)`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

/// Ring capacity: how many epochs of grace a stalled reader gets before
/// its load retries. Publication cadence is seconds; reads are
/// sub-microsecond, so 8 is already astronomically conservative.
const SLOTS: usize = 8;

struct Slot<T> {
    epoch: u64,
    value: Option<Arc<T>>,
}

/// Single-writer, many-reader epoch publication of immutable values.
///
/// ```
/// use prodpred_service::swap::EpochSwap;
/// let swap: EpochSwap<String> = EpochSwap::new();
/// assert!(swap.load().is_none());
/// swap.publish("hello".to_string());
/// let (epoch, value) = swap.load().unwrap();
/// assert_eq!((epoch, value.as_str()), (1, "hello"));
/// ```
pub struct EpochSwap<T> {
    /// Latest published epoch; 0 means nothing published yet.
    epoch: AtomicU64,
    slots: Box<[RwLock<Slot<T>>]>,
    /// Serializes publishers (the reader path never touches this).
    writer: Mutex<u64>,
}

impl<T> Default for EpochSwap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EpochSwap<T> {
    /// An empty publication point (no epoch yet).
    pub fn new() -> Self {
        let slots = (0..SLOTS)
            .map(|_| {
                RwLock::new(Slot {
                    epoch: 0,
                    value: None,
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            epoch: AtomicU64::new(0),
            slots,
            writer: Mutex::new(0),
        }
    }

    /// The latest published epoch (0 before the first publish). A plain
    /// atomic load — readers use it to detect staleness cheaply.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes `value` as the next epoch and returns that epoch.
    /// Publishers are serialized against each other; readers are never
    /// blocked (they read a different slot).
    pub fn publish(&self, value: T) -> u64 {
        self.begin_publish(value).commit()
    }

    /// Writes `value` into the next epoch's slot but does **not** make
    /// the epoch visible yet: readers keep loading the previous epoch
    /// until [`PendingPublish::commit`] performs the Release store.
    ///
    /// This is the publication protocol's natural seam — the returned
    /// guard holds the writer lock, so the slot-write/word-store pair
    /// stays a single serialized publication — and it is what the
    /// model-checking conformance harness drives to replay explored
    /// schedules step-for-step (see `prodpred-analysis::svc`).
    pub fn begin_publish(&self, value: T) -> PendingPublish<'_, T> {
        let writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let epoch = *writer + 1;
        {
            let mut slot = self.slots[(epoch as usize) % SLOTS]
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            slot.epoch = epoch;
            slot.value = Some(Arc::new(value));
        }
        PendingPublish {
            swap: self,
            writer,
            epoch,
        }
    }

    /// One validation attempt against a specific `epoch`: the slot read
    /// half of [`Self::load`], without the retry loop. `None` means the
    /// slot no longer carries `epoch` (the writer lapped it, or nothing
    /// was published) and the caller must re-load the epoch word.
    pub fn try_load_at(&self, epoch: u64) -> Option<Arc<T>> {
        if epoch == 0 {
            return None;
        }
        let slot = self.slots[(epoch as usize) % SLOTS]
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        if slot.epoch == epoch {
            if let Some(value) = &slot.value {
                return Some(Arc::clone(value));
            }
        }
        None
    }

    /// Loads the latest published `(epoch, value)`, or `None` before the
    /// first publish. Wait-free against the writer in steady state; a
    /// reader lapped by `SLOTS - 1` publishes mid-load retries against
    /// the fresher epoch.
    pub fn load(&self) -> Option<(u64, Arc<T>)> {
        loop {
            let epoch = self.epoch.load(Ordering::Acquire);
            if epoch == 0 {
                return None;
            }
            if let Some(value) = self.try_load_at(epoch) {
                return Some((epoch, value));
            }
            // Lapped: the writer reused this slot for a newer epoch
            // between our epoch load and slot read. Retry; the fresh
            // epoch's slot is untouched for another SLOTS - 1 publishes.
        }
    }
}

/// A publication whose slot is written but whose epoch is not yet
/// visible to readers. Holds the writer lock; dropping it without
/// [`commit`](Self::commit) abandons the slot write (the next publish
/// simply overwrites the same slot with the same epoch number).
#[must_use = "the epoch only becomes visible on commit"]
pub struct PendingPublish<'a, T> {
    swap: &'a EpochSwap<T>,
    writer: MutexGuard<'a, u64>,
    epoch: u64,
}

impl<T> PendingPublish<'_, T> {
    /// The epoch this publication will become once committed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Release-stores the epoch word, making the publication visible to
    /// readers, and returns the published epoch.
    pub fn commit(mut self) -> u64 {
        // The slot is fully written before the epoch becomes visible.
        self.swap.epoch.store(self.epoch, Ordering::Release);
        *self.writer = self.epoch;
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn empty_then_publish_then_load() {
        let swap: EpochSwap<u32> = EpochSwap::new();
        assert_eq!(swap.epoch(), 0);
        assert!(swap.load().is_none());
        assert_eq!(swap.publish(7), 1);
        assert_eq!(swap.epoch(), 1);
        let (e, v) = swap.load().unwrap();
        assert_eq!((e, *v), (1, 7));
    }

    #[test]
    fn epochs_are_sequential_and_latest_wins() {
        let swap: EpochSwap<u32> = EpochSwap::new();
        for i in 1..=100u32 {
            assert_eq!(swap.publish(i), u64::from(i));
        }
        let (e, v) = swap.load().unwrap();
        assert_eq!((e, *v), (100, 100));
    }

    #[test]
    fn held_arc_survives_ring_reuse() {
        // A reader's Arc stays valid no matter how many epochs lap the
        // ring: the Arc owns the value, the ring only owns a reference.
        let swap: EpochSwap<Vec<u64>> = EpochSwap::new();
        swap.publish(vec![42; 1000]);
        let (e, old) = swap.load().unwrap();
        assert_eq!(e, 1);
        for i in 0..(SLOTS as u64 * 4) {
            swap.publish(vec![i; 10]);
        }
        assert_eq!(old.len(), 1000);
        assert!(old.iter().all(|&x| x == 42));
        let (e, _) = swap.load().unwrap();
        assert_eq!(e, 1 + SLOTS as u64 * 4);
    }

    #[test]
    fn concurrent_readers_always_see_a_coherent_pair() {
        // Hammer loads while a writer publishes: every observed value
        // must equal its epoch (the pair is published atomically), and
        // epochs must be monotone per reader.
        let swap = Arc::new(EpochSwap::<u64>::new());
        swap.publish(1);
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let swap = Arc::clone(&swap);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0;
                    let mut seen = 0u64;
                    // Load-then-check: even if the writer outruns thread
                    // startup, every reader validates at least one load.
                    loop {
                        let (e, v) = swap.load().unwrap();
                        assert_eq!(e, *v, "epoch and payload published atomically");
                        assert!(e >= last, "epochs monotone per reader");
                        last = e;
                        seen += 1;
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    seen
                })
            })
            .collect();
        for i in 2..=5000u64 {
            swap.publish(i);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        let (e, v) = swap.load().unwrap();
        assert_eq!((e, *v), (5000, 5000));
    }
}
