//! The in-core sort benchmark behind the paper's Figures 1–2.
//!
//! "Figure 1 shows a histogram of runtimes for a sample sorting code on a
//! single workstation with no other users present and its corresponding
//! normal distribution." Two variants are provided:
//!
//! * [`run_sort_benchmark`] actually sorts, timing real wall-clock runs on
//!   the host — used by the figure harness when live data is wanted;
//! * [`simulated_sort_runtimes`] reproduces the same statistical shape
//!   deterministically from a seed — used by tests and default figures so
//!   results replay exactly.

use crate::rng::uniform01;
use prodpred_stochastic::dist::Distribution;
use prodpred_stochastic::Normal;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Runs a real in-core sort benchmark: `reps` repetitions of shuffling and
/// sorting `n` 64-bit keys, returning wall-clock seconds per repetition.
///
/// Dedicated-machine runtimes are approximately normal — small independent
/// perturbations (cache state, interrupts) add up — which is the paper's
/// Figure-1 observation.
pub fn run_sort_benchmark(n: usize, reps: usize, seed: u64) -> Vec<f64> {
    assert!(n > 0 && reps > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(reps);
    let mut data: Vec<u64> = Vec::with_capacity(n);
    for _ in 0..reps {
        data.clear();
        for _ in 0..n {
            data.push(rand::RngCore::next_u64(&mut rng));
        }
        let start = Instant::now(); // tidy:allow(PP001): calibrates against real hardware by design
        data.sort_unstable();
        out.push(start.elapsed().as_secs_f64());
    }
    out
}

/// Deterministically simulated dedicated-machine sort runtimes:
/// `base_secs` with normal jitter of relative sd `jitter_rel`.
pub fn simulated_sort_runtimes(
    base_secs: f64,
    jitter_rel: f64,
    reps: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(base_secs > 0.0 && jitter_rel >= 0.0 && reps > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Normal::new(base_secs, base_secs * jitter_rel);
    (0..reps)
        .map(|_| dist.sample(&mut rng).max(base_secs * 0.1))
        .collect()
}

/// The paper's Figure-1 configuration: runtimes centered near 11 s with
/// sd ≈ 1.5 s, spanning roughly 6–16 s.
pub fn figure1_runtimes(reps: usize, seed: u64) -> Vec<f64> {
    simulated_sort_runtimes(11.0, 0.136, reps, seed)
}

/// A deterministic pseudo-work kernel for calibration tests: performs a
/// fixed number of floating-point operations and returns a checksum so the
/// optimizer cannot elide the work.
pub fn spin_flops(ops: u64, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = uniform01(&mut rng);
    for i in 0..ops {
        acc = acc.mul_add(0.999_999_9, 1.0e-7 * ((i & 0xFF) as f64));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use prodpred_stochastic::fit::normality_report;
    use prodpred_stochastic::Summary;

    #[test]
    fn real_sort_benchmark_returns_positive_times() {
        let times = run_sort_benchmark(50_000, 5, 1);
        assert_eq!(times.len(), 5);
        assert!(times.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn simulated_runtimes_are_normal_enough() {
        let times = figure1_runtimes(4000, 7);
        let rep = normality_report(&times).unwrap();
        assert!(rep.is_adequate(), "{rep:?}");
        let s = Summary::from_slice(&times);
        assert!((s.mean() - 11.0).abs() < 0.2);
        assert!((s.sd() - 1.5).abs() < 0.2);
    }

    #[test]
    fn simulated_runtimes_deterministic() {
        assert_eq!(figure1_runtimes(100, 3), figure1_runtimes(100, 3));
        assert_ne!(figure1_runtimes(100, 3), figure1_runtimes(100, 4));
    }

    #[test]
    fn spin_flops_returns_finite_checksum() {
        let v = spin_flops(100_000, 1);
        assert!(v.is_finite());
        // Deterministic.
        assert_eq!(v, spin_flops(100_000, 1));
    }

    #[test]
    #[should_panic]
    fn simulated_rejects_zero_reps() {
        simulated_sort_runtimes(1.0, 0.1, 0, 1);
    }
}
