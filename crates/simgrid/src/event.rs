//! A small deterministic discrete-event engine.
//!
//! Drives the competing-user session workload generator (arrivals and
//! departures of other users' jobs on a shared workstation). Ties at equal
//! timestamps break by insertion order, so simulations replay exactly.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: a timestamp plus a payload.
#[derive(Debug, Clone)]
struct Scheduled<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        // total_cmp keeps Eq consistent with Ord for every bit pattern.
        self.time.total_cmp(&other.time) == Ordering::Equal && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for the max-heap: earliest time first, then lowest seq.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    seq: u64,
    now: f64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// The current simulation time (the timestamp of the last popped
    /// event, or zero).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or earlier than the current clock
    /// (scheduling into the past breaks causality).
    pub fn schedule(&mut self, time: f64, payload: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule into the past: {} < {}",
            time,
            self.now
        );
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedules `payload` at `now + delay`.
    pub fn schedule_in(&mut self, delay: f64, payload: T) {
        assert!(delay >= 0.0, "delay must be non-negative");
        self.schedule(self.now + delay, payload);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.payload)
        })
    }

    /// Peeks at the next event time without advancing the clock.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(2.0, "first");
        q.pop();
        q.schedule_in(3.0, "second");
        assert_eq!(q.pop(), Some((5.0, "second")));
    }

    #[test]
    fn interleaved_scheduling_during_processing() {
        // A cascades into B: classic DES pattern.
        let mut q = EventQueue::new();
        q.schedule(1.0, 0u32);
        let mut log = Vec::new();
        while let Some((t, v)) = q.pop() {
            log.push((t, v));
            if v < 3 {
                q.schedule_in(1.0, v + 1);
            }
        }
        assert_eq!(log, vec![(1.0, 0), (2.0, 1), (3.0, 2), (4.0, 3)]);
    }

    #[test]
    #[should_panic]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(4.0, ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(7.0, ());
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.now(), 0.0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
