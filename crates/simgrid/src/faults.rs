//! Deterministic, seeded fault injection for the simulated world.
//!
//! The paper's experiments assume a healthy measurement substrate: "The
//! Network Weather Service supplied us with accurate run-time information
//! ... at 5 second intervals", and every worker survives every run. A
//! production deployment gets none of those guarantees — sensors miss
//! polls, measurements arrive late or corrupted, monitoring blacks out
//! for whole windows, machines get slammed by competing load, and workers
//! die mid-iteration. This module is the *configuration surface* for all
//! of those faults; the graceful-degradation behaviour that absorbs them
//! lives in `prodpred-nws` (staleness-aware queries) and `prodpred-sor`
//! (typed solve errors instead of deadlocks).
//!
//! ## Determinism
//!
//! Every per-poll decision is a **pure function** of
//! `(fault seed, resource id, poll index)` — a SplitMix64-style hash, no
//! mutable RNG state anywhere. Two consequences:
//!
//! * the same master seed and fault config replay bit-for-bit,
//! * the decision stream cannot depend on thread schedule or on how many
//!   polls some *other* resource performed, so fault-injected experiment
//!   sweeps stay bit-identical at any pool thread count.

use crate::load::{MAX_AVAILABILITY, MIN_AVAILABILITY};
use crate::platform::Platform;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// A window of elevated competing load on one machine: availability is
/// multiplied by `availability_factor` (clamped to the availability
/// bounds) for `duration` seconds starting at `start`. Storms perturb the
/// simulated *ground truth*, so both the NWS and the distributed runs see
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadStorm {
    /// Index of the machine hit by the storm.
    pub machine: usize,
    /// Storm onset, in platform seconds.
    pub start: f64,
    /// Storm length in seconds.
    pub duration: f64,
    /// Multiplier applied to availability during the storm, in `(0, 1]`.
    pub availability_factor: f64,
}

/// Death of one SOR worker at a chosen half-iteration (a red or black
/// phase; half-iteration `2k` is iteration `k`'s red phase). Consumed by
/// the `prodpred-sor` parallel drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerDeath {
    /// Rank (strip/block index) of the worker that dies.
    pub rank: usize,
    /// Half-iteration at the start of which the worker dies.
    pub at_half_iteration: usize,
}

/// Why an intensity value was rejected by
/// [`FaultConfig::try_with_intensity`]. Carries the offending value so
/// service-layer callers can echo it back to the client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntensityError {
    /// The value was NaN or infinite.
    NotFinite(f64),
    /// The value was finite but outside `[0, 1]`.
    OutOfRange(f64),
}

impl std::fmt::Display for IntensityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotFinite(v) => write!(f, "fault intensity must be finite, got {v}"),
            Self::OutOfRange(v) => write!(f, "fault intensity must be in [0, 1], got {v}"),
        }
    }
}

impl std::error::Error for IntensityError {}

/// The full fault model for one experiment. All probabilities are per
/// scheduled sensor poll, in `[0, 1]`; the decision order on each poll is
/// dropout → delay → spike → corruption (first match wins).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Master fault seed. Independent of the platform seed so the same
    /// environment can be replayed under different fault streams.
    pub seed: u64,
    /// Probability a scheduled poll is silently missed.
    pub dropout: f64,
    /// Probability a measurement is delayed: the value measured up to
    /// [`FaultConfig::max_delay_intervals`] cadences earlier is what
    /// arrives at this poll (late, stale data — consecutive delayed polls
    /// can deliver measurements out of their original order).
    pub delay: f64,
    /// Largest delay, in sensor cadences (>= 1 when `delay > 0`).
    pub max_delay_intervals: u32,
    /// Probability of an outlier spike: the measured value is scaled by
    /// [`FaultConfig::spike_factor`] or its reciprocal (alternating by
    /// hash bit), producing the junk readings a flaky sensor emits.
    pub spike: f64,
    /// Multiplicative spike magnitude, > 1.
    pub spike_factor: f64,
    /// Probability a measurement arrives corrupted (non-finite). Sensors
    /// must drop these rather than panic or poison their history.
    pub corrupt: f64,
    /// NWS blackout windows `(start, end)` in platform seconds: every
    /// poll scheduled inside one is missed, for every resource.
    pub blackouts: Vec<(f64, f64)>,
    /// Per-machine load storms, applied to the platform's ground truth.
    pub storms: Vec<LoadStorm>,
    /// Optional worker death for the threaded SOR drivers.
    pub worker_death: Option<WorkerDeath>,
}

impl FaultConfig {
    /// A fault-free configuration (useful as the zero point of a sweep).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            dropout: 0.0,
            delay: 0.0,
            max_delay_intervals: 4,
            spike: 0.0,
            spike_factor: 8.0,
            corrupt: 0.0,
            blackouts: Vec::new(),
            storms: Vec::new(),
            worker_death: None,
        }
    }

    /// A fault mix scaled by `intensity` in `[0, 1]`: at 0 everything is
    /// healthy; at 1 the sensors miss 15% of polls, 10% of measurements
    /// arrive up to 4 cadences late, 6% spike, 4% are corrupt, a blackout
    /// window of up to ~7 minutes opens at t = 360 s, and machine 0
    /// weathers a load storm from t = 320 s. Both windows open just after
    /// the experiments' 300 s NWS warm-up, so they overlap the run window
    /// of the Platform 1/2 series (which span a few hundred seconds).
    /// This is the knob the `fault_study` bin sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is outside `[0, 1]` (including NaN). Callers
    /// handling untrusted input (the service's `fault_intensity` query
    /// parameter) must use [`FaultConfig::try_with_intensity`] instead.
    pub fn with_intensity(seed: u64, intensity: f64) -> Self {
        match Self::try_with_intensity(seed, intensity) {
            Ok(cfg) => cfg,
            Err(_) => panic!("intensity must be in [0, 1]"),
        }
    }

    /// The typed-error twin of [`FaultConfig::with_intensity`]: rejects
    /// non-finite values and values outside `[0, 1]` instead of
    /// panicking. This is the only constructor service/HTTP input may
    /// reach.
    ///
    /// # Errors
    ///
    /// [`IntensityError::NotFinite`] for NaN or ±infinity,
    /// [`IntensityError::OutOfRange`] for finite values outside
    /// `[0, 1]`; both carry the offending value.
    pub fn try_with_intensity(seed: u64, intensity: f64) -> Result<Self, IntensityError> {
        if !intensity.is_finite() {
            return Err(IntensityError::NotFinite(intensity));
        }
        if !(0.0..=1.0).contains(&intensity) {
            return Err(IntensityError::OutOfRange(intensity));
        }
        let mut cfg = Self::none(seed);
        cfg.dropout = 0.15 * intensity;
        cfg.delay = 0.10 * intensity;
        cfg.spike = 0.06 * intensity;
        cfg.corrupt = 0.04 * intensity;
        if intensity > 0.0 {
            cfg.blackouts.push((360.0, 360.0 + 400.0 * intensity));
            cfg.storms.push(LoadStorm {
                machine: 0,
                start: 320.0,
                duration: 1500.0 * intensity,
                availability_factor: 0.4,
            });
        }
        Ok(cfg)
    }

    /// Total probability that a poll outside a blackout window is
    /// perturbed in some way.
    pub fn perturbation_rate(&self) -> f64 {
        (self.dropout + self.delay + self.spike + self.corrupt).min(1.0)
    }

    /// Whether `t` falls inside any blackout window.
    pub fn in_blackout(&self, t: f64) -> bool {
        self.blackouts.iter().any(|&(lo, hi)| t >= lo && t < hi)
    }
}

/// What happens to one scheduled sensor poll.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PollOutcome {
    /// The measurement arrives on time and intact.
    Deliver,
    /// The poll is missed (dropout or blackout): nothing arrives.
    Drop,
    /// A delayed measurement: the value measured `intervals` cadences
    /// earlier is what arrives now.
    Stale {
        /// Delay in sensor cadences, >= 1.
        intervals: u32,
    },
    /// An outlier: the measured value is multiplied by `factor`.
    Spike {
        /// Multiplicative perturbation.
        factor: f64,
    },
    /// The measurement arrives non-finite and must be discarded.
    Corrupt,
}

/// The per-resource view of a [`FaultConfig`]: decides the outcome of
/// each scheduled poll from `(seed, resource, poll index)` alone.
#[derive(Debug, Clone, Copy)]
pub struct SensorFaults<'a> {
    cfg: &'a FaultConfig,
    resource_seed: u64,
}

/// A fault plan bound to a config: hands out per-resource views.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    config: FaultConfig,
}

/// Resource id conventionally used for the shared network segment's
/// bandwidth sensor (machines use their index).
pub const BANDWIDTH_RESOURCE: u64 = u64::MAX;

impl FaultPlan {
    /// Binds a plan to a config.
    pub fn new(config: FaultConfig) -> Self {
        Self { config }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The fault view for one resource (machine index, or
    /// [`BANDWIDTH_RESOURCE`] for the segment sensor).
    pub fn sensor(&self, resource: u64) -> SensorFaults<'_> {
        SensorFaults {
            cfg: &self.config,
            resource_seed: mix(self.config.seed ^ mix(resource.wrapping_add(1))),
        }
    }

    /// Applies the plan's load storms to a platform's ground truth.
    pub fn apply_storms(&self, platform: &mut Platform) {
        apply_storms(platform, &self.config.storms);
    }
}

impl SensorFaults<'_> {
    /// Decides the outcome of the poll scheduled at time `t` with
    /// per-sensor index `poll_index`. Pure: the same arguments always
    /// produce the same outcome.
    pub fn outcome(&self, t: f64, poll_index: u64) -> PollOutcome {
        if self.cfg.in_blackout(t) {
            return PollOutcome::Drop;
        }
        let h = mix(self
            .resource_seed
            .wrapping_add(mix(poll_index.wrapping_add(1))));
        let u = unit(h);
        let mut edge = self.cfg.dropout;
        if u < edge {
            return PollOutcome::Drop;
        }
        edge += self.cfg.delay;
        if u < edge {
            let span = self.cfg.max_delay_intervals.max(1) as u64;
            // A second independent hash stream picks the delay length.
            let intervals = 1 + (mix(h ^ 0xA5A5_A5A5_A5A5_A5A5) % span) as u32;
            return PollOutcome::Stale { intervals };
        }
        edge += self.cfg.spike;
        if u < edge {
            let up = mix(h ^ 0x5A5A_5A5A_5A5A_5A5A) & 1 == 0;
            let factor = if up {
                self.cfg.spike_factor
            } else {
                1.0 / self.cfg.spike_factor
            };
            return PollOutcome::Spike { factor };
        }
        edge += self.cfg.corrupt;
        if u < edge {
            return PollOutcome::Corrupt;
        }
        PollOutcome::Deliver
    }
}

/// Applies load storms to a platform's machine traces: availability is
/// scaled by each storm's factor inside its window, clamped to the
/// availability bounds. Storms naming out-of-range machines are ignored.
pub fn apply_storms(platform: &mut Platform, storms: &[LoadStorm]) {
    for storm in storms {
        assert!(
            storm.availability_factor > 0.0 && storm.availability_factor <= 1.0,
            "storm factor must be in (0, 1]"
        );
        let Some(machine) = platform.machines.get_mut(storm.machine) else {
            continue;
        };
        let trace = &machine.load;
        let (t0, dt) = (trace.t0(), trace.dt());
        let end = storm.start + storm.duration;
        let values: Vec<f64> = trace
            .values()
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let t = t0 + i as f64 * dt;
                if t >= storm.start && t < end {
                    (v * storm.availability_factor).clamp(MIN_AVAILABILITY, MAX_AVAILABILITY)
                } else {
                    v
                }
            })
            .collect();
        machine.load = Trace::new(t0, dt, values);
    }
}

/// A deterministic per-attempt fault schedule for one supervised solve:
/// attempt `k` (0-based) suffers `kills[k]`; attempts past the end of
/// the list run clean. This models *transient* worker deaths — a death
/// consumed by one attempt does not re-fire on the retry — while a
/// schedule longer than the retry budget deterministically exhausts the
/// supervisor into a typed error.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Index of this schedule within its campaign (labels output rows).
    pub id: u64,
    /// One worker death per faulty attempt, in attempt order.
    pub kills: Vec<WorkerDeath>,
}

impl FaultSchedule {
    /// A schedule with no faults: every attempt runs clean.
    pub fn healthy(id: u64) -> Self {
        Self {
            id,
            kills: Vec::new(),
        }
    }

    /// Whether this schedule injects no faults at all.
    pub fn is_healthy(&self) -> bool {
        self.kills.is_empty()
    }

    /// The death (if any) injected into attempt `attempt` (0-based).
    pub fn kill_for_attempt(&self, attempt: u32) -> Option<WorkerDeath> {
        self.kills.get(attempt as usize).copied()
    }

    /// A deterministic campaign of `n` schedules drawn from `seed` for a
    /// solve with `ranks` workers and `iterations` red+black iterations.
    /// Every decision is a pure function of `(seed, schedule id, kill
    /// index)`, so the same arguments replay bit-for-bit on any machine
    /// and at any pool thread count. The kill-count distribution is
    /// weighted toward recoverable runs (≈25% healthy, ≈40% one death,
    /// the rest two to four) so a bounded-retry supervisor sees both
    /// successful recoveries and deterministic exhaustion. Every
    /// generated death targets a live rank at a half-iteration that
    /// actually fires.
    ///
    /// # Panics
    ///
    /// Panics if `ranks` or `iterations` is zero.
    pub fn random_campaign(
        seed: u64,
        n: usize,
        ranks: usize,
        iterations: usize,
    ) -> Vec<FaultSchedule> {
        assert!(ranks > 0, "need at least one rank");
        assert!(iterations > 0, "need at least one iteration");
        (0..n as u64)
            .map(|id| {
                let base = mix(seed ^ mix(id.wrapping_add(1)));
                let u = unit(base);
                let n_kills = match u {
                    u if u < 0.25 => 0,
                    u if u < 0.65 => 1,
                    u if u < 0.85 => 2,
                    u if u < 0.95 => 3,
                    _ => 4,
                };
                let kills = (0..n_kills as u64)
                    .map(|k| {
                        let h = mix(base ^ mix(k.wrapping_add(1)));
                        WorkerDeath {
                            rank: (h % ranks as u64) as usize,
                            at_half_iteration: (mix(h ^ 0x0F0F_0F0F_0F0F_0F0F)
                                % (2 * iterations) as u64)
                                as usize,
                        }
                    })
                    .collect();
                FaultSchedule { id, kills }
            })
            .collect()
    }
}

/// SplitMix64 finalizer: the stateless mixing step behind every fault
/// decision. Public so downstream deterministic decisions (e.g. retry
/// backoff jitter in the supervisor) can draw from the same stateless
/// stream discipline: hash your inputs, never carry RNG state.
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to `[0, 1)` with 53 bits of precision.
pub fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * 1.110_223_024_625_156_5e-16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineClass;

    fn count_outcomes(cfg: &FaultConfig, resource: u64, polls: u64) -> [usize; 5] {
        let plan = FaultPlan::new(cfg.clone());
        let view = plan.sensor(resource);
        let mut counts = [0usize; 5];
        for i in 0..polls {
            let idx = match view.outcome(100.0, i) {
                PollOutcome::Deliver => 0,
                PollOutcome::Drop => 1,
                PollOutcome::Stale { .. } => 2,
                PollOutcome::Spike { .. } => 3,
                PollOutcome::Corrupt => 4,
            };
            counts[idx] += 1;
        }
        counts
    }

    #[test]
    fn outcomes_are_pure_functions_of_inputs() {
        let cfg = FaultConfig::with_intensity(7, 0.8);
        let plan = FaultPlan::new(cfg.clone());
        let view = plan.sensor(3);
        for i in (0..500).rev() {
            // Querying in any order, any number of times, gives the same
            // answer: no hidden RNG state.
            assert_eq!(view.outcome(50.0, i), view.outcome(50.0, i));
        }
        let again = FaultPlan::new(cfg);
        for i in 0..500 {
            assert_eq!(view.outcome(50.0, i), again.sensor(3).outcome(50.0, i));
        }
    }

    #[test]
    fn resources_get_independent_streams() {
        let cfg = FaultConfig::with_intensity(7, 1.0);
        let a = count_outcomes(&cfg, 0, 4000);
        let b = count_outcomes(&cfg, 1, 4000);
        assert_ne!(a, b, "two resources should not share a fault stream");
        let bw = count_outcomes(&cfg, BANDWIDTH_RESOURCE, 4000);
        assert_ne!(a, bw);
    }

    #[test]
    fn rates_match_configuration() {
        let cfg = FaultConfig::with_intensity(11, 1.0);
        let counts = count_outcomes(&cfg, 2, 50_000);
        let n = 50_000.0;
        assert!((counts[1] as f64 / n - 0.15).abs() < 0.01, "{counts:?}");
        assert!((counts[2] as f64 / n - 0.10).abs() < 0.01, "{counts:?}");
        assert!((counts[3] as f64 / n - 0.06).abs() < 0.01, "{counts:?}");
        assert!((counts[4] as f64 / n - 0.04).abs() < 0.01, "{counts:?}");
    }

    #[test]
    fn zero_intensity_is_fault_free() {
        let cfg = FaultConfig::with_intensity(3, 0.0);
        assert_eq!(cfg, FaultConfig::none(3));
        let counts = count_outcomes(&cfg, 0, 10_000);
        assert_eq!(counts[0], 10_000);
    }

    #[test]
    fn try_with_intensity_rejects_bad_values_with_typed_errors() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                FaultConfig::try_with_intensity(1, bad),
                Err(IntensityError::NotFinite(_))
            ));
        }
        for bad in [-0.1, 1.01, -1e9, 2.0] {
            assert_eq!(
                FaultConfig::try_with_intensity(1, bad),
                Err(IntensityError::OutOfRange(bad))
            );
        }
        // Error messages name the offending value.
        let msg = IntensityError::OutOfRange(1.5).to_string();
        assert!(msg.contains("1.5"), "{msg}");
    }

    #[test]
    fn try_with_intensity_matches_the_panicking_constructor_on_valid_input() {
        for intensity in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(
                FaultConfig::try_with_intensity(7, intensity).unwrap(),
                FaultConfig::with_intensity(7, intensity)
            );
        }
    }

    #[test]
    #[should_panic(expected = "intensity must be in [0, 1]")]
    fn with_intensity_still_panics_out_of_range() {
        let _ = FaultConfig::with_intensity(0, 1.5);
    }

    #[test]
    fn blackout_drops_every_poll_inside_the_window() {
        let mut cfg = FaultConfig::none(5);
        cfg.blackouts.push((100.0, 200.0));
        let plan = FaultPlan::new(cfg);
        let view = plan.sensor(0);
        assert_eq!(view.outcome(150.0, 30), PollOutcome::Drop);
        assert_eq!(view.outcome(99.9, 19), PollOutcome::Deliver);
        assert_eq!(view.outcome(200.0, 40), PollOutcome::Deliver);
    }

    #[test]
    fn stale_intervals_bounded_and_positive() {
        let mut cfg = FaultConfig::none(9);
        cfg.delay = 1.0;
        cfg.max_delay_intervals = 4;
        let plan = FaultPlan::new(cfg);
        let view = plan.sensor(1);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..2000 {
            match view.outcome(10.0, i) {
                PollOutcome::Stale { intervals } => {
                    assert!((1..=4).contains(&intervals));
                    seen.insert(intervals);
                }
                other => panic!("expected Stale, got {other:?}"),
            }
        }
        assert!(seen.len() > 1, "delay lengths should vary");
    }

    #[test]
    fn random_campaign_is_deterministic_and_in_bounds() {
        let a = FaultSchedule::random_campaign(42, 300, 4, 20);
        let b = FaultSchedule::random_campaign(42, 300, 4, 20);
        assert_eq!(a, b, "same seed must replay bit-for-bit");
        assert_ne!(
            a,
            FaultSchedule::random_campaign(43, 300, 4, 20),
            "different seeds must differ"
        );
        for (i, s) in a.iter().enumerate() {
            assert_eq!(s.id, i as u64);
            for kill in &s.kills {
                assert!(kill.rank < 4, "rank {} out of range", kill.rank);
                assert!(
                    kill.at_half_iteration < 40,
                    "half {} never fires",
                    kill.at_half_iteration
                );
            }
        }
    }

    #[test]
    fn random_campaign_mixes_healthy_and_faulty_schedules() {
        let campaign = FaultSchedule::random_campaign(7, 400, 4, 20);
        let healthy = campaign.iter().filter(|s| s.is_healthy()).count();
        let multi = campaign.iter().filter(|s| s.kills.len() >= 2).count();
        let beyond_retries = campaign.iter().filter(|s| s.kills.len() >= 4).count();
        assert!(healthy > 50, "expected ~25% healthy, got {healthy}/400");
        assert!(multi > 40, "expected a multi-death tail, got {multi}/400");
        assert!(
            beyond_retries > 0,
            "campaign should include schedules that exhaust a 3-retry budget"
        );
        // Per-attempt access matches the list.
        let s = campaign.iter().find(|s| s.kills.len() == 2).unwrap();
        assert_eq!(s.kill_for_attempt(0), Some(s.kills[0]));
        assert_eq!(s.kill_for_attempt(1), Some(s.kills[1]));
        assert_eq!(s.kill_for_attempt(2), None);
    }

    #[test]
    fn storms_scale_availability_inside_window_only() {
        let mut p = Platform::dedicated(&[MachineClass::Sparc10, MachineClass::Sparc10], 100.0);
        apply_storms(
            &mut p,
            &[LoadStorm {
                machine: 0,
                start: 20.0,
                duration: 30.0,
                availability_factor: 0.4,
            }],
        );
        assert!((p.machines[0].load.at(30.0) - 0.4).abs() < 1e-12);
        assert_eq!(p.machines[0].load.at(10.0), 1.0);
        assert_eq!(p.machines[0].load.at(60.0), 1.0);
        // Untouched machine stays dedicated.
        assert_eq!(p.machines[1].load.at(30.0), 1.0);
        // Out-of-range storms are ignored, not a panic.
        apply_storms(
            &mut p,
            &[LoadStorm {
                machine: 99,
                start: 0.0,
                duration: 1.0,
                availability_factor: 0.5,
            }],
        );
    }

    #[test]
    fn storm_respects_availability_floor() {
        let mut p = Platform::dedicated(&[MachineClass::Sparc2], 50.0);
        // Repeated storms cannot push availability below the floor.
        for _ in 0..10 {
            apply_storms(
                &mut p,
                &[LoadStorm {
                    machine: 0,
                    start: 0.0,
                    duration: 50.0,
                    availability_factor: 0.01,
                }],
            );
        }
        assert!(p.machines[0].load.min() >= MIN_AVAILABILITY);
    }
}
