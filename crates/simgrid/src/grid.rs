//! Grid-scale platforms: tens of thousands of production machines backed
//! by a columnar [`TraceStore`] instead of one [`crate::Trace`] each.
//!
//! A [`GridPlatform`] is the 1000×-scale sibling of [`crate::Platform`]:
//! machines are grouped into classes laid out contiguously, each class
//! shares a handful of template load columns, and every machine is a
//! 16-byte [`MachineSlot`] into the store. Queries go through
//! [`TraceRef`] views, so per-machine availability and work integration
//! keep the O(1)/O(log n) contracts of the full-trace path while
//! bytes/machine stays O(1) amortized.

use crate::load::{derive_seed, LoadGenerator, MarkovModal, SingleModeAr1};
use crate::machine::MachineClass;
use crate::network::{Ethernet, EthernetContention, NetworkSpec};
use crate::platform::TRACE_DT;
use crate::store::{MachineSlot, TemplateSpec, TraceRef, TraceStore};
use std::sync::Arc;

/// One machine class in a grid: how many machines and how many
/// independent template columns they share.
#[derive(Debug, Clone, Copy)]
pub struct GridClassSpec {
    /// Hardware class of every machine in the group.
    pub class: MachineClass,
    /// Number of machines.
    pub count: usize,
    /// Number of template load columns generated for the group; machines
    /// draw a column, a phase shift, and a value scale from their index.
    pub templates: usize,
}

/// A class group's resolved layout inside the grid.
#[derive(Debug, Clone, Copy)]
struct ClassRange {
    class: MachineClass,
    /// First machine index of the group (machines are contiguous).
    machine_lo: usize,
    machine_hi: usize,
    /// Template column range in the store.
    column_lo: u32,
    column_hi: u32,
}

/// A production grid: class ranges + columnar trace store + shared
/// ethernet. The store is `Arc`-shared so sharded simulation workers can
/// hold cheap handles.
#[derive(Debug, Clone)]
pub struct GridPlatform {
    store: Arc<TraceStore>,
    classes: Vec<ClassRange>,
    slots: Vec<MachineSlot>,
    /// The shared ethernet segment.
    pub network: Ethernet,
    /// Horizon of the generated traces, seconds.
    pub horizon: f64,
}

impl GridPlatform {
    /// Generates a grid: template columns are produced chunk-by-chunk over
    /// the work pool (bit-identical at any thread count — see
    /// [`TraceStore::generate_streamed`]), slots are derived purely from
    /// `(seed, machine index)`, and the network contention trace is seeded
    /// like the [`crate::Platform`] presets.
    ///
    /// `pad` extra leading steps are generated per column so machines can
    /// be phase-shifted against each other.
    ///
    /// # Panics
    ///
    /// Panics if `specs` and `generators` differ in length, any group has
    /// zero machines or templates, `horizon <= 0`, or `chunk_steps == 0`.
    pub fn generate(
        specs: &[GridClassSpec],
        generators: &[&(dyn LoadGenerator + Sync)],
        seed: u64,
        horizon: f64,
        pad: usize,
        chunk_steps: usize,
        threads: usize,
    ) -> Self {
        assert_eq!(specs.len(), generators.len());
        assert!(horizon > 0.0);
        let steps = (horizon / TRACE_DT).ceil() as usize;
        let templates: Vec<TemplateSpec<'_>> = specs
            .iter()
            .zip(generators)
            .map(|(s, &g)| {
                assert!(s.count > 0, "class {} has no machines", s.class.name());
                assert!(s.templates > 0, "class {} has no templates", s.class.name());
                TemplateSpec {
                    generator: g,
                    count: s.templates,
                }
            })
            .collect();
        let store = Arc::new(TraceStore::generate_streamed(
            seed,
            0.0,
            TRACE_DT,
            steps,
            pad,
            &templates,
            chunk_steps,
            threads,
        ));
        let mut classes = Vec::with_capacity(specs.len());
        let mut machine_lo = 0usize;
        let mut column_lo = 0u32;
        for s in specs {
            let column_hi = column_lo + s.templates as u32;
            classes.push(ClassRange {
                class: s.class,
                machine_lo,
                machine_hi: machine_lo + s.count,
                column_lo,
                column_hi,
            });
            machine_lo += s.count;
            column_lo = column_hi;
        }
        let slots: Vec<MachineSlot> = classes
            .iter()
            .flat_map(|r| {
                (r.machine_lo..r.machine_hi)
                    .map(|i| MachineSlot::derive(seed, i, r.column_lo, r.column_hi, pad as u32))
            })
            .collect();
        let network = Ethernet::new(
            NetworkSpec::default(),
            EthernetContention {
                busy_weight: 0.20,
                ..Default::default()
            }
            .generate(derive_seed(seed, 100), 0.0, TRACE_DT, steps),
        );
        Self {
            store,
            classes,
            slots,
            network,
            horizon,
        }
    }

    /// A representative production fleet of `machines` hosts: 10% Sparc-2
    /// under steady mid load, 20% Sparc-5 with tri-modal switching, 30%
    /// Sparc-10 and 40% UltraSparc under bursty 4-modal load — the two
    /// platform regimes of Section 3 scaled out.
    ///
    /// # Panics
    ///
    /// Panics if `machines < 8` (each class needs at least one host).
    pub fn production(machines: usize, seed: u64, horizon: f64, threads: usize) -> Self {
        assert!(machines >= 8, "need at least 8 machines, got {machines}");
        let n2 = machines / 10;
        let n5 = machines * 2 / 10;
        let n10 = machines * 3 / 10;
        let nu = machines - n2 - n5 - n10;
        let specs = [
            GridClassSpec {
                class: MachineClass::Sparc2,
                count: n2.max(1),
                templates: 8,
            },
            GridClassSpec {
                class: MachineClass::Sparc5,
                count: n5.max(1),
                templates: 16,
            },
            GridClassSpec {
                class: MachineClass::Sparc10,
                count: n10.max(1),
                templates: 16,
            },
            GridClassSpec {
                class: MachineClass::UltraSparc,
                count: nu.max(1),
                templates: 24,
            },
        ];
        let steady = SingleModeAr1 {
            mean: 0.48,
            sd: 0.025,
            phi: 0.9,
        };
        let tri = MarkovModal::platform1(60.0);
        let bursty = MarkovModal::platform2(25.0);
        Self::generate(
            &specs,
            &[&steady, &tri, &bursty, &bursty],
            seed,
            horizon,
            256,
            4096,
            threads,
        )
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the grid has no machines (construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The shared trace store.
    pub fn store(&self) -> &Arc<TraceStore> {
        &self.store
    }

    /// Machine `i`'s hardware class.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn class_of(&self, i: usize) -> MachineClass {
        self.classes
            .iter()
            .find(|r| i >= r.machine_lo && i < r.machine_hi)
            .unwrap_or_else(|| panic!("machine {i} out of range"))
            .class
    }

    /// Machine `i`'s availability trace view.
    pub fn trace(&self, i: usize) -> TraceRef<'_> {
        self.store.trace(self.slots[i])
    }

    /// Machine `i`'s slot (16 bytes of per-machine state).
    pub fn slot(&self, i: usize) -> MachineSlot {
        self.slots[i]
    }

    /// Wall-clock seconds for machine `i` to compute `elements` grid
    /// elements starting at `t` — the grid-scale analogue of
    /// [`crate::Machine::compute_secs`].
    pub fn compute_secs(&self, i: usize, elements: f64, t: f64) -> f64 {
        let work = elements * self.class_of(i).benchmark_secs_per_element();
        self.trace(i).time_to_complete(t, work)
    }

    /// Seconds to move `bytes` over the shared segment starting at `t`.
    pub fn transfer_secs(&self, bytes: f64, t: f64) -> f64 {
        self.network.transfer_secs(bytes, t)
    }

    /// Total bytes of trace state: store columns + built prefixes +
    /// per-machine slots. Excludes the (single, machine-count-independent)
    /// network trace.
    pub fn trace_bytes(&self) -> usize {
        self.store.bytes() + self.slots.len() * std::mem::size_of::<MachineSlot>()
    }

    /// Amortized trace bytes per machine.
    pub fn bytes_per_machine(&self) -> f64 {
        self.trace_bytes() as f64 / self.slots.len() as f64
    }

    /// What one machine would cost with a standalone per-machine trace
    /// (samples + prefix integral) — the baseline the 1/20th acceptance
    /// gate compares against.
    pub fn naive_bytes_per_machine(&self) -> usize {
        self.store.naive_bytes_per_machine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid(threads: usize) -> GridPlatform {
        GridPlatform::production(200, 42, 900.0, threads)
    }

    #[test]
    fn production_grid_layout() {
        let g = small_grid(1);
        assert_eq!(g.len(), 200);
        assert_eq!(g.class_of(0), MachineClass::Sparc2);
        assert_eq!(g.class_of(199), MachineClass::UltraSparc);
        // Class ranges are contiguous: 20 / 40 / 60 / 80.
        assert_eq!(g.class_of(19), MachineClass::Sparc2);
        assert_eq!(g.class_of(20), MachineClass::Sparc5);
        assert_eq!(g.class_of(60), MachineClass::Sparc10);
        assert_eq!(g.class_of(120), MachineClass::UltraSparc);
    }

    #[test]
    fn grid_generation_is_thread_count_invariant() {
        let one = small_grid(1);
        for threads in [2usize, 8] {
            let many = small_grid(threads);
            for i in [0usize, 19, 77, 199] {
                assert_eq!(one.slot(i), many.slot(i), "slot {i}");
                assert_eq!(
                    one.trace(i).materialize(),
                    many.trace(i).materialize(),
                    "trace {i} at {threads} threads"
                );
            }
            assert_eq!(one.network.avail, many.network.avail);
        }
    }

    #[test]
    fn machines_in_a_class_differ_but_share_columns() {
        let g = small_grid(1);
        // Two UltraSparcs: same class range, almost surely different slots.
        let a = g.slot(150);
        let b = g.slot(151);
        assert_ne!(a, b);
        let ta = g.trace(150).materialize();
        let tb = g.trace(151).materialize();
        assert_ne!(ta, tb);
    }

    #[test]
    fn compute_secs_matches_materialized_machine() {
        let g = small_grid(1);
        for i in [0usize, 45, 130] {
            let class = g.class_of(i);
            let m = crate::Machine::new(
                crate::MachineSpec::new("x", class),
                g.trace(i).materialize(),
            );
            for &(e, t) in &[(1.0e6, 0.0), (5.0e6, 123.0), (2.0e5, 880.0)] {
                let fast = g.compute_secs(i, e, t);
                let slow = m.compute_secs(e, t);
                assert!(
                    (fast - slow).abs() <= 1e-9,
                    "machine {i} compute({e}, {t}): {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn bytes_per_machine_collapses_at_scale() {
        let g = GridPlatform::production(2000, 7, 900.0, 1);
        // Force every column's prefix to build, then account.
        for i in 0..g.len() {
            g.trace(i).integral(0.0, 100.0);
        }
        let per = g.bytes_per_machine();
        let naive = g.naive_bytes_per_machine() as f64;
        assert!(
            per * 20.0 <= naive,
            "bytes/machine {per} not ≤ 1/20th of naive {naive}"
        );
    }
}
