//! # prodpred-simgrid
//!
//! A production-environment simulator standing in for the paper's testbed:
//! "a production network of heterogeneous Sparc workstations connected by
//! 10 Mbit ethernet. Workstations were shared by multiple users and
//! exhibited diverse processor speeds, available physical memory, and CPU
//! load. The network was also shared by other users."
//!
//! The simulator reproduces the *statistical character* of that
//! environment — which is all the prediction models consume:
//!
//! * [`machine`] — workstation specs (Sparc-2/5/10, UltraSparc) with
//!   dedicated per-element benchmark times and memory limits,
//! * [`load`] — stochastic CPU-availability processes: dedicated,
//!   single-mode AR(1) (Platform 1's regime), multi-modal Markov burst
//!   switching (Platform 2's regime), and a mechanistic competing-user
//!   session model whose `1/(1+k)` sharing produces exactly the modal
//!   structure of the paper's Figure 5,
//! * [`network`] — a shared 10 Mbit ethernet whose available bandwidth is
//!   long-tailed under contention (Figure 3),
//! * [`trace`] — step-function resource traces with work integration
//!   (elapsed time to complete a given amount of dedicated work),
//! * [`store`] — columnar structure-of-arrays trace storage for grids of
//!   tens of thousands of machines: shared class template columns, tiny
//!   per-machine slots, and [`store::TraceRef`] views with the same
//!   query contracts as a full trace,
//! * [`event`] — a small deterministic discrete-event engine driving the
//!   session workload generator,
//! * [`platform`] — the two experimental platforms from Section 3 plus a
//!   dedicated configuration,
//! * [`benchmark`] — the in-core sort benchmark behind Figures 1–2, both
//!   actually executed and simulated,
//! * [`faults`] — deterministic, seeded fault injection (sensor dropout,
//!   delayed/corrupted measurements, NWS blackouts, load storms, worker
//!   death), the configuration surface of the robustness extension.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod benchmark;
pub mod event;
pub mod faults;
pub mod grid;
pub mod load;
pub mod machine;
pub mod memory;
pub mod network;
pub mod platform;
pub mod rng;
pub mod store;
pub mod trace;

pub use event::EventQueue;
pub use faults::{FaultConfig, FaultPlan, LoadStorm, PollOutcome, SensorFaults, WorkerDeath};
pub use grid::{GridClassSpec, GridPlatform};
pub use machine::{Machine, MachineClass, MachineSpec};
pub use memory::PagingModel;
pub use network::{Ethernet, NetworkSpec};
pub use platform::Platform;
pub use store::{MachineSlot, TemplateSpec, TraceRef, TraceStore};
pub use trace::Trace;
