//! Stochastic CPU-availability processes.
//!
//! The paper's experiments hinge on two load regimes:
//!
//! * **Platform 1** (Section 3.1): tri-modal load whose "values typically
//!   remained within a single mode during execution" — modeled by
//!   [`SingleModeAr1`], a mean-reverting process inside one mode, and by
//!   [`MarkovModal`] with long dwell times.
//! * **Platform 2** (Section 3.2): "a 4-modal distribution that was bursty
//!   in nature" — [`MarkovModal`] with short dwells, or the mechanistic
//!   [`SessionLoad`] in which competing user jobs arrive and depart and the
//!   scheduler's round-robin sharing produces availability `~ 1/(1+k)`,
//!   which is precisely why production load histograms have modes near
//!   1, 1/2, 1/3, 1/4 … (Figure 5's modes at 0.94, 0.49, 0.33).
//!
//! All generators are seeded and produce [`Trace`]s, so every experiment is
//! reproducible.

use crate::event::EventQueue;
use crate::rng::{exponential, uniform01, weighted_index};
use crate::trace::Trace;
use prodpred_stochastic::dist::Distribution;
use prodpred_stochastic::Normal;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// Lowest availability a trace will report — a production machine always
/// makes *some* progress.
pub const MIN_AVAILABILITY: f64 = 0.01;

/// Highest availability — daemons and interrupts keep a real workstation
/// just below 1.0 (the paper's top mode sits at 0.94).
pub const MAX_AVAILABILITY: f64 = 1.0;

fn clamp_avail(x: f64) -> f64 {
    x.clamp(MIN_AVAILABILITY, MAX_AVAILABILITY)
}

/// A generator of CPU-availability traces.
pub trait LoadGenerator {
    /// Generates a trace of `steps` samples at resolution `dt` starting at
    /// `t0`, deterministically from `seed`.
    fn generate(&self, seed: u64, t0: f64, dt: f64, steps: usize) -> Trace;
}

/// A dedicated machine: constant availability (default 1.0).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Dedicated {
    /// The constant availability level.
    pub level: f64,
}

impl Default for Dedicated {
    fn default() -> Self {
        Self { level: 1.0 }
    }
}

impl LoadGenerator for Dedicated {
    fn generate(&self, _seed: u64, t0: f64, dt: f64, steps: usize) -> Trace {
        Trace::constant(t0, dt, clamp_avail(self.level), steps)
    }
}

/// Mean-reverting availability inside a single mode: an AR(1) process
/// `x' = mean + phi (x - mean) + eps`, `eps ~ N(0, sd sqrt(1 - phi^2))`,
/// whose stationary distribution is `N(mean, sd^2)` — Platform 1's
/// "load ... in the center mode, with a mean of 0.48" and stochastic value
/// `0.48 ± 0.05`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SingleModeAr1 {
    /// Stationary mean of the mode.
    pub mean: f64,
    /// Stationary standard deviation of the mode.
    pub sd: f64,
    /// Autocorrelation per step, in `[0, 1)`.
    pub phi: f64,
}

impl SingleModeAr1 {
    /// Platform 1's center mode: `0.48 ± 0.05` means sd = 0.025.
    pub fn platform1_center() -> Self {
        Self {
            mean: 0.48,
            sd: 0.025,
            phi: 0.9,
        }
    }
}

impl LoadGenerator for SingleModeAr1 {
    fn generate(&self, seed: u64, t0: f64, dt: f64, steps: usize) -> Trace {
        assert!((0.0..1.0).contains(&self.phi), "phi must be in [0,1)");
        assert!(self.sd >= 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let innovation = Normal::new(0.0, self.sd * (1.0 - self.phi * self.phi).sqrt());
        let stationary = Normal::new(self.mean, self.sd);
        let mut x = stationary.sample(&mut rng);
        let values = (0..steps)
            .map(|_| {
                let out = clamp_avail(x);
                x = self.mean + self.phi * (x - self.mean) + innovation.sample(&mut rng);
                out
            })
            .collect();
        Trace::new(t0, dt, values)
    }
}

/// One mode of a multi-modal load process.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ModeSpec {
    /// Long-run fraction of time spent in the mode.
    pub weight: f64,
    /// Mode mean availability.
    pub mean: f64,
    /// Mode standard deviation.
    pub sd: f64,
}

/// Multi-modal availability with Markov mode switching: dwell in a mode for
/// an exponential time, then jump to a mode drawn by weight. Within a mode
/// the value follows an AR(1) around the mode mean.
///
/// Long dwells (relative to application runtime) reproduce Platform 1
/// ("values typically remained within a single mode during execution");
/// short dwells reproduce Platform 2's burstiness (Figure 11).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarkovModal {
    /// The modes.
    pub modes: Vec<ModeSpec>,
    /// Mean dwell time in a mode, in seconds.
    pub mean_dwell: f64,
    /// Within-mode AR(1) autocorrelation per step.
    pub phi: f64,
}

impl MarkovModal {
    /// The paper's Figure-5 tri-modal load (modes at 0.94, 0.49, 0.33),
    /// with dwell long enough that a run stays in one mode.
    pub fn platform1(mean_dwell: f64) -> Self {
        Self {
            modes: vec![
                ModeSpec {
                    weight: 0.35,
                    mean: 0.94,
                    sd: 0.02,
                },
                ModeSpec {
                    weight: 0.40,
                    mean: 0.49,
                    sd: 0.025,
                },
                ModeSpec {
                    weight: 0.25,
                    mean: 0.33,
                    sd: 0.02,
                },
            ],
            mean_dwell,
            phi: 0.8,
        }
    }

    /// Platform 2's 4-modal bursty load (Figure 10's shape: modes near
    /// 0.95, 0.63, 0.45, 0.25 with fast switching).
    pub fn platform2(mean_dwell: f64) -> Self {
        Self {
            modes: vec![
                ModeSpec {
                    weight: 0.30,
                    mean: 0.95,
                    sd: 0.02,
                },
                ModeSpec {
                    weight: 0.25,
                    mean: 0.63,
                    sd: 0.03,
                },
                ModeSpec {
                    weight: 0.25,
                    mean: 0.45,
                    sd: 0.03,
                },
                ModeSpec {
                    weight: 0.20,
                    mean: 0.25,
                    sd: 0.02,
                },
            ],
            mean_dwell,
            phi: 0.7,
        }
    }
}

impl LoadGenerator for MarkovModal {
    fn generate(&self, seed: u64, t0: f64, dt: f64, steps: usize) -> Trace {
        assert!(!self.modes.is_empty(), "MarkovModal needs modes");
        assert!(self.mean_dwell > 0.0, "dwell time must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<f64> = self.modes.iter().map(|m| m.weight).collect();
        let mut mode = weighted_index(&mut rng, &weights);
        let mut dwell_left = exponential(&mut rng, 1.0 / self.mean_dwell);
        let mut x = self.modes[mode].mean;
        let mut values = Vec::with_capacity(steps);
        for _ in 0..steps {
            let m = &self.modes[mode];
            let innovation = Normal::new(0.0, m.sd * (1.0 - self.phi * self.phi).sqrt());
            x = m.mean + self.phi * (x - m.mean) + innovation.sample(&mut rng);
            values.push(clamp_avail(x));
            dwell_left -= dt;
            if dwell_left <= 0.0 {
                mode = weighted_index(&mut rng, &weights);
                dwell_left = exponential(&mut rng, 1.0 / self.mean_dwell);
                // Re-center quickly on mode change (a burst).
                x = self.modes[mode].mean;
            }
        }
        Trace::new(t0, dt, values)
    }
}

/// Mechanistic competing-user model: other users' CPU-bound jobs arrive as
/// a Poisson process (rate `arrival_rate` per second) and run for
/// exponential durations (mean `mean_duration`). Round-robin scheduling
/// gives our application `idle_avail / (1 + k)` of the CPU when `k` jobs
/// compete — which is exactly why production load histograms are modal.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SessionLoad {
    /// Competing-job arrival rate (jobs per second).
    pub arrival_rate: f64,
    /// Mean competing-job duration in seconds.
    pub mean_duration: f64,
    /// Availability when idle (daemon overhead keeps it below 1; the
    /// paper's top mode is 0.94).
    pub idle_avail: f64,
    /// Measurement noise sd added to each sample.
    pub noise_sd: f64,
}

impl Default for SessionLoad {
    fn default() -> Self {
        Self {
            arrival_rate: 1.0 / 120.0,
            mean_duration: 120.0,
            idle_avail: 0.94,
            noise_sd: 0.01,
        }
    }
}

/// DES event for the session model.
enum SessionEvent {
    Arrival,
    Departure,
}

impl LoadGenerator for SessionLoad {
    fn generate(&self, seed: u64, t0: f64, dt: f64, steps: usize) -> Trace {
        assert!(self.arrival_rate > 0.0 && self.mean_duration > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon = dt * steps as f64;

        // Run the DES over [0, horizon), recording the active-job count as
        // a step function (change points).
        let mut q: EventQueue<SessionEvent> = EventQueue::new();
        q.schedule(
            exponential(&mut rng, self.arrival_rate),
            SessionEvent::Arrival,
        );
        // Warm start: begin with the stationary expected number of jobs
        // (M/M/inf mean = lambda * mean_duration).
        let warm = (self.arrival_rate * self.mean_duration).round() as usize;
        let mut active: i64 = warm as i64;
        for _ in 0..warm {
            q.schedule(
                exponential(&mut rng, 1.0 / self.mean_duration),
                SessionEvent::Departure,
            );
        }
        let mut change_points: Vec<(f64, i64)> = vec![(0.0, active)];
        while let Some((t, ev)) = q.pop() {
            if t >= horizon {
                break;
            }
            match ev {
                SessionEvent::Arrival => {
                    active += 1;
                    q.schedule(
                        t + exponential(&mut rng, 1.0 / self.mean_duration),
                        SessionEvent::Departure,
                    );
                    q.schedule(
                        t + exponential(&mut rng, self.arrival_rate),
                        SessionEvent::Arrival,
                    );
                }
                SessionEvent::Departure => {
                    active = (active - 1).max(0);
                }
            }
            change_points.push((t, active));
        }

        // Sample the step function every dt and add measurement noise.
        let noise = Normal::new(0.0, self.noise_sd);
        let mut values = Vec::with_capacity(steps);
        let mut cp_idx = 0usize;
        for i in 0..steps {
            let t = i as f64 * dt;
            while cp_idx + 1 < change_points.len() && change_points[cp_idx + 1].0 <= t {
                cp_idx += 1;
            }
            let k = change_points[cp_idx].1 as f64;
            let avail = self.idle_avail / (1.0 + k) + noise.sample(&mut rng);
            values.push(clamp_avail(avail));
        }
        Trace::new(t0, dt, values)
    }
}

/// A boxed generator, letting platforms mix regimes per machine.
pub type BoxedLoad = Box<dyn LoadGenerator + Send + Sync>;

/// Convenience: generate with a derived per-machine seed so each machine in
/// a platform gets an independent but reproducible stream.
pub fn derive_seed(experiment_seed: u64, machine_index: usize) -> u64 {
    // SplitMix64 step keeps derived seeds well-separated.
    let mut z = experiment_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(machine_index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates the values of chunk `chunk_index` of a chunked trace stream.
///
/// The chunk is a **pure function** of `(stream_seed, chunk_index)`: the
/// generator restarts from a fresh stationary draw at every chunk
/// boundary, seeded by [`prodpred_pool::derive_seed`]. That sacrifices
/// autocorrelation *across* boundaries (each chunk opens in a fresh
/// stationary state) but buys order-independence: chunks can be generated
/// in any order, on any worker, and the assembled trace is bit-identical.
/// This is the discipline behind [`crate::Platform::from_generators_streamed`]
/// and the columnar [`crate::store::TraceStore`] templates.
///
/// # Panics
///
/// Panics if `chunk_steps == 0` or the chunk lies beyond `steps`.
pub fn generate_chunk(
    generator: &dyn LoadGenerator,
    stream_seed: u64,
    t0: f64,
    dt: f64,
    steps: usize,
    chunk_steps: usize,
    chunk_index: usize,
) -> Vec<f64> {
    assert!(chunk_steps > 0, "chunk_steps must be positive");
    let start = chunk_index * chunk_steps;
    assert!(start < steps, "chunk {chunk_index} beyond {steps} steps");
    let len = chunk_steps.min(steps - start);
    let seed = prodpred_pool::derive_seed(stream_seed, chunk_index as u64);
    generator
        .generate(seed, t0 + start as f64 * dt, dt, len)
        .into_values()
}

/// Assembles a full chunked trace sequentially — the reference the
/// parallel streamed builders are pinned against. Bit-identical to any
/// chunk generation order because each chunk is pure (see
/// [`generate_chunk`]).
///
/// # Panics
///
/// Panics if `steps == 0` or `chunk_steps == 0`.
pub fn generate_chunked(
    generator: &dyn LoadGenerator,
    stream_seed: u64,
    t0: f64,
    dt: f64,
    steps: usize,
    chunk_steps: usize,
) -> Trace {
    assert!(steps > 0, "trace needs at least one step");
    let mut values = Vec::with_capacity(steps);
    for chunk_index in 0..steps.div_ceil(chunk_steps) {
        values.extend_from_slice(&generate_chunk(
            generator,
            stream_seed,
            t0,
            dt,
            steps,
            chunk_steps,
            chunk_index,
        ));
    }
    Trace::new(t0, dt, values)
}

/// Draws a single availability value from the stationary distribution of a
/// generator by generating a tiny trace — used for spot checks.
pub fn spot_sample(generator: &dyn LoadGenerator, seed: u64) -> f64 {
    generator.generate(seed, 0.0, 1.0, 1).values()[0]
}

/// Fraction of steps within `tol` of any of the given mode means — a
/// diagnostic the tests use to confirm modal structure.
pub fn modal_occupancy(trace: &Trace, means: &[f64], tol: f64) -> f64 {
    let hits = trace
        .values()
        .iter()
        .filter(|&&v| means.iter().any(|&m| (v - m).abs() <= tol))
        .count();
    hits as f64 / trace.len() as f64
}

#[allow(unused)]
fn _assert_traits(rng: &mut dyn RngCore) {
    let _ = uniform01(rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use prodpred_stochastic::Summary;

    #[test]
    fn dedicated_is_constant() {
        let t = Dedicated::default().generate(1, 0.0, 1.0, 100);
        assert!(t.values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn ar1_stationary_moments() {
        let g = SingleModeAr1 {
            mean: 0.48,
            sd: 0.025,
            phi: 0.9,
        };
        let t = g.generate(7, 0.0, 1.0, 60_000);
        let s = Summary::from_slice(t.values());
        assert!((s.mean() - 0.48).abs() < 0.005, "mean {}", s.mean());
        assert!((s.sd() - 0.025).abs() < 0.005, "sd {}", s.sd());
    }

    #[test]
    fn ar1_is_autocorrelated() {
        let g = SingleModeAr1 {
            mean: 0.5,
            sd: 0.05,
            phi: 0.9,
        };
        let t = g.generate(8, 0.0, 1.0, 20_000);
        let v = t.values();
        let s = Summary::from_slice(v);
        let mut num = 0.0;
        for w in v.windows(2) {
            num += (w[0] - s.mean()) * (w[1] - s.mean());
        }
        let rho = num / ((v.len() - 1) as f64 * s.population_variance());
        assert!((rho - 0.9).abs() < 0.05, "autocorrelation {rho}");
    }

    #[test]
    fn ar1_deterministic_per_seed() {
        let g = SingleModeAr1::platform1_center();
        let a = g.generate(42, 0.0, 5.0, 100);
        let b = g.generate(42, 0.0, 5.0, 100);
        assert_eq!(a, b);
        let c = g.generate(43, 0.0, 5.0, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn markov_long_dwell_stays_in_mode() {
        // Platform 1 regime: dwell of ~an hour vs a few-minute window.
        let g = MarkovModal::platform1(3600.0);
        let t = g.generate(3, 0.0, 5.0, 60); // 5-minute window
        let s = Summary::from_slice(t.values());
        // All samples near a single mode: spread far below between-mode gaps.
        assert!(s.sd() < 0.08, "sd {} suggests a mode switch", s.sd());
    }

    #[test]
    fn markov_short_dwell_visits_modes() {
        // Platform 2 regime: bursty.
        let g = MarkovModal::platform2(30.0);
        let t = g.generate(4, 0.0, 5.0, 5000);
        let means: Vec<f64> = g.modes.iter().map(|m| m.mean).collect();
        let occ = modal_occupancy(&t, &means, 0.08);
        assert!(occ > 0.8, "occupancy {occ}");
        // The trace must actually visit multiple modes.
        let s = Summary::from_slice(t.values());
        assert!(s.sd() > 0.15, "sd {} too small for bursty load", s.sd());
    }

    #[test]
    fn markov_long_run_weights() {
        let g = MarkovModal::platform1(50.0);
        let t = g.generate(5, 0.0, 1.0, 200_000);
        // Mode occupancy should roughly match the specified weights.
        let mut counts = [0usize; 3];
        for &v in t.values() {
            let mut best = 0;
            let mut bd = f64::INFINITY;
            for (i, m) in g.modes.iter().enumerate() {
                let d = (v - m.mean).abs();
                if d < bd {
                    bd = d;
                    best = i;
                }
            }
            counts[best] += 1;
        }
        let n = t.len() as f64;
        assert!((counts[0] as f64 / n - 0.35).abs() < 0.06);
        assert!((counts[1] as f64 / n - 0.40).abs() < 0.06);
        assert!((counts[2] as f64 / n - 0.25).abs() < 0.06);
    }

    #[test]
    fn session_load_is_modal_at_harmonic_levels() {
        let g = SessionLoad {
            arrival_rate: 1.0 / 100.0,
            mean_duration: 100.0,
            idle_avail: 0.94,
            noise_sd: 0.01,
        };
        let t = g.generate(6, 0.0, 1.0, 100_000);
        // Modes at 0.94/(1+k): 0.94, 0.47, 0.313, 0.235 ...
        let occ = modal_occupancy(&t, &[0.94, 0.47, 0.3133, 0.235, 0.188, 0.94 / 6.0], 0.05);
        assert!(occ > 0.9, "harmonic occupancy {occ}");
        // Mean number of competitors is ~1 (M/M/inf with rho=1).
        let s = Summary::from_slice(t.values());
        assert!(s.mean() > 0.3 && s.mean() < 0.8, "mean {}", s.mean());
    }

    #[test]
    fn session_load_values_bounded() {
        let g = SessionLoad::default();
        let t = g.generate(9, 0.0, 2.0, 10_000);
        assert!(t.min() >= MIN_AVAILABILITY);
        assert!(t.max() <= MAX_AVAILABILITY);
    }

    #[test]
    fn chunked_generation_is_pure_per_chunk() {
        let g = MarkovModal::platform2(25.0);
        let full = generate_chunked(&g, 99, 0.0, 1.0, 1000, 256);
        assert_eq!(full.len(), 1000);
        // Each chunk regenerated in isolation matches its slice of the
        // assembled trace — chunk order cannot matter.
        for (idx, range) in [(0usize, 0..256), (2, 512..768), (3, 768..1000)] {
            let chunk = generate_chunk(&g, 99, 0.0, 1.0, 1000, 256, idx);
            assert_eq!(&full.values()[range], chunk.as_slice(), "chunk {idx}");
        }
        // And the whole thing replays from the seed.
        assert_eq!(full, generate_chunked(&g, 99, 0.0, 1.0, 1000, 256));
        assert_ne!(full, generate_chunked(&g, 100, 0.0, 1.0, 1000, 256));
    }

    #[test]
    fn chunked_generation_stays_in_availability_bounds() {
        let g = SingleModeAr1::platform1_center();
        let t = generate_chunked(&g, 5, 0.0, 1.0, 5000, 600);
        assert!(t.min() >= MIN_AVAILABILITY);
        assert!(t.max() <= MAX_AVAILABILITY);
        let s = Summary::from_slice(t.values());
        assert!((s.mean() - 0.48).abs() < 0.02, "mean {}", s.mean());
    }

    #[test]
    #[should_panic]
    fn chunk_beyond_horizon_rejected() {
        let g = Dedicated::default();
        generate_chunk(&g, 1, 0.0, 1.0, 100, 50, 2);
    }

    #[test]
    fn derive_seed_separates_machines() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(1, 0));
    }

    #[test]
    fn spot_sample_in_range() {
        let v = spot_sample(&SingleModeAr1::platform1_center(), 11);
        assert!((MIN_AVAILABILITY..=MAX_AVAILABILITY).contains(&v));
    }
}
