//! Workstation models.
//!
//! The paper's testbeds mixed Sparc-2, Sparc-5, Sparc-10, and UltraSparc
//! workstations with "diverse processor speeds, available physical memory,
//! and CPU load". A [`MachineSpec`] carries the *dedicated* performance
//! characteristics (the `BM(Elt_p)` benchmark and `Op`/`CPU` operation
//! model of Section 2.2.1); a [`Machine`] pairs a spec with a CPU
//! availability [`Trace`] that makes it a production machine.

use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// The workstation classes appearing in the paper's platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineClass {
    /// SPARCstation 2 — the slowest class in Platform 1.
    Sparc2,
    /// SPARCstation 5.
    Sparc5,
    /// SPARCstation 10.
    Sparc10,
    /// UltraSPARC — the fast machines of Platform 2.
    UltraSparc,
}

impl MachineClass {
    /// Dedicated benchmark time to process one SOR grid element, in
    /// seconds (`BM(Elt_p)` in the paper's computation component model).
    ///
    /// Values are calibrated so the simulated platforms land in the same
    /// execution-time ranges as the paper's figures (tens of seconds to a
    /// few minutes for 1000²–2000² grids on 4 machines).
    pub fn benchmark_secs_per_element(self) -> f64 {
        match self {
            MachineClass::Sparc2 => 2.0e-6,
            MachineClass::Sparc5 => 1.3e-6,
            MachineClass::Sparc10 => 0.9e-6,
            MachineClass::UltraSparc => 0.35e-6,
        }
    }

    /// Floating-point operations needed per SOR element update
    /// (`Op(p, Elt)`): 4 neighbour adds, multiply by `omega/4`, one
    /// subtract and one add for the relaxation — ~7 flops plus indexing.
    pub fn ops_per_element(self) -> f64 {
        10.0
    }

    /// Seconds per operation (`CPU_p`), consistent with the benchmark:
    /// `BM = Op * CPU`.
    pub fn secs_per_op(self) -> f64 {
        self.benchmark_secs_per_element() / self.ops_per_element()
    }

    /// Physical memory in megabytes — bounds the largest in-core problem
    /// (Figure 9 is restricted to "problem sizes which fit within main
    /// memory").
    pub fn memory_mb(self) -> f64 {
        match self {
            MachineClass::Sparc2 => 64.0,
            MachineClass::Sparc5 => 96.0,
            MachineClass::Sparc10 => 128.0,
            MachineClass::UltraSparc => 256.0,
        }
    }

    /// Human-readable class name.
    pub fn name(self) -> &'static str {
        match self {
            MachineClass::Sparc2 => "Sparc-2",
            MachineClass::Sparc5 => "Sparc-5",
            MachineClass::Sparc10 => "Sparc-10",
            MachineClass::UltraSparc => "UltraSparc",
        }
    }
}

/// Static description of one workstation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Host name, e.g. `"sparc2-a"`.
    pub name: String,
    /// Hardware class.
    pub class: MachineClass,
}

impl MachineSpec {
    /// Creates a spec.
    pub fn new(name: impl Into<String>, class: MachineClass) -> Self {
        Self {
            name: name.into(),
            class,
        }
    }

    /// Dedicated time to process `elements` grid elements, in seconds.
    pub fn dedicated_compute_secs(&self, elements: f64) -> f64 {
        assert!(elements >= 0.0);
        elements * self.class.benchmark_secs_per_element()
    }

    /// Largest square grid (elements per side) whose strip for `p`
    /// processors fits in memory, assuming 8-byte elements and a factor-2
    /// working-set overhead.
    pub fn max_in_core_n(&self, processors: usize) -> usize {
        assert!(processors > 0);
        let bytes = self.class.memory_mb() * 1024.0 * 1024.0 / 2.0;
        // Strip holds N*N/p elements of 8 bytes.
        ((bytes / 8.0 * processors as f64).sqrt()) as usize
    }
}

/// A production workstation: spec + CPU availability over time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Machine {
    /// Static spec.
    pub spec: MachineSpec,
    /// CPU availability trace (fraction of the CPU our application gets).
    pub load: Trace,
}

impl Machine {
    /// Creates a machine from a spec and an availability trace.
    pub fn new(spec: MachineSpec, load: Trace) -> Self {
        Self { spec, load }
    }

    /// CPU availability at time `t`.
    pub fn availability(&self, t: f64) -> f64 {
        self.load.at(t)
    }

    /// Wall-clock seconds to compute `elements` grid elements starting at
    /// time `t`, integrating work against the availability trace.
    pub fn compute_secs(&self, elements: f64, t: f64) -> f64 {
        let work = self.spec.dedicated_compute_secs(elements);
        self.load.time_to_complete(t, work)
    }

    /// Mean availability over a window — what a coarse benchmark would
    /// report ("a mean capacity measure over a 24-hour period").
    pub fn mean_availability(&self, a: f64, b: f64) -> f64 {
        self.load.mean_over(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ordering_by_speed() {
        // Faster classes have smaller per-element times.
        assert!(
            MachineClass::UltraSparc.benchmark_secs_per_element()
                < MachineClass::Sparc10.benchmark_secs_per_element()
        );
        assert!(
            MachineClass::Sparc10.benchmark_secs_per_element()
                < MachineClass::Sparc5.benchmark_secs_per_element()
        );
        assert!(
            MachineClass::Sparc5.benchmark_secs_per_element()
                < MachineClass::Sparc2.benchmark_secs_per_element()
        );
    }

    #[test]
    fn op_model_consistent_with_benchmark() {
        for c in [
            MachineClass::Sparc2,
            MachineClass::Sparc5,
            MachineClass::Sparc10,
            MachineClass::UltraSparc,
        ] {
            let via_ops = c.ops_per_element() * c.secs_per_op();
            assert!((via_ops - c.benchmark_secs_per_element()).abs() < 1e-15);
        }
    }

    #[test]
    fn dedicated_compute_scales_linearly() {
        let spec = MachineSpec::new("s2", MachineClass::Sparc2);
        let t1 = spec.dedicated_compute_secs(1.0e6);
        let t2 = spec.dedicated_compute_secs(2.0e6);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
        assert!((t1 - 2.0).abs() < 1e-9); // 1e6 elts * 2 us
    }

    #[test]
    fn production_compute_inflates_by_load() {
        let spec = MachineSpec::new("s10", MachineClass::Sparc10);
        let dedicated = Machine::new(spec.clone(), Trace::constant(0.0, 1.0, 1.0, 1000));
        let halved = Machine::new(spec, Trace::constant(0.0, 1.0, 0.5, 1000));
        let e = 1.0e6;
        let td = dedicated.compute_secs(e, 0.0);
        let th = halved.compute_secs(e, 0.0);
        assert!((th / td - 2.0).abs() < 1e-9);
    }

    #[test]
    fn compute_respects_time_varying_load() {
        let spec = MachineSpec::new("s10", MachineClass::Sparc10);
        // 1.0 for 1 s then 0.25 afterwards.
        let m = Machine::new(spec, Trace::new(0.0, 1.0, vec![1.0, 0.25]));
        // Work of 2 dedicated seconds: 1 s at full speed + 4 s at quarter.
        let elements = 2.0 / MachineClass::Sparc10.benchmark_secs_per_element();
        let t = m.compute_secs(elements, 0.0);
        assert!((t - 5.0).abs() < 1e-6, "t={t}");
    }

    #[test]
    fn memory_bounds_grow_with_class() {
        let s2 = MachineSpec::new("a", MachineClass::Sparc2);
        let us = MachineSpec::new("b", MachineClass::UltraSparc);
        assert!(us.max_in_core_n(4) > s2.max_in_core_n(4));
        // 4-way Sparc-2 strip: sqrt(64MB/2/8 * 4) = sqrt(16M) = 4096.
        assert_eq!(s2.max_in_core_n(4), 4096);
    }

    #[test]
    fn mean_availability_window() {
        let spec = MachineSpec::new("x", MachineClass::Sparc5);
        let m = Machine::new(spec, Trace::new(0.0, 1.0, vec![1.0, 0.5, 0.5, 1.0]));
        assert!((m.mean_availability(0.0, 4.0) - 0.75).abs() < 1e-9);
    }
}
