//! Memory pressure and paging.
//!
//! The paper restricts Figure 9 to "problem sizes which fit within main
//! memory" — beyond that point the model's linear per-element cost breaks
//! down because the working set pages. This module supplies the in-core
//! check and a classic paging-slowdown model so the harness can show
//! *where* and *why* the prediction regime ends.

use crate::machine::MachineSpec;
use serde::{Deserialize, Serialize};

/// Bytes per grid element (f64).
pub const BYTES_PER_ELEMENT: f64 = 8.0;

/// Working-set overhead factor: ghost rows, solver state, the OS.
pub const WORKING_SET_FACTOR: f64 = 2.0;

/// Paging model parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PagingModel {
    /// Fraction of physical memory usable by the application.
    pub usable_fraction: f64,
    /// Multiplicative compute slowdown per unit of overcommit: at
    /// overcommit ratio `r > 1`, the effective per-element time is
    /// `1 + slowdown_per_overcommit * (r - 1)` times the in-core time.
    /// Disk-backed paging of the era was brutal: tens of times slower.
    pub slowdown_per_overcommit: f64,
}

impl Default for PagingModel {
    fn default() -> Self {
        Self {
            usable_fraction: 0.5,
            slowdown_per_overcommit: 30.0,
        }
    }
}

impl PagingModel {
    /// Bytes of memory the strip of `elements` grid elements needs.
    pub fn working_set_bytes(&self, elements: f64) -> f64 {
        elements * BYTES_PER_ELEMENT * WORKING_SET_FACTOR
    }

    /// Overcommit ratio for a strip on a machine: working set over usable
    /// memory. `<= 1` means in-core.
    pub fn overcommit(&self, spec: &MachineSpec, elements: f64) -> f64 {
        let usable = spec.class.memory_mb() * 1024.0 * 1024.0 * self.usable_fraction;
        self.working_set_bytes(elements) / usable
    }

    /// Whether the strip fits in core.
    pub fn fits_in_core(&self, spec: &MachineSpec, elements: f64) -> bool {
        self.overcommit(spec, elements) <= 1.0
    }

    /// The compute-time inflation factor from paging (1.0 when in-core).
    pub fn slowdown(&self, spec: &MachineSpec, elements: f64) -> f64 {
        let r = self.overcommit(spec, elements);
        if r <= 1.0 {
            1.0
        } else {
            1.0 + self.slowdown_per_overcommit * (r - 1.0)
        }
    }

    /// Largest square grid `n` whose per-processor strip (of `n^2/p`
    /// elements) stays in core on `spec`.
    pub fn max_in_core_n(&self, spec: &MachineSpec, processors: usize) -> usize {
        assert!(processors > 0);
        let usable = spec.class.memory_mb() * 1024.0 * 1024.0 * self.usable_fraction;
        let max_elements = usable / (BYTES_PER_ELEMENT * WORKING_SET_FACTOR);
        ((max_elements * processors as f64).sqrt()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{MachineClass, MachineSpec};

    fn sparc2() -> MachineSpec {
        MachineSpec::new("s2", MachineClass::Sparc2)
    }

    #[test]
    fn small_problems_fit() {
        let m = PagingModel::default();
        // 1000x1000 over 4 procs: 250k elements -> 4 MB working set.
        assert!(m.fits_in_core(&sparc2(), 250_000.0));
        assert_eq!(m.slowdown(&sparc2(), 250_000.0), 1.0);
    }

    #[test]
    fn oversized_strips_page() {
        let m = PagingModel::default();
        // Sparc-2: 64 MB, usable 32 MB, 16 B/elt -> 2M elements in core.
        let boundary = 2_097_152.0;
        assert!(m.fits_in_core(&sparc2(), boundary));
        assert!(!m.fits_in_core(&sparc2(), boundary * 1.01));
        let slow = m.slowdown(&sparc2(), boundary * 1.5);
        assert!((slow - 16.0).abs() < 0.1, "slowdown {slow}");
    }

    #[test]
    fn slowdown_monotone_in_overcommit() {
        let m = PagingModel::default();
        let mut prev = 0.0;
        for k in 1..10 {
            let s = m.slowdown(&sparc2(), 1.0e6 * k as f64);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn max_in_core_n_consistent_with_fit() {
        let m = PagingModel::default();
        for p in [1usize, 2, 4] {
            let n = m.max_in_core_n(&sparc2(), p);
            let elements = (n * n) as f64 / p as f64;
            assert!(m.fits_in_core(&sparc2(), elements), "n={n} p={p}");
            let n1 = n + 16;
            let e1 = (n1 * n1) as f64 / p as f64;
            assert!(!m.fits_in_core(&sparc2(), e1), "n1={n1} p={p}");
        }
    }

    #[test]
    fn bigger_machines_hold_bigger_grids() {
        let m = PagingModel::default();
        let ultra = MachineSpec::new("u", MachineClass::UltraSparc);
        assert!(m.max_in_core_n(&ultra, 4) > m.max_in_core_n(&sparc2(), 4));
    }
}
