//! The shared 10 Mbit ethernet.
//!
//! "The network was also shared by other users." Ethernet of that era is a
//! single shared bus, so one contention state governs every point-to-point
//! pair. Measured available bandwidth between two workstations is
//! long-tailed (paper Figure 3): a tight cluster just below the achievable
//! peak, with a tail toward low bandwidth under contention. We model the
//! *available fraction* of dedicated bandwidth with a two-state
//! (quiet/busy) Markov process: quiet samples cluster normally, busy
//! samples come from a thresholded lognormal tail.

use crate::rng::{exponential, uniform01};
use crate::trace::Trace;
use prodpred_stochastic::dist::Distribution;
use prodpred_stochastic::{LongTailed, Normal};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Static network parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Dedicated (hardware) bandwidth in bytes/second. 10 Mbit ethernet
    /// is 1.25e6 B/s.
    pub dedicated_bw: f64,
    /// Per-message latency in seconds (software + medium acquisition).
    pub latency: f64,
}

impl Default for NetworkSpec {
    fn default() -> Self {
        Self {
            dedicated_bw: 1.25e6,
            latency: 1.0e-3,
        }
    }
}

impl NetworkSpec {
    /// Dedicated transfer time for a message of `bytes`.
    pub fn dedicated_transfer_secs(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0);
        self.latency + bytes / self.dedicated_bw
    }
}

/// Generator for the available-bandwidth-fraction trace.
///
/// Defaults reproduce the paper's Figure 3: on a 10 Mbit network the
/// observed bandwidth has mean ≈ 5.25 Mbit/s (fraction 0.525) with a tight
/// cluster near 5.7 Mbit/s and a contention tail reaching 2–4 Mbit/s.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EthernetContention {
    /// Achievable peak fraction of dedicated bandwidth (protocol ceiling —
    /// classic 10 Mbit ethernet tops out near 60% for user payloads).
    pub peak_fraction: f64,
    /// Cluster standard deviation (quiet network).
    pub cluster_sd: f64,
    /// Long-run fraction of time the network is busy.
    pub busy_weight: f64,
    /// Mean shortfall from the peak while busy, as a fraction.
    pub busy_gap_mean: f64,
    /// Shortfall standard deviation while busy.
    pub busy_gap_sd: f64,
    /// Mean dwell in a contention state, seconds.
    pub mean_dwell: f64,
}

impl Default for EthernetContention {
    fn default() -> Self {
        Self {
            peak_fraction: 0.56,
            cluster_sd: 0.015,
            busy_weight: 0.12,
            busy_gap_mean: 0.15,
            busy_gap_sd: 0.08,
            mean_dwell: 20.0,
        }
    }
}

impl EthernetContention {
    /// Generates the available-fraction trace.
    pub fn generate(&self, seed: u64, t0: f64, dt: f64, steps: usize) -> Trace {
        assert!(self.mean_dwell > 0.0 && steps > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let quiet = Normal::new(self.peak_fraction - 0.01, self.cluster_sd);
        let tail = LongTailed::below(self.peak_fraction, self.busy_gap_mean, self.busy_gap_sd);

        let mut busy = uniform01(&mut rng) < self.busy_weight;
        let mut dwell_left = exponential(&mut rng, 1.0 / self.mean_dwell);
        let values = (0..steps)
            .map(|_| {
                let v = if busy {
                    tail.sample(&mut rng)
                } else {
                    quiet.sample(&mut rng)
                };
                dwell_left -= dt;
                if dwell_left <= 0.0 {
                    // Leave the current state with probability matching the
                    // long-run busy weight.
                    busy = uniform01(&mut rng) < self.busy_weight;
                    dwell_left = exponential(&mut rng, 1.0 / self.mean_dwell);
                }
                v.clamp(0.02, 1.0)
            })
            .collect();
        Trace::new(t0, dt, values)
    }
}

/// The shared segment: spec + availability over time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ethernet {
    /// Hardware parameters.
    pub spec: NetworkSpec,
    /// Fraction of dedicated bandwidth available to the application.
    pub avail: Trace,
}

impl Ethernet {
    /// A production segment.
    pub fn new(spec: NetworkSpec, avail: Trace) -> Self {
        Self { spec, avail }
    }

    /// A dedicated segment at the protocol ceiling (no competing traffic).
    pub fn dedicated(spec: NetworkSpec, horizon_secs: f64) -> Self {
        let steps = (horizon_secs.max(1.0)) as usize + 1;
        Self {
            spec,
            avail: Trace::constant(0.0, 1.0, 0.58, steps),
        }
    }

    /// Available bandwidth (bytes/s) at time `t`.
    pub fn bandwidth_at(&self, t: f64) -> f64 {
        self.spec.dedicated_bw * self.avail.at(t)
    }

    /// Wall-clock seconds to transfer `bytes` starting at `t`, integrating
    /// against the availability trace, plus latency.
    pub fn transfer_secs(&self, bytes: f64, t: f64) -> f64 {
        assert!(bytes >= 0.0);
        // tidy:allow(PP004): exact zero-byte shortcut, no tolerance wanted
        if bytes == 0.0 {
            return 0.0;
        }
        let work = bytes / self.spec.dedicated_bw; // dedicated seconds
        self.spec.latency + self.avail.time_to_complete(t + self.spec.latency, work)
    }

    /// Measured point-to-point bandwidth samples in Mbit/s at the NWS
    /// cadence — the data behind the paper's Figure 3 histogram.
    pub fn bandwidth_samples_mbit(&self, a: f64, b: f64, interval: f64) -> Vec<f64> {
        self.avail
            .sample_every(a, b, interval)
            .into_iter()
            .map(|(_, frac)| frac * self.spec.dedicated_bw * 8.0 / 1.0e6)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prodpred_stochastic::Summary;

    #[test]
    fn dedicated_transfer_time() {
        let spec = NetworkSpec::default();
        // 1.25e6 bytes at 1.25e6 B/s = 1 s + 1 ms latency.
        assert!((spec.dedicated_transfer_secs(1.25e6) - 1.001).abs() < 1e-9);
    }

    #[test]
    fn transfer_inflates_under_contention() {
        let spec = NetworkSpec::default();
        let quiet = Ethernet::new(spec, Trace::constant(0.0, 1.0, 0.58, 100));
        let busy = Ethernet::new(spec, Trace::constant(0.0, 1.0, 0.29, 100));
        let t_q = quiet.transfer_secs(1.0e6, 0.0);
        let t_b = busy.transfer_secs(1.0e6, 0.0);
        assert!(((t_b - spec.latency) / (t_q - spec.latency) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_bytes_is_free() {
        let e = Ethernet::dedicated(NetworkSpec::default(), 10.0);
        assert_eq!(e.transfer_secs(0.0, 0.0), 0.0);
    }

    #[test]
    fn contention_trace_matches_figure3_statistics() {
        let g = EthernetContention::default();
        let t = g.generate(1, 0.0, 5.0, 40_000);
        let mbit: Vec<f64> = t.values().iter().map(|f| f * 10.0).collect();
        let s = Summary::from_slice(&mbit);
        // Paper: mean 5.25 Mbit/s, sd ~0.4 (stochastic value 5.25 ± 0.8).
        assert!((s.mean() - 5.25).abs() < 0.35, "mean {}", s.mean());
        assert!(s.sd() > 0.2 && s.sd() < 0.8, "sd {}", s.sd());
        // Left-skewed: the contention tail points down.
        assert!(s.skewness() < -0.5, "skewness {}", s.skewness());
        // Range sane for 10 Mbit ethernet.
        assert!(s.min() >= 0.2 && s.max() < 7.0);
    }

    #[test]
    fn contention_undercovers_two_sigma() {
        // The §2.1.1 phenomenon: mean ± 2 sd covers ~91%, not 95%.
        let g = EthernetContention::default();
        let t = g.generate(2, 0.0, 5.0, 40_000);
        let s = Summary::from_slice(t.values());
        let (lo, hi) = (s.mean() - 2.0 * s.sd(), s.mean() + 2.0 * s.sd());
        let inside = t.values().iter().filter(|&&x| x >= lo && x <= hi).count();
        let frac = inside as f64 / t.len() as f64;
        assert!(frac < 0.95, "coverage {frac}");
        assert!(frac > 0.82, "coverage {frac}");
    }

    #[test]
    fn contention_deterministic_per_seed() {
        let g = EthernetContention::default();
        assert_eq!(g.generate(5, 0.0, 1.0, 50), g.generate(5, 0.0, 1.0, 50));
    }

    #[test]
    fn bandwidth_samples_unit_conversion() {
        let e = Ethernet::new(NetworkSpec::default(), Trace::constant(0.0, 1.0, 0.5, 100));
        let samples = e.bandwidth_samples_mbit(0.0, 50.0, 5.0);
        assert_eq!(samples.len(), 10);
        // 0.5 * 1.25e6 B/s * 8 / 1e6 = 5 Mbit/s.
        assert!(samples.iter().all(|&s| (s - 5.0).abs() < 1e-9));
    }
}
