//! The experimental platforms of Section 3.
//!
//! * **Platform 1**: "two Sparc-2 workstations, a Sparc-5 and a Sparc-10,
//!   all connected over 10 Mbit ethernet", tri-modal load, values staying
//!   within a single mode during a run.
//! * **Platform 2**: "a Sparc-5, a Sparc-10, and two UltraSparcs", 4-modal
//!   bursty load.
//!
//! Plus a dedicated configuration used to validate the structural model's
//! "within 2%" claim (Section 2.2.1).

use crate::load::{derive_seed, Dedicated, LoadGenerator, MarkovModal, SingleModeAr1};
use crate::machine::{Machine, MachineClass, MachineSpec};
use crate::network::{Ethernet, EthernetContention, NetworkSpec};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// Resolution of generated load traces, seconds. Finer than the NWS's
/// 5-second sensor cadence so sensors observe genuine variation.
pub const TRACE_DT: f64 = 1.0;

/// A complete production environment: machines plus the shared segment.
///
/// ```
/// use prodpred_simgrid::Platform;
///
/// // Section 3.1's testbed, reproducible from a seed.
/// let p = Platform::platform1(42, 3600.0);
/// assert_eq!(p.len(), 4);
/// // The slowest machine sits in the 0.48 load mode...
/// let load = p.machines[0].load.mean_over(0.0, 3600.0);
/// assert!((load - 0.48).abs() < 0.05);
/// // ...so its compute runs ~2x slower than dedicated.
/// let t = p.machines[0].compute_secs(1.0e6, 100.0);
/// assert!(t > 3.0 && t < 5.5, "{t}");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    /// The workstations, in scheduling order.
    pub machines: Vec<Machine>,
    /// The shared ethernet.
    pub network: Ethernet,
    /// Horizon of the generated traces, seconds.
    pub horizon: f64,
}

impl Platform {
    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the platform has no machines (never true for the presets).
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Machine names in order.
    pub fn names(&self) -> Vec<&str> {
        self.machines.iter().map(|m| m.spec.name.as_str()).collect()
    }

    /// Builds a platform from specs and per-machine load generators.
    pub fn from_generators(
        specs: Vec<MachineSpec>,
        generators: &[&dyn LoadGenerator],
        network_avail: Trace,
        seed: u64,
        horizon: f64,
    ) -> Self {
        assert_eq!(specs.len(), generators.len());
        assert!(horizon > 0.0);
        let steps = (horizon / TRACE_DT).ceil() as usize;
        let machines = specs
            .into_iter()
            .zip(generators.iter())
            .enumerate()
            .map(|(i, (spec, g))| {
                let load = g.generate(derive_seed(seed, i), 0.0, TRACE_DT, steps);
                Machine::new(spec, load)
            })
            .collect();
        Self {
            machines,
            network: Ethernet::new(NetworkSpec::default(), network_avail),
            horizon,
        }
    }

    /// Builds a platform by generating every machine's load trace in
    /// fixed-size chunks fanned over the work pool: each chunk is a pure
    /// function of `(machine, chunk index, seed)` (see
    /// [`crate::load::generate_chunk`]), so generation order — and the
    /// thread count — is irrelevant to the result. Machine `i`'s chunk
    /// stream is seeded exactly like [`Platform::from_generators`] seeds
    /// its whole-trace generation (`derive_seed(seed, i)`), but the chunk
    /// discipline restarts the process at chunk boundaries, so the two
    /// constructors produce *different* (both valid) trace realizations.
    ///
    /// For grids where even one trace per machine is too much memory, use
    /// [`crate::store::TraceStore::generate_streamed`] instead — this
    /// constructor still materializes a full [`Trace`] per machine.
    ///
    /// # Panics
    ///
    /// Panics if `specs` and `generators` differ in length, or
    /// `horizon <= 0`, or `chunk_steps == 0`.
    pub fn from_generators_streamed(
        specs: Vec<MachineSpec>,
        generators: &[&(dyn LoadGenerator + Sync)],
        network_avail: Trace,
        seed: u64,
        horizon: f64,
        chunk_steps: usize,
        threads: usize,
    ) -> Self {
        assert_eq!(specs.len(), generators.len());
        assert!(horizon > 0.0);
        assert!(chunk_steps > 0, "chunk_steps must be positive");
        let steps = (horizon / TRACE_DT).ceil() as usize;
        let n_chunks = steps.div_ceil(chunk_steps);
        let tasks: Vec<(usize, usize)> = (0..specs.len())
            .flat_map(|m| (0..n_chunks).map(move |k| (m, k)))
            .collect();
        let blocks = prodpred_pool::parallel_map(&tasks, threads, |_, &(m, k)| {
            crate::load::generate_chunk(
                generators[m],
                derive_seed(seed, m),
                0.0,
                TRACE_DT,
                steps,
                chunk_steps,
                k,
            )
        });
        let machines = specs
            .into_iter()
            .enumerate()
            .map(|(m, spec)| {
                let mut values = Vec::with_capacity(steps);
                for k in 0..n_chunks {
                    values.extend_from_slice(&blocks[m * n_chunks + k]);
                }
                Machine::new(spec, Trace::new(0.0, TRACE_DT, values))
            })
            .collect();
        Self {
            machines,
            network: Ethernet::new(NetworkSpec::default(), network_avail),
            horizon,
        }
    }

    /// A dedicated platform: every machine fully available, quiet network.
    pub fn dedicated(classes: &[MachineClass], horizon: f64) -> Self {
        let steps = (horizon / TRACE_DT).ceil() as usize;
        let specs = numbered_specs(classes);
        let generators: Vec<&dyn LoadGenerator> = classes
            .iter()
            .map(|_| &DEDICATED as &dyn LoadGenerator)
            .collect();
        Self::from_generators(
            specs,
            &generators,
            Trace::constant(0.0, TRACE_DT, 0.58, steps),
            0,
            horizon,
        )
    }

    /// Platform 1 in its representative single-mode state: the Sparc-2s sit
    /// in the center load mode (0.48 ± 0.05, i.e. sd 0.025), the faster
    /// machines in the lightly-loaded top mode. Network quiet-dominated.
    pub fn platform1(seed: u64, horizon: f64) -> Self {
        let steps = (horizon / TRACE_DT).ceil() as usize;
        let specs = vec![
            MachineSpec::new("sparc2-a", MachineClass::Sparc2),
            MachineSpec::new("sparc2-b", MachineClass::Sparc2),
            MachineSpec::new("sparc5-a", MachineClass::Sparc5),
            MachineSpec::new("sparc10-a", MachineClass::Sparc10),
        ];
        let center = SingleModeAr1 {
            mean: 0.48,
            sd: 0.025,
            phi: 0.9,
        };
        let top = SingleModeAr1 {
            mean: 0.94,
            sd: 0.015,
            phi: 0.9,
        };
        let generators: Vec<&dyn LoadGenerator> = vec![&center, &center, &top, &top];
        let network = EthernetContention {
            busy_weight: 0.10,
            ..Default::default()
        }
        .generate(derive_seed(seed, 100), 0.0, TRACE_DT, steps);
        Self::from_generators(specs, &generators, network, seed, horizon)
    }

    /// Platform 1 with free-running tri-modal load on every machine — used
    /// to build the Figure-5 histogram and the long multi-mode traces.
    pub fn platform1_free(seed: u64, horizon: f64, mean_dwell: f64) -> Self {
        let steps = (horizon / TRACE_DT).ceil() as usize;
        let specs = vec![
            MachineSpec::new("sparc2-a", MachineClass::Sparc2),
            MachineSpec::new("sparc2-b", MachineClass::Sparc2),
            MachineSpec::new("sparc5-a", MachineClass::Sparc5),
            MachineSpec::new("sparc10-a", MachineClass::Sparc10),
        ];
        let tri = MarkovModal::platform1(mean_dwell);
        let generators: Vec<&dyn LoadGenerator> = vec![&tri, &tri, &tri, &tri];
        let network =
            EthernetContention::default().generate(derive_seed(seed, 100), 0.0, TRACE_DT, steps);
        Self::from_generators(specs, &generators, network, seed, horizon)
    }

    /// Platform 2: Sparc-5, Sparc-10, two UltraSparcs, 4-modal bursty load
    /// on every machine, busier network.
    pub fn platform2(seed: u64, horizon: f64) -> Self {
        let steps = (horizon / TRACE_DT).ceil() as usize;
        let specs = vec![
            MachineSpec::new("sparc5-a", MachineClass::Sparc5),
            MachineSpec::new("sparc10-a", MachineClass::Sparc10),
            MachineSpec::new("ultra-a", MachineClass::UltraSparc),
            MachineSpec::new("ultra-b", MachineClass::UltraSparc),
        ];
        let bursty = MarkovModal::platform2(25.0);
        let generators: Vec<&dyn LoadGenerator> = vec![&bursty, &bursty, &bursty, &bursty];
        let network = EthernetContention {
            busy_weight: 0.30,
            mean_dwell: 15.0,
            ..Default::default()
        }
        .generate(derive_seed(seed, 100), 0.0, TRACE_DT, steps);
        Self::from_generators(specs, &generators, network, seed, horizon)
    }
}

static DEDICATED: Dedicated = Dedicated { level: 1.0 };

fn numbered_specs(classes: &[MachineClass]) -> Vec<MachineSpec> {
    classes
        .iter()
        .enumerate()
        .map(|(i, &c)| MachineSpec::new(format!("{}-{}", c.name().to_lowercase(), i), c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prodpred_stochastic::Summary;

    #[test]
    fn platform1_composition() {
        let p = Platform::platform1(1, 600.0);
        assert_eq!(p.len(), 4);
        assert_eq!(p.machines[0].spec.class, MachineClass::Sparc2);
        assert_eq!(p.machines[3].spec.class, MachineClass::Sparc10);
        assert_eq!(p.names().len(), 4);
    }

    #[test]
    fn platform1_slowest_machines_in_center_mode() {
        let p = Platform::platform1(2, 3600.0);
        for m in &p.machines[..2] {
            let s = Summary::from_slice(m.load.values());
            assert!((s.mean() - 0.48).abs() < 0.02, "mean {}", s.mean());
            assert!(s.sd() < 0.05, "sd {}", s.sd());
        }
        // Fast machines are lightly loaded.
        for m in &p.machines[2..] {
            let s = Summary::from_slice(m.load.values());
            assert!(s.mean() > 0.85, "mean {}", s.mean());
        }
    }

    #[test]
    fn platform2_is_bursty() {
        let p = Platform::platform2(3, 3600.0);
        for m in &p.machines {
            let s = Summary::from_slice(m.load.values());
            assert!(s.sd() > 0.15, "machine {} sd {}", m.spec.name, s.sd());
        }
    }

    #[test]
    fn dedicated_platform_full_availability() {
        let p = Platform::dedicated(&[MachineClass::Sparc2, MachineClass::UltraSparc], 100.0);
        for m in &p.machines {
            assert_eq!(m.load.min(), 1.0);
        }
    }

    #[test]
    fn machines_get_independent_loads() {
        let p = Platform::platform2(4, 600.0);
        assert_ne!(p.machines[2].load, p.machines[3].load);
    }

    #[test]
    fn streamed_platform_is_thread_count_invariant() {
        let bursty = MarkovModal::platform2(25.0);
        let build = |threads: usize| {
            Platform::from_generators_streamed(
                vec![
                    MachineSpec::new("u-a", MachineClass::UltraSparc),
                    MachineSpec::new("u-b", MachineClass::UltraSparc),
                    MachineSpec::new("s5", MachineClass::Sparc5),
                ],
                &[&bursty, &bursty, &bursty],
                Trace::constant(0.0, TRACE_DT, 0.9, 700),
                21,
                700.0,
                128,
                threads,
            )
        };
        let one = build(1);
        for threads in [2usize, 4, 8] {
            let many = build(threads);
            for (a, b) in one.machines.iter().zip(&many.machines) {
                assert_eq!(a.load, b.load, "{} at {threads} threads", a.spec.name);
            }
        }
        // Chunk assembly matches direct chunked generation per machine.
        let direct =
            crate::load::generate_chunked(&bursty, derive_seed(21, 1), 0.0, TRACE_DT, 700, 128);
        assert_eq!(one.machines[1].load, direct);
    }

    #[test]
    fn platforms_reproducible_by_seed() {
        let a = Platform::platform2(9, 300.0);
        let b = Platform::platform2(9, 300.0);
        assert_eq!(a.machines[0].load, b.machines[0].load);
        assert_eq!(a.network.avail, b.network.avail);
        let c = Platform::platform2(10, 300.0);
        assert_ne!(a.machines[0].load, c.machines[0].load);
    }
}
