//! Deterministic random-variate helpers shared by the simulator's
//! generators. Everything takes an explicit `RngCore` so whole experiments
//! replay bit-for-bit from a seed.

use rand::RngCore;

/// A uniform draw in `[0, 1)` with 53 bits of precision.
pub fn uniform01(rng: &mut dyn RngCore) -> f64 {
    const SCALE: f64 = 1.110_223_024_625_156_5e-16; // 2^-53
    (rng.next_u64() >> 11) as f64 * SCALE
}

/// A uniform draw in `[lo, hi)`.
pub fn uniform(rng: &mut dyn RngCore, lo: f64, hi: f64) -> f64 {
    assert!(hi >= lo, "uniform range inverted: [{lo}, {hi})");
    lo + (hi - lo) * uniform01(rng)
}

/// An exponential draw with the given rate (mean `1/rate`), for Poisson
/// arrivals and session lifetimes.
///
/// # Panics
///
/// Panics unless `rate > 0`.
pub fn exponential(rng: &mut dyn RngCore, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u = loop {
        let u = uniform01(rng);
        if u < 1.0 {
            break u;
        }
    };
    -(1.0 - u).ln() / rate
}

/// An index draw weighted by `weights` (need not be normalized).
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero.
pub fn weighted_index(rng: &mut dyn RngCore, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weighted_index needs weights");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut u = uniform01(rng) * total;
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = uniform(&mut rng, 3.0, 7.0);
            assert!((3.0..7.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, 0.25)).sum();
        assert!((sum / n as f64 - 4.0).abs() < 0.1);
    }

    #[test]
    fn weighted_index_proportions() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[weighted_index(&mut rng, &[1.0, 2.0, 1.0])] += 1;
        }
        let total = 30_000f64;
        assert!((counts[0] as f64 / total - 0.25).abs() < 0.02);
        assert!((counts[1] as f64 / total - 0.50).abs() < 0.02);
        assert!((counts[2] as f64 / total - 0.25).abs() < 0.02);
    }

    #[test]
    #[should_panic]
    fn exponential_rejects_zero_rate() {
        let mut rng = StdRng::seed_from_u64(4);
        exponential(&mut rng, 0.0);
    }
}
