//! Columnar trace storage for grids of tens of thousands of machines.
//!
//! A [`crate::Trace`] costs O(steps · 16) bytes per machine (samples plus
//! prefix integral), which caps the simulated testbed at paper-sized
//! machine counts. The [`TraceStore`] drops that to O(1) amortized bytes
//! per machine by exploiting what a production fleet actually looks like:
//! a handful of *machine classes*, each with one statistical load regime.
//!
//! * The store holds a small set of **template columns** per class — full
//!   traces sharing one time grid (`t0`, `dt`, `steps` plus a `pad` of
//!   extra leading samples for phase shifts), generated chunk-by-chunk as
//!   a pure function of `(seed, column, chunk)` so generation is streamed,
//!   parallel, and order-independent (see [`crate::load::generate_chunk`]).
//! * Each machine is a [`MachineSlot`]: a template column index, a
//!   whole-step **phase shift** into the column's pad, and a **value
//!   scale** — 16 bytes, derived deterministically from
//!   `(seed, machine_index)`.
//! * A [`TraceRef`] is the machine's trace *view*: `at` is O(1),
//!   `integral` is O(1) via the column's lazily-built prefix array, and
//!   `time_to_complete` is an O(log steps) binary search — the same
//!   contracts as [`crate::Trace`], pinned to ≤ 1e-9 agreement against
//!   the materialized reference oracles.
//!
//! The store asserts every template value stays strictly above the work
//! integration floor (`1e-6`) even under the smallest scale, so the raw
//! prefix array doubles as the floored work-integration curve and only
//! one prefix per column is ever built.

use crate::faults::{mix, unit};
use crate::load::LoadGenerator;
use crate::trace::{cumulative_prefix, Trace, AVAIL_FLOOR};
use std::sync::OnceLock;

/// Smallest per-machine value scale a slot may carry.
pub const SCALE_LO: f64 = 0.85;

/// Largest per-machine value scale (1.0 keeps availability ≤ the
/// template's ceiling).
pub const SCALE_HI: f64 = 1.0;

/// One template column: a padded value block plus its lazily-built
/// Kahan-compensated prefix integral.
#[derive(Debug)]
struct Column {
    /// `steps + pad` samples on the shared grid, starting `pad` steps
    /// before the visible `t0`.
    values: Box<[f64]>,
    /// `values.len() + 1` cumulative entries, built on first integral or
    /// work-integration query against any slot of this column.
    prefix: OnceLock<Box<[f64]>>,
}

impl Column {
    fn prefix(&self, dt: f64) -> &[f64] {
        self.prefix.get_or_init(|| {
            cumulative_prefix(dt, &self.values, f64::NEG_INFINITY).into_boxed_slice()
        })
    }
}

/// A machine's entire per-machine trace state: 16 bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSlot {
    /// Template column index into the store.
    pub column: u32,
    /// Whole-step phase shift into the column's pad, in `0..=pad`.
    pub shift: u32,
    /// Value scale in `[`[`SCALE_LO`]`, `[`SCALE_HI`]`]`.
    pub scale: f64,
}

impl MachineSlot {
    /// Derives the slot for `machine_index` purely from `seed`, choosing a
    /// column in `[column_lo, column_hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the column range is empty.
    pub fn derive(
        seed: u64,
        machine_index: usize,
        column_lo: u32,
        column_hi: u32,
        pad: u32,
    ) -> Self {
        assert!(column_hi > column_lo, "empty column range");
        let h = mix(seed ^ mix(machine_index as u64 + 1));
        let column =
            column_lo + (mix(h ^ 0x1111_1111_1111_1111) % u64::from(column_hi - column_lo)) as u32;
        let shift = (mix(h ^ 0x2222_2222_2222_2222) % (u64::from(pad) + 1)) as u32;
        let scale = SCALE_LO + (SCALE_HI - SCALE_LO) * unit(mix(h ^ 0x3333_3333_3333_3333));
        Self {
            column,
            shift,
            scale,
        }
    }
}

/// A template generator and how many independent columns it contributes.
pub struct TemplateSpec<'a> {
    /// The load process shared by every column of this group.
    pub generator: &'a (dyn LoadGenerator + Sync),
    /// Number of independent template columns to generate.
    pub count: usize,
}

/// Structure-of-arrays trace storage: shared time grid, template columns,
/// lazy prefix integrals. Machines reference it through [`MachineSlot`]s.
#[derive(Debug)]
pub struct TraceStore {
    t0: f64,
    dt: f64,
    /// Visible steps per machine view.
    steps: usize,
    /// Extra leading samples available for phase shifts.
    pad: usize,
    columns: Vec<Column>,
    /// Smallest sample across all columns; construction asserts
    /// `min_value * SCALE_LO > AVAIL_FLOOR`.
    min_value: f64,
}

impl TraceStore {
    /// Builds a store from already-generated padded columns.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`, `steps == 0`, `columns` is empty, any column
    /// has the wrong padded length or a non-finite value, or any value
    /// scaled by [`SCALE_LO`] does not clear the work-integration floor.
    pub fn from_columns(
        t0: f64,
        dt: f64,
        steps: usize,
        pad: usize,
        columns: Vec<Vec<f64>>,
    ) -> Self {
        assert!(dt > 0.0, "store step must be positive");
        assert!(steps > 0, "store needs at least one step");
        assert!(!columns.is_empty(), "store needs at least one column");
        let padded = steps + pad;
        let mut min_value = f64::INFINITY;
        for (i, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), padded, "column {i} has wrong padded length");
            for &v in col {
                assert!(v.is_finite(), "column {i} has a non-finite value");
                min_value = min_value.min(v);
            }
        }
        assert!(
            min_value * SCALE_LO > AVAIL_FLOOR,
            "template values must clear the work-integration floor: min {min_value}"
        );
        let columns = columns
            .into_iter()
            .map(|values| Column {
                values: values.into_boxed_slice(),
                prefix: OnceLock::new(),
            })
            .collect();
        Self {
            t0,
            dt,
            steps,
            pad,
            columns,
            min_value,
        }
    }

    /// Generates a store's template columns chunk-by-chunk over the work
    /// pool. Column `c`'s stream seed is `derive_seed(seed, c)` and each
    /// chunk is a pure function of `(stream seed, chunk index)`, so the
    /// result is bit-identical at any thread count and any generation
    /// order. The columns cover `[t0 - pad·dt, t0 + steps·dt)` so phase
    /// shifts up to `pad` steps stay inside generated data.
    ///
    /// # Panics
    ///
    /// Panics on the [`TraceStore::from_columns`] conditions, or if
    /// `chunk_steps == 0` or `templates` is empty.
    // Every parameter is independently meaningful grid geometry; bundling
    // them into a one-use params struct would just rename the call site.
    #[allow(clippy::too_many_arguments)]
    pub fn generate_streamed(
        seed: u64,
        t0: f64,
        dt: f64,
        steps: usize,
        pad: usize,
        templates: &[TemplateSpec<'_>],
        chunk_steps: usize,
        threads: usize,
    ) -> Self {
        assert!(chunk_steps > 0, "chunk_steps must be positive");
        let total_columns: usize = templates.iter().map(|t| t.count).sum();
        assert!(total_columns > 0, "store needs at least one column");
        let padded = steps + pad;
        let n_chunks = padded.div_ceil(chunk_steps);
        // Flat (column, chunk) task grid; the generator of a column is
        // found by walking the template groups.
        let mut column_gen: Vec<&(dyn LoadGenerator + Sync)> = Vec::with_capacity(total_columns);
        for spec in templates {
            for _ in 0..spec.count {
                column_gen.push(spec.generator);
            }
        }
        let tasks: Vec<(usize, usize)> = (0..total_columns)
            .flat_map(|c| (0..n_chunks).map(move |k| (c, k)))
            .collect();
        let blocks = prodpred_pool::parallel_map(&tasks, threads, |_, &(c, k)| {
            let stream = prodpred_pool::derive_seed(seed, c as u64);
            crate::load::generate_chunk(
                column_gen[c],
                stream,
                t0 - pad as f64 * dt,
                dt,
                padded,
                chunk_steps,
                k,
            )
        });
        let columns: Vec<Vec<f64>> = (0..total_columns)
            .map(|c| {
                let mut values = Vec::with_capacity(padded);
                for k in 0..n_chunks {
                    values.extend_from_slice(&blocks[c * n_chunks + k]);
                }
                values
            })
            .collect();
        Self::from_columns(t0, dt, steps, pad, columns)
    }

    /// Start of the visible time grid.
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Step width in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Visible steps per machine view.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Phase-shift pad in steps.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Number of template columns.
    pub fn columns(&self) -> usize {
        self.columns.len()
    }

    /// Smallest sample across all columns.
    pub fn min_value(&self) -> f64 {
        self.min_value
    }

    /// The view for `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot's column or shift is out of range, or its scale
    /// is outside `[SCALE_LO, SCALE_HI]`.
    pub fn trace(&self, slot: MachineSlot) -> TraceRef<'_> {
        assert!(
            (slot.column as usize) < self.columns.len(),
            "column out of range"
        );
        assert!(slot.shift as usize <= self.pad, "shift exceeds pad");
        assert!(
            (SCALE_LO..=SCALE_HI).contains(&slot.scale),
            "scale {} outside [{SCALE_LO}, {SCALE_HI}]",
            slot.scale
        );
        TraceRef { store: self, slot }
    }

    /// Bytes held by the template value blocks.
    pub fn value_bytes(&self) -> usize {
        self.columns.len() * (self.steps + self.pad) * std::mem::size_of::<f64>()
    }

    /// Bytes held by prefix arrays built so far.
    pub fn prefix_bytes_built(&self) -> usize {
        self.columns
            .iter()
            .filter(|c| c.prefix.get().is_some())
            .count()
            * (self.steps + self.pad + 1)
            * std::mem::size_of::<f64>()
    }

    /// Total store bytes: values plus built prefixes.
    pub fn bytes(&self) -> usize {
        self.value_bytes() + self.prefix_bytes_built()
    }

    /// What one machine would cost as a standalone [`Trace`]: samples plus
    /// prefix integral, 16 bytes per step — the naive baseline the
    /// `grid_scale` bench compares against.
    pub fn naive_bytes_per_machine(&self) -> usize {
        self.steps * 2 * std::mem::size_of::<f64>()
    }
}

/// A machine's trace view into a [`TraceStore`] — the thin replacement
/// for a per-machine [`Trace`], with the same query contracts:
/// [`TraceRef::at`] O(1), [`TraceRef::integral`] O(1),
/// [`TraceRef::time_to_complete`] O(log steps).
#[derive(Debug, Clone, Copy)]
pub struct TraceRef<'a> {
    store: &'a TraceStore,
    slot: MachineSlot,
}

impl<'a> TraceRef<'a> {
    /// The slot this view reads through.
    pub fn slot(&self) -> MachineSlot {
        self.slot
    }

    /// Start time of the visible window.
    pub fn t0(&self) -> f64 {
        self.store.t0
    }

    /// Step width in seconds.
    pub fn dt(&self) -> f64 {
        self.store.dt
    }

    /// Number of visible steps.
    pub fn len(&self) -> usize {
        self.store.steps
    }

    /// Always false (stores reject empty columns).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// End of the visible horizon.
    pub fn t_end(&self) -> f64 {
        self.store.t0 + self.store.dt * self.store.steps as f64
    }

    /// The window of raw (unscaled) column samples this view reads.
    fn window(&self) -> &'a [f64] {
        let off = self.slot.shift as usize;
        &self.store.columns[self.slot.column as usize].values[off..off + self.store.steps]
    }

    /// Raw sample at visible step `k`.
    fn raw(&self, k: usize) -> f64 {
        self.window()[k]
    }

    /// The step index whose segment contains `x`, clamped to the last
    /// step. Callers guarantee `x > t0`.
    #[inline]
    fn step_of(&self, x: f64) -> usize {
        (((x - self.store.t0) / self.store.dt) as usize).min(self.store.steps - 1)
    }

    /// The value at time `t` (clamped to the visible horizon).
    pub fn at(&self, t: f64) -> f64 {
        if t <= self.store.t0 {
            return self.slot.scale * self.raw(0);
        }
        self.slot.scale * self.raw(self.step_of(t))
    }

    /// Unscaled cumulative integral of the view from `t0` to `x`, from the
    /// column's shared prefix array: two lookups and an interpolation.
    #[inline]
    fn cum_raw(&self, x: f64) -> f64 {
        let t0 = self.store.t0;
        if x <= t0 {
            return self.raw(0) * (x - t0);
        }
        let prefix = self.store.columns[self.slot.column as usize].prefix(self.store.dt);
        let off = self.slot.shift as usize;
        let k = self.step_of(x);
        (prefix[off + k] - prefix[off]) + self.raw(k) * (x - (t0 + k as f64 * self.store.dt))
    }

    /// Integral of the view over `[a, b]` in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `b < a`.
    pub fn integral(&self, a: f64, b: f64) -> f64 {
        assert!(b >= a, "inverted interval [{a}, {b}]");
        self.slot.scale * (self.cum_raw(b) - self.cum_raw(a))
    }

    /// Mean value over `[a, b]`.
    ///
    /// # Panics
    ///
    /// Panics if `b < a`.
    pub fn mean_over(&self, a: f64, b: f64) -> f64 {
        assert!(b >= a, "inverted interval [{a}, {b}]");
        if b == a {
            return self.at(a);
        }
        self.integral(a, b) / (b - a)
    }

    /// How long work of `dedicated_work` seconds takes when started at
    /// `t0_work` — the O(log steps) binary search of
    /// [`Trace::time_to_complete`], served from the shared column prefix.
    /// Store construction guarantees scaled values stay strictly above the
    /// integration floor, so the raw prefix *is* the work curve.
    ///
    /// # Panics
    ///
    /// Panics if `dedicated_work < 0`.
    pub fn time_to_complete(&self, t0_work: f64, dedicated_work: f64) -> f64 {
        assert!(
            dedicated_work >= 0.0,
            "work must be non-negative: {dedicated_work}"
        );
        // tidy:allow(PP004): exact zero-work shortcut, no tolerance wanted
        if dedicated_work == 0.0 {
            return 0.0;
        }
        let t0 = self.store.t0;
        let dt = self.store.dt;
        // Work in raw-curve units: the scale divides out once.
        let target = self.cum_raw(t0_work) + dedicated_work / self.slot.scale;
        if target <= 0.0 {
            // Finishes before the window starts: constant first value.
            return t0 + target / self.raw(0) - t0_work;
        }
        let prefix = self.store.columns[self.slot.column as usize].prefix(dt);
        let off = self.slot.shift as usize;
        let last = self.store.steps - 1;
        let base = prefix[off];
        // First window step start whose cumulative reaches the target; the
        // crossing lies in the step before it (the last step extends to
        // +infinity, so a target beyond the horizon clamps there).
        let i = prefix[off..=off + last].partition_point(|&p| p - base < target);
        let k = i.saturating_sub(1).min(last);
        let x = t0 + k as f64 * dt + (target - (prefix[off + k] - base)) / self.raw(k);
        x - t0_work
    }

    /// Samples the view every `interval` seconds over `[a, b)` — the NWS
    /// sensor cadence, same semantics as [`Trace::sample_every`].
    pub fn sample_every(&self, a: f64, b: f64, interval: f64) -> Vec<(f64, f64)> {
        assert!(interval > 0.0 && b >= a);
        let mut out = Vec::new();
        let mut t = a;
        while t < b {
            out.push((t, self.at(t)));
            t += interval;
        }
        out
    }

    /// The minimum visible sample value.
    pub fn min(&self) -> f64 {
        self.slot.scale * self.window().iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// The maximum visible sample value.
    pub fn max(&self) -> f64 {
        self.slot.scale
            * self
                .window()
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean of the visible samples.
    pub fn mean(&self) -> f64 {
        self.slot.scale * self.window().iter().sum::<f64>() / self.store.steps as f64
    }

    /// Materializes the view as a standalone [`Trace`] — the reference
    /// oracle path: the tests pin `at`/`integral`/`time_to_complete`
    /// against the materialized trace's `*_reference` walks to ≤ 1e-9.
    /// From here, [`Trace::slice`] and [`Trace::downsample`] apply.
    ///
    /// This is an intentional O(steps) copy; everything on the simulation
    /// hot path stays on the shared columns.
    pub fn materialize(&self) -> Trace {
        let scale = self.slot.scale;
        Trace::new(
            self.store.t0,
            self.store.dt,
            self.window().iter().map(|&v| scale * v).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{MarkovModal, SingleModeAr1};

    fn small_store() -> TraceStore {
        let bursty = MarkovModal::platform2(20.0);
        let calm = SingleModeAr1::platform1_center();
        TraceStore::generate_streamed(
            7,
            0.0,
            1.0,
            600,
            64,
            &[
                TemplateSpec {
                    generator: &bursty,
                    count: 3,
                },
                TemplateSpec {
                    generator: &calm,
                    count: 2,
                },
            ],
            128,
            1,
        )
    }

    #[test]
    fn streamed_generation_is_thread_count_invariant() {
        let bursty = MarkovModal::platform2(20.0);
        let spec = [TemplateSpec {
            generator: &bursty,
            count: 4,
        }];
        let a = TraceStore::generate_streamed(3, 0.0, 1.0, 500, 32, &spec, 100, 1);
        for threads in [2usize, 4, 8] {
            let b = TraceStore::generate_streamed(3, 0.0, 1.0, 500, 32, &spec, 100, threads);
            for c in 0..a.columns() {
                assert_eq!(
                    &*a.columns[c].values, &*b.columns[c].values,
                    "column {c} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn slots_are_deterministic_and_diverse() {
        let a = MachineSlot::derive(1, 0, 0, 8, 64);
        assert_eq!(a, MachineSlot::derive(1, 0, 0, 8, 64));
        assert!((SCALE_LO..=SCALE_HI).contains(&a.scale));
        assert!(a.column < 8 && a.shift <= 64);
        // Across a fleet, slots spread over columns and shifts.
        let slots: Vec<MachineSlot> = (0..256)
            .map(|i| MachineSlot::derive(1, i, 0, 8, 64))
            .collect();
        let distinct_cols: std::collections::BTreeSet<u32> =
            slots.iter().map(|s| s.column).collect();
        let distinct_shifts: std::collections::BTreeSet<u32> =
            slots.iter().map(|s| s.shift).collect();
        assert_eq!(distinct_cols.len(), 8);
        assert!(distinct_shifts.len() > 32, "{}", distinct_shifts.len());
    }

    #[test]
    fn view_matches_materialized_trace_pointwise() {
        let store = small_store();
        for i in [0usize, 17, 91] {
            let slot = MachineSlot::derive(11, i, 0, store.columns() as u32, store.pad() as u32);
            let view = store.trace(slot);
            let full = view.materialize();
            for k in 0..=120 {
                let t = -20.0 + k as f64 * 6.1;
                assert_eq!(view.at(t), full.at(t), "machine {i} at t={t}");
            }
            assert_eq!(view.len(), full.len());
            assert_eq!(view.t_end(), full.t_end());
            assert!((view.mean() - full.mean()).abs() < 1e-12);
            assert!((view.min() - full.min()).abs() < 1e-15);
            assert!((view.max() - full.max()).abs() < 1e-15);
        }
    }

    #[test]
    fn view_integral_matches_reference_oracle() {
        let store = small_store();
        for i in [0usize, 5, 42] {
            let slot = MachineSlot::derive(23, i, 0, store.columns() as u32, store.pad() as u32);
            let view = store.trace(slot);
            let full = view.materialize();
            let (lo, hi) = (view.t0() - 15.0, view.t_end() + 15.0);
            let points: Vec<f64> = (0..=60).map(|k| lo + (hi - lo) * k as f64 / 60.0).collect();
            for (pi, &a) in points.iter().enumerate() {
                for &b in &points[pi..] {
                    let fast = view.integral(a, b);
                    let slow = full.integral_reference(a, b);
                    assert!(
                        (fast - slow).abs() <= 1e-9,
                        "machine {i} integral([{a}, {b}]): {fast} vs {slow}"
                    );
                }
            }
        }
    }

    #[test]
    fn view_completion_matches_reference_oracle() {
        let store = small_store();
        for i in [0usize, 3, 77] {
            let slot = MachineSlot::derive(31, i, 0, store.columns() as u32, store.pad() as u32);
            let view = store.trace(slot);
            let full = view.materialize();
            let starts = [
                -9.5,
                0.0,
                0.35,
                113.0,
                view.t_end() - 1.0,
                view.t_end() + 40.0,
            ];
            let works = [1e-9, 0.01, 0.5, 3.0, 17.0, 180.0, 1500.0];
            for &s in &starts {
                for &w in &works {
                    let fast = view.time_to_complete(s, w);
                    let slow = full.time_to_complete_reference(s, w);
                    assert!(
                        (fast - slow).abs() <= 1e-9,
                        "machine {i} ttc(start={s}, work={w}): {fast} vs {slow}"
                    );
                }
            }
        }
    }

    #[test]
    fn completion_and_integral_are_inverses_on_views() {
        let store = small_store();
        let slot = MachineSlot::derive(5, 9, 0, store.columns() as u32, store.pad() as u32);
        let view = store.trace(slot);
        for &(s, w) in &[(3.0, 4.0), (0.0, 55.0), (200.0, 130.0)] {
            let d = view.time_to_complete(s, w);
            let back = view.integral(s, s + d);
            assert!((back - w).abs() < 1e-6, "integral back: {back} vs {w}");
        }
    }

    #[test]
    fn prefixes_build_lazily_per_column() {
        let store = small_store();
        assert_eq!(store.prefix_bytes_built(), 0, "no query yet");
        let slot = MachineSlot::derive(2, 4, 0, 1, store.pad() as u32); // column 0
        store.trace(slot).integral(0.0, 100.0);
        let one = (store.steps() + store.pad() + 1) * 8;
        assert_eq!(store.prefix_bytes_built(), one, "one column built");
        assert_eq!(store.bytes(), store.value_bytes() + one);
    }

    #[test]
    fn sample_every_matches_materialized() {
        let store = small_store();
        let slot = MachineSlot::derive(9, 1, 0, store.columns() as u32, store.pad() as u32);
        let view = store.trace(slot);
        let full = view.materialize();
        assert_eq!(
            view.sample_every(0.0, 60.0, 5.0),
            full.sample_every(0.0, 60.0, 5.0)
        );
        assert!(view.sample_every(10.0, 10.0, 5.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "work-integration floor")]
    fn rejects_templates_below_the_floor() {
        TraceStore::from_columns(0.0, 1.0, 4, 0, vec![vec![0.5, 0.0, 0.5, 0.5]]);
    }

    #[test]
    #[should_panic(expected = "column out of range")]
    fn rejects_out_of_range_column() {
        let store = small_store();
        store.trace(MachineSlot {
            column: 999,
            shift: 0,
            scale: 1.0,
        });
    }

    #[test]
    #[should_panic(expected = "shift exceeds pad")]
    fn rejects_out_of_range_shift() {
        let store = small_store();
        store.trace(MachineSlot {
            column: 0,
            shift: 65,
            scale: 1.0,
        });
    }
}
