//! Step-function resource traces.
//!
//! Every dynamic quantity in the simulated environment — CPU availability,
//! network availability — is a [`Trace`]: a piecewise-constant function of
//! time at fixed resolution. Traces support the two queries the rest of the
//! system needs: *sampling* (what the NWS sensors do every five seconds)
//! and *work integration* (how long does a computation of `W` dedicated
//! seconds take if it starts at `t0` and proceeds at the traced
//! availability).

use serde::{Deserialize, Serialize};

/// A piecewise-constant time series starting at `t0` with step `dt`.
///
/// Beyond the last sample the trace holds its final value; before `t0` it
/// holds its first — simulated experiments always run inside the generated
/// horizon, but clamping keeps boundary arithmetic total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    t0: f64,
    dt: f64,
    values: Vec<f64>,
}

impl Trace {
    /// Creates a trace.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`, `values` is empty, or any value is non-finite.
    pub fn new(t0: f64, dt: f64, values: Vec<f64>) -> Self {
        assert!(dt > 0.0, "trace step must be positive");
        assert!(!values.is_empty(), "trace needs at least one sample");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "trace values must be finite"
        );
        Self { t0, dt, values }
    }

    /// A constant trace (dedicated resources).
    pub fn constant(t0: f64, dt: f64, value: f64, steps: usize) -> Self {
        Self::new(t0, dt, vec![value; steps.max(1)])
    }

    /// Builds a trace by evaluating `f` at each step start.
    pub fn from_fn(t0: f64, dt: f64, steps: usize, mut f: impl FnMut(f64) -> f64) -> Self {
        assert!(steps > 0);
        Self::new(
            t0,
            dt,
            (0..steps).map(|i| f(t0 + i as f64 * dt)).collect(),
        )
    }

    /// Start time.
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Step width in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// End of the generated horizon.
    pub fn t_end(&self) -> f64 {
        self.t0 + self.dt * self.values.len() as f64
    }

    /// Raw samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false (construction rejects empty traces).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The value at time `t` (clamped to the horizon).
    pub fn at(&self, t: f64) -> f64 {
        if t <= self.t0 {
            return self.values[0];
        }
        let idx = ((t - self.t0) / self.dt) as usize;
        self.values[idx.min(self.values.len() - 1)]
    }

    /// Mean value over `[a, b]`, integrating the step function exactly.
    ///
    /// # Panics
    ///
    /// Panics if `b < a`.
    pub fn mean_over(&self, a: f64, b: f64) -> f64 {
        assert!(b >= a, "inverted interval [{a}, {b}]");
        if b == a {
            return self.at(a);
        }
        self.integral(a, b) / (b - a)
    }

    /// Integral of the trace over `[a, b]`.
    ///
    /// An integer step cursor guarantees termination even when interval
    /// endpoints land exactly on step boundaries (a float-recomputation
    /// loop can stall there).
    pub fn integral(&self, a: f64, b: f64) -> f64 {
        assert!(b >= a, "inverted interval [{a}, {b}]");
        let mut acc = 0.0;
        let mut t = a;
        // Stretch before the horizon: the first value holds.
        if t < self.t0 {
            let seg_end = self.t0.min(b);
            acc += self.values[0] * (seg_end - t);
            t = seg_end;
        }
        if t >= b {
            return acc;
        }
        let last = self.values.len() - 1;
        let mut k = (((t - self.t0) / self.dt) as usize).min(last);
        loop {
            if k >= last {
                // Final value holds to the end of the interval.
                acc += self.values[last] * (b - t).max(0.0);
                return acc;
            }
            let step_end = self.t0 + (k as f64 + 1.0) * self.dt;
            if step_end >= b {
                acc += self.values[k] * (b - t).max(0.0);
                return acc;
            }
            acc += self.values[k] * (step_end - t).max(0.0);
            t = step_end;
            k += 1;
        }
    }

    /// How long work of `dedicated_work` seconds takes when started at
    /// `t0_work`, proceeding at the traced availability: the smallest `d`
    /// with `integral(t0_work, t0_work + d) == dedicated_work`.
    ///
    /// Availability at or below `min_avail` (default guard `1e-6`) is
    /// treated as that floor so a zero-availability stretch cannot hang the
    /// simulation forever.
    pub fn time_to_complete(&self, t0_work: f64, dedicated_work: f64) -> f64 {
        assert!(
            dedicated_work >= 0.0,
            "work must be non-negative: {dedicated_work}"
        );
        const FLOOR: f64 = 1e-6;
        if dedicated_work == 0.0 {
            return 0.0;
        }
        let mut remaining = dedicated_work;
        let mut t = t0_work;
        // Stretch before the horizon: the first value holds.
        if t < self.t0 {
            let v = self.values[0].max(FLOOR);
            let capacity = v * (self.t0 - t);
            if capacity >= remaining {
                return remaining / v;
            }
            remaining -= capacity;
            t = self.t0;
        }
        // Integer step cursor: strictly increasing, so the loop always
        // terminates (a float-recomputed index can stall on boundaries).
        let last = self.values.len() - 1;
        let mut k = (((t - self.t0) / self.dt) as usize).min(last);
        loop {
            let v = self.values[k].max(FLOOR);
            if k >= last {
                // Final value holds forever.
                return t + remaining / v - t0_work;
            }
            let step_end = self.t0 + (k as f64 + 1.0) * self.dt;
            let capacity = v * (step_end - t).max(0.0);
            if capacity >= remaining {
                return t + remaining / v - t0_work;
            }
            remaining -= capacity;
            t = step_end;
            k += 1;
        }
    }

    /// Samples the trace every `interval` seconds over `[a, b)` — the NWS
    /// sensor cadence. Returns `(t, value)` pairs.
    pub fn sample_every(&self, a: f64, b: f64, interval: f64) -> Vec<(f64, f64)> {
        assert!(interval > 0.0 && b >= a);
        let mut out = Vec::new();
        let mut t = a;
        while t < b {
            out.push((t, self.at(t)));
            t += interval;
        }
        out
    }

    /// The sub-trace covering `[a, b)`, clamped to the horizon. The
    /// result's `t0` is the start of the step containing `a`.
    ///
    /// # Panics
    ///
    /// Panics if `b <= a`.
    pub fn slice(&self, a: f64, b: f64) -> Trace {
        assert!(b > a, "empty slice [{a}, {b})");
        let last = self.values.len() - 1;
        let k0 = if a <= self.t0 {
            0
        } else {
            (((a - self.t0) / self.dt) as usize).min(last)
        };
        let k1 = if b <= self.t0 {
            1
        } else {
            ((((b - self.t0) / self.dt).ceil()) as usize).clamp(k0 + 1, last + 1)
        };
        Trace::new(
            self.t0 + k0 as f64 * self.dt,
            self.dt,
            self.values[k0..k1].to_vec(),
        )
    }

    /// Resamples to a coarser resolution: each output step of `factor`
    /// input steps holds their mean — how an archival tool thins a long
    /// trace without biasing work integration.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn downsample(&self, factor: usize) -> Trace {
        assert!(factor > 0, "downsample factor must be positive");
        if factor == 1 {
            return self.clone();
        }
        let values: Vec<f64> = self
            .values
            .chunks(factor)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        Trace::new(self.t0, self.dt * factor as f64, values)
    }

    /// The minimum sample value.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// The maximum sample value.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Trace {
        // 1.0 for t in [0,1), 0.5 for [1,2), 0.25 for [2,3)
        Trace::new(0.0, 1.0, vec![1.0, 0.5, 0.25])
    }

    #[test]
    fn at_steps_and_clamps() {
        let t = ramp();
        assert_eq!(t.at(-5.0), 1.0);
        assert_eq!(t.at(0.0), 1.0);
        assert_eq!(t.at(0.99), 1.0);
        assert_eq!(t.at(1.0), 0.5);
        assert_eq!(t.at(2.5), 0.25);
        assert_eq!(t.at(99.0), 0.25);
    }

    #[test]
    fn integral_exact_on_steps() {
        let t = ramp();
        assert!((t.integral(0.0, 3.0) - 1.75).abs() < 1e-9);
        assert!((t.integral(0.5, 1.5) - (0.5 + 0.25)).abs() < 1e-9);
        assert!((t.integral(2.0, 5.0) - 0.25 * 3.0).abs() < 1e-9);
    }

    #[test]
    fn mean_over_weights_segments() {
        let t = ramp();
        assert!((t.mean_over(0.0, 2.0) - 0.75).abs() < 1e-9);
        assert_eq!(t.mean_over(1.5, 1.5), 0.5);
    }

    #[test]
    fn work_integration_full_availability() {
        let t = Trace::constant(0.0, 1.0, 1.0, 10);
        assert!((t.time_to_complete(0.0, 4.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn work_integration_half_availability_doubles_time() {
        let t = Trace::constant(0.0, 1.0, 0.5, 10);
        assert!((t.time_to_complete(2.0, 3.0) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn work_integration_across_steps() {
        let t = ramp();
        // Work 1.25: first second supplies 1.0, next 0.25 needs 0.5 s at 0.5.
        assert!((t.time_to_complete(0.0, 1.25) - 1.5).abs() < 1e-9);
        // Work 1.75 consumes [0,3) exactly.
        assert!((t.time_to_complete(0.0, 1.75) - 3.0).abs() < 1e-9);
        // Beyond the horizon the last value holds: extra 0.25 at 0.25 -> +1 s.
        assert!((t.time_to_complete(0.0, 2.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn work_integration_zero_availability_floors() {
        let t = Trace::new(0.0, 1.0, vec![0.0, 1.0]);
        // Shouldn't hang; the floor makes the first second contribute ~0.
        let d = t.time_to_complete(0.0, 0.5);
        assert!((1.0..2.0).contains(&d), "d={d}");
    }

    #[test]
    fn zero_work_takes_zero_time() {
        assert_eq!(ramp().time_to_complete(1.3, 0.0), 0.0);
    }

    #[test]
    fn sampling_cadence() {
        let t = ramp();
        let s = t.sample_every(0.0, 3.0, 0.5);
        assert_eq!(s.len(), 6);
        assert_eq!(s[0], (0.0, 1.0));
        assert_eq!(s[2], (1.0, 0.5));
    }

    #[test]
    fn from_fn_and_stats() {
        let t = Trace::from_fn(0.0, 1.0, 4, |x| x + 1.0);
        assert_eq!(t.values(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.max(), 4.0);
        assert!((t.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn slice_preserves_values_and_alignment() {
        let t = Trace::new(10.0, 2.0, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let s = t.slice(13.0, 17.0);
        // Step containing 13.0 starts at 12.0; 17.0 lies in [16, 18), so
        // three steps are retained.
        assert_eq!(s.t0(), 12.0);
        assert_eq!(s.values(), &[2.0, 3.0, 4.0]);
        assert_eq!(s.at(13.5), t.at(13.5));
        // Slices clamp to the horizon.
        let tail = t.slice(19.0, 100.0);
        assert_eq!(tail.values(), &[5.0]);
    }

    #[test]
    fn downsample_preserves_mean_and_integral() {
        let t = Trace::new(0.0, 1.0, vec![1.0, 3.0, 5.0, 7.0, 2.0, 4.0]);
        let d = t.downsample(2);
        assert_eq!(d.dt(), 2.0);
        assert_eq!(d.values(), &[2.0, 6.0, 3.0]);
        assert!((d.mean() - t.mean()).abs() < 1e-12);
        assert!((d.integral(0.0, 6.0) - t.integral(0.0, 6.0)).abs() < 1e-9);
        // Ragged tail chunk still averages correctly.
        let d3 = t.downsample(4);
        assert_eq!(d3.values(), &[4.0, 3.0]);
    }

    #[test]
    fn downsample_factor_one_is_identity() {
        let t = ramp();
        assert_eq!(t.downsample(1), t);
    }

    #[test]
    #[should_panic]
    fn slice_rejects_empty_interval() {
        ramp().slice(2.0, 2.0);
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        Trace::new(0.0, 1.0, vec![]);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_dt() {
        Trace::new(0.0, 0.0, vec![1.0]);
    }
}
